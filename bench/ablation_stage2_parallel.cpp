// Ablation: is stage two worth parallelizing?
//
// The paper (Section V-A): "Although stage two performs operations that
// could be parallelized, the small percentage of execution accounted for by
// stage two and the amount of time required for parallel overhead is so
// great that it is not worth the additional programming effort." We built
// it anyway — a wavefront over anti-diagonals — and measure both sides of
// that sentence: the share of stage two in the total, and the overhead of
// the wavefront's per-diagonal synchronization.
#include <iostream>

#include "bench_util.hpp"
#include "engine/engine.hpp"
#include "rna/generators.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace srna;

  CliParser cli("ablation_stage2_parallel", "sequential vs wavefront-parallel stage two");
  cli.add_option("lengths", "worst-case sequence lengths", "200,400,800");
  cli.add_option("threads", "threads for stage one and the wavefront", "2");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_header("Ablation — stage two: sequential vs wavefront (real shared memory)",
                      "Section V-A's 'not worth the additional programming effort'");

  const int threads = static_cast<int>(cli.integer("threads"));
  TablePrinter table({"length", "stage2 seq[s]", "stage2 wave[s]", "stage2 share of total",
                      "value check"});

  for (const auto length : cli.int_list("lengths")) {
    const auto s = worst_case_structure(static_cast<Pos>(length));
    SolverConfig seq;
    seq.threads = threads;
    SolverConfig wave = seq;
    wave.parallel_stage2 = true;

    const auto rs = engine_solve("prna", s, s, seq);
    const auto rw = engine_solve("prna", s, s, wave);
    const double share = rs.stats.total_seconds() > 0
                             ? rs.stats.stage2_seconds / rs.stats.total_seconds()
                             : 0.0;
    table.add_row({std::to_string(length), fixed(rs.stats.stage2_seconds, 5),
                   fixed(rw.stats.stage2_seconds, 5), fixed(100.0 * share, 4) + "%",
                   rs.value == rw.value ? "agree" : "BUG"});
    if (rs.value != rw.value) return 1;
  }
  table.print(std::cout);
  std::cout << "\nshape check: stage two is a vanishing share of the total, and the\n"
               "wavefront's per-diagonal barriers eat whatever it could save —\n"
               "the paper's call to leave stage two sequential stands.\n";
  return 0;
}
