// Ablation: what memoization buys SRNA1.
//
// Three variants of SRNA1's d2 handling:
//   array     — Θ(1) dense memo table with an unset sentinel (our default);
//   hashmap   — associative memo (the paper's KEY_NOT_FOUND phrasing);
//   none      — no memoization: every matched arc re-spawns its child slice
//               ("this is not dynamic programming at all", Section IV-A).
//
// The none variant is run on deliberately tiny worst cases — its slice count
// grows explosively with nesting depth, which is exactly the point.
#include <iostream>

#include "bench_util.hpp"
#include "engine/engine.hpp"
#include "rna/generators.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace srna;

  CliParser cli("ablation_memoization", "SRNA1 memoization ablation");
  cli.add_option("memo-lengths", "lengths for array-vs-hash comparison", "200,400,800");
  cli.add_option("naive-lengths", "lengths for the no-memo blow-up", "8,12,16,20,24");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_header("Ablation — memoization in SRNA1",
                      "Section IV-A (child slices must be memoized) and Algorithm 1");

  {
    TablePrinter table({"length", "array[s]", "hashmap[s]", "hash/array", "memo misses"});
    for (const auto length : cli.int_list("memo-lengths")) {
      const auto s = worst_case_structure(static_cast<Pos>(length));
      SolverConfig array_opt;
      SolverConfig hash_opt;
      hash_opt.memo_kind = MemoKind::kHashMap;
      EngineResult ra, rh;
      const double ta =
          bench::time_best_of(1, [&] { ra = engine_solve("srna1", s, s, array_opt); });
      const double th =
          bench::time_best_of(1, [&] { rh = engine_solve("srna1", s, s, hash_opt); });
      if (ra.value != rh.value) {
        std::cerr << "VALUE MISMATCH\n";
        return 1;
      }
      table.add_row({std::to_string(length), fixed(ta, 3), fixed(th, 3),
                     ta > 0 ? fixed(th / ta, 2) : "-", std::to_string(ra.stats.memo_misses)});
    }
    std::cout << "\nmemo representation (worst-case data):\n";
    table.print(std::cout);
  }

  {
    TablePrinter table({"length", "arcs", "memoized slices", "naive slices", "blow-up",
                        "naive max depth"});
    for (const auto length : cli.int_list("naive-lengths")) {
      const auto s = worst_case_structure(static_cast<Pos>(length));
      SolverConfig with;
      SolverConfig without;
      without.memoize = false;
      without.spawn_limit = 50'000'000;  // safety valve
      const auto rw = engine_solve("srna1", s, s, with);
      EngineResult rn;
      bool aborted = false;
      try {
        rn = engine_solve("srna1", s, s, without);
      } catch (const std::runtime_error&) {
        aborted = true;
      }
      table.add_row({std::to_string(length), std::to_string(s.arc_count()),
                     std::to_string(rw.stats.slices_tabulated),
                     aborted ? ">5e7 (aborted)" : std::to_string(rn.stats.slices_tabulated),
                     aborted ? "-"
                             : fixed(static_cast<double>(rn.stats.slices_tabulated) /
                                         static_cast<double>(rw.stats.slices_tabulated),
                                     1),
                     aborted ? "-" : std::to_string(rn.stats.max_spawn_depth)});
    }
    std::cout << "\nmemoization on vs off (slice spawn counts):\n";
    table.print(std::cout);
    std::cout << "\nshape check: without memoization the spawn count explodes\n"
                 "combinatorially with nesting depth; with it, one spawn per arc pair\n"
                 "and recursion depth <= 1.\n";
  }
  return 0;
}
