// Figure 7: the work matrix of the parent slice — for each matched arc pair
// (one row per S1 arc, one column per S2 arc) the number of subproblems the
// spawned child slice tabulates — plus the column weights and the resulting
// static load-balance plan.
//
// The paper uses this view to justify PRNA's design: the work of cell
// (a1, a2) factors as interior(a1) × interior(a2), so the relative work
// between columns is identical in every row and a single static column
// assignment balances all rows at once.
#include <iostream>

#include "bench_util.hpp"
#include "engine/engine.hpp"
#include "parallel/load_balance.hpp"
#include "rna/dot_bracket.hpp"
#include "rna/generators.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace srna;

  CliParser cli("figure7_work_matrix", "Figure 7: per-child-slice work of the parent slice");
  cli.add_option("s1", "first structure (dot-bracket)", "((..((...))..((...))..))");
  cli.add_option("s2", "second structure (dot-bracket)", "((...((..))...))");
  cli.add_option("procs", "processors for the load-balance plan", "3");
  if (!cli.parse(argc, argv)) return 0;

  const auto s1 = parse_dot_bracket(cli.str("s1"));
  const auto s2 = parse_dot_bracket(cli.str("s2"));
  const auto p = static_cast<std::size_t>(cli.integer("procs"));

  bench::print_header("Figure 7 — child-slice work matrix and column ownership",
                      "paper Figure 7 (Section V-A)");

  std::cout << "S1: " << to_dot_bracket(s1) << "  (" << s1.arc_count() << " arcs)\n"
            << "S2: " << to_dot_bracket(s2) << "  (" << s2.arc_count() << " arcs)\n\n";

  // Work matrix: rows = S1 arcs, columns = S2 arcs (by right endpoint).
  std::vector<std::string> header{"S1 arc \\ S2 arc"};
  for (const Arc& a2 : s2.arcs_by_right()) {
    header.push_back("(" + std::to_string(a2.left) + "," + std::to_string(a2.right) + ")");
  }
  header.push_back("row total");
  TablePrinter table(header);

  std::uint64_t grand_total = 0;
  for (const Arc& a1 : s1.arcs_by_right()) {
    std::vector<std::string> row{"(" + std::to_string(a1.left) + "," +
                                 std::to_string(a1.right) + ")"};
    const auto w1 = static_cast<std::uint64_t>(a1.interior_width());
    std::uint64_t row_total = 0;
    for (const Arc& a2 : s2.arcs_by_right()) {
      const std::uint64_t cells = w1 * static_cast<std::uint64_t>(a2.interior_width());
      row.push_back(cells == 0 ? "." : std::to_string(cells));
      row_total += cells;
    }
    row.push_back(std::to_string(row_total));
    grand_total += row_total;
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "stage-one cells total: " << grand_total << "\n";

  // Cross-check against the real kernel's accounting.
  const auto r = engine_solve("srna2", s1, s2);
  const std::uint64_t parent =
      static_cast<std::uint64_t>(s1.length()) * static_cast<std::uint64_t>(s2.length());
  std::cout << "real SRNA2 stage-one cells: " << (r.stats.cells_tabulated - parent)
            << (r.stats.cells_tabulated - parent == grand_total ? "  [matches]\n"
                                                                : "  [MISMATCH]\n");

  // Column weights and the greedy plan (the preprocessing of PRNA).
  std::vector<std::uint64_t> weights;
  for (const Arc& a2 : s2.arcs_by_right())
    weights.push_back(static_cast<std::uint64_t>(a2.interior_width()));
  const Assignment plan = balance_load(weights, p, BalanceStrategy::kGreedyLpt);

  std::cout << "\ncolumn ownership over " << p << " processors (greedy LPT):\n";
  TablePrinter ownership({"S2 arc", "column weight", "owner"});
  for (std::size_t b = 0; b < weights.size(); ++b) {
    const Arc a2 = s2.arcs_by_right()[b];
    ownership.add_row({"(" + std::to_string(a2.left) + "," + std::to_string(a2.right) + ")",
                       std::to_string(weights[b]), std::to_string(plan.owner[b])});
  }
  ownership.print(std::cout);
  std::cout << "per-processor load: ";
  for (const auto load : plan.load) std::cout << load << ' ';
  std::cout << "  (imbalance " << fixed(plan.imbalance(), 3) << ")\n";
  return 0;
}
