// Ablation: dense (paper-faithful) vs event-compressed slice layout.
//
// The dense layout tabulates every cell of every child slice — the paper's
// cost model. The compressed layout stores one cell per matched-arc event
// pair, exploiting that F only changes at events. On the contrived worst
// case (every position paired) the two differ by a constant factor; on
// sparse realistic structures the compressed layout wins by orders of
// magnitude.
#include <iostream>

#include "bench_util.hpp"
#include "engine/engine.hpp"
#include "rna/generators.hpp"
#include "rna/structure_stats.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace srna;

  CliParser cli("ablation_slice_layout", "dense vs compressed slice layout");
  cli.add_option("worst-lengths", "worst-case lengths", "200,400,800");
  cli.add_option("rrna-lengths", "rRNA-like lengths (arcs ~ length/6)", "1000,2000,4216");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_header("Ablation — slice layout (dense vs event-compressed), SRNA2",
                      "DESIGN.md §4.4; paper Section IV cost model");

  TablePrinter table({"workload", "length", "arcs", "dense[s]", "compressed[s]", "speedup",
                      "dense cells", "compressed cells"});

  auto run = [&](const std::string& name, const SecondaryStructure& s) {
    SolverConfig dense;
    dense.layout = SliceLayout::kDense;
    SolverConfig compressed;
    compressed.layout = SliceLayout::kCompressed;
    EngineResult rd, rc;
    const double td = bench::time_best_of(1, [&] { rd = engine_solve("srna2", s, s, dense); });
    const double tc =
        bench::time_best_of(1, [&] { rc = engine_solve("srna2", s, s, compressed); });
    if (rd.value != rc.value) {
      std::cerr << "VALUE MISMATCH for " << name << "\n";
      std::exit(1);
    }
    table.add_row({name, std::to_string(s.length()), std::to_string(s.arc_count()),
                   fixed(td, 3), fixed(tc, 3), tc > 0 ? fixed(td / tc, 1) : "-",
                   std::to_string(rd.stats.cells_tabulated),
                   std::to_string(rc.stats.cells_tabulated)});
  };

  for (const auto length : cli.int_list("worst-lengths"))
    run("worst-case", worst_case_structure(static_cast<Pos>(length)));
  for (const auto length : cli.int_list("rrna-lengths"))
    run("rRNA-like",
        rrna_like_structure(static_cast<Pos>(length),
                            static_cast<std::size_t>(length / 6), 2012));

  table.print(std::cout);
  std::cout << "\nshape check: modest constant-factor gain on worst-case data, large\n"
               "gains on sparse realistic structures (events << cells).\n";
  return 0;
}
