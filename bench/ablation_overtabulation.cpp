// Ablation: over-tabulation of the conventional bottom-up strategy vs the
// exact tabulation of the slice-based algorithms (paper Sections II/IV).
//
// For each workload the table reports subproblems touched by:
//   bottom-up 4-D — every (i1<=j1, i2<=j2) interval pair (the "ignore the
//                   input, fill the table" strategy);
//   top-down      — the exact tabulation (only subproblems reachable from
//                   the root);
//   SRNA2         — slice cells (the same exact set, organized in slices).
// Sparse structures make the gap enormous — the paper's core argument for
// letting the input drive the computation.
#include <iostream>

#include "bench_util.hpp"
#include "core/mcos.hpp"
#include "engine/engine.hpp"
#include "rna/generators.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace srna;

  CliParser cli("ablation_overtabulation", "bottom-up overtabulation vs exact tabulation");
  cli.add_option("length", "sequence length (kept small: the 4-D table is real)", "48");
  if (!cli.parse(argc, argv)) return 0;

  const auto length = static_cast<Pos>(cli.integer("length"));

  bench::print_header("Ablation — overtabulation vs exact tabulation",
                      "Sections II and IV: the cost of ignoring the data-driven structure");

  TablePrinter table({"workload", "arcs", "bottom-up 4-D cells", "top-down exact cells",
                      "SRNA2 slice cells", "overtabulation factor"});

  auto run = [&](const std::string& name, const SecondaryStructure& s) {
    const auto over = mcos_reference_bottomup(s, s);
    const auto exact = mcos_reference_topdown(s, s);
    const auto slices = engine_solve("srna2", s, s);
    table.add_row({name, std::to_string(s.arc_count()),
                   std::to_string(over.stats.cells_tabulated),
                   std::to_string(exact.stats.cells_tabulated),
                   std::to_string(slices.stats.cells_tabulated),
                   fixed(static_cast<double>(over.stats.cells_tabulated) /
                             static_cast<double>(std::max<std::uint64_t>(
                                 slices.stats.cells_tabulated, 1)),
                         1)});
  };

  run("worst-case (dense nesting)", worst_case_structure(length));
  run("rRNA-like (sparse)", rrna_like_structure(length, static_cast<std::size_t>(length / 6), 3));
  run("sequential hairpins", sequential_arcs_structure(length, length / 6));
  run("random d=0.2", random_structure(length, 0.2, 1));
  run("random d=0.6", random_structure(length, 0.6, 1));
  run("arc-free", SecondaryStructure(length));

  table.print(std::cout);
  std::cout << "\nshape check: the bottom-up table touches every interval pair no\n"
               "matter the input; the exact strategies scale with the arc structure\n"
               "and collapse to nothing on arc-free input.\n";
  return 0;
}
