// Ablation: lazy (SRNA1) vs eager (SRNA2) child-slice tabulation.
//
// SRNA2's stage one eagerly tabulates the child slice of *every* arc pair
// (|S1| x |S2| slices); SRNA1 spawns slices only when a d2 dependency
// demands them. The measurement shows the demanded set IS the full set on
// every workload: the parent slice's dense tabulation probes d2 at every
// matched-arc event, i.e. at every arc pair whose endpoints fall inside it
// — and the parent covers everything. Eagerness therefore wastes nothing
// (both algorithms perform the same exact tabulation), and SRNA2's
// advantage is purely the removed per-event branch/recursion — plus the
// property PRNA needs: the slice set is known before execution.
#include <iostream>

#include "bench_util.hpp"
#include "engine/engine.hpp"
#include "rna/generators.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace srna;

  CliParser cli("ablation_lazy_vs_eager", "SRNA1 lazy spawning vs SRNA2 eager stage one");
  cli.add_option("length", "structure length", "1200");
  cli.add_option("arcs", "arcs per rRNA-like structure", "220");
  if (!cli.parse(argc, argv)) return 0;

  const auto length = static_cast<Pos>(cli.integer("length"));
  const auto arcs = static_cast<std::size_t>(cli.integer("arcs"));

  bench::print_header("Ablation — lazy (SRNA1) vs eager (SRNA2) slice tabulation",
                      "Sections IV-A/IV-B design trade-off");

  TablePrinter table({"pair", "lazy slices", "eager slices", "lazy[s]", "eager[s]", "value"});

  auto run = [&](const std::string& name, const SecondaryStructure& a,
                 const SecondaryStructure& b) {
    EngineResult lazy, eager;
    const double tl = bench::time_best_of(1, [&] { lazy = engine_solve("srna1", a, b); });
    const double te = bench::time_best_of(1, [&] { eager = engine_solve("srna2", a, b); });
    if (lazy.value != eager.value) {
      std::cerr << "VALUE MISMATCH for " << name << "\n";
      std::exit(1);
    }
    table.add_row({name, std::to_string(lazy.stats.slices_tabulated),
                   std::to_string(eager.stats.slices_tabulated), fixed(tl, 3), fixed(te, 3),
                   std::to_string(lazy.value)});
  };

  // Worst case: every slice is demanded.
  const auto worst = worst_case_structure(std::min<Pos>(length, 600));
  run("worst-case self", worst, worst);

  // Related structures: most slices are demanded.
  const auto r1 = rrna_like_structure(length, arcs, 1);
  run("rRNA-like self", r1, r1);

  // Unrelated structures: nesting rarely lines up, many arc pairs are never
  // demanded lazily.
  const auto r2 = rrna_like_structure(length, arcs, 999);
  run("rRNA-like unrelated", r1, r2);

  // Extreme mismatch: deep nest vs flat sequence of hairpins.
  const auto flat = sequential_arcs_structure(length, static_cast<Pos>(arcs));
  const auto deep = worst_case_structure(std::min<Pos>(length, 2 * static_cast<Pos>(arcs)));
  run("nested vs sequential", deep, flat);

  table.print(std::cout);
  std::cout << "\nshape check: lazy and eager tabulate the *same* slice count on every\n"
               "workload — the parent slice demands every arc pair — so the eager\n"
               "two-stage design wastes nothing and additionally knows its slice set\n"
               "before execution (what PRNA's static schedule requires).\n";
  return 0;
}
