// Long-sequence memory sweep: the space-lean solver (srna-lean) against the
// dense SRNA2 baseline on a hairpin-field workload, under a ladder of byte
// budgets expressed as fractions of the dense Θ(nm) memo footprint.
//
// This is the acceptance harness for the memory-budgeted solving work: at
// n ≈ 2×10⁴ the dense memo alone is ~1.6 GB, while the lean path holds the
// same answer (score-identical — the harness exits non-zero on any
// divergence) inside a few megabytes of windowed memo rows plus streaming
// scratch. Every budgeted row asserts the resident peak (memo window +
// slice scratch) stayed under its budget; a violation is a correctness bug
// in the store's eviction accounting, not a tuning miss.
//
// Rows land in BENCH_longseq_memory.json (`--report=` overrides, `none`
// skips). `--smoke` shrinks the sequences for the ctest registration.
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/mcos.hpp"
#include "core/srna_lean.hpp"
#include "core/workspace.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace srna;

// The same workload shape as the lean solver tests: a field of hairpin
// stems (depth 3–5) separated by unpaired gaps. Thousands of arcs, shallow
// nesting — the regime where the dense memo is almost entirely dead weight.
SecondaryStructure hairpin_field(Pos target_len, std::uint64_t seed) {
  std::vector<Arc> arcs;
  Pos base = 0;
  std::uint64_t state = seed * 0x9E3779B97F4A7C15ULL + 1;
  auto next = [&]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  while (base + 20 <= target_len) {
    const Pos depth = 3 + static_cast<Pos>(next() % 3);
    const Pos span = 2 * depth + static_cast<Pos>(next() % 3);
    for (Pos i = 0; i < depth; ++i) arcs.push_back(Arc{base + i, base + span - 1 - i});
    base += span + 4 + static_cast<Pos>(next() % 5);
  }
  return SecondaryStructure::from_arcs(target_len, std::move(arcs));
}

std::vector<double> parse_fractions(const std::string& csv) {
  std::vector<double> out;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(std::stod(item));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("longseq_memory",
                "space-lean solving at long sequence lengths under byte budgets");
  cli.add_option("length", "sequence length of each structure", "20000");
  cli.add_option("seed", "workload seed (the pair uses seed and seed+1)", "1");
  cli.add_option("budgets",
                 "comma-separated budgets as fractions of the dense n*m*4 memo"
                 " (each clamped up to the lean feasibility floor)",
                 "0.25,0.01,0.0025");
  cli.add_flag("skip-dense", "skip the dense SRNA2 baseline row");
  cli.add_flag("smoke", "small deterministic preset for ctest (length=2000)");
  cli.add_option("report", "run-report path (default BENCH_longseq_memory.json; none = skip)",
                 "");
  if (!cli.parse(argc, argv)) return 0;

  const Pos length = cli.flag("smoke") ? 2000 : static_cast<Pos>(cli.integer("length"));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const std::vector<double> fractions = parse_fractions(cli.str("budgets"));

  const SecondaryStructure s1 = hairpin_field(length, seed);
  const SecondaryStructure s2 = hairpin_field(length, seed + 1);
  const std::uint64_t dense_bytes = static_cast<std::uint64_t>(s1.length()) *
                                    static_cast<std::uint64_t>(s2.length()) * sizeof(Score);
  const std::uint64_t floor_bytes = lean_minimum_bytes(s1, s2);

  bench::print_header("Long-sequence memory sweep — srna-lean under byte budgets",
                      "memory-budgeted solving (DESIGN.md, Memory model)");
  std::cout << "pair: n=" << s1.length() << " (" << s1.arc_count() << " arcs) x m="
            << s2.length() << " (" << s2.arc_count() << " arcs)\n"
            << "dense memo:  " << dense_bytes << " bytes\n"
            << "lean floor:  " << floor_bytes << " bytes\n";

  bench::BenchReport bench_report("longseq_memory");
  bench_report.report().set_command_line(argc, argv);
  {
    obs::Json params = obs::Json::object();
    params.set("length", obs::Json(static_cast<std::int64_t>(length)));
    params.set("seed", obs::Json(seed));
    params.set("arcs_a", obs::Json(static_cast<std::uint64_t>(s1.arc_count())));
    params.set("arcs_b", obs::Json(static_cast<std::uint64_t>(s2.arc_count())));
    params.set("dense_memo_bytes", obs::Json(dense_bytes));
    params.set("lean_floor_bytes", obs::Json(floor_bytes));
    bench_report.report().set("parameters", std::move(params));
  }

  TablePrinter table({"instance", "budget[B]", "time[s]", "value", "store peak[B]",
                      "scratch[B]", "evictions", "memo misses"});

  // Reference score: the unbudgeted lean solve (dense SRNA2 would hold the
  // full Θ(nm) table just to cross-check a score the budgeted rows already
  // all have to agree on).
  Score reference = 0;
  bool have_reference = false;
  int failures = 0;

  struct Level {
    std::string instance;
    std::uint64_t budget;  // 0 = unlimited
  };
  std::vector<Level> levels;
  levels.push_back({"unlimited", 0});
  for (const double frac : fractions) {
    std::uint64_t budget = static_cast<std::uint64_t>(frac * static_cast<double>(dense_bytes));
    // Clamp up to feasibility: the floor plus two memo rows of slack, so
    // every requested level runs instead of failing validation.
    const std::uint64_t feasible =
        floor_bytes + 2 * static_cast<std::uint64_t>(s2.arc_count()) * sizeof(Score);
    budget = std::max(budget, feasible);
    std::ostringstream name;
    name << "budget_frac=" << frac;
    levels.push_back({name.str(), budget});
  }

  for (const Level& level : levels) {
    // The core entry point directly (not solve_with): the engine trims the
    // pooled workspace back under the budget after the solve, which would
    // erase the peak accounting these rows exist to report.
    Workspace ws;
    LeanOptions options;
    options.memory_budget_bytes = level.budget;
    WallTimer timer;
    const McosResult result = srna_lean(s1, s2, options, ws);
    const double seconds = timer.seconds();

    const std::uint64_t store_peak = ws.lean_store().peak_resident_bytes();
    const std::uint64_t scratch = ws.slice_scratch_bytes();
    const std::uint64_t evictions = ws.lean_store().evictions();

    if (!have_reference) {
      reference = result.value;
      have_reference = true;
    } else if (result.value != reference) {
      std::cerr << "VALUE MISMATCH at " << level.instance << ": " << result.value
                << " != " << reference << "\n";
      ++failures;
    }
    if (level.budget != 0 && store_peak + scratch > level.budget) {
      std::cerr << "BUDGET OVERSHOOT at " << level.instance << ": resident peak "
                << (store_peak + scratch) << " > budget " << level.budget << "\n";
      ++failures;
    }

    table.add_row({level.instance, std::to_string(level.budget), std::to_string(seconds),
                   std::to_string(result.value), std::to_string(store_peak),
                   std::to_string(scratch), std::to_string(evictions),
                   std::to_string(result.stats.memo_misses)});

    obs::Json row = obs::Json::object();
    row.set("instance", obs::Json(level.instance));
    row.set("algorithm", obs::Json(std::string("srna-lean")));
    row.set("budget_bytes", obs::Json(level.budget));
    row.set("seconds", obs::Json(seconds));
    row.set("value", obs::Json(static_cast<std::int64_t>(result.value)));
    row.set("store_peak_bytes", obs::Json(store_peak));
    row.set("scratch_bytes", obs::Json(scratch));
    row.set("resident_peak_bytes", obs::Json(store_peak + scratch));
    row.set("evictions", obs::Json(evictions));
    row.set("memo_misses", obs::Json(result.stats.memo_misses));
    row.set("cells", obs::Json(result.stats.cells_tabulated));
    bench_report.add_row(std::move(row));
  }

  if (!cli.flag("skip-dense")) {
    // The dense baseline: same answer, Θ(nm) memo resident the whole time.
    Workspace ws;
    WallTimer timer;
    const McosResult dense = srna2(s1, s2, {}, ws);
    const double seconds = timer.seconds();
    if (dense.value != reference) {
      std::cerr << "VALUE MISMATCH dense baseline: " << dense.value << " != " << reference
                << "\n";
      ++failures;
    }
    table.add_row({"dense-srna2", "0", std::to_string(seconds),
                   std::to_string(dense.value), std::to_string(ws.memo_bytes()), "-", "-",
                   "-"});
    obs::Json row = obs::Json::object();
    row.set("instance", obs::Json(std::string("dense-srna2")));
    row.set("algorithm", obs::Json(std::string("srna2")));
    row.set("budget_bytes", obs::Json(static_cast<std::uint64_t>(0)));
    row.set("seconds", obs::Json(seconds));
    row.set("value", obs::Json(static_cast<std::int64_t>(dense.value)));
    row.set("memo_bytes", obs::Json(static_cast<std::uint64_t>(ws.memo_bytes())));
    row.set("cells", obs::Json(dense.stats.cells_tabulated));
    bench_report.add_row(std::move(row));
  }

  table.print(std::cout);
  if (!bench_report.write(cli.str("report"))) return 1;
  if (failures != 0) {
    std::cerr << failures << " check(s) failed\n";
    return 1;
  }
  std::cout << "all budgeted solves score-identical; resident peaks within budget\n";
  return 0;
}
