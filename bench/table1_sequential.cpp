// Table I: execution times (seconds) of SRNA1 and SRNA2 for contrived
// worst-case data (maximally nested arcs), sequence lengths 100..1600,
// self-comparison.
//
// Paper values (PGI C, 2.8 GHz Opteron):
//   length : 100    200    400    800     1600
//   SRNA1  : 0.015  0.238  4.008  76.371  1434.856
//   SRNA2  : 0.008  0.128  2.323  37.799  660.696
//
// The reproduction targets the *shape*: SRNA2 < SRNA1 at every length, and
// ~16x growth per doubling (the Θ(n^4) term). Absolute times differ with the
// host CPU. `--full` adds the 1600 row (~20 minutes); `--hash-memo` also
// reports SRNA1 with the associative memo the paper's KEY_NOT_FOUND wording
// suggests.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "engine/engine.hpp"
#include "rna/generators.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

namespace {

const std::map<std::int64_t, std::pair<double, double>> kPaper = {
    {100, {0.015, 0.008}},  {200, {0.238, 0.128}},    {400, {4.008, 2.323}},
    {800, {76.371, 37.799}}, {1600, {1434.856, 660.696}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace srna;

  CliParser cli("table1_sequential", "Table I: SRNA1 vs SRNA2 on contrived worst-case data");
  cli.add_option("lengths", "comma-separated sequence lengths (paper: 100..1600; the 1600 row"
                            " costs ~25 min — trim the list for a quick pass)",
                 "100,200,400,800,1600");
  cli.add_flag("full", "deprecated: 1600 is now in the default length list");
  cli.add_flag("hash-memo", "also run SRNA1 with the hash-map memo");
  cli.add_option("reps", "repetitions per measurement (min is reported)", "1");
  cli.add_flag("csv", "emit CSV instead of the aligned table");
  cli.add_option("report", "run-report path (default BENCH_table1_sequential.json; none = skip)",
                 "");
  if (!cli.parse(argc, argv)) return 0;

  auto lengths = cli.int_list("lengths");
  if (cli.flag("full") && std::find(lengths.begin(), lengths.end(), 1600) == lengths.end())
    lengths.push_back(1600);
  const int reps = static_cast<int>(cli.integer("reps"));
  const bool hash_memo = cli.flag("hash-memo");

  bench::print_header("Table I — SRNA1 vs SRNA2, contrived worst-case data",
                      "paper Table I (Section IV-C)");

  bench::BenchReport bench_report("table1_sequential");
  bench_report.report().set_command_line(argc, argv);
  {
    obs::Json params = obs::Json::object();
    params.set("reps", obs::Json(static_cast<std::int64_t>(reps)));
    params.set("hash_memo", obs::Json(hash_memo));
    bench_report.report().set("parameters", std::move(params));
  }

  std::vector<std::string> header{"length",      "arcs",         "SRNA1[s]",
                                  "SRNA2[s]",    "ratio1/2",     "paper SRNA1[s]",
                                  "paper SRNA2[s]", "paper ratio"};
  if (hash_memo) header.insert(header.begin() + 4, "SRNA1-hash[s]");
  TablePrinter table(header);

  for (const std::int64_t length : lengths) {
    const auto s = worst_case_structure(static_cast<Pos>(length));

    Score v1 = 0;
    Score v2 = 0;
    const double t1 = bench::time_best_of(reps, [&] { v1 = engine_solve("srna1", s, s).value; });
    const double t2 = bench::time_best_of(reps, [&] { v2 = engine_solve("srna2", s, s).value; });
    if (v1 != v2 || v1 != static_cast<Score>(s.arc_count())) {
      std::cerr << "VALUE MISMATCH at length " << length << "\n";
      return 1;
    }

    double th = 0.0;
    if (hash_memo) {
      SolverConfig opt;
      opt.memo_kind = MemoKind::kHashMap;
      th = bench::time_best_of(reps, [&] { (void)engine_solve("srna1", s, s, opt); });
    }

    const auto paper = kPaper.count(length) ? kPaper.at(length) : std::pair<double, double>{0, 0};
    std::vector<std::string> row{
        std::to_string(length),
        std::to_string(s.arc_count()),
        fixed(t1, 3),
        fixed(t2, 3),
        t2 > 0 ? fixed(t1 / t2, 2) : "-",
        paper.first > 0 ? fixed(paper.first, 3) : "-",
        paper.second > 0 ? fixed(paper.second, 3) : "-",
        paper.second > 0 ? fixed(paper.first / paper.second, 2) : "-",
    };
    if (hash_memo) row.insert(row.begin() + 4, fixed(th, 3));
    table.add_row(row);

    obs::Json jrow = obs::Json::object();
    jrow.set("length", obs::Json(length));
    jrow.set("arcs", obs::Json(static_cast<std::int64_t>(s.arc_count())));
    jrow.set("srna1_seconds", obs::Json(t1));
    jrow.set("srna2_seconds", obs::Json(t2));
    if (hash_memo) jrow.set("srna1_hash_seconds", obs::Json(th));
    if (paper.first > 0) {
      jrow.set("paper_srna1_seconds", obs::Json(paper.first));
      jrow.set("paper_srna2_seconds", obs::Json(paper.second));
    }
    bench_report.add_row(std::move(jrow));
  }

  if (cli.flag("csv"))
    table.print_csv(std::cout);
  else
    table.print(std::cout);
  std::cout << "\nshape check: SRNA2 should beat SRNA1 at every length; each\n"
               "doubling of the length should cost ~16x (the Theta(n^4) term).\n";
  return bench_report.write(cli.str("report")) ? 0 : 1;
}
