// Figure 8: PRNA speedup on contrived worst-case data, 1..64 processors,
// for sequences of length 1600 (800 nested arcs) and 3200 (1600 nested
// arcs).
//
// Paper results (MPI on the "Fundy" cluster): up to 22x at 64 processors
// for length 1600, up to 32x for length 3200, with the larger problem
// scaling further.
//
// Substitution (DESIGN.md §5): this machine has one core and no MPI, so the
// curves are produced by the schedule simulator — PRNA's exact stage-one
// schedule (same column weights, same greedy balancer) with compute time
// calibrated from a real SRNA2 run on this machine and an alpha-beta model
// for the per-row Allreduce. A real multi-threaded PRNA run at the host's
// core count is also reported as a functional cross-check.
#include <iostream>

#include "bench_util.hpp"
#include "engine/engine.hpp"
#include "obs/cpath/critical_path.hpp"
#include "parallel/cluster_sim.hpp"
#include "rna/generators.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace srna;

  CliParser cli("figure8_speedup", "Figure 8: PRNA speedup curves (simulated cluster)");
  cli.add_option("lengths", "worst-case sequence lengths", "1600,3200");
  cli.add_option("procs", "processor counts", "1,2,4,8,16,32,64");
  cli.add_option("alpha", "per-stage collective latency [s]", "0.002");
  cli.add_option("beta", "per-byte transfer time [s]", "2e-8");
  cli.add_option("sync-overhead", "fixed per-row sync overhead [s]", "5e-4");
  cli.add_option("cell-seconds", "cell time [s]; 0 = calibrate on this machine", "0");
  cli.add_option("balance", "lpt | block | cyclic", "lpt");
  cli.add_option("real-threads", "threads for the real PRNA cross-check (0 = skip)", "2");
  cli.add_option("schedule-threads",
                 "thread counts for the real schedule comparison (static vs dynamic vs "
                 "stealing; skipped when --real-threads=0)", "1,2,4");
  cli.add_flag("skip-rrna", "omit the Table II rRNA pair from the schedule comparison "
               "(keeps only the L=400 worst case)");
  cli.add_flag("csv", "emit CSV instead of the aligned table");
  cli.add_option("report", "run-report path (default BENCH_figure8_speedup.json; none = skip)",
                 "");
  if (!cli.parse(argc, argv)) return 0;

  MachineModel model;
  model.alpha_seconds = cli.real("alpha");
  model.beta_seconds_per_byte = cli.real("beta");
  model.sync_overhead_seconds = cli.real("sync-overhead");
  model.cell_seconds = cli.real("cell-seconds");
  if (model.cell_seconds <= 0.0) {
    model.cell_seconds = calibrate_cell_seconds();
    std::cout << "calibrated cell time on this machine: " << model.cell_seconds << " s/cell\n";
  }

  BalanceStrategy strategy = BalanceStrategy::kGreedyLpt;
  if (cli.str("balance") == "block") strategy = BalanceStrategy::kBlock;
  if (cli.str("balance") == "cyclic") strategy = BalanceStrategy::kCyclic;

  bench::print_header("Figure 8 — PRNA speedup, contrived worst-case data (simulated cluster)",
                      "paper Figure 8 (Section VI); paper peaks: 22x @64p/L1600, 32x @64p/L3200");

  bench::BenchReport bench_report("figure8_speedup");
  bench_report.report().set_command_line(argc, argv);
  {
    obs::Json params = obs::Json::object();
    params.set("alpha_seconds", obs::Json(model.alpha_seconds));
    params.set("beta_seconds_per_byte", obs::Json(model.beta_seconds_per_byte));
    params.set("sync_overhead_seconds", obs::Json(model.sync_overhead_seconds));
    params.set("cell_seconds", obs::Json(model.cell_seconds));
    params.set("balance", obs::Json(cli.str("balance")));
    bench_report.report().set("parameters", std::move(params));
  }

  std::vector<std::size_t> procs;
  for (const auto p : cli.int_list("procs")) procs.push_back(static_cast<std::size_t>(p));

  TablePrinter table({"length", "arcs", "procs", "sim T(p)[s]", "speedup", "efficiency"});
  for (const auto length : cli.int_list("lengths")) {
    const auto s = worst_case_structure(static_cast<Pos>(length));
    SimOptions opt;
    opt.balance = strategy;
    const auto curve = simulate_speedup_curve(s, s, model, procs, opt);
    for (const auto& point : curve) {
      table.add_row({std::to_string(length), std::to_string(s.arc_count()),
                     std::to_string(point.processors), fixed(point.seconds, 2),
                     fixed(point.speedup, 2), fixed(point.efficiency, 3)});
      obs::Json jrow = obs::Json::object();
      jrow.set("length", obs::Json(length));
      jrow.set("arcs", obs::Json(static_cast<std::int64_t>(s.arc_count())));
      jrow.set("processors", obs::Json(static_cast<std::int64_t>(point.processors)));
      jrow.set("sim_seconds", obs::Json(point.seconds));
      jrow.set("speedup", obs::Json(point.speedup));
      jrow.set("efficiency", obs::Json(point.efficiency));
      bench_report.add_row(std::move(jrow));
    }
  }
  if (cli.flag("csv"))
    table.print_csv(std::cout);
  else
    table.print(std::cout);

  std::cout << "\nshape check: speedup grows with p and saturates; the larger problem\n"
               "reaches higher speedup at 64 processors (paper: 32x vs 22x).\n";

  // Real shared-memory cross-check: small instance, real threads, value and
  // schedule identical to the sequential algorithm.
  const int threads = static_cast<int>(cli.integer("real-threads"));
  if (threads > 0) {
    const auto s = worst_case_structure(400);
    SolverConfig config;
    config.threads = threads;
    config.balance = strategy;
    WallTimer timer;
    auto r = engine_solve("prna", s, s, config);
    std::cout << "\nreal PRNA cross-check (L=400, " << threads << " threads, this host): value "
              << r.value << " (expected 200), wall " << fixed(timer.seconds(), 3)
              << " s, stage-one cells per thread:";
    if (const obs::Json* cells = r.detail.find("cells_per_thread"); cells != nullptr)
      for (const obs::Json& c : cells->items()) std::cout << ' ' << c.as_uint();
    std::cout << "\n";
    obs::Json check = std::move(r.detail);
    check.set("wall_seconds", obs::Json(timer.seconds()));
    bench_report.report().set("real_prna_cross_check", std::move(check));
  }

  // Real schedule comparison: the two barrier schedules against the
  // barrier-free dependency-driven one (kStealing), with the synchronization
  // cost each pays — barrier_wait for the level schedules, steal_idle for
  // the stealing one. Rows land in the run report as schedule_rows so the
  // benchmark trajectory captures the scheduling win, not just totals.
  if (threads > 0) {
    struct ScheduleCase {
      const char* name;
      PrnaSchedule schedule;
    };
    const ScheduleCase schedules[] = {{"static", PrnaSchedule::kStaticColumns},
                                      {"dynamic", PrnaSchedule::kDynamic},
                                      {"stealing", PrnaSchedule::kStealing}};
    std::vector<std::pair<std::string, SecondaryStructure>> instances;
    instances.emplace_back("worst_case_L400", worst_case_structure(400));
    if (!cli.flag("skip-rrna"))
      instances.emplace_back("fungus_rrna_4216x721", rrna_like_structure(4216, 721, 2012));

    bench::print_header(
        "Schedule comparison — barrier (static/dynamic) vs dependency-driven (stealing)",
        "stage-one synchronization cost on this host; Table II pair + L400 worst case");
    TablePrinter sched_table({"instance", "schedule", "threads", "wall[s]", "speedup",
                              "ceiling", "barrier_wait[s]", "steal_idle[s]", "steals"});
    obs::Json schedule_rows = obs::Json::array();
    obs::Json analyses = obs::Json::array();
    for (const auto& [iname, s] : instances) {
      double base_wall = 0.0;
      Score expected = 0;
      bool have_expected = false;
      // Brent-bound ceiling per thread count from the slice DAG, costed with
      // the calibrated cell time (measured rows print next to it, so the
      // table separates schedule overhead from dependency structure).
      std::vector<int> thread_counts;
      for (const auto th : cli.int_list("schedule-threads"))
        thread_counts.push_back(static_cast<int>(th));
      const obs::ParallelAnalysis analysis =
          obs::analyze_parallel(s, s, model.cell_seconds, 0.0, thread_counts);
      {
        obs::Json entry = analysis.to_json();
        entry.set("instance", obs::Json(iname));
        analyses.push(std::move(entry));
      }
      auto ceiling_for = [&](std::int64_t th) {
        for (const auto& row : analysis.rows)
          if (row.threads == th) return row.ceiling_speedup;
        return 0.0;
      };
      for (const auto& sc : schedules) {
        for (const auto th : cli.int_list("schedule-threads")) {
          PrnaOptions opt;
          opt.num_threads = static_cast<int>(th);
          opt.schedule = sc.schedule;
          WallTimer timer;
          const auto r = prna(s, s, opt);
          const double wall = timer.seconds();
          if (!have_expected) {
            expected = r.value;
            have_expected = true;
          } else if (r.value != expected) {
            std::cerr << "schedule mismatch on " << iname << ": " << sc.name << "/" << th
                      << " threads returned " << r.value << ", expected " << expected << "\n";
            return 1;
          }
          if (sc.schedule == PrnaSchedule::kStaticColumns && th == cli.int_list("schedule-threads").front())
            base_wall = wall;
          double barrier_wait = 0.0, steal_idle = 0.0, lane_wall = 0.0;
          std::uint64_t steals = 0, ready_pushes = 0;
          for (const auto& lane : r.timeline) {
            barrier_wait += lane.barrier_wait_seconds;
            steal_idle += lane.steal_idle_seconds;
            lane_wall += lane.wall_seconds;
            steals += lane.steals;
            ready_pushes += lane.ready_pushes;
          }
          // The absolute waits as a fraction of all lanes' stage-one wall
          // time: comparable across thread counts and instance sizes.
          const double barrier_wait_fraction = lane_wall > 0 ? barrier_wait / lane_wall : 0;
          const double steal_idle_fraction = lane_wall > 0 ? steal_idle / lane_wall : 0;
          sched_table.add_row({iname, sc.name, std::to_string(th), fixed(wall, 3),
                               fixed(base_wall / wall, 2), fixed(ceiling_for(th), 2),
                               fixed(barrier_wait, 3), fixed(steal_idle, 3),
                               std::to_string(steals)});
          obs::Json jrow = obs::Json::object();
          jrow.set("instance", obs::Json(iname));
          jrow.set("schedule", obs::Json(sc.name));
          jrow.set("threads", obs::Json(th));
          jrow.set("wall_seconds", obs::Json(wall));
          jrow.set("speedup", obs::Json(base_wall / wall));
          jrow.set("ceiling_speedup", obs::Json(ceiling_for(th)));
          jrow.set("value", obs::Json(static_cast<std::int64_t>(r.value)));
          jrow.set("barrier_wait_seconds", obs::Json(barrier_wait));
          jrow.set("barrier_wait_fraction", obs::Json(barrier_wait_fraction));
          jrow.set("steal_idle_seconds", obs::Json(steal_idle));
          jrow.set("steal_idle_fraction", obs::Json(steal_idle_fraction));
          jrow.set("steals", obs::Json(steals));
          jrow.set("ready_pushes", obs::Json(ready_pushes));
          schedule_rows.push(std::move(jrow));
        }
      }
    }
    sched_table.print(std::cout);
    std::cout << "\nbarrier schedules pay barrier_wait; the stealing schedule replaces it\n"
                 "with steal_idle (time with no runnable slice anywhere).\n";
    bench_report.report().set("schedule_rows", std::move(schedule_rows));
    bench_report.report().set("parallel_analysis", std::move(analyses));
  }
  return bench_report.write(cli.str("report")) ? 0 : 1;
}
