// Ablation: static column ownership (the paper's design) vs dynamic
// per-slice scheduling for PRNA's stage one.
//
// The paper chooses a *static* distribution computed once in preprocessing,
// justified by the product form of the work (column proportions identical
// in every row). The conventional alternative — idle workers pulling slices
// from a queue — balances at least as well per row but pays a dispatch
// cost per task and needs a centralized queue (awkward on distributed
// memory). The simulator quantifies the trade-off; a real shared-memory
// cross-check confirms both produce identical values.
#include <iostream>

#include "bench_util.hpp"
#include "engine/engine.hpp"
#include "parallel/cluster_sim.hpp"
#include "rna/generators.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace srna;

  CliParser cli("ablation_dynamic_schedule", "static columns vs dynamic slice scheduling");
  cli.add_option("length", "worst-case sequence length", "1600");
  cli.add_option("procs", "processor counts", "4,16,64");
  cli.add_option("dispatch-us", "dynamic dispatch overhead per slice [us]", "2");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_header("Ablation — stage-one scheduling (simulated cluster)",
                      "Section V-A: static load balancing vs dynamic task pulling");

  const auto s = worst_case_structure(static_cast<Pos>(cli.integer("length")));
  MachineModel model;
  model.dispatch_overhead_seconds = cli.real("dispatch-us") * 1e-6;

  TablePrinter table({"procs", "schedule", "stage1 compute[s]", "total[s]", "speedup"});
  for (const auto p : cli.int_list("procs")) {
    for (const auto schedule :
         {ScheduleModel::kStaticColumns, ScheduleModel::kDynamicPerSlice}) {
      SimOptions opt;
      opt.processors = static_cast<std::size_t>(p);
      opt.schedule = schedule;
      const auto sim = simulate_prna(s, s, model, opt);
      const auto curve = simulate_speedup_curve(s, s, model, {opt.processors}, opt);
      table.add_row({std::to_string(p),
                     schedule == ScheduleModel::kStaticColumns ? "static-lpt" : "dynamic",
                     fixed(sim.stage1_compute_seconds, 2), fixed(sim.total_seconds(), 2),
                     fixed(curve[0].speedup, 2)});
    }
  }
  table.print(std::cout);

  // Real shared-memory cross-check: identical answers either way.
  const auto small = worst_case_structure(200);
  SolverConfig stat;
  stat.threads = 3;
  SolverConfig dyn = stat;
  dyn.schedule = PrnaSchedule::kDynamic;
  const auto vs = engine_solve("prna", small, small, stat).value;
  const auto vd = engine_solve("prna", small, small, dyn).value;
  std::cout << "\nreal PRNA cross-check (L=200, 3 threads): static=" << vs
            << " dynamic=" << vd << (vs == vd ? "  [agree]\n" : "  [BUG]\n");
  std::cout << "\nshape check: on the product-form workload the static schedule\n"
               "matches dynamic balance without the per-slice dispatch cost —\n"
               "the paper's preprocessing-time load balance is sufficient.\n";
  return vs == vd ? 0 : 1;
}
