// Table III: percentage breakdown of SRNA2's execution time across its
// three phases (preprocessing, stage one, stage two) on contrived
// worst-case data.
//
// Paper values (percent of total):
//   length        : 100      200      400      800
//   preprocessing : 0.1814   0.0488   0.0052   0.0002
//   stage one     : 99.6131  99.9055  99.9844  99.9963
//   stage two     : 0.1693   0.0434   0.0102   0.0034
//
// The point of the table: stage one utterly dominates, so it is the only
// phase worth parallelizing (Section V).
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "engine/engine.hpp"
#include "rna/generators.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

namespace {

struct PaperRow {
  double pre, s1, s2;
};
const std::map<std::int64_t, PaperRow> kPaper = {
    {100, {0.1814, 99.6131, 0.1693}},
    {200, {0.0488, 99.9055, 0.0434}},
    {400, {0.0052, 99.9844, 0.0102}},
    {800, {0.0002, 99.9963, 0.0034}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace srna;

  CliParser cli("table3_stage_breakdown", "Table III: SRNA2 phase breakdown on worst-case data");
  cli.add_option("lengths", "comma-separated sequence lengths", "100,200,400,800");
  cli.add_flag("csv", "emit CSV instead of the aligned table");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_header("Table III — SRNA2 execution breakdown (percent), worst-case data",
                      "paper Table III (Section IV-C)");

  TablePrinter table({"length", "pre[%]", "stage1[%]", "stage2[%]", "total[s]",
                      "paper pre[%]", "paper s1[%]", "paper s2[%]"});

  for (const std::int64_t length : cli.int_list("lengths")) {
    const auto s = worst_case_structure(static_cast<Pos>(length));
    const auto r = engine_solve("srna2", s, s);
    const double total = r.stats.total_seconds();
    const auto pct = [&](double x) { return total > 0 ? 100.0 * x / total : 0.0; };

    const bool has_paper = kPaper.count(length) != 0;
    const PaperRow paper = has_paper ? kPaper.at(length) : PaperRow{0, 0, 0};
    table.add_row({std::to_string(length), fixed(pct(r.stats.preprocess_seconds), 4),
                   fixed(pct(r.stats.stage1_seconds), 4), fixed(pct(r.stats.stage2_seconds), 4),
                   fixed(total, 3), has_paper ? fixed(paper.pre, 4) : "-",
                   has_paper ? fixed(paper.s1, 4) : "-", has_paper ? fixed(paper.s2, 4) : "-"});
  }

  if (cli.flag("csv"))
    table.print_csv(std::cout);
  else
    table.print(std::cout);
  std::cout << "\nshape check: stage one should exceed 99% from length 200 on —\n"
               "the basis for parallelizing only stage one in PRNA.\n";
  return 0;
}
