// Google-benchmark microbenchmarks for the hot kernels and substrates:
// slice tabulation (dense/compressed), the full solvers on small inputs,
// preprocessing (ArcIndex), generators, Nussinov folding, and load
// balancing.
//
// `--smoke` switches to the dense-kernel perf gate instead: time the
// event-run kernel and the per-cell reference on the Table I worst-case
// pair, verify they produce identical grids and counters, and fail when
// ns/cell regresses more than --max-regression over the recorded baseline
// (bench/baselines/micro_kernels_smoke.json, refreshed with
// --update-baseline). CTest runs this as bench_smoke_micro_kernels.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>

#include "bench_util.hpp"
#include "core/arc_index.hpp"
#include "core/mcos.hpp"
#include "core/tabulate_slice.hpp"
#include "engine/engine.hpp"
#include "parallel/load_balance.hpp"
#include "rna/generators.hpp"
#include "rna/nussinov.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"

namespace srna {
namespace {

Score zero_d2(Pos, Pos, Pos, Pos) { return 0; }

void BM_DenseSliceKernel(benchmark::State& state) {
  const auto length = static_cast<Pos>(state.range(0));
  const auto s = worst_case_structure(length);
  ColumnEvents events;
  events.build(s);
  Matrix<Score> scratch;
  const SliceBounds bounds{0, length - 1, 0, length - 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tabulate_slice_dense(s, s, events, bounds, scratch, zero_d2));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(length) * length);
}
BENCHMARK(BM_DenseSliceKernel)->Arg(64)->Arg(256)->Arg(1024);

// The per-cell loop the event-run kernel replaced, kept as the yardstick:
// BM_DenseSliceKernel / BM_DenseSliceKernelReference is the kernel speedup.
void BM_DenseSliceKernelReference(benchmark::State& state) {
  const auto length = static_cast<Pos>(state.range(0));
  const auto s = worst_case_structure(length);
  Matrix<Score> scratch;
  const SliceBounds bounds{0, length - 1, 0, length - 1};
  for (auto _ : state) {
    fill_slice_dense_reference(s, s, bounds, scratch, zero_d2);
    benchmark::DoNotOptimize(scratch.row_data(0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(length) * length);
}
BENCHMARK(BM_DenseSliceKernelReference)->Arg(64)->Arg(256)->Arg(1024);

void BM_CompressedSliceKernel(benchmark::State& state) {
  const auto length = static_cast<Pos>(state.range(0));
  const auto s = worst_case_structure(length);
  const ArcIndex idx(s);
  EventScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tabulate_slice_compressed(idx.all(), idx.all(), scratch, zero_d2));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(idx.size()) *
                          static_cast<std::int64_t>(idx.size()));
}
BENCHMARK(BM_CompressedSliceKernel)->Arg(64)->Arg(256)->Arg(1024);

void BM_Srna1WorstCase(benchmark::State& state) {
  const auto s = worst_case_structure(static_cast<Pos>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(engine_solve("srna1", s, s).value);
}
BENCHMARK(BM_Srna1WorstCase)->Arg(100)->Arg(200);

void BM_Srna2WorstCase(benchmark::State& state) {
  const auto s = worst_case_structure(static_cast<Pos>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(engine_solve("srna2", s, s).value);
}
BENCHMARK(BM_Srna2WorstCase)->Arg(100)->Arg(200);

void BM_Srna2RrnaLike(benchmark::State& state) {
  const auto length = static_cast<Pos>(state.range(0));
  const auto s = rrna_like_structure(length, static_cast<std::size_t>(length / 6), 1);
  for (auto _ : state) benchmark::DoNotOptimize(engine_solve("srna2", s, s).value);
}
BENCHMARK(BM_Srna2RrnaLike)->Arg(500)->Arg(1000);

void BM_ReferenceTopDown(benchmark::State& state) {
  const auto s = worst_case_structure(static_cast<Pos>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(mcos_reference_topdown(s, s).value);
}
BENCHMARK(BM_ReferenceTopDown)->Arg(24)->Arg(48);

void BM_ArcIndexBuild(benchmark::State& state) {
  const auto s = rrna_like_structure(4216, 721, 1);
  for (auto _ : state) {
    ArcIndex idx(s);
    benchmark::DoNotOptimize(idx.size());
  }
}
BENCHMARK(BM_ArcIndexBuild);

void BM_GeneratorRandomStructure(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_structure(2000, 0.4, seed++).arc_count());
  }
}
BENCHMARK(BM_GeneratorRandomStructure);

void BM_GeneratorRrnaLike(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rrna_like_structure(4216, 721, seed++).arc_count());
  }
}
BENCHMARK(BM_GeneratorRrnaLike);

void BM_NussinovFold(benchmark::State& state) {
  const auto seq = random_sequence(static_cast<Pos>(state.range(0)), 5);
  for (auto _ : state) benchmark::DoNotOptimize(nussinov_fold(seq).max_pairs);
}
BENCHMARK(BM_NussinovFold)->Arg(100)->Arg(300);

void BM_LoadBalanceLpt(benchmark::State& state) {
  Xoshiro256 rng(1);
  std::vector<std::uint64_t> weights(static_cast<std::size_t>(state.range(0)));
  for (auto& w : weights) w = rng.uniform(10'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(balance_load(weights, 64).makespan());
  }
}
BENCHMARK(BM_LoadBalanceLpt)->Arg(1000)->Arg(100000);

// --smoke: the perf-regression gate. Exit codes: 0 pass, 1 regression or
// I/O failure, 2 kernel mismatch (correctness, not perf).
int run_smoke(int argc, char** argv) {
  CliParser cli("micro_kernels", "dense-kernel perf gate (--smoke mode)");
  cli.add_flag("smoke", "run the perf gate instead of the google-benchmark suite");
  cli.add_option("length", "worst-case structure length (Table I pair)", "400");
  cli.add_option("reps", "timing repetitions (best-of)", "9");
  cli.add_option("baseline", "recorded baseline JSON to gate against (empty = no gate)", "");
  cli.add_option("max-regression", "fail when ns/cell exceeds baseline by this factor", "1.25");
  cli.add_flag("update-baseline", "rewrite --baseline with this run's numbers");
  cli.add_option("output", "measured-numbers JSON (empty = BENCH_micro_kernels_smoke.json; "
                 "none = skip)", "");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<Pos>(cli.integer("length"));
  const auto s = worst_case_structure(n);
  const SliceBounds bounds{0, n - 1, 0, n - 1};
  ColumnEvents events;
  events.build(s);
  Matrix<Score> grid, ref_grid;

  // Correctness pin before timing anything: identical grids, identical
  // accounting. A fast-but-wrong kernel must not pass the perf gate.
  McosStats ev_stats, ref_stats;
  fill_slice_dense(s, s, events, bounds, grid, zero_d2, &ev_stats);
  fill_slice_dense_reference(s, s, bounds, ref_grid, zero_d2, &ref_stats);
  for (std::size_t r = 0; r < ref_grid.rows(); ++r)
    for (std::size_t c = 0; c < ref_grid.cols(); ++c)
      if (grid(r, c) != ref_grid(r, c)) {
        std::cerr << "kernel mismatch at (" << r << ", " << c << "): event-run "
                  << grid(r, c) << " vs reference " << ref_grid(r, c) << "\n";
        return 2;
      }
  if (ev_stats.cells_tabulated != ref_stats.cells_tabulated ||
      ev_stats.arc_match_events != ref_stats.arc_match_events) {
    std::cerr << "kernel accounting mismatch: cells " << ev_stats.cells_tabulated << " vs "
              << ref_stats.cells_tabulated << ", arc events " << ev_stats.arc_match_events
              << " vs " << ref_stats.arc_match_events << "\n";
    return 2;
  }

  const auto reps = static_cast<int>(cli.integer("reps"));
  const double cells = static_cast<double>(n) * static_cast<double>(n);
  const double event_run_s = bench::time_best_of(
      reps, [&] { fill_slice_dense(s, s, events, bounds, grid, zero_d2); });
  const double reference_s = bench::time_best_of(
      reps, [&] { fill_slice_dense_reference(s, s, bounds, ref_grid, zero_d2); });
  const double event_ns = event_run_s * 1e9 / cells;
  const double reference_ns = reference_s * 1e9 / cells;
  std::cout << "dense slice kernel, worst-case L=" << n << " (" << cells << " cells, best of "
            << reps << ")\n  event-run: " << event_ns << " ns/cell\n  reference: "
            << reference_ns << " ns/cell\n  speedup:   " << reference_ns / event_ns << "x\n";

  int exit_code = 0;
  const std::string baseline_path = cli.str("baseline");
  if (!baseline_path.empty() && !cli.flag("update-baseline")) {
    std::ifstream in(baseline_path);
    std::stringstream text;
    text << in.rdbuf();
    const auto baseline = in ? obs::Json::parse(text.str()) : std::nullopt;
    const obs::Json* recorded = baseline ? baseline->find("event_run_ns_per_cell") : nullptr;
    if (recorded == nullptr) {
      std::cerr << "cannot read baseline " << baseline_path << "\n";
      return 1;
    }
    const double budget = recorded->as_double() * cli.real("max-regression");
    std::cout << "baseline: " << recorded->as_double() << " ns/cell (gate: " << budget
              << ")\n";
    if (event_ns > budget) {
      std::cerr << "PERF REGRESSION: event-run kernel " << event_ns
                << " ns/cell exceeds the gate " << budget << " (baseline "
                << recorded->as_double() << " * " << cli.real("max-regression") << ")\n";
      exit_code = 1;
    }
  }

  obs::Json doc = obs::Json::object();
  doc.set("kernel", obs::Json("fill_slice_dense"));
  doc.set("structure", obs::Json("worst_case"));
  doc.set("length", obs::Json(static_cast<std::int64_t>(n)));
  doc.set("reps", obs::Json(static_cast<std::int64_t>(reps)));
  doc.set("event_run_ns_per_cell", obs::Json(event_ns));
  doc.set("reference_ns_per_cell", obs::Json(reference_ns));
  doc.set("speedup", obs::Json(reference_ns / event_ns));
  if (!baseline_path.empty() && cli.flag("update-baseline")) {
    std::ofstream out(baseline_path);
    out << doc.dump(2) << "\n";
    if (!out) {
      std::cerr << "cannot write baseline " << baseline_path << "\n";
      return 1;
    }
    std::cout << "baseline updated: " << baseline_path << "\n";
  }
  if (cli.str("output") != "none") {
    const std::string target =
        cli.str("output").empty() ? "BENCH_micro_kernels_smoke.json" : cli.str("output");
    std::ofstream out(target);
    out << doc.dump(2) << "\n";
    if (out) std::cout << "wrote " << target << "\n";
  }
  return exit_code;
}

}  // namespace
}  // namespace srna

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string_view(argv[i]) == "--smoke") return srna::run_smoke(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
