// Google-benchmark microbenchmarks for the hot kernels and substrates:
// slice tabulation (dense/compressed), the full solvers on small inputs,
// preprocessing (ArcIndex), generators, Nussinov folding, and load
// balancing.
#include <benchmark/benchmark.h>

#include "core/arc_index.hpp"
#include "core/mcos.hpp"
#include "core/tabulate_slice.hpp"
#include "engine/engine.hpp"
#include "parallel/load_balance.hpp"
#include "rna/generators.hpp"
#include "rna/nussinov.hpp"
#include "util/prng.hpp"

namespace srna {
namespace {

Score zero_d2(Pos, Pos, Pos, Pos) { return 0; }

void BM_DenseSliceKernel(benchmark::State& state) {
  const auto length = static_cast<Pos>(state.range(0));
  const auto s = worst_case_structure(length);
  Matrix<Score> scratch;
  const SliceBounds bounds{0, length - 1, 0, length - 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tabulate_slice_dense(s, s, bounds, scratch, zero_d2));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(length) * length);
}
BENCHMARK(BM_DenseSliceKernel)->Arg(64)->Arg(256)->Arg(1024);

void BM_CompressedSliceKernel(benchmark::State& state) {
  const auto length = static_cast<Pos>(state.range(0));
  const auto s = worst_case_structure(length);
  const ArcIndex idx(s);
  EventScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tabulate_slice_compressed(idx.all(), idx.all(), scratch, zero_d2));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(idx.size()) *
                          static_cast<std::int64_t>(idx.size()));
}
BENCHMARK(BM_CompressedSliceKernel)->Arg(64)->Arg(256)->Arg(1024);

void BM_Srna1WorstCase(benchmark::State& state) {
  const auto s = worst_case_structure(static_cast<Pos>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(engine_solve("srna1", s, s).value);
}
BENCHMARK(BM_Srna1WorstCase)->Arg(100)->Arg(200);

void BM_Srna2WorstCase(benchmark::State& state) {
  const auto s = worst_case_structure(static_cast<Pos>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(engine_solve("srna2", s, s).value);
}
BENCHMARK(BM_Srna2WorstCase)->Arg(100)->Arg(200);

void BM_Srna2RrnaLike(benchmark::State& state) {
  const auto length = static_cast<Pos>(state.range(0));
  const auto s = rrna_like_structure(length, static_cast<std::size_t>(length / 6), 1);
  for (auto _ : state) benchmark::DoNotOptimize(engine_solve("srna2", s, s).value);
}
BENCHMARK(BM_Srna2RrnaLike)->Arg(500)->Arg(1000);

void BM_ReferenceTopDown(benchmark::State& state) {
  const auto s = worst_case_structure(static_cast<Pos>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(mcos_reference_topdown(s, s).value);
}
BENCHMARK(BM_ReferenceTopDown)->Arg(24)->Arg(48);

void BM_ArcIndexBuild(benchmark::State& state) {
  const auto s = rrna_like_structure(4216, 721, 1);
  for (auto _ : state) {
    ArcIndex idx(s);
    benchmark::DoNotOptimize(idx.size());
  }
}
BENCHMARK(BM_ArcIndexBuild);

void BM_GeneratorRandomStructure(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_structure(2000, 0.4, seed++).arc_count());
  }
}
BENCHMARK(BM_GeneratorRandomStructure);

void BM_GeneratorRrnaLike(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rrna_like_structure(4216, 721, seed++).arc_count());
  }
}
BENCHMARK(BM_GeneratorRrnaLike);

void BM_NussinovFold(benchmark::State& state) {
  const auto seq = random_sequence(static_cast<Pos>(state.range(0)), 5);
  for (auto _ : state) benchmark::DoNotOptimize(nussinov_fold(seq).max_pairs);
}
BENCHMARK(BM_NussinovFold)->Arg(100)->Arg(300);

void BM_LoadBalanceLpt(benchmark::State& state) {
  Xoshiro256 rng(1);
  std::vector<std::uint64_t> weights(static_cast<std::size_t>(state.range(0)));
  for (auto& w : weights) w = rng.uniform(10'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(balance_load(weights, 64).makespan());
  }
}
BENCHMARK(BM_LoadBalanceLpt)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace srna

BENCHMARK_MAIN();
