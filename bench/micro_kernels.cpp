// Google-benchmark microbenchmarks for the hot kernels and substrates:
// slice tabulation (dense/compressed), the full solvers on small inputs,
// preprocessing (ArcIndex), generators, Nussinov folding, and load
// balancing.
//
// `--smoke` switches to the dense-kernel perf gate instead: time the
// event-run kernel and the per-cell reference on the Table I worst-case
// pair, verify they produce identical grids and counters, and fail when
// ns/cell regresses more than --max-regression over the recorded baseline
// (bench/baselines/micro_kernels_smoke.json, refreshed with
// --update-baseline). CTest runs this as bench_smoke_micro_kernels.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>

#include "bench_util.hpp"
#include "core/arc_index.hpp"
#include "core/mcos.hpp"
#include "core/tabulate_slice.hpp"
#include "engine/engine.hpp"
#include "parallel/load_balance.hpp"
#include "rna/generators.hpp"
#include "rna/nussinov.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"

namespace srna {
namespace {

// A closure, not a free function, deliberately: the solvers instantiate the
// kernels with capturing lambdas (memo-table lookups), so the d2 call always
// inlines in production. A function reference here de-inlines into an
// indirect call per event as soon as the instantiation is shared by a second
// call site — that artifact once slowed every timed variant by ~0.3 ns/cell
// and compressed the variant-vs-variant ratios the gate enforces.
constexpr auto zero_d2 = [](Pos, Pos, Pos, Pos) { return Score{0}; };

// A SliceKernel bound to local scratch, as the solvers get from Workspace.
struct LocalKernel {
  KernelScratch scratch;
  FourRussiansTable table;

  SliceKernel bind(KernelVariant variant) {
    SliceKernel kernel;
    kernel.variant = resolve_kernel_variant(variant);
    kernel.scratch = &scratch;
    if (kernel.variant == KernelVariant::kFourRussians) {
      table.build();
      kernel.table = &table;
    }
    return kernel;
  }
};

void BM_DenseSliceKernel(benchmark::State& state) {
  const auto length = static_cast<Pos>(state.range(0));
  const auto s = worst_case_structure(length);
  ColumnEvents events;
  events.build(s);
  Matrix<Score> scratch;
  const SliceBounds bounds{0, length - 1, 0, length - 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tabulate_slice_dense(s, s, events, bounds, scratch, zero_d2));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(length) * length);
}
BENCHMARK(BM_DenseSliceKernel)->Arg(64)->Arg(256)->Arg(1024);

// One row per batched kernel variant, against the same worst-case slice.
void BM_DenseSliceKernelVariant(benchmark::State& state) {
  const auto length = static_cast<Pos>(state.range(0));
  const auto variant = static_cast<KernelVariant>(state.range(1));
  const auto s = worst_case_structure(length);
  ColumnEvents events;
  events.build(s);
  LocalKernel local;
  const SliceKernel kernel = local.bind(variant);
  Matrix<Score> scratch;
  const SliceBounds bounds{0, length - 1, 0, length - 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tabulate_slice_dense(s, s, events, bounds, scratch, kernel, zero_d2));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(length) * length);
  state.SetLabel(kernel_variant_name(variant));
}
BENCHMARK(BM_DenseSliceKernelVariant)
    ->ArgsProduct({{64, 256, 1024},
                   {static_cast<long>(KernelVariant::kSimd),
                    static_cast<long>(KernelVariant::kFourRussians)}});

// The per-cell loop the event-run kernel replaced, kept as the yardstick:
// BM_DenseSliceKernel / BM_DenseSliceKernelReference is the kernel speedup.
void BM_DenseSliceKernelReference(benchmark::State& state) {
  const auto length = static_cast<Pos>(state.range(0));
  const auto s = worst_case_structure(length);
  Matrix<Score> scratch;
  const SliceBounds bounds{0, length - 1, 0, length - 1};
  for (auto _ : state) {
    fill_slice_dense_reference(s, s, bounds, scratch, zero_d2);
    benchmark::DoNotOptimize(scratch.row_data(0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(length) * length);
}
BENCHMARK(BM_DenseSliceKernelReference)->Arg(64)->Arg(256)->Arg(1024);

void BM_CompressedSliceKernel(benchmark::State& state) {
  const auto length = static_cast<Pos>(state.range(0));
  const auto s = worst_case_structure(length);
  const ArcIndex idx(s);
  EventScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tabulate_slice_compressed(idx.all(), idx.all(), scratch, zero_d2));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(idx.size()) *
                          static_cast<std::int64_t>(idx.size()));
}
BENCHMARK(BM_CompressedSliceKernel)->Arg(64)->Arg(256)->Arg(1024);

void BM_Srna1WorstCase(benchmark::State& state) {
  const auto s = worst_case_structure(static_cast<Pos>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(engine_solve("srna1", s, s).value);
}
BENCHMARK(BM_Srna1WorstCase)->Arg(100)->Arg(200);

void BM_Srna2WorstCase(benchmark::State& state) {
  const auto s = worst_case_structure(static_cast<Pos>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(engine_solve("srna2", s, s).value);
}
BENCHMARK(BM_Srna2WorstCase)->Arg(100)->Arg(200);

void BM_Srna2RrnaLike(benchmark::State& state) {
  const auto length = static_cast<Pos>(state.range(0));
  const auto s = rrna_like_structure(length, static_cast<std::size_t>(length / 6), 1);
  for (auto _ : state) benchmark::DoNotOptimize(engine_solve("srna2", s, s).value);
}
BENCHMARK(BM_Srna2RrnaLike)->Arg(500)->Arg(1000);

void BM_ReferenceTopDown(benchmark::State& state) {
  const auto s = worst_case_structure(static_cast<Pos>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(mcos_reference_topdown(s, s).value);
}
BENCHMARK(BM_ReferenceTopDown)->Arg(24)->Arg(48);

void BM_ArcIndexBuild(benchmark::State& state) {
  const auto s = rrna_like_structure(4216, 721, 1);
  for (auto _ : state) {
    ArcIndex idx(s);
    benchmark::DoNotOptimize(idx.size());
  }
}
BENCHMARK(BM_ArcIndexBuild);

void BM_GeneratorRandomStructure(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_structure(2000, 0.4, seed++).arc_count());
  }
}
BENCHMARK(BM_GeneratorRandomStructure);

void BM_GeneratorRrnaLike(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rrna_like_structure(4216, 721, seed++).arc_count());
  }
}
BENCHMARK(BM_GeneratorRrnaLike);

void BM_NussinovFold(benchmark::State& state) {
  const auto seq = random_sequence(static_cast<Pos>(state.range(0)), 5);
  for (auto _ : state) benchmark::DoNotOptimize(nussinov_fold(seq).max_pairs);
}
BENCHMARK(BM_NussinovFold)->Arg(100)->Arg(300);

void BM_LoadBalanceLpt(benchmark::State& state) {
  Xoshiro256 rng(1);
  std::vector<std::uint64_t> weights(static_cast<std::size_t>(state.range(0)));
  for (auto& w : weights) w = rng.uniform(10'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(balance_load(weights, 64).makespan());
  }
}
BENCHMARK(BM_LoadBalanceLpt)->Arg(1000)->Arg(100000);

// --smoke: the perf-regression gate, one timed row per dense kernel
// variant. Exit codes: 0 pass, 1 regression / lost kernel speedup / I/O
// failure, 2 kernel mismatch (correctness, not perf).
int run_smoke(int argc, char** argv) {
  CliParser cli("micro_kernels", "dense-kernel perf gate (--smoke mode)");
  cli.add_flag("smoke", "run the perf gate instead of the google-benchmark suite");
  cli.add_option("length", "worst-case structure length (Table I pair)", "400");
  cli.add_option("reps", "timing repetitions (best-of)", "9");
  cli.add_option("baseline", "recorded baseline JSON to gate against (empty = no gate)", "");
  cli.add_option("max-regression", "fail when ns/cell exceeds baseline by this factor", "1.25");
  cli.add_option("min-kernel-speedup",
                 "fail unless the best batched variant beats event-run by this factor "
                 "in the same run (0 disables; ignored under SRNA_DISABLE_SIMD builds)",
                 "1.5");
  cli.add_flag("update-baseline", "rewrite --baseline with this run's numbers");
  cli.add_option("output", "measured-numbers JSON (empty = BENCH_micro_kernels_smoke.json; "
                 "none = skip)", "");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<Pos>(cli.integer("length"));
  const auto s = worst_case_structure(n);
  const SliceBounds bounds{0, n - 1, 0, n - 1};
  ColumnEvents events;
  events.build(s);
  LocalKernel local;
  Matrix<Score> grid, ref_grid;

  // Correctness pin before timing anything: every variant must produce the
  // identical grid and identical accounting. A fast-but-wrong kernel must
  // not pass the perf gate.
  McosStats ref_stats;
  fill_slice_dense_reference(s, s, bounds, ref_grid, zero_d2, &ref_stats);
  struct Row {
    KernelVariant variant;
    const char* key;
    double ns = 0;
  };
  Row rows[] = {{KernelVariant::kEventRun, "event_run_ns_per_cell"},
                {KernelVariant::kSimd, "simd_ns_per_cell"},
                {KernelVariant::kFourRussians, "four_russians_ns_per_cell"}};
  for (const Row& row : rows) {
    const SliceKernel kernel = local.bind(row.variant);
    McosStats stats;
    fill_slice_dense(s, s, events, bounds, grid, kernel, zero_d2, &stats);
    for (std::size_t r = 0; r < ref_grid.rows(); ++r)
      for (std::size_t c = 0; c < ref_grid.cols(); ++c)
        if (grid(r, c) != ref_grid(r, c)) {
          std::cerr << "kernel mismatch at (" << r << ", " << c << "): "
                    << kernel_variant_name(row.variant) << " " << grid(r, c)
                    << " vs reference " << ref_grid(r, c) << "\n";
          return 2;
        }
    if (stats.cells_tabulated != ref_stats.cells_tabulated ||
        stats.arc_match_events != ref_stats.arc_match_events) {
      std::cerr << "kernel accounting mismatch (" << kernel_variant_name(row.variant)
                << "): cells " << stats.cells_tabulated << " vs "
                << ref_stats.cells_tabulated << ", arc events " << stats.arc_match_events
                << " vs " << ref_stats.arc_match_events << "\n";
      return 2;
    }
  }

  const auto reps = static_cast<int>(cli.integer("reps"));
  const double cells = static_cast<double>(n) * static_cast<double>(n);
  std::cout << "dense slice kernel, worst-case L=" << n << " (" << cells
            << " cells, best of " << reps << ")\n";
  // Timing rounds are interleaved — one fill per variant per rep, best-of
  // across rounds — so a mid-run frequency shift hits every variant alike
  // and the variant-vs-variant ratios (what --min-kernel-speedup gates)
  // stay meaningful even on noisy machines.
  double reference_s = 0;
  for (int rep = 0; rep < reps; ++rep) {
    for (Row& row : rows) {
      const SliceKernel kernel = local.bind(row.variant);
      const double seconds = bench::time_best_of(
          1, [&] { fill_slice_dense(s, s, events, bounds, grid, kernel, zero_d2); });
      const double ns = seconds * 1e9 / cells;
      if (rep == 0 || ns < row.ns) row.ns = ns;
    }
    const double ref_rep = bench::time_best_of(
        1, [&] { fill_slice_dense_reference(s, s, bounds, ref_grid, zero_d2); });
    if (rep == 0 || ref_rep < reference_s) reference_s = ref_rep;
  }
  for (const Row& row : rows)
    std::cout << "  " << kernel_variant_name(row.variant) << ": " << row.ns
              << " ns/cell\n";
  const double event_ns = rows[0].ns;
  const double reference_ns = reference_s * 1e9 / cells;
  const Row* best = &rows[0];
  for (const Row& row : rows)
    if (row.ns < best->ns) best = &row;
  std::cout << "  reference: " << reference_ns << " ns/cell\n  best: "
            << kernel_variant_name(best->variant) << " ("
            << reference_ns / best->ns << "x vs reference, " << event_ns / best->ns
            << "x vs event-run)\n";

  int exit_code = 0;
  const std::string baseline_path = cli.str("baseline");
  if (!baseline_path.empty() && !cli.flag("update-baseline")) {
    std::ifstream in(baseline_path);
    std::stringstream text;
    text << in.rdbuf();
    const auto baseline = in ? obs::Json::parse(text.str()) : std::nullopt;
    if (!baseline || baseline->find("event_run_ns_per_cell") == nullptr) {
      std::cerr << "cannot read baseline " << baseline_path << "\n";
      return 1;
    }
    // Gate every variant the baseline has a recording for (older baselines
    // only pin event-run).
    for (const Row& row : rows) {
      const obs::Json* recorded = baseline->find(row.key);
      if (recorded == nullptr) continue;
      const double budget = recorded->as_double() * cli.real("max-regression");
      std::cout << "baseline " << kernel_variant_name(row.variant) << ": "
                << recorded->as_double() << " ns/cell (gate: " << budget << ")\n";
      if (row.ns > budget) {
        std::cerr << "PERF REGRESSION: " << kernel_variant_name(row.variant) << " kernel "
                  << row.ns << " ns/cell exceeds the gate " << budget << " (baseline "
                  << recorded->as_double() << " * " << cli.real("max-regression") << ")\n";
        exit_code = 1;
      }
    }
  }

  // The batched-kernel win itself is part of the gate: the best variant must
  // beat the event-run kernel measured in the same run (machine-independent,
  // unlike ns/cell). Scalar-fallback builds skip this — without SIMD the
  // batched variants only have to hold even, which the ns/cell gates cover.
  const double min_speedup = cli.real("min-kernel-speedup");
#if defined(SRNA_DISABLE_SIMD)
  constexpr bool simd_build = false;
#else
  constexpr bool simd_build = true;
#endif
  if (simd_build && min_speedup > 0 && event_ns / best->ns < min_speedup) {
    std::cerr << "KERNEL SPEEDUP LOST: best variant ("
              << kernel_variant_name(best->variant) << ") is only " << event_ns / best->ns
              << "x vs event-run; the gate requires " << min_speedup << "x\n";
    exit_code = 1;
  }

  obs::Json doc = obs::Json::object();
  doc.set("kernel", obs::Json("fill_slice_dense"));
  doc.set("structure", obs::Json("worst_case"));
  doc.set("length", obs::Json(static_cast<std::int64_t>(n)));
  doc.set("reps", obs::Json(static_cast<std::int64_t>(reps)));
  for (const Row& row : rows) doc.set(row.key, obs::Json(row.ns));
  doc.set("reference_ns_per_cell", obs::Json(reference_ns));
  doc.set("best_kernel", obs::Json(kernel_variant_name(best->variant)));
  doc.set("best_ns_per_cell", obs::Json(best->ns));
  doc.set("best_vs_event_run", obs::Json(event_ns / best->ns));
  doc.set("speedup", obs::Json(reference_ns / event_ns));
  if (!baseline_path.empty() && cli.flag("update-baseline")) {
    std::ofstream out(baseline_path);
    out << doc.dump(2) << "\n";
    if (!out) {
      std::cerr << "cannot write baseline " << baseline_path << "\n";
      return 1;
    }
    std::cout << "baseline updated: " << baseline_path << "\n";
  }
  if (cli.str("output") != "none") {
    const std::string target =
        cli.str("output").empty() ? "BENCH_micro_kernels_smoke.json" : cli.str("output");
    std::ofstream out(target);
    out << doc.dump(2) << "\n";
    if (out) std::cout << "wrote " << target << "\n";
  }
  return exit_code;
}

}  // namespace
}  // namespace srna

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string_view(argv[i]) == "--smoke") return srna::run_smoke(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
