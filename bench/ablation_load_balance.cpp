// Ablation: the load-balancing strategy behind PRNA's static column
// ownership.
//
// Column weights on worst-case data are the interior widths 0, 2, 4, ...,
// n-2 — heavily skewed, which is exactly where Graham's LPT earns its keep
// over block ranges and round-robin. Reported per strategy: the plan's
// imbalance and the simulated stage-one compute time at several processor
// counts, plus the impact on end-to-end simulated speedup.
#include <iostream>

#include "bench_util.hpp"
#include "parallel/cluster_sim.hpp"
#include "rna/generators.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace srna;

  CliParser cli("ablation_load_balance", "LPT vs block vs cyclic column ownership");
  cli.add_option("length", "worst-case sequence length", "1600");
  cli.add_option("procs", "processor counts", "4,16,64");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_header("Ablation — stage-one load balancing (simulated cluster)",
                      "Section V-A: greedy approximation algorithm [Graham 1969]");

  const auto s = worst_case_structure(static_cast<Pos>(cli.integer("length")));
  MachineModel model;  // defaults; relative comparison only

  TablePrinter table({"procs", "strategy", "imbalance", "stage1 compute[s]", "speedup"});
  for (const auto p : cli.int_list("procs")) {
    for (const auto strategy :
         {BalanceStrategy::kGreedyLpt, BalanceStrategy::kBlock, BalanceStrategy::kCyclic}) {
      SimOptions opt;
      opt.processors = static_cast<std::size_t>(p);
      opt.balance = strategy;
      const auto sim = simulate_prna(s, s, model, opt);
      const auto curve = simulate_speedup_curve(s, s, model, {opt.processors}, opt);
      table.add_row({std::to_string(p), to_string(strategy),
                     fixed(1.0 / sim.schedule_efficiency, 3),
                     fixed(sim.stage1_compute_seconds, 2), fixed(curve[0].speedup, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nshape check: LPT and cyclic stay near imbalance 1.0 on the skewed\n"
               "weights; block ownership loses roughly half the machine.\n";
  return 0;
}
