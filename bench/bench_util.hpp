// Shared helpers for the paper-reproduction bench harness.
//
// Every binary in bench/ regenerates one table or figure from the paper
// (see DESIGN.md §4) and prints the measured rows next to the paper's
// published values where they exist. None of the harnesses assert — they
// report; EXPERIMENTS.md records the comparison.
#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <utility>

#include "core/result.hpp"
#include "obs/report.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace srna::bench {

// Times `body` `reps` times and returns the minimum wall time (the standard
// "best of N" estimator for single-machine wall-clock comparisons).
inline double time_best_of(int reps, const std::function<void()>& body) {
  RunningStats stats;
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    body();
    stats.add(timer.seconds());
  }
  return stats.min();
}

inline void print_header(const std::string& title, const std::string& paper_anchor) {
  std::cout << "\n================================================================\n"
            << title << "\n"
            << "reproduces: " << paper_anchor << "\n"
            << "================================================================\n";
}

// Machine-readable companion to the printed table: one JSON result row per
// measurement, wrapped in an obs::RunReport and written as
// `BENCH_<name>.json` (the repo's benchmark trajectory format). `--report=`
// overrides the path; `--report=none` skips the file.
class BenchReport {
 public:
  explicit BenchReport(std::string name)
      : name_(std::move(name)), report_("bench/" + name_) {}

  // The underlying report, for attaching bench-specific context (parameters,
  // calibration results, cross-checks).
  [[nodiscard]] obs::RunReport& report() noexcept { return report_; }

  void add_row(obs::Json row) { rows_.push(std::move(row)); }

  // Completes and writes the document. Empty `path` means the default
  // BENCH_<name>.json in the working directory; "none" suppresses writing.
  bool write(const std::string& path = {}) {
    if (path == "none") return true;
    const std::string target = path.empty() ? "BENCH_" + name_ + ".json" : path;
    report_.set("rows", std::move(rows_));
    report_.add_metrics_snapshot();
    if (!report_.write(target)) {
      std::cerr << "cannot write " << target << "\n";
      return false;
    }
    std::cout << "wrote " << target << "\n";
    return true;
  }

 private:
  std::string name_;
  obs::RunReport report_;
  obs::Json rows_ = obs::Json::array();
};

}  // namespace srna::bench
