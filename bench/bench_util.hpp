// Shared helpers for the paper-reproduction bench harness.
//
// Every binary in bench/ regenerates one table or figure from the paper
// (see DESIGN.md §4) and prints the measured rows next to the paper's
// published values where they exist. None of the harnesses assert — they
// report; EXPERIMENTS.md records the comparison.
#pragma once

#include <functional>
#include <iostream>
#include <string>

#include "core/result.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace srna::bench {

// Times `body` `reps` times and returns the minimum wall time (the standard
// "best of N" estimator for single-machine wall-clock comparisons).
inline double time_best_of(int reps, const std::function<void()>& body) {
  RunningStats stats;
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    body();
    stats.add(timer.seconds());
  }
  return stats.min();
}

inline void print_header(const std::string& title, const std::string& paper_anchor) {
  std::cout << "\n================================================================\n"
            << title << "\n"
            << "reproduces: " << paper_anchor << "\n"
            << "================================================================\n";
}

}  // namespace srna::bench
