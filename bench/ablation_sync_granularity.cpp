// Ablation: synchronization granularity of PRNA's stage one (simulated).
//
// The paper synchronizes one row of M per outer iteration
// (MPI_Allreduce over m values). Alternatives bracketing it:
//   table-allreduce — naive: reduce the whole n x m table every row;
//   no-comm         — a perfect-network upper bound.
// The per-row choice costs almost nothing over no-comm while the naive
// full-table exchange destroys scalability.
#include <iostream>

#include "bench_util.hpp"
#include "parallel/cluster_sim.hpp"
#include "rna/generators.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace srna;

  CliParser cli("ablation_sync_granularity", "per-row vs full-table vs no synchronization");
  cli.add_option("length", "worst-case sequence length", "1600");
  cli.add_option("procs", "processor counts", "8,16,32,64");
  if (!cli.parse(argc, argv)) return 0;

  bench::print_header("Ablation — stage-one synchronization granularity (simulated cluster)",
                      "Section V-B: per-row MPI_Allreduce over the memo table");

  const auto s = worst_case_structure(static_cast<Pos>(cli.integer("length")));
  MachineModel model;

  TablePrinter table({"procs", "sync model", "comm[s]", "total[s]", "speedup"});
  for (const auto p : cli.int_list("procs")) {
    for (const auto sync :
         {SyncModel::kRowAllreduce, SyncModel::kTableAllreduce, SyncModel::kNoComm}) {
      SimOptions opt;
      opt.processors = static_cast<std::size_t>(p);
      opt.sync = sync;
      const auto sim = simulate_prna(s, s, model, opt);
      const auto curve = simulate_speedup_curve(s, s, model, {opt.processors}, opt);
      table.add_row({std::to_string(p), to_string(sync), fixed(sim.stage1_comm_seconds, 2),
                     fixed(sim.total_seconds(), 2), fixed(curve[0].speedup, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nshape check: row-allreduce tracks the no-comm bound closely;\n"
               "full-table exchange per row collapses the speedup.\n";
  return 0;
}
