// Table II: SRNA1 vs SRNA2 self-comparing two 23S ribosomal RNA secondary
// structures.
//
// Paper values:
//   Fungus (Suillus sinuspaulianus, L47585):   4216 bases, 721 arcs
//       SRNA1 49.149 s   SRNA2 25.472 s
//   Malaria parasite (Plasmodium falciparum, U48228): 4381 bases, 1126 arcs
//       SRNA1 86.887 s   SRNA2 39.028 s
//
// Substitution (DESIGN.md §5): the accessions are not available offline, so
// the harness synthesizes stem-loop structures with the same base and arc
// counts. The algorithms are driven purely by the arc structure, so a
// statistics-matched synthetic exercises the identical code paths; the
// reproduction target is the SRNA2-vs-SRNA1 advantage and the contrast with
// Table I (real structures are far cheaper than worst-case data of similar
// length).
#include <iostream>

#include "bench_util.hpp"
#include "engine/engine.hpp"
#include "rna/generators.hpp"
#include "rna/structure_stats.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace srna;

  CliParser cli("table2_real_rna", "Table II: SRNA1 vs SRNA2 on 23S-rRNA-scale structures");
  cli.add_option("seed", "generator seed", "2012");
  cli.add_option("reps", "repetitions per measurement", "1");
  cli.add_flag("csv", "emit CSV instead of the aligned table");
  if (!cli.parse(argc, argv)) return 0;

  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const int reps = static_cast<int>(cli.integer("reps"));

  struct Instance {
    const char* name;
    Pos bases;
    std::size_t arcs;
    double paper_srna1;
    double paper_srna2;
  };
  const Instance instances[] = {
      {"Fungus (23S rRNA, L47585-like)", 4216, 721, 49.149, 25.472},
      {"Malaria Parasite (23S rRNA, U48228-like)", 4381, 1126, 86.887, 39.028},
  };

  bench::print_header("Table II — SRNA1 vs SRNA2, rRNA-scale structures (synthetic substitute)",
                      "paper Table II (Section IV-C)");

  TablePrinter table({"instance", "bases", "arcs", "stems", "SRNA1[s]", "SRNA2[s]", "ratio1/2",
                      "paper SRNA1[s]", "paper SRNA2[s]", "paper ratio"});

  for (const Instance& inst : instances) {
    const auto s = rrna_like_structure(inst.bases, inst.arcs, seed);
    const auto stats = compute_stats(s);

    Score v1 = 0;
    Score v2 = 0;
    const double t1 = bench::time_best_of(reps, [&] { v1 = engine_solve("srna1", s, s).value; });
    const double t2 = bench::time_best_of(reps, [&] { v2 = engine_solve("srna2", s, s).value; });
    if (v1 != v2 || v1 != static_cast<Score>(s.arc_count())) {
      std::cerr << "VALUE MISMATCH for " << inst.name << "\n";
      return 1;
    }

    table.add_row({inst.name, std::to_string(stats.length), std::to_string(stats.arcs),
                   std::to_string(stats.stems), fixed(t1, 3), fixed(t2, 3),
                   t2 > 0 ? fixed(t1 / t2, 2) : "-", fixed(inst.paper_srna1, 3),
                   fixed(inst.paper_srna2, 3), fixed(inst.paper_srna1 / inst.paper_srna2, 2)});
  }

  if (cli.flag("csv"))
    table.print_csv(std::cout);
  else
    table.print(std::cout);
  std::cout << "\nshape check: real-scale structures run orders of magnitude faster\n"
               "than worst-case data of comparable length (compare Table I at 1600),\n"
               "and SRNA2 keeps its advantage over SRNA1.\n";
  return 0;
}
