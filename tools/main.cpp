#include <iostream>

#include "cli_app.hpp"

int main(int argc, char** argv) {
  return srna::tools::run_cli(argc, argv, std::cout, std::cerr);
}
