// srna-bench-report — bench-trajectory regression gate.
//
// Compares fresh benchmark run reports against the repo's committed
// BENCH_*.json series and fails (exit 2) when any tracked metric regressed
// beyond the threshold — the same 25% slack the micro-kernel smoke gate
// uses. The comparison logic (metric flattening, direction inference,
// identity-keyed rows) lives in src/obs/bench_compare.{hpp,cpp} where the
// obs test suite covers it.
//
//   srna-bench-report --baseline=BENCH_serving_throughput.json --fresh=run.json
//   srna-bench-report --baseline=. --fresh=out/   # pair BENCH_*.json by name
//
// Directory arguments pair files by basename: a baseline with no fresh
// counterpart is reported and skipped (exit stays 0 unless --require-all).
// Exit codes: 0 clean, 1 usage/IO error, 2 regression detected.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_compare.hpp"
#include "obs/json.hpp"
#include "util/cli.hpp"

namespace {

namespace fs = std::filesystem;
using srna::obs::BenchComparison;
using srna::obs::BenchDelta;
using srna::obs::Json;

Json load_report(const fs::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::optional<Json> doc = Json::parse(buffer.str());
  if (!doc || !doc->is_object())
    throw std::runtime_error(path.string() + " is not a JSON report");
  return std::move(*doc);
}

// A --baseline/--fresh argument names either one report or a directory of
// BENCH_*.json files.
std::vector<fs::path> report_set(const fs::path& path) {
  if (fs::is_directory(path)) {
    std::vector<fs::path> out;
    for (const fs::directory_entry& entry : fs::directory_iterator(path)) {
      const std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
          name.size() > 5 && name.substr(name.size() - 5) == ".json")
        out.push_back(entry.path());
    }
    std::sort(out.begin(), out.end());
    return out;
  }
  return {path};
}

void print_comparison(const std::string& label, const BenchComparison& cmp,
                      bool all_rows) {
  std::printf("== %s (%s)\n", label.c_str(),
              cmp.tool.empty() ? "unknown tool" : cmp.tool.c_str());
  std::printf("   %-44s %12s %12s %9s\n", "metric", "baseline", "fresh", "delta");
  for (const BenchDelta& d : cmp.deltas) {
    if (!all_rows && !d.regression && d.direction == 0) continue;
    const char* marker = d.regression            ? " REGRESSION"
                         : d.direction == 0      ? ""
                         : d.delta_fraction < 0  ? (d.direction < 0 ? " +" : " -")
                         : d.delta_fraction > 0  ? (d.direction < 0 ? " -" : " +")
                                                 : "";
    std::printf("   %-44s %12.4g %12.4g %+8.1f%%%s\n", d.key.c_str(), d.baseline,
                d.fresh, 100.0 * d.delta_fraction, marker);
  }
  for (const std::string& k : cmp.only_in_baseline)
    std::printf("   %-44s (missing from fresh run)\n", k.c_str());
  for (const std::string& k : cmp.only_in_fresh)
    std::printf("   %-44s (new in fresh run)\n", k.c_str());
  if (!cmp.only_in_fresh.empty())
    std::printf("   note: %zu fresh-only metric path(s) skipped — absent from the "
                "committed baseline, so no delta is gated; refresh the baseline to "
                "start tracking them\n",
                cmp.only_in_fresh.size());
}

}  // namespace

int main(int argc, char** argv) {
  srna::CliParser cli("srna-bench-report",
                      "compare fresh bench reports against the committed BENCH_*.json "
                      "trajectory; nonzero exit on regression");
  cli.add_option("baseline", "baseline report file, or directory of BENCH_*.json", "");
  cli.add_option("fresh", "fresh report file, or directory paired by basename", "");
  cli.add_option("threshold", "allowed relative slack before a delta regresses", "0.25");
  cli.add_option("noise-floor-ms",
                 "millisecond timings below this on both sides are reported but not "
                 "gated (0 = off)",
                 "0");
  cli.add_option("output", "write the comparison document as JSON (none = skip)", "none");
  cli.add_flag("all", "print every metric row, not just directional ones");
  cli.add_flag("require-all", "fail when a baseline has no fresh counterpart");

  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::string baseline_arg = cli.str("baseline");
    const std::string fresh_arg = cli.str("fresh");
    if (baseline_arg.empty() || fresh_arg.empty())
      throw std::invalid_argument("--baseline and --fresh are both required");
    const double threshold = cli.real("threshold");
    if (threshold <= 0) throw std::invalid_argument("--threshold must be > 0");
    const double noise_floor_ms = cli.real("noise-floor-ms");
    if (noise_floor_ms < 0) throw std::invalid_argument("--noise-floor-ms must be >= 0");

    const std::vector<fs::path> baselines = report_set(baseline_arg);
    if (baselines.empty())
      throw std::runtime_error("no BENCH_*.json reports under " + baseline_arg);
    const bool fresh_is_dir = fs::is_directory(fresh_arg);
    if (baselines.size() > 1 && !fresh_is_dir)
      throw std::invalid_argument(
          "--baseline is a directory with several reports; --fresh must be a "
          "directory too");

    bool regression = false;
    bool missing = false;
    Json all = Json::array();
    for (const fs::path& base_path : baselines) {
      const fs::path fresh_path =
          fresh_is_dir ? fs::path(fresh_arg) / base_path.filename() : fs::path(fresh_arg);
      if (!fs::exists(fresh_path)) {
        std::printf("== %s: no fresh counterpart (%s)\n",
                    base_path.filename().string().c_str(), fresh_path.string().c_str());
        missing = true;
        continue;
      }
      const BenchComparison cmp = srna::obs::compare_reports(
          load_report(base_path), load_report(fresh_path), threshold, noise_floor_ms);
      print_comparison(base_path.filename().string(), cmp, cli.flag("all"));
      regression = regression || cmp.has_regression;
      Json entry = cmp.to_json();
      entry.set("baseline_path", Json(base_path.string()));
      entry.set("fresh_path", Json(fresh_path.string()));
      all.push(std::move(entry));
    }

    if (cli.str("output") != "none") {
      Json doc = Json::object();
      doc.set("schema", Json("srna-bench-report"));
      doc.set("threshold", Json(threshold));
      doc.set("has_regression", Json(regression));
      doc.set("comparisons", std::move(all));
      std::ofstream out(cli.str("output"));
      if (!out) throw std::runtime_error("cannot write " + cli.str("output"));
      out << doc.dump(2) << '\n';
    }

    if (regression) {
      std::printf("RESULT: regression beyond %.0f%% threshold\n", 100.0 * threshold);
      return 2;
    }
    if (missing && cli.flag("require-all")) {
      std::printf("RESULT: missing fresh reports (--require-all)\n");
      return 2;
    }
    std::printf("RESULT: within %.0f%% of the committed trajectory\n", 100.0 * threshold);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "srna-bench-report: " << e.what() << "\n";
    return 1;
  }
}
