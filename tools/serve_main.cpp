// srna-serve — the MCOS query service daemon.
//
// Two transports, same JSON-lines protocol (docs/SERVING.md):
//   --offline        requests on stdin, responses on stdout; exits at EOF
//                    after draining. This is what tests and CI drive.
//   --port=N         TCP listener (default loopback; --port=0 picks an
//                    ephemeral port and prints it). Runs until SIGINT/SIGTERM,
//                    then stops the listener and drains in-flight requests.
//
// Service stats go to stderr on shutdown; --metrics/--report/--trace attach
// the obs subsystem exactly as in the main CLI.
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <thread>

#include "db/structure_db.hpp"
#include "obs/session.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  using namespace srna;

  CliParser cli("srna-serve", "MCOS query service (JSON-lines over stdin/stdout or TCP)");
  cli.add_flag("offline", "serve stdin/stdout instead of a TCP socket");
  cli.add_option("host", "TCP listen address", "127.0.0.1");
  cli.add_option("port", "TCP port (0 = ephemeral, printed on startup)", "7533");
  cli.add_option("db", "structure database directory for a_name/b_name requests", "");
  cli.add_option("workers", "worker threads", "4");
  cli.add_option("queue-capacity", "admission queue slots (backpressure beyond this)", "64");
  cli.add_option("cache-entries", "result cache capacity (0 disables)", "4096");
  cli.add_option("cache-shards", "result cache shard count", "8");
  cli.add_option("deadline-ms", "default per-request deadline (0 = none)", "0");
  cli.add_option("algorithm", "default engine backend", "srna2");
  obs::ObsSession::add_cli_options(cli);

  try {
    if (!cli.parse(argc, argv)) return 0;

    obs::ObsSession obs_session(obs::ObsSession::paths_from_cli(cli), "srna-serve");
    obs_session.report().set_command_line(argc, argv);

    StructureDatabase db;
    serve::ServiceConfig config;
    config.workers = static_cast<int>(cli.integer("workers"));
    config.queue_capacity = static_cast<std::size_t>(cli.integer("queue-capacity"));
    config.cache.capacity = static_cast<std::size_t>(cli.integer("cache-entries"));
    config.cache.shards = static_cast<std::size_t>(cli.integer("cache-shards"));
    config.default_deadline_ms = cli.real("deadline-ms");
    config.default_algorithm = cli.str("algorithm");
    if (!cli.str("db").empty()) {
      db = StructureDatabase::load_directory(cli.str("db"));
      std::cerr << "loaded " << db.size() << " structures from " << cli.str("db") << "\n";
      config.db = &db;
    }

    serve::QueryService service(config);

    if (cli.flag("offline")) {
      const std::size_t lines = serve::run_offline(service, std::cin, std::cout);
      service.drain();
      std::cerr << "served " << lines << " requests\n";
    } else {
      std::signal(SIGINT, handle_signal);
      std::signal(SIGTERM, handle_signal);
      serve::TcpServer server(service, cli.str("host"),
                              static_cast<std::uint16_t>(cli.integer("port")));
      std::cerr << "listening on " << cli.str("host") << ":" << server.port() << "\n";
      while (!g_stop.load(std::memory_order_relaxed))
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      std::cerr << "shutting down: draining in-flight requests\n";
      server.stop();
      service.drain();
    }

    std::cerr << service.stats_json().dump(2) << "\n";
    obs_session.report().set("service", service.stats_json());
    for (const std::string& path : obs_session.finish()) std::cerr << "wrote " << path << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "srna-serve: " << e.what() << "\n";
    return 1;
  }
}
