// srna-serve — the MCOS query service daemon.
//
// Two transports, same JSON-lines protocol (docs/SERVING.md):
//   --offline        requests on stdin, responses on stdout; exits at EOF
//                    after draining. This is what tests and CI drive.
//   --port=N         TCP listener (default loopback; --port=0 picks an
//                    ephemeral port and prints it). Runs until SIGINT/SIGTERM,
//                    then stops the listener and drains in-flight requests.
//
// Observability (docs/OBSERVABILITY.md):
//   --admin-port=N   HTTP admin listener (GET /metrics /healthz /statz) on a
//                    plane separate from serving; -1 disables. Offline mode
//                    answers the same views via in-band {"admin": ...} lines.
//   --log-level=L    structured JSON-lines log threshold on stderr
//                    (debug | info | warn | error | off).
//   --metrics/--report/--trace attach the obs subsystem exactly as in the
//   main CLI; service stats go into the report (and stderr) on shutdown.
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <memory>
#include <thread>

#include "db/structure_db.hpp"
#include "obs/log.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "serve/admin.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  using namespace srna;

  CliParser cli("srna-serve", "MCOS query service (JSON-lines over stdin/stdout or TCP)");
  cli.add_flag("offline", "serve stdin/stdout instead of a TCP socket");
  cli.add_option("host", "TCP listen address", "127.0.0.1");
  cli.add_option("port", "TCP port (0 = ephemeral, printed on startup)", "7533");
  cli.add_option("admin-port",
                 "HTTP admin listener port: /metrics /healthz /statz "
                 "(0 = ephemeral, -1 = disabled)",
                 "-1");
  cli.add_option("log-level", "structured log threshold (debug|info|warn|error|off)",
                 "info");
  cli.add_option("db", "structure database directory for a_name/b_name requests", "");
  cli.add_option("workers", "worker threads", "4");
  cli.add_option("queue-capacity", "admission queue slots (backpressure beyond this)", "64");
  cli.add_option("cache-entries", "result cache capacity (0 disables)", "4096");
  cli.add_option("cache-shards", "result cache shard count", "8");
  cli.add_option("deadline-ms", "default per-request deadline (0 = none)", "0");
  cli.add_option("memory-budget",
                 "cap on summed estimated solver bytes in flight; over-budget "
                 "requests get status over_memory_budget (0 = unlimited)",
                 "0");
  cli.add_option("batch-window-ms",
                 "shared-structure batch accumulation window: the first cache "
                 "miss for a structure A waits this long for later misses "
                 "sharing A, then one worker runs the group back-to-back "
                 "(0 = off)",
                 "0");
  cli.add_option("algorithm", "default engine backend", "srna2");
  cli.add_flag("trace-live",
               "keep the span tracer enabled for the life of the process and "
               "serve the buffered trace at GET /tracez (what "
               "srna-trace-collect scrapes); independent of --trace, which "
               "writes a file at exit");
  cli.add_option("flight-records",
                 "flight-recorder ring capacity (recent request records behind "
                 "GET /flightz)",
                 "256");
  cli.add_option("flight-slow-ms",
                 "latency threshold that makes a request a 'slow' anomaly and "
                 "retains it as a /flightz exemplar (0 = off)",
                 "0");
  obs::ObsSession::add_cli_options(cli);

  try {
    if (!cli.parse(argc, argv)) return 0;

    const std::optional<obs::LogLevel> log_level = obs::parse_log_level(cli.str("log-level"));
    if (!log_level) {
      std::cerr << "srna-serve: bad --log-level '" << cli.str("log-level")
                << "' (debug|info|warn|error|off)\n";
      return 1;
    }
    obs::Logger::instance().set_min_level(*log_level);

    obs::ObsSession obs_session(obs::ObsSession::paths_from_cli(cli), "srna-serve");
    obs_session.report().set_command_line(argc, argv);

    StructureDatabase db;
    serve::ServiceConfig config;
    config.workers = static_cast<int>(cli.integer("workers"));
    config.queue_capacity = static_cast<std::size_t>(cli.integer("queue-capacity"));
    config.cache.capacity = static_cast<std::size_t>(cli.integer("cache-entries"));
    config.cache.shards = static_cast<std::size_t>(cli.integer("cache-shards"));
    config.default_deadline_ms = cli.real("deadline-ms");
    config.memory_budget_bytes = static_cast<std::uint64_t>(cli.integer("memory-budget"));
    config.batch_window_ms = cli.real("batch-window-ms");
    config.default_algorithm = cli.str("algorithm");
    config.flight.capacity = static_cast<std::size_t>(cli.integer("flight-records"));
    config.flight.slow_ms = cli.real("flight-slow-ms");
    if (cli.flag("trace-live")) {
      obs::Tracer::instance().enable();
      obs::Tracer::instance().set_process_name("srna-serve");
    }
    if (!cli.str("db").empty()) {
      db = StructureDatabase::load_directory(cli.str("db"));
      obs::log_info("serve.db_loaded",
                    obs::log_fields(
                        {{"path", obs::Json(cli.str("db"))},
                         {"structures", obs::Json(static_cast<std::uint64_t>(db.size()))}}));
      config.db = &db;
    }

    serve::QueryService service(config);

    // The admin plane outlives the data listener but not the service: scrapes
    // during drain still answer (healthz flips to "draining").
    std::unique_ptr<serve::AdminServer> admin;
    const auto admin_port = cli.integer("admin-port");
    if (admin_port >= 0) {
      admin = std::make_unique<serve::AdminServer>(
          service, cli.str("host"), static_cast<std::uint16_t>(admin_port));
      std::cerr << "admin endpoint on " << cli.str("host") << ":" << admin->port()
                << " (/metrics /healthz /statz /flightz /tracez)\n";
    }

    if (cli.flag("offline")) {
      obs::log_info("serve.start", obs::log_fields({{"mode", obs::Json("offline")}}));
      const std::size_t lines = serve::run_offline(service, std::cin, std::cout);
      service.drain();
      obs::log_info("serve.stop",
                    obs::log_fields({{"lines", obs::Json(static_cast<std::uint64_t>(lines))}}));
    } else {
      std::signal(SIGINT, handle_signal);
      std::signal(SIGTERM, handle_signal);
      serve::TcpServer server(service, cli.str("host"),
                              static_cast<std::uint16_t>(cli.integer("port")));
      std::cerr << "listening on " << cli.str("host") << ":" << server.port() << "\n";
      obs::log_info(
          "serve.start",
          obs::log_fields({{"mode", obs::Json("tcp")},
                           {"port", obs::Json(static_cast<std::uint64_t>(server.port()))}}));
      while (!g_stop.load(std::memory_order_relaxed))
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      obs::log_info("serve.stop", obs::log_fields({{"mode", obs::Json("tcp")}}));
      server.stop();
      service.drain();
    }
    if (admin) admin->stop();

    std::cerr << service.stats_json().dump(2) << "\n";
    obs_session.report().set("service", service.stats_json());
    for (const std::string& path : obs_session.finish()) std::cerr << "wrote " << path << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "srna-serve: " << e.what() << "\n";
    return 1;
  }
}
