// srna-router — consistent-hash front-end for a fleet of srna-serve shards.
//
// Clients connect to the router exactly as they would to a single srna-serve:
// same JSON-lines protocol, same response bytes (docs/SERVING.md, distributed
// topology section). The router hashes each request's canonical structure-pair
// digest onto a replicated hash ring, forwards it over a persistent link to
// the owning shard, and fails over to replicas when a shard dies or times out.
//
// Shard fleet, either form (mixable is not supported — pick one):
//   --shard DATA[@ADMIN]   address of an externally managed shard, repeatable
//                          (e.g. --shard 127.0.0.1:7533@127.0.0.1:7543); the
//                          ADMIN endpoint enables readiness probing and
//                          /metrics //statz aggregation
//   --spawn-shards N       self-managed fleet: fork/exec N srna-serve
//                          processes (--serve-bin) on ephemeral ports, monitor
//                          and restart them (dist/supervisor.hpp), wait for
//                          readiness before accepting traffic. Extra per-shard
//                          argv via repeated --shard-arg.
//
// --status-file writes the resolved topology (router ports, shard ports and
// pids) as JSON once everything is up — scripts and tests poll that file
// instead of parsing logs.
//
// Admin plane (--admin-port): /metrics merges shard scrapes with the router's
// own counters, /statz nests per-shard stats under fleet totals, /healthz is
// router liveness, /readyz is 200 while at least one shard is ready.
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dist/net.hpp"
#include "dist/router.hpp"
#include "dist/supervisor.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "serve/admin.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"

namespace {

using namespace srna;

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

// "DATA[@ADMIN]" -> a named shard address. '@' because ',' already separates
// repeated CLI occurrences.
dist::ShardAddress parse_shard_spec(const std::string& spec, std::size_t index) {
  dist::ShardAddress shard;
  shard.name = "shard" + std::to_string(index);
  const std::size_t at = spec.find('@');
  shard.data = dist::parse_endpoint(spec.substr(0, at));
  if (at != std::string::npos) shard.admin = dist::parse_endpoint(spec.substr(at + 1));
  return shard;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("srna-router",
                "consistent-hash router in front of srna-serve shards "
                "(same JSON-lines protocol)");
  cli.add_option("host", "TCP listen address", "127.0.0.1");
  cli.add_option("port", "client-facing data port (0 = ephemeral, printed)", "7633");
  cli.add_option("admin-port",
                 "aggregated admin plane: /metrics /healthz /readyz /statz "
                 "(0 = ephemeral, -1 = disabled)",
                 "-1");
  cli.add_option("shard",
                 "external shard DATA[@ADMIN] endpoint, e.g. "
                 "127.0.0.1:7533@127.0.0.1:7543; repeatable", "");
  cli.add_option("spawn-shards", "spawn and supervise N srna-serve shards", "0");
  cli.add_option("serve-bin", "shard binary for --spawn-shards", "srna-serve");
  cli.add_option("shard-arg",
                 "extra argv appended to every spawned shard; repeatable "
                 "(e.g. --shard-arg=--cache-entries=512)", "");
  cli.add_option("status-file",
                 "write resolved topology JSON (router + shard ports/pids) here "
                 "once serving", "");
  cli.add_option("replicas", "ring replicas consulted per request", "2");
  cli.add_option("vnodes", "hash-ring virtual nodes per shard", "128");
  cli.add_option("request-timeout-ms", "per-attempt response budget", "10000");
  cli.add_option("max-attempts", "dispatch attempts before rejecting", "3");
  cli.add_option("retry-after-ms", "backoff hint on router rejections", "50");
  cli.add_option("probe-interval-ms", "readiness probe cadence", "200");
  cli.add_option("ready-timeout-ms",
                 "startup wait for spawned shards to pass /readyz", "15000");
  cli.add_option("log-level", "structured log threshold (debug|info|warn|error|off)",
                 "info");
  cli.add_flag("trace-live",
               "keep the span tracer enabled and serve the router's hop spans "
               "(queued/attempt/failover) at GET /tracez for srna-trace-collect");
  cli.add_option("flight-records",
                 "flight-recorder ring capacity (recent routed-request records "
                 "behind GET /flightz)",
                 "256");
  cli.add_option("flight-slow-ms",
                 "end-to-end latency threshold that makes a routed request a "
                 "'slow' anomaly retained as a /flightz exemplar (0 = off)",
                 "0");

  try {
    if (!cli.parse(argc, argv)) return 0;

    const std::optional<obs::LogLevel> log_level = obs::parse_log_level(cli.str("log-level"));
    if (!log_level) {
      std::cerr << "srna-router: bad --log-level '" << cli.str("log-level") << "'\n";
      return 1;
    }
    obs::Logger::instance().set_min_level(*log_level);

    const std::vector<std::string> shard_specs = cli.str_list("shard");
    const int spawn = static_cast<int>(cli.integer("spawn-shards"));
    if (shard_specs.empty() && spawn <= 0)
      throw std::invalid_argument("need --shard endpoints or --spawn-shards N");
    if (!shard_specs.empty() && spawn > 0)
      throw std::invalid_argument("--shard and --spawn-shards are mutually exclusive");

    dist::RouterConfig config;
    config.replicas = static_cast<int>(cli.integer("replicas"));
    config.vnodes = static_cast<int>(cli.integer("vnodes"));
    config.request_timeout_ms = cli.real("request-timeout-ms");
    config.max_attempts = static_cast<int>(cli.integer("max-attempts"));
    config.retry_after_ms = cli.real("retry-after-ms");
    config.probe.interval_ms = static_cast<int>(cli.integer("probe-interval-ms"));
    config.flight.capacity = static_cast<std::size_t>(cli.integer("flight-records"));
    config.flight.slow_ms = cli.real("flight-slow-ms");
    if (cli.flag("trace-live")) {
      obs::Tracer::instance().enable();
      obs::Tracer::instance().set_process_name("srna-router");
    }

    // Self-managed fleet: pre-assign ephemeral ports, spawn, supervise.
    dist::Supervisor supervisor;
    for (std::size_t i = 0; i < shard_specs.size(); ++i)
      config.shards.push_back(parse_shard_spec(shard_specs[i], i));
    for (int i = 0; i < spawn; ++i) {
      dist::ShardAddress shard;
      shard.name = "shard" + std::to_string(i);
      shard.data = {"127.0.0.1", dist::pick_free_port()};
      shard.admin = {"127.0.0.1", dist::pick_free_port()};
      dist::ProcessSpec spec;
      spec.name = shard.name;
      spec.binary = cli.str("serve-bin");
      spec.args = {"--host=127.0.0.1", "--port=" + std::to_string(shard.data.port),
                   "--admin-port=" + std::to_string(shard.admin.port)};
      for (const std::string& extra : cli.str_list("shard-arg")) spec.args.push_back(extra);
      if (supervisor.start(spec) < 0)
        throw std::runtime_error("cannot spawn shard " + shard.name);
      config.shards.push_back(std::move(shard));
    }

    // Spawned shards must answer /readyz before we accept traffic — a client
    // racing the fleet's warm-up would eat pointless failovers.
    if (spawn > 0) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(cli.integer("ready-timeout-ms"));
      for (const dist::ShardAddress& shard : config.shards) {
        for (;;) {
          // /readyz answers 2xx only when the shard is admitting; the body
          // ("ok\n") is for humans.
          if (dist::http_get_body(shard.admin, "/readyz", 250)) break;
          if (std::chrono::steady_clock::now() >= deadline)
            throw std::runtime_error("shard " + shard.name + " never became ready");
          if (!supervisor.running(shard.name) && supervisor.restarts(shard.name) > 2)
            throw std::runtime_error("shard " + shard.name + " keeps crashing on startup");
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
      }
    }

    dist::Router router(config);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    serve::TcpServer server(
        [&router](const std::string& line, const serve::TcpServer::EmitLine& emit) {
          router.handle_line(line, emit);
        },
        cli.str("host"), static_cast<std::uint16_t>(cli.integer("port")));
    std::cerr << "routing on " << cli.str("host") << ":" << server.port() << " across "
              << config.shards.size() << " shard(s)\n";

    std::unique_ptr<serve::AdminServer> admin;
    if (cli.integer("admin-port") >= 0) {
      admin = std::make_unique<serve::AdminServer>(
          [&router](const std::string& path) { return router.admin_http(path); },
          cli.str("host"), static_cast<std::uint16_t>(cli.integer("admin-port")));
      std::cerr << "admin endpoint on " << cli.str("host") << ":" << admin->port()
                << " (/metrics /healthz /readyz /statz /flightz /tracez, aggregated)\n";
    }

    if (!cli.str("status-file").empty()) {
      obs::Json status = obs::Json::object();
      obs::Json router_info = obs::Json::object();
      router_info.set("host", obs::Json(cli.str("host")));
      router_info.set("port", obs::Json(static_cast<std::uint64_t>(server.port())));
      router_info.set("admin_port",
                      obs::Json(static_cast<std::uint64_t>(admin ? admin->port() : 0)));
      status.set("router", std::move(router_info));
      obs::Json shards = obs::Json::array();
      for (const dist::ShardAddress& shard : config.shards) {
        obs::Json one = obs::Json::object();
        one.set("name", obs::Json(shard.name));
        one.set("data", obs::Json(shard.data.to_string()));
        one.set("admin", obs::Json(shard.admin.to_string()));
        if (spawn > 0)
          one.set("pid", obs::Json(static_cast<std::int64_t>(supervisor.pid(shard.name))));
        shards.push(std::move(one));
      }
      status.set("shards", std::move(shards));
      std::ofstream out(cli.str("status-file"), std::ios::trunc);
      out << status.dump(2) << "\n";
      if (!out) {
        std::cerr << "srna-router: cannot write " << cli.str("status-file") << "\n";
        return 1;
      }
    }

    obs::log_info("router.start",
                  obs::log_fields(
                      {{"port", obs::Json(static_cast<std::uint64_t>(server.port()))},
                       {"shards", obs::Json(static_cast<std::uint64_t>(config.shards.size()))}}));
    while (!g_stop.load(std::memory_order_relaxed))
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    obs::log_info("router.stop");

    server.stop();    // no new client lines
    router.stop();    // rejects stragglers, closes shard links
    if (admin) admin->stop();
    supervisor.stop_all();

    std::cerr << router.stats_json().dump(2) << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "srna-router: " << e.what() << "\n";
    return 1;
  }
}
