// srna-trace-collect — pulls per-process Chrome traces from a running
// router/shard fleet and merges them into one Perfetto-loadable file.
//
//   srna-trace-collect --status-file status.json --output merged.json
//   srna-trace-collect --source router=127.0.0.1:7643 \
//                      --source shard0=127.0.0.1:7701 --output merged.json
//
// Sources come from a router's --status-file (router + every shard admin
// plane) or repeated --source NAME=HOST:PORT flags; each is scraped at
// `GET /tracez` and the documents are clock-aligned via their embedded
// wall-clock anchors (dist/trace_collect.hpp). Processes that never enabled
// tracing (run without --trace/--trace-live) contribute empty lanes; the
// tool only fails when NO source answers. With no --output the merged
// document goes to stdout.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/trace_collect.hpp"
#include "obs/json.hpp"
#include "util/cli.hpp"

namespace {

using namespace srna;

obs::Json load_status_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read status file " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::optional<obs::Json> doc = obs::Json::parse(buffer.str());
  if (!doc) throw std::runtime_error("status file " + path + " is not valid JSON");
  return *doc;
}

dist::TraceSource parse_source(const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0)
    throw std::invalid_argument("--source wants NAME=HOST:PORT, got '" + spec + "'");
  dist::TraceSource source;
  source.name = spec.substr(0, eq);
  source.admin = dist::parse_endpoint(spec.substr(eq + 1));
  return source;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("srna-trace-collect",
                "merge per-process /tracez scrapes into one Perfetto trace");
  cli.add_option("status-file", "topology JSON written by srna-router --status-file", "");
  cli.add_option("source", "extra scrape target NAME=HOST:PORT; repeatable", "");
  cli.add_option("output", "write the merged trace here (default: stdout)", "");
  cli.add_option("timeout-ms", "per-scrape connect/read budget", "2000");

  try {
    if (!cli.parse(argc, argv)) return 0;

    std::vector<dist::TraceSource> sources;
    if (!cli.str("status-file").empty())
      sources = dist::sources_from_status(load_status_file(cli.str("status-file")));
    for (const std::string& spec : cli.str_list("source"))
      sources.push_back(parse_source(spec));
    if (sources.empty())
      throw std::invalid_argument("no sources: give --status-file and/or --source");

    const int timeout_ms = static_cast<int>(cli.integer("timeout-ms"));
    std::vector<dist::ProcessTrace> traces;
    for (const dist::TraceSource& source : sources) {
      std::optional<obs::Json> doc = dist::fetch_trace(source.admin, timeout_ms);
      if (!doc) {
        std::cerr << "srna-trace-collect: no trace from " << source.name << " ("
                  << source.admin.to_string() << ")\n";
        continue;
      }
      traces.push_back(dist::ProcessTrace{source.name, std::move(*doc)});
    }
    if (traces.empty()) throw std::runtime_error("no /tracez source answered");

    const obs::Json merged = dist::merge_traces(traces);
    if (cli.str("output").empty()) {
      std::cout << merged.dump(0) << "\n";
    } else {
      std::ofstream out(cli.str("output"));
      if (!out) throw std::runtime_error("cannot write " + cli.str("output"));
      out << merged.dump(0) << "\n";
      if (!out) throw std::runtime_error("short write to " + cli.str("output"));
      std::cerr << "srna-trace-collect: merged " << traces.size() << "/"
                << sources.size() << " process traces into " << cli.str("output")
                << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "srna-trace-collect: " << e.what() << "\n";
    return 1;
  }
}
