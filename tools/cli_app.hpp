// The `srna` command-line tool, as a library so the test suite can drive it.
//
// Subcommands:
//   compare   MCOS (or weighted similarity) between two structures
//   fold      Nussinov-fold a sequence into a structure
//   show      arc diagram + statistics of a structure
//   validate  well-formedness / pseudoknot report
//   generate  synthesize a workload structure (worst/random/rrna/knot)
//   convert   CT <-> BPSEQ <-> dot-bracket conversion
//
// Structure arguments accept either a file path (*.ct / *.bpseq) or a
// dot-bracket literal.
#pragma once

#include <iosfwd>

namespace srna::tools {

// Returns the process exit code. Never throws: errors are printed to `err`
// and mapped to exit code 2 (usage) or 1 (runtime failure).
int run_cli(int argc, const char* const* argv, std::ostream& out, std::ostream& err);

}  // namespace srna::tools
