// srna-dist-bench — scaling benchmark for the distributed serving tier.
//
// Measures the same closed-loop workload against a ladder of topologies:
//
//   direct-1proc     one srna-serve process, clients connect straight to it
//   router-1shard    srna-router semantics (in-process dist::Router front end)
//                    over one shard — isolates the router hop overhead
//   router-Nshards   N supervised srna-serve shards behind the router
//
// The workload cycles `--pairs` distinct structure pairs for `--rounds`
// passes. Sized so the distinct working set overflows ONE shard's result
// cache (--pairs > --cache-entries) but fits the fleet's aggregate capacity
// (pairs / N < cache-entries for N >= 2): on a single-core box the speedup
// at 2+ shards comes from cache-capacity aggregation — the consistent hash
// gives each shard a stable 1/N slice of the key space, so its LRU stops
// thrashing — not from extra CPUs. That is the capacity story the
// distributed tier exists for (docs/SERVING.md).
//
// Every shard is a real forked srna-serve (dist/supervisor.hpp), so the
// numbers include process isolation, loopback TCP, and admin-plane probing.
// The run fails if any request goes unanswered, and --require-speedup=N:F
// turns the scaling claim into an exit code for CI
// (scripts/check_bench_report.sh gates the committed
// BENCH_serving_distributed.json with it).
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dist/net.hpp"
#include "dist/router.hpp"
#include "dist/supervisor.hpp"
#include "obs/report.hpp"
#include "rna/dot_bracket.hpp"
#include "rna/generators.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"

namespace {

using namespace srna;
using Clock = std::chrono::steady_clock;

// Blocking JSON-lines client on the dist socket helpers; one request in
// flight per connection.
class LineClient {
 public:
  explicit LineClient(const dist::Endpoint& endpoint) {
    fd_ = dist::tcp_connect(endpoint, 30000);
    if (fd_ < 0) throw std::runtime_error("cannot connect to " + endpoint.to_string());
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  serve::ServeResponse roundtrip(const serve::ServeRequest& req) {
    if (!dist::send_all(fd_, req.to_line() + "\n"))
      throw std::runtime_error("send failed (server gone?)");
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return serve::ServeResponse::from_line(line);
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) throw std::runtime_error("connection closed mid-response");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct InstanceResult {
  std::string instance;
  int shards = 0;
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t cache_hits = 0;
  double elapsed_seconds = 0;
  double p50 = 0;
  double p99 = 0;

  [[nodiscard]] double throughput() const {
    return elapsed_seconds > 0 ? static_cast<double>(ok) / elapsed_seconds : 0.0;
  }
  [[nodiscard]] double hit_rate() const {
    return ok > 0 ? static_cast<double>(cache_hits) / static_cast<double>(ok) : 0.0;
  }
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

struct BenchConfig {
  std::string serve_bin;
  std::vector<std::string> shard_args;
  std::size_t pairs = 800;
  int rounds = 3;
  int concurrency = 4;
  int ready_timeout_ms = 20000;
};

// Spawns `shards` srna-serve processes, waits for /readyz, returns their
// addresses. The supervisor keeps monitoring them for the instance's
// lifetime.
std::vector<dist::ShardAddress> spawn_fleet(dist::Supervisor& supervisor,
                                            const BenchConfig& bench, int shards) {
  std::vector<dist::ShardAddress> fleet;
  for (int i = 0; i < shards; ++i) {
    dist::ShardAddress shard;
    shard.name = "shard" + std::to_string(i);
    shard.data = {"127.0.0.1", dist::pick_free_port()};
    shard.admin = {"127.0.0.1", dist::pick_free_port()};
    dist::ProcessSpec spec;
    spec.name = shard.name;
    spec.binary = bench.serve_bin;
    spec.args = {"--host=127.0.0.1", "--port=" + std::to_string(shard.data.port),
                 "--admin-port=" + std::to_string(shard.admin.port), "--log-level=off"};
    for (const std::string& extra : bench.shard_args) spec.args.push_back(extra);
    if (supervisor.start(spec) < 0)
      throw std::runtime_error("cannot spawn " + shard.name);
    fleet.push_back(std::move(shard));
  }
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(bench.ready_timeout_ms);
  for (const dist::ShardAddress& shard : fleet) {
    for (;;) {
      // 2xx == ready; the "ok\n" body is for humans.
      if (dist::http_get_body(shard.admin, "/readyz", 250)) break;
      if (Clock::now() >= deadline)
        throw std::runtime_error(shard.name + " never became ready");
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  return fleet;
}

// Closed loop: `concurrency` client threads share a global request counter;
// request i asks pair (i mod pairs), so each round replays the same key set.
InstanceResult drive(const dist::Endpoint& endpoint, const BenchConfig& bench,
                     const std::vector<serve::ServeRequest>& pool,
                     const std::string& instance, int shards) {
  const std::uint64_t requests =
      static_cast<std::uint64_t>(bench.rounds) * static_cast<std::uint64_t>(pool.size());
  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> hits{0};
  std::vector<double> latencies;
  std::mutex latencies_mutex;

  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < bench.concurrency; ++c) {
    clients.emplace_back([&] {
      LineClient client(endpoint);
      for (std::uint64_t i = next.fetch_add(1); i < requests; i = next.fetch_add(1)) {
        serve::ServeRequest req = pool[i % pool.size()];
        req.id = static_cast<std::int64_t>(i);
        const Clock::time_point start = Clock::now();
        const serve::ServeResponse resp = client.roundtrip(req);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - start).count();
        answered.fetch_add(1);
        if (resp.status == serve::ResponseStatus::kOk) {
          ok.fetch_add(1);
          if (resp.cache_hit) hits.fetch_add(1);
          std::lock_guard lock(latencies_mutex);
          latencies.push_back(ms);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();

  if (answered.load() != requests)
    throw std::runtime_error(instance + ": LOST RESPONSES — issued " +
                             std::to_string(requests) + ", answered " +
                             std::to_string(answered.load()));

  std::sort(latencies.begin(), latencies.end());
  InstanceResult result;
  result.instance = instance;
  result.shards = shards;
  result.requests = requests;
  result.ok = ok.load();
  result.cache_hits = hits.load();
  result.elapsed_seconds = elapsed;
  result.p50 = percentile(latencies, 0.50);
  result.p99 = percentile(latencies, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("srna-dist-bench",
                "closed-loop scaling benchmark: direct serving vs srna-router "
                "over 1..N supervised shards");
  cli.add_option("serve-bin", "shard binary (default: srna-serve next to this one)", "");
  cli.add_option("shard-counts", "router topologies to measure", "1,2,4");
  cli.add_option("pairs", "distinct structure pairs cycled per round", "120");
  cli.add_option("rounds", "passes over the pair set (first pass fills caches)", "3");
  cli.add_option("length", "structure length", "1000");
  cli.add_option("density", "arc density for the random generator", "0.4");
  cli.add_option("seed", "workload seed", "42");
  cli.add_option("concurrency", "closed-loop client threads", "4");
  cli.add_option("cache-entries", "result cache capacity PER SHARD", "96");
  cli.add_option("workers", "worker threads per shard", "2");
  cli.add_option("queue-capacity", "admission queue slots per shard", "256");
  cli.add_option("require-speedup",
                 "SHARDS:FACTOR — exit 1 unless router-SHARDSshards reaches "
                 "FACTOR x direct-1proc throughput (e.g. 2:1.6; empty = report only)",
                 "");
  cli.add_option("output", "report path (none = skip)", "BENCH_serving_distributed.json");
  cli.add_flag("smoke", "small preset for ctest (overrides sizes; no speedup gate)");

  try {
    if (!cli.parse(argc, argv)) return 0;

    BenchConfig bench;
    bench.pairs = static_cast<std::size_t>(cli.integer("pairs"));
    bench.rounds = static_cast<int>(cli.integer("rounds"));
    bench.concurrency = static_cast<int>(cli.integer("concurrency"));
    Pos length = static_cast<Pos>(cli.integer("length"));
    std::size_t cache_entries = static_cast<std::size_t>(cli.integer("cache-entries"));
    std::vector<std::int64_t> shard_counts = cli.int_list("shard-counts");
    std::string require_speedup = cli.str("require-speedup");
    if (cli.flag("smoke")) {
      bench.pairs = 48;
      bench.rounds = 2;
      bench.concurrency = 2;
      length = 60;
      cache_entries = 32;
      shard_counts = {1, 2};
      require_speedup.clear();
    }

    bench.serve_bin = cli.str("serve-bin");
    if (bench.serve_bin.empty()) {
      // Default to the srna-serve sitting next to this binary.
      std::string self(argv[0]);
      const std::size_t slash = self.rfind('/');
      bench.serve_bin =
          (slash == std::string::npos ? std::string() : self.substr(0, slash + 1)) +
          "srna-serve";
    }
    bench.shard_args = {"--cache-entries=" + std::to_string(cache_entries),
                        "--workers=" + std::to_string(cli.integer("workers")),
                        "--queue-capacity=" + std::to_string(cli.integer("queue-capacity"))};

    // The distinct-pair pool: pair i = (structure i, structure i+1), one
    // canonical cache key each.
    const std::uint64_t seed = static_cast<std::uint64_t>(cli.integer("seed"));
    std::vector<std::string> structures;
    structures.reserve(bench.pairs + 1);
    for (std::size_t i = 0; i <= bench.pairs; ++i)
      structures.push_back(
          to_dot_bracket(random_structure(length, cli.real("density"), seed + 1000 * i)));
    std::vector<serve::ServeRequest> pool(bench.pairs);
    for (std::size_t i = 0; i < bench.pairs; ++i) {
      pool[i].a = structures[i];
      pool[i].b = structures[i + 1];
    }

    std::cout << "workload: " << bench.pairs << " distinct pairs x " << bench.rounds
              << " rounds, length " << length << ", cache " << cache_entries
              << "/shard (working set " << (bench.pairs > cache_entries ? "OVERFLOWS" : "fits")
              << " one shard)\n";

    std::vector<InstanceResult> results;

    {
      // Baseline: clients straight into one srna-serve, no router in the path.
      dist::Supervisor supervisor;
      const std::vector<dist::ShardAddress> fleet = spawn_fleet(supervisor, bench, 1);
      results.push_back(drive(fleet[0].data, bench, pool, "direct-1proc", 1));
      supervisor.stop_all();
      std::cout << results.back().instance << ": "
                << results.back().throughput() << " req/s, hit rate "
                << results.back().hit_rate() << "\n";
    }

    for (const std::int64_t count : shard_counts) {
      dist::Supervisor supervisor;
      const int shards = static_cast<int>(count);
      dist::RouterConfig config;
      config.shards = spawn_fleet(supervisor, bench, shards);
      dist::Router router(config);
      serve::TcpServer server(
          [&router](const std::string& line, const serve::TcpServer::EmitLine& emit) {
            router.handle_line(line, emit);
          },
          "127.0.0.1", 0);
      const std::string instance =
          "router-" + std::to_string(shards) + (shards == 1 ? "shard" : "shards");
      results.push_back(
          drive(dist::Endpoint{"127.0.0.1", server.port()}, bench, pool, instance, shards));
      server.stop();
      router.stop();
      supervisor.stop_all();
      std::cout << results.back().instance << ": "
                << results.back().throughput() << " req/s, hit rate "
                << results.back().hit_rate() << "\n";
    }

    const double direct_rps = results[0].throughput();
    std::cout << "\ninstance          shards  req/s      hit-rate  p50ms   p99ms   speedup\n";
    for (const InstanceResult& r : results)
      std::cout << r.instance << (r.instance.size() < 16 ? std::string(16 - r.instance.size(), ' ')
                                                         : " ")
                << "  " << r.shards << "       " << r.throughput() << "  " << r.hit_rate()
                << "  " << r.p50 << "  " << r.p99 << "  "
                << (direct_rps > 0 ? r.throughput() / direct_rps : 0.0) << "\n";

    const std::string output = cli.str("output");
    if (output != "none") {
      obs::RunReport report("bench/serving_distributed");
      report.set_command_line(argc, argv);
      obs::Json params = obs::Json::object();
      params.set("pairs", obs::Json(static_cast<std::uint64_t>(bench.pairs)));
      params.set("rounds", obs::Json(static_cast<std::int64_t>(bench.rounds)));
      params.set("length", obs::Json(static_cast<std::int64_t>(length)));
      params.set("density", obs::Json(cli.real("density")));
      params.set("seed", obs::Json(seed));
      params.set("concurrency", obs::Json(static_cast<std::int64_t>(bench.concurrency)));
      params.set("cache_entries_per_shard",
                 obs::Json(static_cast<std::uint64_t>(cache_entries)));
      params.set("workers_per_shard", obs::Json(cli.integer("workers")));
      report.set("params", std::move(params));
      obs::Json rows = obs::Json::array();
      for (const InstanceResult& r : results) {
        obs::Json row = obs::Json::object();
        row.set("instance", obs::Json(r.instance));
        row.set("shards", obs::Json(static_cast<std::int64_t>(r.shards)));
        row.set("requests", obs::Json(r.requests));
        row.set("ok", obs::Json(r.ok));
        row.set("cache_hit_rate", obs::Json(r.hit_rate()));
        row.set("throughput_rps", obs::Json(r.throughput()));
        row.set("latency_ms_p50", obs::Json(r.p50));
        row.set("latency_ms_p99", obs::Json(r.p99));
        row.set("speedup_vs_direct",
                obs::Json(direct_rps > 0 ? r.throughput() / direct_rps : 0.0));
        rows.push(std::move(row));
      }
      obs::Json res = obs::Json::object();
      res.set("instances", std::move(rows));
      report.set("results", std::move(res));
      if (!report.write(output)) {
        std::cerr << "cannot write " << output << "\n";
        return 1;
      }
      std::cout << "wrote " << output << "\n";
    }

    if (!require_speedup.empty()) {
      const std::size_t colon = require_speedup.find(':');
      if (colon == std::string::npos)
        throw std::invalid_argument("--require-speedup expects SHARDS:FACTOR");
      const int want_shards = std::stoi(require_speedup.substr(0, colon));
      const double want_factor = std::stod(require_speedup.substr(colon + 1));
      double got = 0.0;
      for (const InstanceResult& r : results)
        if (r.shards == want_shards && r.instance != "direct-1proc")
          got = direct_rps > 0 ? r.throughput() / direct_rps : 0.0;
      if (got < want_factor) {
        std::cerr << "SPEEDUP GATE FAILED: router-" << want_shards << "shards is " << got
                  << "x direct-1proc, need >= " << want_factor << "x\n";
        return 1;
      }
      std::cout << "speedup gate: router-" << want_shards << "shards " << got << "x >= "
                << want_factor << "x\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "srna-dist-bench: " << e.what() << "\n";
    return 1;
  }
}
