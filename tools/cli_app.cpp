#include "cli_app.hpp"

#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "align/anchored_alignment.hpp"
#include "core/traceback.hpp"
#include "core/weighted.hpp"
#include "db/structure_db.hpp"
#include "engine/engine.hpp"
#include "obs/session.hpp"
#include "rna/arc_diagram.hpp"
#include "rna/dot_bracket.hpp"
#include "rna/formats.hpp"
#include "rna/generators.hpp"
#include "rna/loops.hpp"
#include "rna/mfe_fold.hpp"
#include "rna/nussinov.hpp"
#include "rna/structure_stats.hpp"
#include "rna/svg_diagram.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

namespace srna::tools {

namespace {

struct LoadedStructure {
  SecondaryStructure structure;
  std::optional<Sequence> sequence;
  std::string origin;
};

// A structure argument is a file path when it names an existing file or has
// a structure-file extension; otherwise it is parsed as dot-bracket.
// Pseudoknots are allowed here — show/validate/convert inspect knotted
// structures, and the commands that cannot handle them (compare, search)
// reject with the solver's own precondition message.
LoadedStructure load_structure(const std::string& spec) {
  const bool looks_like_file = std::filesystem::exists(spec) || spec.ends_with(".ct") ||
                               spec.ends_with(".bpseq");
  if (looks_like_file) {
    ParseOptions permissive;
    permissive.allow_pseudoknots = true;
    AnnotatedStructure rec = read_structure_file(spec, permissive);
    return LoadedStructure{std::move(rec.structure), std::move(rec.sequence), spec};
  }
  return LoadedStructure{parse_dot_bracket(spec), std::nullopt, "dot-bracket literal"};
}

int cmd_compare(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  CliParser cli("srna compare", "MCOS between two structures");
  cli.add_option("algorithm", McosEngine::instance().names_joined(" | "), "srna2");
  cli.add_option("layout", "dense | compressed", "dense");
  cli.add_option("kernel", "dense-slice kernel: auto | event-run | simd | four-russians",
                 "auto");
  cli.add_option("threads", "parallel stage one with this many threads (0 = sequential)", "0");
  cli.add_option("memory-budget",
                 "resident solver byte cap (srna-lean; 0 = unlimited)", "0");
  cli.add_flag("traceback", "print the matched arc pairs");
  cli.add_flag("weighted", "Bafna-style weighted similarity (uses sequences when available)");
  cli.add_flag("stats", "print solver statistics");
  obs::ObsSession::add_cli_options(cli);
  std::vector<const char*> argv{"srna-compare"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;
  if (cli.positional().size() != 2) {
    err << "compare needs exactly two structures (file or dot-bracket)\n";
    return 2;
  }

  obs::ObsSession session(obs::ObsSession::paths_from_cli(cli), "srna compare");

  const LoadedStructure a = load_structure(cli.positional()[0]);
  const LoadedStructure b = load_structure(cli.positional()[1]);

  SolverConfig config;
  if (cli.str("layout") == "compressed") config.layout = SliceLayout::kCompressed;
  config.kernel = parse_kernel_variant(cli.str("kernel"));
  config.memory_budget_bytes = static_cast<std::uint64_t>(cli.integer("memory-budget"));

  if (cli.flag("weighted")) {
    const Sequence* s1 = a.sequence && b.sequence ? &*a.sequence : nullptr;
    const Sequence* s2 = a.sequence && b.sequence ? &*b.sequence : nullptr;
    const auto r = weighted_similarity(a.structure, b.structure, {}, s1, s2);
    out << "weighted similarity: " << r.value
        << (s1 != nullptr ? "  (with sequences)\n" : "  (structures only)\n");
    return 0;
  }

  const int threads = static_cast<int>(cli.integer("threads"));
  // Back-compat: --threads=N selects the parallel backend, exactly as the
  // pre-engine CLI did.
  std::string algorithm = cli.str("algorithm");
  if (threads > 0) {
    algorithm = "prna";
    config.threads = threads;
  }
  {
    obs::Json inputs = obs::Json::array();
    for (const LoadedStructure* s : {&a, &b}) {
      obs::Json one = obs::Json::object();
      one.set("origin", obs::Json(s->origin));
      one.set("length", obs::Json(static_cast<std::int64_t>(s->structure.length())));
      one.set("arcs", obs::Json(static_cast<std::int64_t>(s->structure.arc_count())));
      inputs.push(std::move(one));
    }
    session.report().set("inputs", std::move(inputs));
    obs::Json opts = obs::Json::object();
    opts.set("algorithm", obs::Json(algorithm));
    opts.set("layout", obs::Json(cli.str("layout")));
    opts.set("kernel", obs::Json(kernel_variant_name(config.kernel)));
    opts.set("threads", obs::Json(static_cast<std::int64_t>(threads)));
    if (config.memory_budget_bytes != 0)
      opts.set("memory_budget_bytes", obs::Json(config.memory_budget_bytes));
    session.report().set("options", std::move(opts));
  }

  EngineResult result;
  std::string how;
  try {
    const SolverBackend& backend = McosEngine::instance().at(algorithm);
    result = solve_with(backend, a.structure, b.structure, config, Workspace::local());
    how = algorithm == "prna"
              ? "PRNA(" + std::to_string(result.threads_used) + " threads)"
              : algorithm;
    if (result.detail.is_object()) session.report().set(algorithm, std::move(result.detail));
  } catch (const std::exception& e) {
    // The report survives as a crash record: status, error text, whatever
    // metrics the run recorded before it died.
    session.report().set_error(e.what());
    session.finish();
    throw;
  }

  session.report().set("how", obs::Json(how));
  session.report().set("value", obs::Json(static_cast<std::int64_t>(result.value)));
  session.report().set("stats", result.stats.to_json());

  out << "MCOS value: " << result.value << "  (" << how << ")\n";
  if (cli.flag("stats")) out << result.stats.to_string() << "\n";
  if (cli.flag("traceback")) {
    const auto common = mcos_traceback(a.structure, b.structure, config.to_mcos());
    for (const ArcMatch& m : common.matches)
      out << "  " << m.a1 << "  <->  " << m.a2 << "\n";
    out << "common substructure: " << to_dot_bracket(common.as_structure()) << "\n";
  }
  for (const std::string& path : session.finish()) out << "wrote " << path << "\n";
  return 0;
}

int cmd_fold(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  CliParser cli("srna fold", "fold a sequence (Nussinov, or --mfe for the energy model)");
  cli.add_option("min-loop", "minimum hairpin loop size", "3");
  cli.add_flag("mfe", "minimize free energy instead of maximizing pairs");
  cli.add_flag("diagram", "draw the folded structure");
  std::vector<const char*> argv{"srna-fold"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;
  if (cli.positional().size() != 1) {
    err << "fold needs exactly one sequence (ACGU literal or structure file)\n";
    return 2;
  }

  Sequence seq;
  const std::string& spec = cli.positional()[0];
  if (std::filesystem::exists(spec)) {
    seq = read_structure_file(spec).sequence;
  } else {
    seq = Sequence::from_string(spec);
  }

  SecondaryStructure folded;
  if (cli.flag("mfe")) {
    MfeModel model;
    model.min_hairpin = static_cast<Pos>(cli.integer("min-loop"));
    const auto result = mfe_fold(seq, model);
    folded = result.structure;
    out << to_dot_bracket(folded) << "\n";
    out << "energy: " << result.energy << "  pairs: " << folded.arc_count() << "\n";
  } else {
    NussinovOptions options;
    options.min_loop = static_cast<Pos>(cli.integer("min-loop"));
    const auto result = nussinov_fold(seq, options);
    folded = result.structure;
    out << to_dot_bracket(folded) << "\n";
    out << "pairs: " << result.max_pairs << "\n";
  }
  if (cli.flag("diagram")) out << render_arc_diagram(folded, &seq);
  return 0;
}

int cmd_show(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  CliParser cli("srna show", "arc diagram and statistics");
  cli.add_option("svg", "also write an SVG rendering to this path", "");
  cli.add_flag("loops", "print the loop decomposition");
  std::vector<const char*> argv{"srna-show"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;
  if (cli.positional().size() != 1) {
    err << "show needs exactly one structure\n";
    return 2;
  }
  const LoadedStructure loaded = load_structure(cli.positional()[0]);
  const Sequence* seq = loaded.sequence ? &*loaded.sequence : nullptr;
  out << render_arc_diagram(loaded.structure, seq);
  out << compute_stats(loaded.structure).to_string() << "\n";

  if (cli.flag("loops")) {
    const auto decomposition = decompose_loops(loaded.structure);
    for (const auto kind : {LoopKind::kHairpin, LoopKind::kStack, LoopKind::kBulge,
                            LoopKind::kInternal, LoopKind::kMultibranch})
      out << to_string(kind) << ": " << decomposition.count(kind) << "  ";
    out << "exterior branches: " << decomposition.exterior_branches.size() << "\n";
  }

  if (const std::string svg_path = cli.str("svg"); !svg_path.empty()) {
    SvgDiagramOptions svg_opt;
    svg_opt.title = loaded.origin;
    std::ofstream svg_out(svg_path);
    if (!svg_out) {
      err << "cannot write " << svg_path << "\n";
      return 1;
    }
    svg_out << render_svg_diagram(loaded.structure, seq, svg_opt);
    out << "wrote " << svg_path << "\n";
  }
  return 0;
}

int cmd_validate(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  CliParser cli("srna validate", "well-formedness / pseudoknot report");
  std::vector<const char*> argv{"srna-validate"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;
  if (cli.positional().size() != 1) {
    err << "validate needs exactly one structure\n";
    return 2;
  }
  const LoadedStructure loaded = load_structure(cli.positional()[0]);
  const auto report =
      validate_arcs(loaded.structure.length(), loaded.structure.arcs_by_right());
  if (report.issues.empty()) {
    out << "OK: well-formed non-pseudoknot structure (" << loaded.structure.arc_count()
        << " arcs)\n";
    return 0;
  }
  for (const auto& issue : report.issues) out << issue.to_string() << "\n";
  out << (report.well_formed() ? "well-formed but pseudoknotted\n" : "malformed\n");
  return 1;
}

int cmd_generate(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  CliParser cli("srna generate", "synthesize a workload structure");
  cli.add_option("kind", "worst | random | rrna | knot | sequential", "worst");
  cli.add_option("length", "sequence length", "100");
  cli.add_option("arcs", "target arcs (rrna / sequential)", "20");
  cli.add_option("density", "pairing density (random)", "0.4");
  cli.add_option("seed", "generator seed", "1");
  cli.add_option("output", "write .ct/.bpseq file instead of printing dot-bracket", "");
  std::vector<const char*> argv{"srna-generate"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  const auto length = static_cast<Pos>(cli.integer("length"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const std::string kind = cli.str("kind");

  SecondaryStructure s;
  if (kind == "worst") {
    s = worst_case_structure(length);
  } else if (kind == "random") {
    s = random_structure(length, cli.real("density"), seed);
  } else if (kind == "rrna") {
    s = rrna_like_structure(length, static_cast<std::size_t>(cli.integer("arcs")), seed);
  } else if (kind == "knot") {
    s = pseudoknot_structure(length, seed);
  } else if (kind == "sequential") {
    s = sequential_arcs_structure(length, static_cast<Pos>(cli.integer("arcs")));
  } else {
    err << "unknown kind: " << kind << "\n";
    return 2;
  }

  const std::string output = cli.str("output");
  if (output.empty()) {
    out << to_dot_bracket(s) << "\n";
  } else {
    AnnotatedStructure rec{"srna generate --kind=" + kind, sequence_for_structure(s, seed), s};
    write_structure_file(output, rec);
    out << "wrote " << output << " (" << s.arc_count() << " arcs)\n";
  }
  return 0;
}

int cmd_convert(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  CliParser cli("srna convert", "convert between CT, BPSEQ and dot-bracket");
  std::vector<const char*> argv{"srna-convert"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;
  if (cli.positional().size() != 2) {
    err << "convert needs <input> <output.(ct|bpseq)> (input may be dot-bracket)\n";
    return 2;
  }
  const LoadedStructure loaded = load_structure(cli.positional()[0]);
  AnnotatedStructure rec;
  rec.title = "converted from " + loaded.origin;
  rec.structure = loaded.structure;
  rec.sequence = loaded.sequence ? *loaded.sequence : sequence_for_structure(loaded.structure, 1);
  write_structure_file(cli.positional()[1], rec);
  out << "wrote " << cli.positional()[1] << "\n";
  return 0;
}

int cmd_align(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  CliParser cli("srna align", "structure-anchored sequence alignment");
  cli.add_option("match", "base match score", "2.0");
  cli.add_option("mismatch", "base mismatch score", "-1.0");
  cli.add_option("gap", "gap penalty", "-2.0");
  std::vector<const char*> argv{"srna-align"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;
  if (cli.positional().size() != 2) {
    err << "align needs exactly two structures (CT/BPSEQ carry sequences; a\n"
           "dot-bracket literal gets a synthesized consistent sequence)\n";
    return 2;
  }

  auto load_with_sequence = [](const std::string& spec) {
    LoadedStructure loaded = load_structure(spec);
    if (!loaded.sequence) loaded.sequence = sequence_for_structure(loaded.structure, 1);
    return loaded;
  };
  const LoadedStructure a = load_with_sequence(cli.positional()[0]);
  const LoadedStructure b = load_with_sequence(cli.positional()[1]);

  AlignScoring scoring;
  scoring.match = cli.real("match");
  scoring.mismatch = cli.real("mismatch");
  scoring.gap = cli.real("gap");

  const StructuralAlignment result =
      anchored_alignment(*a.sequence, a.structure, *b.sequence, b.structure, scoring);
  out << result.format(*a.sequence, *b.sequence);
  out << "common arcs: " << result.common_arcs << "  alignment score: " << result.alignment.score
      << "  identities: " << result.alignment.matches(*a.sequence, *b.sequence) << "/"
      << result.alignment.columns.size() << "  gaps: " << result.alignment.gaps() << "\n";
  return 0;
}

int cmd_search(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  CliParser cli("srna search", "rank a directory of structures against a query");
  cli.add_option("top", "show only the best K hits (0 = all)", "10");
  cli.add_option("threads", "worker threads for the scan (0 = default)", "0");
  cli.add_option("algorithm", McosEngine::instance().names_joined(" | "), "srna2");
  cli.add_flag("raw", "rank by raw common-arc count instead of normalized similarity");
  obs::ObsSession::add_cli_options(cli);
  std::vector<const char*> argv{"srna-search"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;
  if (cli.positional().size() != 2) {
    err << "search needs <query> <directory of .ct/.bpseq files>\n";
    return 2;
  }

  obs::ObsSession session(obs::ObsSession::paths_from_cli(cli), "srna search");

  const LoadedStructure query = load_structure(cli.positional()[0]);
  const StructureDatabase db = StructureDatabase::load_directory(cli.positional()[1]);
  if (db.empty()) {
    err << "no .ct/.bpseq files in " << cli.positional()[1] << "\n";
    return 1;
  }

  SearchOptions opt;
  opt.threads = static_cast<int>(cli.integer("threads"));
  opt.algorithm = cli.str("algorithm");
  if (cli.flag("raw")) opt.metric = SimilarityMetric::kCommonArcs;
  const auto hits =
      query_top_k(db, query.structure, static_cast<std::size_t>(cli.integer("top")), opt);

  {
    obs::Json doc = obs::Json::object();
    doc.set("query", obs::Json(query.origin));
    doc.set("database_size", obs::Json(static_cast<std::int64_t>(db.size())));
    doc.set("threads", obs::Json(static_cast<std::int64_t>(opt.threads)));
    doc.set("algorithm", obs::Json(opt.algorithm));
    obs::Json ranked = obs::Json::array();
    for (const QueryHit& hit : hits) {
      obs::Json one = obs::Json::object();
      one.set("name", obs::Json(db.record(hit.index).name));
      one.set("common_arcs", obs::Json(static_cast<std::int64_t>(hit.common_arcs)));
      one.set("score", obs::Json(hit.score));
      ranked.push(std::move(one));
    }
    doc.set("hits", std::move(ranked));
    session.report().set("search", std::move(doc));
  }

  TablePrinter table({"rank", "structure", "arcs", "common", "score"});
  int rank = 1;
  for (const QueryHit& hit : hits)
    table.add_row({std::to_string(rank++), db.record(hit.index).name,
                   std::to_string(db.record(hit.index).structure.arc_count()),
                   std::to_string(hit.common_arcs), fixed(hit.score, 3)});
  table.print(out);
  for (const std::string& path : session.finish()) out << "wrote " << path << "\n";
  return 0;
}

int cmd_matrix(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  CliParser cli("srna matrix", "pairwise similarity matrix over a directory of structures");
  cli.add_option("threads", "worker threads (0 = default)", "0");
  cli.add_option("algorithm", McosEngine::instance().names_joined(" | "), "srna2");
  cli.add_flag("csv", "emit CSV");
  obs::ObsSession::add_cli_options(cli);
  std::vector<const char*> argv{"srna-matrix"};
  for (const auto& a : args) argv.push_back(a.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) return 0;
  if (cli.positional().size() != 1) {
    err << "matrix needs a directory of .ct/.bpseq files\n";
    return 2;
  }

  obs::ObsSession session(obs::ObsSession::paths_from_cli(cli), "srna matrix");

  const StructureDatabase db = StructureDatabase::load_directory(cli.positional()[0]);
  if (db.size() < 2) {
    err << "need at least two structures in " << cli.positional()[0] << "\n";
    return 1;
  }
  SearchOptions opt;
  opt.threads = static_cast<int>(cli.integer("threads"));
  opt.algorithm = cli.str("algorithm");
  const auto matrix = all_pairs_similarity(db, opt);

  {
    obs::Json doc = obs::Json::object();
    doc.set("database_size", obs::Json(static_cast<std::int64_t>(db.size())));
    doc.set("threads", obs::Json(static_cast<std::int64_t>(opt.threads)));
    doc.set("algorithm", obs::Json(opt.algorithm));
    doc.set("pairs_compared",
            obs::Json(static_cast<std::int64_t>(db.size() * (db.size() - 1) / 2)));
    session.report().set("matrix", std::move(doc));
  }

  std::vector<std::string> header{""};
  for (std::size_t i = 0; i < db.size(); ++i) header.push_back(db.record(i).name);
  TablePrinter table(header);
  for (std::size_t i = 0; i < db.size(); ++i) {
    std::vector<std::string> row{db.record(i).name};
    for (std::size_t j = 0; j < db.size(); ++j) row.push_back(fixed(matrix(i, j), 3));
    table.add_row(row);
  }
  if (cli.flag("csv"))
    table.print_csv(out);
  else
    table.print(out);
  for (const std::string& path : session.finish()) out << "wrote " << path << "\n";
  return 0;
}

void print_usage(std::ostream& out) {
  out << "srna — common RNA secondary structure toolkit\n\n"
         "usage: srna <command> [options] [args]\n\n"
         "commands:\n"
         "  compare   <s1> <s2>   maximum common ordered substructure\n"
         "  align     <s1> <s2>   structure-anchored sequence alignment\n"
         "  fold      <seq>       Nussinov base-pair maximization\n"
         "  show      <s>         arc diagram + statistics (+ --svg, --loops)\n"
         "  validate  <s>         well-formedness / pseudoknot report\n"
         "  generate              synthesize workload structures\n"
         "  convert   <in> <out>  CT/BPSEQ/dot-bracket conversion\n"
         "  search    <q> <dir>   rank a structure directory against a query\n"
         "  matrix    <dir>       pairwise similarity matrix over a directory\n\n"
         "structures are file paths (*.ct, *.bpseq) or dot-bracket literals.\n"
         "run `srna <command> --help` for per-command options.\n";
}

}  // namespace

int run_cli(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  if (argc < 2) {
    print_usage(err);
    return 2;
  }
  const std::string command = argv[1];
  std::vector<std::string> rest;
  for (int i = 2; i < argc; ++i) rest.emplace_back(argv[i]);

  using Handler = int (*)(const std::vector<std::string>&, std::ostream&, std::ostream&);
  static const std::map<std::string, Handler> kCommands = {
      {"compare", cmd_compare},   {"fold", cmd_fold},         {"show", cmd_show},
      {"validate", cmd_validate}, {"generate", cmd_generate}, {"convert", cmd_convert},
      {"align", cmd_align},       {"search", cmd_search},     {"matrix", cmd_matrix},
  };

  if (command == "--help" || command == "help") {
    print_usage(out);
    return 0;
  }
  const auto it = kCommands.find(command);
  if (it == kCommands.end()) {
    err << "unknown command: " << command << "\n\n";
    print_usage(err);
    return 2;
  }
  try {
    return it->second(rest, out, err);
  } catch (const std::invalid_argument& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace srna::tools
