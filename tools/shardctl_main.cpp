// srna-shardctl — operator CLI for the distributed serving tier.
//
// Talks to a running srna-router's admin plane (or reads the topology from
// its --status-file) and answers the questions an operator actually asks:
//
//   srna-shardctl --admin 127.0.0.1:7643 status    fleet stats (router + shards)
//   srna-shardctl --admin ... metrics              merged Prometheus exposition
//   srna-shardctl --admin ... ready                exit 0 iff the router routes
//   srna-shardctl --admin ... flightz              merged flight-recorder view
//                                                  (recent records + anomaly
//                                                  exemplars across the fleet)
//   srna-shardctl --status-file s.json trace       scrape every /tracez and
//                                                  merge into one clock-aligned
//                                                  Perfetto trace (--output)
//   srna-shardctl --status-file s.json topology    resolved ports and pids
//   srna-shardctl --status-file s.json route --a=DOTB --b=DOTB
//       where a structure pair lands: its canonical digest plus the ring's
//       replica order, computed with the same hash the router uses (so the
//       answer matches without asking the router).
//
// `route` needs the shard names and ring shape; they come from the status
// file (or repeated --shard-name) plus --vnodes/--replicas, which must match
// the router's flags.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/hash_ring.hpp"
#include "dist/net.hpp"
#include "dist/trace_collect.hpp"
#include "obs/json.hpp"
#include "rna/dot_bracket.hpp"
#include "rna/structure_hash.hpp"
#include "util/cli.hpp"

namespace {

using namespace srna;

obs::Json load_status_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read status file " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::optional<obs::Json> doc = obs::Json::parse(buffer.str());
  if (!doc) throw std::runtime_error("status file " + path + " is not valid JSON");
  return *doc;
}

std::string fetch(const dist::Endpoint& admin, const std::string& path) {
  const std::optional<std::string> body = dist::http_get_body(admin, path, 2000);
  if (!body)
    throw std::runtime_error("no 2xx from http://" + admin.to_string() + path);
  return *body;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("srna-shardctl",
                "operator CLI for srna-router fleets "
                "(status | metrics | ready | flightz | trace | topology | route)");
  cli.add_option("admin", "router admin endpoint HOST:PORT", "");
  cli.add_option("status-file", "topology JSON written by srna-router --status-file", "");
  cli.add_option("shard-name", "shard name for `route` when no status file; repeatable", "");
  cli.add_option("a", "dot-bracket structure A for `route`", "");
  cli.add_option("b", "dot-bracket structure B for `route`", "");
  cli.add_option("replicas", "ring replicas (must match the router)", "2");
  cli.add_option("vnodes", "ring virtual nodes per shard (must match the router)", "128");
  cli.add_option("output", "`trace`: write the merged trace here (default: stdout)", "");

  try {
    if (!cli.parse(argc, argv)) return 0;
    if (cli.positional().size() != 1)
      throw std::invalid_argument(
          "expected exactly one command: status | metrics | ready | flightz | trace | "
          "topology | route");
    const std::string& command = cli.positional()[0];

    // Resolve the router admin endpoint: explicit flag wins, status file second.
    std::optional<dist::Endpoint> admin;
    std::optional<obs::Json> status;
    if (!cli.str("status-file").empty()) status = load_status_file(cli.str("status-file"));
    if (!cli.str("admin").empty()) {
      admin = dist::parse_endpoint(cli.str("admin"));
    } else if (status) {
      const obs::Json* router = status->find("router");
      const obs::Json* host = router ? router->find("host") : nullptr;
      const obs::Json* port = router ? router->find("admin_port") : nullptr;
      if (host && port && port->as_uint() != 0)
        admin = dist::Endpoint{host->as_string(),
                               static_cast<std::uint16_t>(port->as_uint())};
    }

    if (command == "status" || command == "metrics" || command == "ready" ||
        command == "flightz") {
      if (!admin)
        throw std::invalid_argument("command '" + command +
                                    "' needs --admin or a status file with an admin port");
      if (command == "status") {
        std::cout << fetch(*admin, "/statz") << "\n";
      } else if (command == "flightz") {
        // The router merges its own ring with every shard's, so one fetch is
        // the whole fleet's flight history.
        std::cout << fetch(*admin, "/flightz");
      } else if (command == "metrics") {
        std::cout << fetch(*admin, "/metrics");
      } else {
        const std::optional<std::string> body =
            dist::http_get_body(*admin, "/readyz", 2000);
        std::cout << (body ? *body : std::string("not ready")) << "\n";
        return body ? 0 : 1;
      }
      return 0;
    }

    if (command == "trace") {
      std::vector<dist::TraceSource> sources;
      if (status) sources = dist::sources_from_status(*status);
      if (sources.empty() && admin)
        sources.push_back(dist::TraceSource{"router", *admin});
      if (sources.empty())
        throw std::invalid_argument("`trace` needs --status-file (or --admin)");
      std::vector<dist::ProcessTrace> traces;
      for (const dist::TraceSource& source : sources) {
        if (std::optional<obs::Json> doc = dist::fetch_trace(source.admin, 2000))
          traces.push_back(dist::ProcessTrace{source.name, std::move(*doc)});
        else
          std::cerr << "srna-shardctl: no trace from " << source.name << " ("
                    << source.admin.to_string() << ")\n";
      }
      if (traces.empty()) throw std::runtime_error("no /tracez source answered");
      const obs::Json merged = dist::merge_traces(traces);
      if (cli.str("output").empty()) {
        std::cout << merged.dump(0) << "\n";
      } else {
        std::ofstream out(cli.str("output"));
        if (!out) throw std::runtime_error("cannot write " + cli.str("output"));
        out << merged.dump(0) << "\n";
      }
      return 0;
    }

    if (command == "topology") {
      if (!status) throw std::invalid_argument("`topology` needs --status-file");
      std::cout << status->dump(2) << "\n";
      return 0;
    }

    if (command == "route") {
      std::vector<std::string> names = cli.str_list("shard-name");
      if (names.empty() && status) {
        if (const obs::Json* shards = status->find("shards")) {
          for (const obs::Json& shard : shards->items())
            if (const obs::Json* name = shard.find("name"))
              names.push_back(name->as_string());
        }
      }
      if (names.empty())
        throw std::invalid_argument("`route` needs --status-file or --shard-name");
      if (cli.str("a").empty() || cli.str("b").empty())
        throw std::invalid_argument("`route` needs --a and --b dot-brackets");

      const SecondaryStructure a = parse_dot_bracket(cli.str("a"));
      const SecondaryStructure b = parse_dot_bracket(cli.str("b"));
      const std::uint64_t digest = hash_structure_pair(a, b);

      dist::HashRing ring(static_cast<int>(cli.integer("vnodes")));
      for (const std::string& name : names) ring.add_node(name);
      const std::vector<std::string> owners =
          ring.owners(digest, static_cast<std::size_t>(cli.integer("replicas")));

      obs::Json out = obs::Json::object();
      out.set("digest", obs::Json(digest_hex(digest)));
      obs::Json replicas = obs::Json::array();
      for (const std::string& owner : owners) replicas.push(obs::Json(owner));
      out.set("replicas", std::move(replicas));
      std::cout << out.dump(2) << "\n";
      return 0;
    }

    throw std::invalid_argument("unknown command '" + command + "'");
  } catch (const std::exception& e) {
    std::cerr << "srna-shardctl: " << e.what() << "\n";
    return 1;
  }
}
