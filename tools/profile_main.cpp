// srna-profile — parallel execution analyzer.
//
// Runs the PRNA solve on the Table I worst-case pair under hardware
// counters, computes the slice-DAG critical path from the measured costs,
// and prints measured speedup next to the Brent-bound ceiling for each
// thread count — one table that says whether the gap to ideal scaling is
// schedule overhead (measured below simulated), dependency structure
// (ceiling itself is low), or hardware (low IPC / high miss rate).
//
//   srna-profile                         # L=400, threads 1,2,4, stealing
//   srna-profile --length=800 --threads=1,2,4,8 --schedule=static
//   srna-profile --smoke                 # tiny instance, for the test suite
//
// Writes BENCH_parallel_analysis.json (override with --report=..., skip
// with --report=none) in the repo's bench trajectory format: a "rows" array
// keyed by threads plus the "parallel_analysis" block, gated by
// scripts/check_bench_report.sh like every other BENCH_*.json series.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "obs/cpath/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/perf/memory.hpp"
#include "obs/perf/perf_counters.hpp"
#include "obs/report.hpp"
#include "rna/generators.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

namespace {

using namespace srna;

// Registry totals for one perf.<phase>.* family; value() sums all threads'
// shards, so stage-one numbers aggregate every worker lane.
struct PhaseCounters {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;

  static PhaseCounters read(const std::string& phase) {
    auto& reg = obs::Registry::instance();
    const std::string prefix = "perf." + phase;
    PhaseCounters c;
    c.cycles = reg.counter(prefix + ".cycles").value();
    c.instructions = reg.counter(prefix + ".instructions").value();
    c.cache_references = reg.counter(prefix + ".cache_references").value();
    c.cache_misses = reg.counter(prefix + ".cache_misses").value();
    c.branch_misses = reg.counter(prefix + ".branch_misses").value();
    return c;
  }

  PhaseCounters delta_since(const PhaseCounters& earlier) const {
    PhaseCounters d;
    d.cycles = cycles - earlier.cycles;
    d.instructions = instructions - earlier.instructions;
    d.cache_references = cache_references - earlier.cache_references;
    d.cache_misses = cache_misses - earlier.cache_misses;
    d.branch_misses = branch_misses - earlier.branch_misses;
    return d;
  }

  [[nodiscard]] double ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) / static_cast<double>(cycles) : 0.0;
  }
  [[nodiscard]] double miss_rate() const {
    return cache_references > 0
               ? static_cast<double>(cache_misses) / static_cast<double>(cache_references)
               : 0.0;
  }

  [[nodiscard]] obs::Json to_json() const {
    obs::Json doc = obs::Json::object();
    doc.set("cycles", obs::Json(cycles));
    doc.set("instructions", obs::Json(instructions));
    doc.set("cache_references", obs::Json(cache_references));
    doc.set("cache_misses", obs::Json(cache_misses));
    doc.set("branch_misses", obs::Json(branch_misses));
    doc.set("ipc", obs::Json(ipc()));
    doc.set("cache_miss_rate", obs::Json(miss_rate()));
    return doc;
  }
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("srna-profile",
                "run a PRNA solve under hardware counters and print measured "
                "speedup against the slice-DAG Brent-bound ceiling");
  cli.add_option("length", "worst-case sequence length (Table I pair, self-comparison)",
                 "400");
  cli.add_option("threads", "thread counts to measure", "1,2,4");
  cli.add_option("schedule", "stealing | static | dynamic", "stealing");
  cli.add_option("report",
                 "run-report path (default BENCH_parallel_analysis.json; none = skip)", "");
  cli.add_flag("smoke", "tiny fast instance (L=64, threads 1,2, no report) for the "
               "test suite");
  if (!cli.parse(argc, argv)) return 0;

  const bool smoke = cli.flag("smoke");
  const Pos length = smoke ? Pos{64} : static_cast<Pos>(cli.integer("length"));
  std::vector<int> threads;
  if (smoke) {
    threads = {1, 2};
  } else {
    for (const auto t : cli.int_list("threads"))
      if (t >= 1) threads.push_back(static_cast<int>(t));
  }
  if (threads.empty() || threads.front() != 1) threads.insert(threads.begin(), 1);

  SolverConfig config;
  const std::string schedule_name = cli.str("schedule");
  if (schedule_name == "static")
    config.schedule = PrnaSchedule::kStaticColumns;
  else if (schedule_name == "dynamic")
    config.schedule = PrnaSchedule::kDynamic;
  else if (schedule_name == "stealing")
    config.schedule = PrnaSchedule::kStealing;
  else {
    std::fprintf(stderr, "unknown --schedule '%s'\n", schedule_name.c_str());
    return 1;
  }

  obs::publish_counter_availability();
  const bool perf_available =
      !obs::CounterSet::disabled_by_env() && obs::CounterSet::local().available();

  const SecondaryStructure s = worst_case_structure(length);
  const auto& backend = McosEngine::instance().at("prna");

  obs::RunReport report("srna-profile");
  report.set_command_line(argc, argv);
  {
    obs::Json params = obs::Json::object();
    params.set("length", obs::Json(static_cast<std::int64_t>(length)));
    params.set("arcs", obs::Json(static_cast<std::uint64_t>(s.arc_count())));
    params.set("schedule", obs::Json(schedule_name));
    params.set("perf_counters_available", obs::Json(perf_available));
    report.set("parameters", std::move(params));
  }

  // --- Measured runs, one per thread count (the 1-thread run doubles as
  // the cost-model calibration: seconds per cell + serial phase time). ---
  struct Measured {
    int threads = 1;
    double wall_seconds = 0.0;
    McosStats stats;
    PhaseCounters stage1;
    Score value = 0;
  };
  std::vector<Measured> runs;
  const char* kPhases[] = {"prna.preprocess", "prna.stage1", "prna.stage2"};
  obs::Json phase_rows = obs::Json::array();
  for (const int k : threads) {
    config.threads = k;
    PhaseCounters before[3];
    for (int i = 0; i < 3; ++i) before[i] = PhaseCounters::read(kPhases[i]);
    WallTimer timer;
    const EngineResult r = solve_with(backend, s, s, config, Workspace::local());
    Measured m;
    m.threads = k;
    m.wall_seconds = timer.seconds();
    m.stats = r.stats;
    m.value = r.value;
    m.stage1 = PhaseCounters::read("prna.stage1").delta_since(before[1]);
    for (int i = 0; i < 3; ++i) {
      obs::Json row = PhaseCounters::read(kPhases[i]).delta_since(before[i]).to_json();
      row.set("phase", obs::Json(std::string(kPhases[i])));
      row.set("threads", obs::Json(static_cast<std::int64_t>(k)));
      row.set("available", obs::Json(perf_available));
      phase_rows.push(std::move(row));
    }
    runs.push_back(std::move(m));
  }
  report.set("phase_counters", std::move(phase_rows));

  // --- Cost model from the 1-thread run; critical path + Brent bounds. ---
  const Measured& base = runs.front();
  const double seconds_per_cell =
      base.stats.cells_tabulated > 0
          ? base.stats.stage1_seconds / static_cast<double>(base.stats.cells_tabulated)
          : 0.0;
  const double serial_seconds =
      base.stats.preprocess_seconds + base.stats.stage2_seconds;
  const obs::ParallelAnalysis analysis =
      obs::analyze_parallel(s, s, seconds_per_cell, serial_seconds, threads);
  report.set("parallel_analysis", analysis.to_json());

  // --- The table: measured vs ceiling vs simulated, plus stage-one IPC and
  // cache behavior (or an explicit "counters unavailable" note). ---
  std::printf("srna-profile: L=%d worst-case pair (%zu arcs), schedule=%s\n",
              static_cast<int>(length), static_cast<std::size_t>(s.arc_count()),
              schedule_name.c_str());
  std::printf("stage one: %zu slices, work %.4f s, critical path %.4f s "
              "(%zu slices deep), parallelism %.2f, serial %.4f s\n",
              analysis.slices, analysis.total_work_seconds,
              analysis.critical_path_seconds, analysis.critical_path_slices,
              analysis.parallelism, analysis.serial_seconds);
  if (!perf_available)
    std::printf("hardware counters unavailable (perf_event_open denied or "
                "SRNA_DISABLE_PERF_COUNTERS=1); cycle columns read 0\n");

  TablePrinter table({"threads", "wall[s]", "speedup", "ceiling", "simulated",
                      "s1 cycles", "s1 IPC", "s1 miss%"});
  obs::Json rows = obs::Json::array();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Measured& m = runs[i];
    const double speedup = m.wall_seconds > 0 ? base.wall_seconds / m.wall_seconds : 0.0;
    const obs::CpathThreadRow& bound = analysis.rows[i];
    table.add_row({std::to_string(m.threads), fixed(m.wall_seconds, 4), fixed(speedup, 2),
                   fixed(bound.ceiling_speedup, 2), fixed(bound.simulated_speedup, 2),
                   std::to_string(m.stage1.cycles), fixed(m.stage1.ipc(), 2),
                   fixed(100.0 * m.stage1.miss_rate(), 1)});
    obs::Json row = obs::Json::object();
    row.set("threads", obs::Json(static_cast<std::int64_t>(m.threads)));
    row.set("wall_seconds", obs::Json(m.wall_seconds));
    row.set("speedup", obs::Json(speedup));
    row.set("ceiling_speedup", obs::Json(bound.ceiling_speedup));
    row.set("simulated_speedup", obs::Json(bound.simulated_speedup));
    row.set("value", obs::Json(static_cast<std::int64_t>(m.value)));
    row.set("stage1_cycles", obs::Json(m.stage1.cycles));
    row.set("stage1_instructions", obs::Json(m.stage1.instructions));
    row.set("stage1_ipc", obs::Json(m.stage1.ipc()));
    row.set("stage1_cache_miss_rate", obs::Json(m.stage1.miss_rate()));
    row.set("perf_available", obs::Json(perf_available));
    rows.push(std::move(row));
  }
  table.print(std::cout);
  report.set("rows", std::move(rows));

  // Memory ledger: what the solves cost in bytes (engine gauges were set by
  // solve_with; RSS is sampled here).
  report.set("memory", obs::memory_ledger_json());
  report.add_metrics_snapshot();

  const std::string report_arg = cli.str("report");
  if (smoke && report_arg.empty()) return 0;  // --smoke writes nothing by default
  if (report_arg == "none") return 0;
  const std::string target =
      report_arg.empty() ? "BENCH_parallel_analysis.json" : report_arg;
  if (!report.write(target)) {
    std::fprintf(stderr, "cannot write %s\n", target.c_str());
    return 1;
  }
  std::printf("wrote %s\n", target.c_str());
  return 0;
}
