// srna-loadgen — load generator and latency harness for the query service.
//
// Drives either an in-process QueryService (default; zero networking, used
// by the ctest smoke test) or running servers over TCP (--connect, repeatable:
// several endpoints round-robin client-side, so one invocation can drive an
// srna-router, a raw shard fleet, or both for comparison; the summary and
// report break responses and latency out per endpoint).
// Two arrival models:
//   --mode=closed   N client threads, one request in flight each (classic
//                   closed loop; measures capacity).
//   --mode=open     requests injected at a fixed --rate regardless of
//                   completions (measures behavior under overload:
//                   backpressure rejects, deadline timeouts). In-process only.
//
// The synthetic workload is a deterministic pool of random structure pairs
// (--structures/--length/--density/--seed); --repeat-fraction of requests
// re-ask an earlier pair, which is what exercises the result cache. Every
// response is accounted for — the run fails loudly if any request goes
// unanswered (the "zero lost responses" check the serving tests rely on).
//
// Results: human summary on stdout plus a machine-readable report
// (default BENCH_serving_throughput.json; --output=none to skip) with
// throughput, exact p50/p90/p99 latency, status counts, and cache hit rate.
#include <arpa/inet.h>
#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/report.hpp"
#include "rna/dot_bracket.hpp"
#include "rna/generators.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"

namespace {

using namespace srna;
using Clock = std::chrono::steady_clock;

struct Workload {
  std::vector<std::string> structures;  // dot-bracket pool
  double repeat_fraction = 0.25;
  std::string algorithm;
  double deadline_ms = 0;
  std::uint64_t trace_sample = 0;  // trace every N-th request (0 = none)
  // Shared-structure mode: every request asks about the same structure A
  // (structures[0]) against a varying B — the clustering/serving pattern
  // ("compare this query structure against the corpus") that batch
  // accumulation and single-flight coalescing target.
  bool shared_structure = false;

  // The i-th request of the run, deterministic in (seed, i). Repeats draw
  // from a small hot set so the cache sees the same canonical keys again.
  [[nodiscard]] serve::ServeRequest request(std::uint64_t seed, std::uint64_t i) const {
    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + i);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    const std::size_t n = structures.size();
    const std::size_t hot = std::max<std::size_t>(2, n / 8);
    std::size_t ia;
    std::size_t ib;
    if (coin(rng) < repeat_fraction) {
      ia = rng() % hot;
      ib = rng() % hot;
    } else {
      ia = rng() % n;
      ib = rng() % n;
    }
    if (shared_structure) ia = 0;
    serve::ServeRequest req;
    req.id = static_cast<std::int64_t>(i);
    req.a = structures[ia];
    req.b = structures[ib];
    req.algorithm = algorithm;
    req.deadline_ms = deadline_ms;
    req.trace = trace_sample > 0 && i % trace_sample == 0;
    return req;
  }
};

// Per---connect-endpoint accounting (client-side round-robin makes the
// split deterministic: request i goes to endpoint i mod E).
struct EndpointStats {
  std::mutex mutex;
  std::uint64_t responses = 0;
  std::uint64_t ok = 0;
  std::vector<double> latencies_ms;

  void record(const serve::ServeResponse& resp, double client_latency_ms) {
    std::lock_guard lock(mutex);
    ++responses;
    if (resp.status == serve::ResponseStatus::kOk) {
      ++ok;
      latencies_ms.push_back(client_latency_ms);
    }
  }
};

struct Tally {
  std::mutex mutex;
  std::vector<double> latencies_ms;  // completed (ok) requests only
  // Server-reported phase breakdown (ok responses): time a request sat in
  // the admission queue and time the engine spent on it — distinguishes
  // "the server is slow" from "the server is queueing".
  std::vector<double> server_queued_ms;
  std::vector<double> server_solve_ms;
  // Router hop fields (traced responses that passed through srna-router):
  // time from router admission to first dispatch, plus how many dispatch
  // attempts the router needed — failovers show up here as attempts > 1.
  std::vector<double> router_queued_ms;
  std::uint64_t hop_reporting = 0;
  std::uint64_t hop_attempts = 0;
  std::uint64_t hop_failovers = 0;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t over_memory = 0;  // memory admission, distinct from queue rejects
  std::uint64_t timeout = 0;
  std::uint64_t error = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t coalesced = 0;  // answered by another request's in-flight solve

  void record(const serve::ServeResponse& resp, double client_latency_ms) {
    std::lock_guard lock(mutex);
    if (resp.coalesced) ++coalesced;
    switch (resp.status) {
      case serve::ResponseStatus::kOk:
        ++ok;
        if (resp.cache_hit) ++cache_hits;
        latencies_ms.push_back(client_latency_ms);
        if (resp.trace_id != 0) {
          server_queued_ms.push_back(resp.queued_ms);
          server_solve_ms.push_back(resp.solve_ms);
        }
        if (resp.attempts > 0) {
          ++hop_reporting;
          hop_attempts += resp.attempts;
          hop_failovers += resp.attempts - 1;
          router_queued_ms.push_back(resp.router_queued_ms);
        }
        break;
      case serve::ResponseStatus::kRejected: ++rejected; break;
      case serve::ResponseStatus::kOverMemoryBudget: ++over_memory; break;
      case serve::ResponseStatus::kTimeout: ++timeout; break;
      case serve::ResponseStatus::kError: ++error; break;
    }
  }

  // Every status is a *delivered* response — the lost-response check below
  // fails only on requests that truly went unanswered.
  [[nodiscard]] std::uint64_t total() const {
    return ok + rejected + over_memory + timeout + error;
  }
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

// Minimal blocking JSON-lines client: one request in flight per connection.
class TcpClient {
 public:
  explicit TcpClient(const std::string& endpoint) {
    const std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos)
      throw std::invalid_argument("--connect expects HOST:PORT, got '" + endpoint + "'");
    const std::string host = endpoint.substr(0, colon);
    const std::string port = endpoint.substr(colon + 1);

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 || res == nullptr)
      throw std::runtime_error("cannot resolve " + endpoint);
    fd_ = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
    if (fd_ < 0 || ::connect(fd_, res->ai_addr, res->ai_addrlen) != 0) {
      ::freeaddrinfo(res);
      if (fd_ >= 0) ::close(fd_);
      throw std::runtime_error("cannot connect to " + endpoint);
    }
    ::freeaddrinfo(res);
  }
  ~TcpClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  serve::ServeResponse roundtrip(const serve::ServeRequest& req) {
    const std::string line = req.to_line() + "\n";
    std::size_t sent = 0;
    while (sent < line.size()) {
      const ssize_t n = ::send(fd_, line.data() + sent, line.size() - sent, 0);
      if (n <= 0) throw std::runtime_error("send failed (server gone?)");
      sent += static_cast<std::size_t>(n);
    }
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        const std::string resp_line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return serve::ServeResponse::from_line(resp_line);
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) throw std::runtime_error("connection closed mid-response");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("srna-loadgen", "load generator for the MCOS query service");
  cli.add_option("mode", "closed (N in-flight) or open (fixed-rate injection)", "closed");
  cli.add_option("concurrency", "closed-loop client threads", "4");
  cli.add_option("rate", "open-loop injection rate, requests/second", "200");
  cli.add_option("requests", "total requests to issue", "400");
  cli.add_option("structures", "synthetic structure pool size", "32");
  cli.add_option("length", "structure length", "120");
  cli.add_option("density", "arc density for the random generator", "0.4");
  cli.add_option("seed", "workload seed", "42");
  cli.add_option("repeat-fraction", "fraction of requests repeating a hot pair", "0.25");
  cli.add_flag("shared-structure",
               "every request shares one structure A (B varies over the pool) — "
               "the workload serve-side batching and coalescing target");
  cli.add_option("batch-window-ms",
                 "in-process service: shared-structure batch accumulation "
                 "window (0 = off)",
                 "0");
  cli.add_option("deadline-ms", "per-request deadline (0 = none)", "0");
  cli.add_option("algorithm", "engine backend per request", "srna2");
  cli.add_option("trace-sample",
                 "ask the server to trace every N-th request (0 = none)", "0");
  cli.add_option("connect",
                 "HOST:PORT of a running server; repeatable (or comma-separated) for "
                 "client-side round-robin across endpoints (default: in-process)",
                 "");
  cli.add_option("workers", "in-process service: worker threads", "4");
  cli.add_option("queue-capacity", "in-process service: admission queue slots", "64");
  cli.add_option("cache-entries", "in-process service: cache capacity", "4096");
  cli.add_option("memory-budget",
                 "in-process service: in-flight solver byte cap (0 = unlimited)", "0");
  cli.add_option("output", "report path (default BENCH_serving_throughput.json; none = skip)", "");
  cli.add_flag("smoke", "small deterministic preset for ctest (overrides sizes)");

  try {
    if (!cli.parse(argc, argv)) return 0;

    std::uint64_t requests = static_cast<std::uint64_t>(cli.integer("requests"));
    int concurrency = static_cast<int>(cli.integer("concurrency"));
    Pos length = static_cast<Pos>(cli.integer("length"));
    std::size_t pool = static_cast<std::size_t>(cli.integer("structures"));
    if (cli.flag("smoke")) {
      requests = 200;
      concurrency = 4;
      length = 80;
      pool = 16;
    }
    const std::uint64_t seed = static_cast<std::uint64_t>(cli.integer("seed"));

    Workload workload;
    workload.repeat_fraction = cli.real("repeat-fraction");
    workload.algorithm = cli.str("algorithm");
    workload.deadline_ms = cli.real("deadline-ms");
    workload.trace_sample = static_cast<std::uint64_t>(cli.integer("trace-sample"));
    workload.shared_structure = cli.flag("shared-structure");
    workload.structures.reserve(pool);
    for (std::size_t i = 0; i < pool; ++i)
      workload.structures.push_back(to_dot_bracket(
          random_structure(length, cli.real("density"), seed + 1000 * i)));

    Tally tally;
    const std::string mode = cli.str("mode");
    const std::vector<std::string> endpoints = cli.str_list("connect");
    if (mode != "closed" && mode != "open")
      throw std::invalid_argument("--mode must be 'closed' or 'open'");
    if (mode == "open" && !endpoints.empty())
      throw std::invalid_argument("--mode=open is in-process only");

    std::vector<std::unique_ptr<EndpointStats>> endpoint_stats;
    for (std::size_t e = 0; e < endpoints.size(); ++e)
      endpoint_stats.push_back(std::make_unique<EndpointStats>());

    // In-process runs snapshot the service's own stats after drain (server-
    // side coalescing/batching counters); null for remote runs.
    obs::Json service_stats;

    const Clock::time_point t0 = Clock::now();
    if (!endpoints.empty()) {
      // Closed loop against remote servers: each thread keeps one lazy
      // connection per endpoint; request i goes to endpoint i mod E.
      const std::size_t nendpoints = endpoints.size();
      std::atomic<std::uint64_t> next{0};
      std::atomic<bool> client_failed{false};
      std::vector<std::thread> clients;
      clients.reserve(static_cast<std::size_t>(concurrency));
      for (int c = 0; c < concurrency; ++c) {
        clients.emplace_back([&] {
          try {
            std::vector<std::unique_ptr<TcpClient>> conns(nendpoints);
            for (std::uint64_t i = next.fetch_add(1); i < requests;
                 i = next.fetch_add(1)) {
              const std::size_t e = static_cast<std::size_t>(i % nendpoints);
              if (!conns[e]) conns[e] = std::make_unique<TcpClient>(endpoints[e]);
              const Clock::time_point start = Clock::now();
              const serve::ServeResponse resp =
                  conns[e]->roundtrip(workload.request(seed, i));
              const double ms = std::chrono::duration<double, std::milli>(
                                    Clock::now() - start).count();
              tally.record(resp, ms);
              endpoint_stats[e]->record(resp, ms);
            }
          } catch (const std::exception& ex) {
            // Don't std::terminate the whole run on one broken connection;
            // the lost-response accounting below reports the damage.
            std::cerr << "srna-loadgen: client thread aborted: " << ex.what() << "\n";
            client_failed.store(true);
          }
        });
      }
      for (std::thread& t : clients) t.join();
      if (client_failed.load())
        std::cerr << "srna-loadgen: at least one client thread aborted early\n";
    } else {
      serve::ServiceConfig config;
      config.workers = static_cast<int>(cli.integer("workers"));
      config.queue_capacity = static_cast<std::size_t>(cli.integer("queue-capacity"));
      config.cache.capacity = static_cast<std::size_t>(cli.integer("cache-entries"));
      config.memory_budget_bytes = static_cast<std::uint64_t>(cli.integer("memory-budget"));
      config.batch_window_ms = cli.real("batch-window-ms");
      config.default_algorithm = workload.algorithm;
      serve::QueryService service(config);

      if (mode == "closed") {
        std::atomic<std::uint64_t> next{0};
        std::vector<std::thread> clients;
        clients.reserve(static_cast<std::size_t>(concurrency));
        for (int c = 0; c < concurrency; ++c) {
          clients.emplace_back([&] {
            for (std::uint64_t i = next.fetch_add(1); i < requests; i = next.fetch_add(1)) {
              const Clock::time_point start = Clock::now();
              const serve::ServeResponse resp = service.solve(workload.request(seed, i));
              tally.record(resp, std::chrono::duration<double, std::milli>(
                                     Clock::now() - start).count());
            }
          });
        }
        for (std::thread& t : clients) t.join();
      } else {
        // Open loop: inject at --rate; completions land on worker threads.
        std::mutex done_mutex;
        std::condition_variable done_cv;
        std::uint64_t outstanding = 0;
        const auto interval =
            std::chrono::duration<double>(1.0 / std::max(1.0, cli.real("rate")));
        Clock::time_point due = Clock::now();
        for (std::uint64_t i = 0; i < requests; ++i) {
          std::this_thread::sleep_until(due);
          due += std::chrono::duration_cast<Clock::duration>(interval);
          const Clock::time_point start = Clock::now();
          {
            std::lock_guard lock(done_mutex);
            ++outstanding;
          }
          service.submit(workload.request(seed, i), [&, start](const serve::ServeResponse& r) {
            tally.record(r, std::chrono::duration<double, std::milli>(
                                Clock::now() - start).count());
            std::lock_guard lock(done_mutex);
            --outstanding;
            done_cv.notify_all();
          });
        }
        std::unique_lock lock(done_mutex);
        done_cv.wait(lock, [&] { return outstanding == 0; });
      }
      service.drain();
      service_stats = service.stats_json();
    }
    const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();

    // Accounting: every issued request must have produced exactly one
    // recorded response.
    if (tally.total() != requests) {
      std::cerr << "LOST RESPONSES: issued " << requests << ", accounted "
                << tally.total() << "\n";
      return 1;
    }

    std::sort(tally.latencies_ms.begin(), tally.latencies_ms.end());
    std::sort(tally.server_queued_ms.begin(), tally.server_queued_ms.end());
    std::sort(tally.server_solve_ms.begin(), tally.server_solve_ms.end());
    std::sort(tally.router_queued_ms.begin(), tally.router_queued_ms.end());
    const double p50 = percentile(tally.latencies_ms, 0.50);
    const double p90 = percentile(tally.latencies_ms, 0.90);
    const double p99 = percentile(tally.latencies_ms, 0.99);
    const double throughput = elapsed > 0 ? static_cast<double>(tally.ok) / elapsed : 0.0;
    const double hit_rate =
        tally.ok > 0 ? static_cast<double>(tally.cache_hits) / static_cast<double>(tally.ok)
                     : 0.0;

    std::string transport_label = "in-process";
    if (!endpoints.empty()) {
      transport_label = "tcp " + endpoints[0];
      for (std::size_t e = 1; e < endpoints.size(); ++e)
        transport_label += "," + endpoints[e];
    }
    std::cout << "requests:    " << requests << " (" << mode << " loop, "
              << transport_label << ")\n"
              << "ok:          " << tally.ok << "  rejected: " << tally.rejected
              << "  over_memory: " << tally.over_memory << "  timeout: " << tally.timeout
              << "  error: " << tally.error << "\n"
              << "cache hits:  " << tally.cache_hits << " (hit rate "
              << hit_rate << ")\n"
              << "coalesced:   " << tally.coalesced << "\n"
              << "throughput:  " << throughput << " req/s over " << elapsed << " s\n"
              << "latency ms:  p50 " << p50 << "  p90 " << p90 << "  p99 " << p99 << "\n";
    if (service_stats.is_object()) {
      const obs::Json* batched = service_stats.find("batched_solves");
      const obs::Json* groups = service_stats.find("batch_groups");
      if (batched != nullptr && groups != nullptr &&
          (batched->as_uint() > 0 || groups->as_uint() > 0))
        std::cout << "batching:    " << groups->as_uint() << " groups, "
                  << batched->as_uint() << " member solves run by leaders\n";
    }
    if (!tally.server_queued_ms.empty())
      std::cout << "server ms:   queued p50 " << percentile(tally.server_queued_ms, 0.50)
                << "  p99 " << percentile(tally.server_queued_ms, 0.99) << "  |  solve p50 "
                << percentile(tally.server_solve_ms, 0.50) << "  p99 "
                << percentile(tally.server_solve_ms, 0.99) << "  ("
                << tally.server_queued_ms.size() << " reporting)\n";
    if (tally.hop_reporting > 0)
      std::cout << "router ms:   queued p50 " << percentile(tally.router_queued_ms, 0.50)
                << "  p99 " << percentile(tally.router_queued_ms, 0.99) << "  |  attempts "
                << tally.hop_attempts << " (" << tally.hop_failovers << " failovers, "
                << tally.hop_reporting << " reporting)\n";
    if (endpoints.size() > 1) {
      for (std::size_t e = 0; e < endpoints.size(); ++e) {
        EndpointStats& es = *endpoint_stats[e];
        std::sort(es.latencies_ms.begin(), es.latencies_ms.end());
        std::cout << "endpoint " << endpoints[e] << ":  responses " << es.responses
                  << "  ok " << es.ok << "  p50 " << percentile(es.latencies_ms, 0.50)
                  << "  p99 " << percentile(es.latencies_ms, 0.99) << "\n";
      }
    }

    const std::string output = cli.str("output");
    if (output != "none") {
      obs::RunReport report("bench/serving_throughput");
      report.set_command_line(argc, argv);
      obs::Json params = obs::Json::object();
      params.set("mode", obs::Json(mode));
      params.set("requests", obs::Json(requests));
      params.set("concurrency", obs::Json(static_cast<std::int64_t>(concurrency)));
      params.set("structures", obs::Json(static_cast<std::uint64_t>(pool)));
      params.set("length", obs::Json(static_cast<std::int64_t>(length)));
      params.set("repeat_fraction", obs::Json(workload.repeat_fraction));
      params.set("shared_structure", obs::Json(workload.shared_structure));
      params.set("batch_window_ms", obs::Json(cli.real("batch-window-ms")));
      params.set("algorithm", obs::Json(workload.algorithm));
      params.set("deadline_ms", obs::Json(workload.deadline_ms));
      params.set("transport", obs::Json(endpoints.empty() ? "in-process" : "tcp"));
      if (!endpoints.empty()) {
        obs::Json eps = obs::Json::array();
        for (const std::string& e : endpoints) eps.push(obs::Json(e));
        params.set("endpoints", std::move(eps));
      }
      params.set("trace_sample", obs::Json(workload.trace_sample));
      report.set("params", std::move(params));
      obs::Json results = obs::Json::object();
      results.set("ok", obs::Json(tally.ok));
      results.set("rejected", obs::Json(tally.rejected));
      results.set("over_memory", obs::Json(tally.over_memory));
      results.set("timeout", obs::Json(tally.timeout));
      results.set("error", obs::Json(tally.error));
      results.set("cache_hits", obs::Json(tally.cache_hits));
      results.set("cache_hit_rate", obs::Json(hit_rate));
      results.set("coalesced", obs::Json(tally.coalesced));
      results.set("throughput_rps", obs::Json(throughput));
      results.set("elapsed_seconds", obs::Json(elapsed));
      results.set("latency_ms_p50", obs::Json(p50));
      results.set("latency_ms_p90", obs::Json(p90));
      results.set("latency_ms_p99", obs::Json(p99));
      if (!tally.server_queued_ms.empty()) {
        results.set("server_queued_ms_p50",
                    obs::Json(percentile(tally.server_queued_ms, 0.50)));
        results.set("server_queued_ms_p99",
                    obs::Json(percentile(tally.server_queued_ms, 0.99)));
        results.set("server_solve_ms_p50",
                    obs::Json(percentile(tally.server_solve_ms, 0.50)));
        results.set("server_solve_ms_p99",
                    obs::Json(percentile(tally.server_solve_ms, 0.99)));
      }
      if (tally.hop_reporting > 0) {
        results.set("router_queued_ms_p50",
                    obs::Json(percentile(tally.router_queued_ms, 0.50)));
        results.set("router_queued_ms_p99",
                    obs::Json(percentile(tally.router_queued_ms, 0.99)));
        results.set("router_attempts", obs::Json(tally.hop_attempts));
        results.set("router_failovers", obs::Json(tally.hop_failovers));
        results.set("router_hop_reporting", obs::Json(tally.hop_reporting));
      }
      if (endpoints.size() > 1) {
        obs::Json per_endpoint = obs::Json::object();
        for (std::size_t e = 0; e < endpoints.size(); ++e) {
          EndpointStats& es = *endpoint_stats[e];  // latencies sorted above
          obs::Json one = obs::Json::object();
          one.set("responses", obs::Json(es.responses));
          one.set("ok", obs::Json(es.ok));
          one.set("latency_ms_p50", obs::Json(percentile(es.latencies_ms, 0.50)));
          one.set("latency_ms_p99", obs::Json(percentile(es.latencies_ms, 0.99)));
          per_endpoint.set(endpoints[e], std::move(one));
        }
        results.set("per_endpoint", std::move(per_endpoint));
      }
      report.set("results", std::move(results));
      // Server-side view (in-process runs): includes the coalescing and
      // batching counters the shared-structure workload exists to exercise.
      if (service_stats.is_object()) report.set("service", std::move(service_stats));
      report.add_metrics_snapshot();
      const std::string target =
          output.empty() ? "BENCH_serving_throughput.json" : output;
      if (!report.write(target)) {
        std::cerr << "cannot write " << target << "\n";
        return 1;
      }
      std::cout << "wrote " << target << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "srna-loadgen: " << e.what() << "\n";
    return 1;
  }
}
