// Structural alignment: the end-to-end Bafna-style pipeline the MCOS
// machinery was built for — align two RNA sequences so that their maximum
// common secondary structure is respected.
//
//   $ structural_alignment                 # synthetic homolog demo
//   $ structural_alignment a.ct b.ct       # your own structures
//
// The demo fabricates a pair of "homologs": one progenitor structure, two
// divergent copies (arc mutations + fresh sequences threaded onto the
// bonds), then anchors the alignment at the matched arcs and fills the
// unpaired stretches with Needleman-Wunsch.
#include <iostream>

#include "align/anchored_alignment.hpp"
#include "engine/engine.hpp"
#include "rna/formats.hpp"
#include "rna/generators.hpp"
#include "rna/mutations.hpp"

int main(int argc, char** argv) {
  using namespace srna;

  Sequence seq1, seq2;
  SecondaryStructure s1, s2;

  if (argc >= 3) {
    try {
      AnnotatedStructure a = read_structure_file(argv[1]);
      AnnotatedStructure b = read_structure_file(argv[2]);
      seq1 = std::move(a.sequence);
      s1 = std::move(a.structure);
      seq2 = std::move(b.sequence);
      s2 = std::move(b.structure);
    } catch (const std::exception& e) {
      std::cerr << "failed to load structures: " << e.what() << "\n";
      return 1;
    }
  } else {
    std::cout << "(no files given — aligning two synthetic homologs)\n\n";
    const auto progenitor = rrna_like_structure(90, 16, 42);
    s1 = mutate_structure(progenitor, 0.15, 1);
    s2 = mutate_structure(progenitor, 0.15, 2);
    seq1 = sequence_for_structure(s1, 3);
    seq2 = sequence_for_structure(s2, 4);
  }

  const StructuralAlignment result = anchored_alignment(seq1, s1, seq2, s2);

  std::cout << "sequence 1: " << s1.length() << " bases, " << s1.arc_count() << " arcs\n"
            << "sequence 2: " << s2.length() << " bases, " << s2.arc_count() << " arcs\n"
            << "common arcs (MCOS): " << result.common_arcs << "\n\n";
  std::cout << result.format(seq1, seq2) << "\n";
  std::cout << "score: " << result.alignment.score
            << "  identities: " << result.alignment.matches(seq1, seq2) << "/"
            << result.alignment.columns.size() << "  gaps: " << result.alignment.gaps() << "\n";

  // Consistency check worth failing loudly on in a demo.
  if (result.common_arcs != engine_solve("srna2", s1, s2).value) {
    std::cerr << "BUG: anchored alignment and SRNA2 disagree on the MCOS value\n";
    return 1;
  }
  return 0;
}
