// Quickstart: compare two RNA secondary structures given in dot-bracket
// notation and report the maximum common ordered substructure.
//
//   $ quickstart '((..((...))..))' '((.((..))...))..(.)'
//   $ quickstart                      # runs a built-in demo pair
//
// Walks the whole public API surface once: parse, validate, solve with both
// sequential algorithms and the parallel one, recover the witness with the
// traceback, and pretty-print everything.
#include <iostream>

#include "core/traceback.hpp"
#include "engine/engine.hpp"
#include "rna/arc_diagram.hpp"
#include "rna/dot_bracket.hpp"
#include "rna/structure_stats.hpp"

int main(int argc, char** argv) {
  using namespace srna;

  const std::string text1 = argc > 1 ? argv[1] : "((..((...))..((..))..))";
  const std::string text2 = argc > 2 ? argv[2] : "((.((...))...))(.)((..))";

  SecondaryStructure s1, s2;
  try {
    s1 = parse_dot_bracket(text1);
    s2 = parse_dot_bracket(text2);
  } catch (const std::exception& e) {
    std::cerr << "bad dot-bracket input: " << e.what() << "\n";
    return 1;
  }
  if (!s1.is_nonpseudoknot() || !s2.is_nonpseudoknot()) {
    std::cerr << "the MCOS model requires non-pseudoknot structures\n";
    return 1;
  }

  std::cout << "S1 (" << compute_stats(s1).to_string() << "):\n"
            << render_arc_diagram(s1) << "\n"
            << "S2 (" << compute_stats(s2).to_string() << "):\n"
            << render_arc_diagram(s2) << "\n";

  // The production solver, dispatched through the engine registry — the same
  // path the CLI's --algorithm flag takes.
  const EngineResult r2 = engine_solve("srna2", s1, s2);
  std::cout << "MCOS value (SRNA2): " << r2.value << " matched arcs\n"
            << "  " << r2.stats.to_string() << "\n";

  // Cross-checks: SRNA1 and the shared-memory parallel algorithm.
  const EngineResult r1 = engine_solve("srna1", s1, s2);
  SolverConfig parallel_config;
  parallel_config.threads = 2;
  const EngineResult rp = engine_solve("prna", s1, s2, parallel_config);
  std::cout << "cross-check: SRNA1 = " << r1.value << ", PRNA(2 threads) = " << rp.value
            << (r1.value == r2.value && rp.value == r2.value ? "  [agree]\n" : "  [BUG]\n");

  // Witness: which arcs map onto which.
  const CommonSubstructure common = mcos_traceback(s1, s2);
  std::cout << "\nwitness (" << common.matches.size() << " matched arc pairs):\n";
  for (const ArcMatch& m : common.matches)
    std::cout << "  S1 " << m.a1 << "  <->  S2 " << m.a2 << "\n";
  std::cout << "common substructure: " << to_dot_bracket(common.as_structure()) << "\n";

  const std::string verdict = validate_matches(s1, s2, common.matches);
  if (!verdict.empty()) {
    std::cerr << "witness validation failed: " << verdict << "\n";
    return 1;
  }
  return 0;
}
