// Worst-case scaling demo: how the combined bottom-up/top-down design keeps
// memory flat while time grows with the Θ(n²m²) work term.
//
//   $ worstcase_scaling [--max-length 400]
//
// For each length: the contrived worst case is self-compared with SRNA2 and
// the run is annotated with the cells tabulated, the memo-table footprint
// (the entire cross-slice state — Θ(nm)), and what the discarded 4-D table
// would have needed — the paper's headline space saving.
#include <iostream>

#include "engine/engine.hpp"
#include "rna/generators.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace srna;

  CliParser cli("worstcase_scaling", "time/space scaling on contrived worst-case data");
  cli.add_option("max-length", "largest sequence length (doubling from 50)", "400");
  if (!cli.parse(argc, argv)) return 0;

  const auto max_length = cli.integer("max-length");

  TablePrinter table({"length", "arcs", "time[s]", "cells", "M footprint", "4-D table would be",
                      "saving"});

  auto human = [](double bytes) {
    const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
    int u = 0;
    while (bytes >= 1024.0 && u < 5) {
      bytes /= 1024.0;
      ++u;
    }
    return fixed(bytes, 1) + " " + units[u];
  };

  for (std::int64_t length = 50; length <= max_length; length *= 2) {
    const auto s = worst_case_structure(static_cast<Pos>(length));
    WallTimer timer;
    const auto r = engine_solve("srna2", s, s);
    const double seconds = timer.seconds();
    if (r.value != static_cast<Score>(s.arc_count())) {
      std::cerr << "unexpected MCOS value\n";
      return 1;
    }

    const double nm = static_cast<double>(length) * static_cast<double>(length);
    const double memo_bytes = nm * sizeof(Score);
    const double table4d_bytes = nm * nm * sizeof(Score);
    table.add_row({std::to_string(length), std::to_string(s.arc_count()), fixed(seconds, 3),
                   std::to_string(r.stats.cells_tabulated), human(memo_bytes),
                   human(table4d_bytes), fixed(table4d_bytes / memo_bytes, 0) + "x"});
  }

  table.print(std::cout);
  std::cout << "\nThe memo table M is the only state that survives a slice: Θ(nm)\n"
               "instead of the Θ(n²m²) four-dimensional table — the reduction that\n"
               "lets lengthy structures be compared at all (paper Section IV).\n";
  return 0;
}
