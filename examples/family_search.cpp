// Family search: rank a database of structures by structural similarity to
// a query — the workload the paper's introduction motivates (finding common
// secondary structure across RNA molecules).
//
//   $ family_search                          # synthetic demo database
//   $ family_search query.ct db1.ct db2.bpseq ...
//
// The demo database contains several "families": structures mutated from a
// few progenitors plus unrelated decoys. The normalized MCOS score
// 2*|common| / (|S_q| + |S_i|) ranks true family members above decoys.
#include <algorithm>
#include <iostream>
#include <vector>

#include "db/structure_db.hpp"
#include "rna/formats.hpp"
#include "rna/generators.hpp"
#include "rna/mutations.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace srna;

// Family members are composite mutations (deletions + slips + insertions)
// of the progenitor at increasing dose.
SecondaryStructure mutate(const SecondaryStructure& s, double dose, std::uint64_t seed) {
  return mutate_structure(s, dose, seed);
}

StructureDatabase demo_database(SecondaryStructure& query) {
  StructureDatabase db;
  const auto family_a = rrna_like_structure(900, 160, 11);
  const auto family_b = rrna_like_structure(900, 160, 22);
  query = mutate(family_a, 0.15, 1);

  for (int i = 0; i < 4; ++i)
    db.add({"familyA-member-" + std::to_string(i),
            mutate(family_a, 0.10 + 0.08 * i, 100 + static_cast<std::uint64_t>(i)),
            std::nullopt});
  for (int i = 0; i < 4; ++i)
    db.add({"familyB-member-" + std::to_string(i),
            mutate(family_b, 0.10 + 0.08 * i, 200 + static_cast<std::uint64_t>(i)),
            std::nullopt});
  for (int i = 0; i < 4; ++i)
    db.add({"decoy-" + std::to_string(i),
            random_structure(900, 0.25, 300 + static_cast<std::uint64_t>(i)), std::nullopt});
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  SecondaryStructure query;
  StructureDatabase db;

  if (argc >= 3) {
    try {
      query = read_structure_file(argv[1]).structure;
      for (int i = 2; i < argc; ++i) {
        AnnotatedStructure rec = read_structure_file(argv[i]);
        db.add({argv[i], std::move(rec.structure), std::move(rec.sequence)});
      }
    } catch (const std::exception& e) {
      std::cerr << "failed to load structures: " << e.what() << "\n";
      return 1;
    }
  } else {
    db = demo_database(query);
    std::cout << "(no files given — using the synthetic demo database; pass\n"
                 " query.ct db1.ct db2.bpseq ... to search your own)\n\n";
  }

  std::cout << "query: " << query.length() << " bases, " << query.arc_count() << " arcs\n\n";

  // Parallel ranked scan of the whole database.
  const auto hits = query_top_k(db, query, 0);

  TablePrinter table({"rank", "structure", "arcs", "common arcs", "similarity"});
  int rank = 1;
  for (const QueryHit& hit : hits)
    table.add_row({std::to_string(rank++), db.record(hit.index).name,
                   std::to_string(db.record(hit.index).structure.arc_count()),
                   std::to_string(hit.common_arcs), fixed(hit.score, 3)});
  table.print(std::cout);

  if (argc < 3) {
    const bool family_a_on_top =
        db.record(hits[0].index).name.rfind("familyA", 0) == 0 &&
        db.record(hits[1].index).name.rfind("familyA", 0) == 0;
    std::cout << "\nexpectation: familyA members rank first (the query is a mutated\n"
                 "familyA structure), decoys last — "
              << (family_a_on_top ? "OK\n" : "NOT met (investigate!)\n");
    return family_a_on_top ? 0 : 1;
  }
  return 0;
}
