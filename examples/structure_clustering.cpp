// Structure clustering: build a pairwise MCOS similarity matrix over a set
// of structures and cluster it with average-linkage agglomeration.
//
//   $ structure_clustering                 # synthetic demo set
//   $ structure_clustering a.ct b.ct ...   # your own structures
//
// Demonstrates the library as a building block for comparative genomics
// pipelines: the MCOS value is a structural similarity kernel, and the
// stem-loop generator provides labelled synthetic families to sanity-check
// the clustering.
#include <algorithm>
#include <iostream>
#include <vector>

#include "db/clustering.hpp"
#include "db/structure_db.hpp"
#include "rna/formats.hpp"
#include "rna/generators.hpp"
#include "rna/mutations.hpp"
#include "util/matrix.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace srna;

SecondaryStructure mutate(const SecondaryStructure& s, double dose, std::uint64_t seed) {
  return mutate_structure(s, dose, seed);
}

StructureDatabase demo_set() {
  StructureDatabase items;
  const char* family_names[] = {"alpha", "beta", "gamma"};
  for (std::uint64_t f = 0; f < 3; ++f) {
    const auto progenitor = rrna_like_structure(700, 120, 1000 + f);
    for (std::uint64_t i = 0; i < 3; ++i)
      items.add({std::string(family_names[f]) + "-" + std::to_string(i),
                 mutate(progenitor, 0.12 + 0.05 * static_cast<double>(i), 7000 + 10 * f + i),
                 std::nullopt});
  }
  return items;
}

}  // namespace

int main(int argc, char** argv) {
  StructureDatabase items;
  if (argc >= 2) {
    try {
      for (int i = 1; i < argc; ++i) {
        AnnotatedStructure rec = read_structure_file(argv[i]);
        items.add({argv[i], std::move(rec.structure), std::move(rec.sequence)});
      }
    } catch (const std::exception& e) {
      std::cerr << "failed to load structures: " << e.what() << "\n";
      return 1;
    }
  } else {
    items = demo_set();
    std::cout << "(no files given — clustering a synthetic 3-family demo set)\n\n";
  }
  if (items.size() < 2) {
    std::cerr << "need at least two structures\n";
    return 1;
  }

  // The parallel all-pairs engine from the database layer.
  const std::size_t n = items.size();
  const Matrix<double> similarity = all_pairs_similarity(items);

  std::cout << "pairwise similarity (2*common / (arcs_i + arcs_j)):\n";
  std::vector<std::string> header{""};
  for (std::size_t i = 0; i < n; ++i) header.push_back(items.record(i).name);
  TablePrinter table(header);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::string> row{items.record(i).name};
    for (std::size_t j = 0; j < n; ++j) row.push_back(fixed(similarity(i, j), 2));
    table.add_row(row);
  }
  table.print(std::cout);

  const std::size_t target = argc >= 2 ? std::max<std::size_t>(2, n / 3) : 3;
  const Dendrogram tree = cluster_average_linkage(similarity);
  const auto clusters = tree.cut(target);

  std::vector<std::string> names;
  for (std::size_t i = 0; i < n; ++i) names.push_back(items.record(i).name);
  std::cout << "\ndendrogram (Newick): " << tree.to_newick(names) << "\n";
  std::cout << "\nclusters (average linkage, " << target << " groups):\n";
  bool pure = true;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    std::cout << "  cluster " << c << ":";
    std::string prefix;
    for (const std::size_t idx : clusters[c]) {
      const std::string& name = items.record(idx).name;
      std::cout << ' ' << name;
      const std::string p = name.substr(0, name.find('-'));
      if (prefix.empty()) prefix = p;
      if (p != prefix) pure = false;
    }
    std::cout << "\n";
  }
  if (argc < 2) {
    std::cout << "\nexpectation: each cluster contains a single synthetic family — "
              << (pure ? "OK\n" : "NOT met (investigate!)\n");
    return pure ? 0 : 1;
  }
  return 0;
}
