#include "align/needleman_wunsch.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/matrix.hpp"

namespace srna {

std::size_t Alignment::matches(const Sequence& a, const Sequence& b) const {
  std::size_t count = 0;
  for (const AlignedColumn& col : columns)
    if (col.i >= 0 && col.j >= 0 && a[col.i] == b[col.j]) ++count;
  return count;
}

std::size_t Alignment::gaps() const noexcept {
  std::size_t count = 0;
  for (const AlignedColumn& col : columns) count += (col.i < 0 || col.j < 0);
  return count;
}

Alignment needleman_wunsch(const Sequence& a, Pos lo_a, Pos hi_a, const Sequence& b, Pos lo_b,
                           Pos hi_b, const AlignScoring& scoring) {
  SRNA_REQUIRE(lo_a >= 0 && hi_a < a.length() && lo_b >= 0 && hi_b < b.length(),
               "alignment interval out of range");
  const Pos n = std::max<Pos>(hi_a - lo_a + 1, 0);
  const Pos m = std::max<Pos>(hi_b - lo_b + 1, 0);

  Matrix<double> dp(static_cast<std::size_t>(n) + 1, static_cast<std::size_t>(m) + 1, 0.0);
  for (Pos i = 1; i <= n; ++i) dp(static_cast<std::size_t>(i), 0) = scoring.gap * i;
  for (Pos j = 1; j <= m; ++j) dp(0, static_cast<std::size_t>(j)) = scoring.gap * j;

  for (Pos i = 1; i <= n; ++i) {
    for (Pos j = 1; j <= m; ++j) {
      const bool eq = a[lo_a + i - 1] == b[lo_b + j - 1];
      const double diag = dp(static_cast<std::size_t>(i - 1), static_cast<std::size_t>(j - 1)) +
                          (eq ? scoring.match : scoring.mismatch);
      const double up = dp(static_cast<std::size_t>(i - 1), static_cast<std::size_t>(j)) +
                        scoring.gap;
      const double left = dp(static_cast<std::size_t>(i), static_cast<std::size_t>(j - 1)) +
                          scoring.gap;
      dp(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          std::max({diag, up, left});
    }
  }

  Alignment out;
  out.score = dp(static_cast<std::size_t>(n), static_cast<std::size_t>(m));

  // Traceback (collects columns reversed).
  Pos i = n;
  Pos j = m;
  std::vector<AlignedColumn> rev;
  while (i > 0 || j > 0) {
    const double here = dp(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
    if (i > 0 && j > 0) {
      const bool eq = a[lo_a + i - 1] == b[lo_b + j - 1];
      const double diag = dp(static_cast<std::size_t>(i - 1), static_cast<std::size_t>(j - 1)) +
                          (eq ? scoring.match : scoring.mismatch);
      if (here == diag) {
        rev.push_back({lo_a + i - 1, lo_b + j - 1});
        --i;
        --j;
        continue;
      }
    }
    if (i > 0 &&
        here == dp(static_cast<std::size_t>(i - 1), static_cast<std::size_t>(j)) + scoring.gap) {
      rev.push_back({lo_a + i - 1, -1});
      --i;
      continue;
    }
    SRNA_CHECK(j > 0, "NW traceback stuck");
    rev.push_back({-1, lo_b + j - 1});
    --j;
  }
  out.columns.assign(rev.rbegin(), rev.rend());
  return out;
}

Alignment needleman_wunsch(const Sequence& a, const Sequence& b, const AlignScoring& scoring) {
  if (a.length() == 0 && b.length() == 0) return {};
  if (a.length() == 0) {
    Alignment out;
    out.score = scoring.gap * b.length();
    for (Pos j = 0; j < b.length(); ++j) out.columns.push_back({-1, j});
    return out;
  }
  if (b.length() == 0) {
    Alignment out;
    out.score = scoring.gap * a.length();
    for (Pos i = 0; i < a.length(); ++i) out.columns.push_back({i, -1});
    return out;
  }
  return needleman_wunsch(a, 0, a.length() - 1, b, 0, b.length() - 1, scoring);
}

std::string format_alignment(const Alignment& alignment, const Sequence& a, const Sequence& b) {
  std::string top, bars, bottom;
  for (const AlignedColumn& col : alignment.columns) {
    const char ca = col.i >= 0 ? to_char(a[col.i]) : '-';
    const char cb = col.j >= 0 ? to_char(b[col.j]) : '-';
    top += ca;
    bottom += cb;
    if (col.i >= 0 && col.j >= 0)
      bars += (a[col.i] == b[col.j]) ? '|' : '.';
    else
      bars += ' ';
  }
  return top + "\n" + bars + "\n" + bottom + "\n";
}

}  // namespace srna
