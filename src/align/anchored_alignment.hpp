// Structure-anchored sequence alignment.
//
// Bafna et al.'s original problem — the formulation the paper's MCOS
// recurrence was specialized from — is *alignment* of RNA strings guided by
// their bond structure. This module composes the reproduction's pieces into
// that end product: the MCOS traceback supplies the matched arc pairs, each
// matched endpoint becomes a hard alignment anchor, and the unpaired
// stretches between consecutive anchors are aligned with Needleman–Wunsch.
// The result is a full-length alignment that is guaranteed consistent with
// a maximum common ordered substructure.
#pragma once

#include "align/needleman_wunsch.hpp"
#include "core/traceback.hpp"
#include "rna/secondary_structure.hpp"
#include "rna/sequence.hpp"

namespace srna {

struct StructuralAlignment {
  Alignment alignment;            // full-sequence alignment, anchors included
  std::vector<ArcMatch> anchors;  // the matched arcs (sorted by position)
  Score common_arcs = 0;          // = anchors.size(), the MCOS value

  // Renders sequence lines plus an annotation line marking anchored arc
  // endpoints '(' / ')' under the alignment.
  [[nodiscard]] std::string format(const Sequence& seq1, const Sequence& seq2) const;
};

// Computes the MCOS between s1 and s2 and assembles the anchored alignment
// of their sequences. Sequence lengths must match their structures.
StructuralAlignment anchored_alignment(const Sequence& seq1, const SecondaryStructure& s1,
                                       const Sequence& seq2, const SecondaryStructure& s2,
                                       const AlignScoring& scoring = {});

}  // namespace srna
