// Needleman–Wunsch global sequence alignment.
//
// Substrate for the anchored structural alignment (anchored_alignment.hpp):
// the unpaired regions between matched arcs are aligned with this classic
// O(nm) DP. Linear gap penalties; traceback prefers diagonal moves, then
// consuming from the first sequence.
#pragma once

#include <string>
#include <vector>

#include "rna/sequence.hpp"

namespace srna {

struct AlignScoring {
  double match = 2.0;
  double mismatch = -1.0;
  double gap = -2.0;
};

// One aligned column: indices into the two sequences, or -1 for a gap.
struct AlignedColumn {
  Pos i = -1;  // position in sequence 1, -1 = gap
  Pos j = -1;  // position in sequence 2, -1 = gap
};

struct Alignment {
  double score = 0.0;
  std::vector<AlignedColumn> columns;

  // Counts over the columns.
  [[nodiscard]] std::size_t matches(const Sequence& a, const Sequence& b) const;
  [[nodiscard]] std::size_t gaps() const noexcept;
};

// Globally aligns a[lo_a..hi_a] with b[lo_b..hi_b] (inclusive bounds; an
// empty interval is hi < lo). Column indices refer to the *original*
// sequences.
Alignment needleman_wunsch(const Sequence& a, Pos lo_a, Pos hi_a, const Sequence& b, Pos lo_b,
                           Pos hi_b, const AlignScoring& scoring = {});

// Whole-sequence convenience overload.
Alignment needleman_wunsch(const Sequence& a, const Sequence& b,
                           const AlignScoring& scoring = {});

// Renders the alignment as three text lines (sequence 1, match bars,
// sequence 2), e.g.
//   GGCA-UCG
//   ||.|  ||
//   GGAAGUCG
std::string format_alignment(const Alignment& alignment, const Sequence& a, const Sequence& b);

}  // namespace srna
