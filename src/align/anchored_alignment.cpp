#include "align/anchored_alignment.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace srna {

namespace {

struct Anchor {
  Pos p1;
  Pos p2;
};

}  // namespace

StructuralAlignment anchored_alignment(const Sequence& seq1, const SecondaryStructure& s1,
                                       const Sequence& seq2, const SecondaryStructure& s2,
                                       const AlignScoring& scoring) {
  SRNA_REQUIRE(seq1.length() == s1.length() && seq2.length() == s2.length(),
               "sequence lengths must match their structures");

  StructuralAlignment out;
  const CommonSubstructure common = mcos_traceback(s1, s2);
  out.anchors = common.matches;
  out.common_arcs = common.value;
  std::sort(out.anchors.begin(), out.anchors.end(),
            [](const ArcMatch& a, const ArcMatch& b) { return a.a1.left < b.a1.left; });

  // Flatten matched arc endpoints into position anchors; the order
  // consistency of a valid common substructure makes them monotone in both
  // coordinates after sorting by the first.
  std::vector<Anchor> anchors;
  anchors.reserve(out.anchors.size() * 2);
  for (const ArcMatch& m : out.anchors) {
    anchors.push_back({m.a1.left, m.a2.left});
    anchors.push_back({m.a1.right, m.a2.right});
  }
  std::sort(anchors.begin(), anchors.end(),
            [](const Anchor& a, const Anchor& b) { return a.p1 < b.p1; });
  for (std::size_t i = 1; i < anchors.size(); ++i)
    SRNA_CHECK(anchors[i].p2 > anchors[i - 1].p2,
               "traceback produced order-inconsistent anchors");

  // Stitch: NW-align each gap region, then pin the anchor column.
  Pos prev1 = -1;
  Pos prev2 = -1;
  double score = 0.0;
  auto append_region = [&](Pos hi1, Pos hi2) {
    const Pos lo1 = prev1 + 1;
    const Pos lo2 = prev2 + 1;
    if (hi1 < lo1 && hi2 < lo2) return;  // nothing between the anchors
    if (hi1 < lo1) {
      for (Pos j = lo2; j <= hi2; ++j) out.alignment.columns.push_back({-1, j});
      score += scoring.gap * static_cast<double>(hi2 - lo2 + 1);
      return;
    }
    if (hi2 < lo2) {
      for (Pos i = lo1; i <= hi1; ++i) out.alignment.columns.push_back({i, -1});
      score += scoring.gap * static_cast<double>(hi1 - lo1 + 1);
      return;
    }
    const Alignment region = needleman_wunsch(seq1, lo1, hi1, seq2, lo2, hi2, scoring);
    out.alignment.columns.insert(out.alignment.columns.end(), region.columns.begin(),
                                 region.columns.end());
    score += region.score;
  };

  for (const Anchor& anchor : anchors) {
    append_region(anchor.p1 - 1, anchor.p2 - 1);
    out.alignment.columns.push_back({anchor.p1, anchor.p2});
    score += seq1[anchor.p1] == seq2[anchor.p2] ? scoring.match : scoring.mismatch;
    prev1 = anchor.p1;
    prev2 = anchor.p2;
  }
  append_region(seq1.length() - 1, seq2.length() - 1);
  out.alignment.score = score;
  return out;
}

std::string StructuralAlignment::format(const Sequence& seq1, const Sequence& seq2) const {
  std::string text = format_alignment(alignment, seq1, seq2);

  // Annotation line: mark anchored endpoints under their columns.
  std::string marks(alignment.columns.size(), ' ');
  auto mark = [&](Pos p1, char symbol) {
    for (std::size_t c = 0; c < alignment.columns.size(); ++c) {
      if (alignment.columns[c].i == p1) {
        marks[c] = symbol;
        return;
      }
    }
  };
  for (const ArcMatch& m : anchors) {
    mark(m.a1.left, '(');
    mark(m.a1.right, ')');
  }
  return text + marks + "\n";
}

}  // namespace srna
