// Sharded LRU result cache for the MCOS query service.
//
// All-pairs and top-k serving traffic is dominated by repeated pairs — the
// same query structure scanned against a corpus, the same hot family pairs
// requested by many clients — and an MCOS solve is pure: the value depends
// only on (structure A, structure B, solver config). Memoizing completed
// solves therefore short-circuits the dominant traffic pattern at the cost
// of one hash probe.
//
// Design:
//   * Keys are exact. The canonical 64-bit digest (rna/structure_hash.hpp)
//     picks the shard and the hash bucket, but every probe confirms the full
//     canonical form (lengths + arc sets + config fingerprint) — a collision
//     must never return the wrong score.
//   * Sharding bounds contention: a get/put locks one shard's mutex, chosen
//     by the high digest bits, so concurrent workers only collide when they
//     touch the same shard (1/shards of the time).
//   * Each shard runs its own LRU list with a per-shard capacity slice, so
//     total memory is bounded regardless of traffic; eviction is O(1).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/result.hpp"
#include "obs/json.hpp"
#include "rna/secondary_structure.hpp"

namespace srna::serve {

// The exact identity of a cacheable solve: both structures' canonical forms
// plus an opaque fingerprint of everything else that can change the answer
// (algorithm name, layout, ... — see config_fingerprint in service.hpp).
// `digest` is precomputed from exactly these fields.
struct CacheKey {
  std::uint64_t digest = 0;
  Pos len_a = 0;
  Pos len_b = 0;
  std::vector<Arc> arcs_a;
  std::vector<Arc> arcs_b;
  std::string fingerprint;

  static CacheKey make(const SecondaryStructure& a, const SecondaryStructure& b,
                       std::string fingerprint);

  [[nodiscard]] bool operator==(const CacheKey& other) const noexcept {
    return digest == other.digest && len_a == other.len_a && len_b == other.len_b &&
           fingerprint == other.fingerprint && arcs_a == other.arcs_a &&
           arcs_b == other.arcs_b;
  }

  // Approximate heap footprint, for the stats report.
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return sizeof(CacheKey) + (arcs_a.capacity() + arcs_b.capacity()) * sizeof(Arc) +
           fingerprint.capacity();
  }
};

struct CacheConfig {
  std::size_t capacity = 4096;  // total entries across all shards (0 disables)
  std::size_t shards = 8;       // clamped to >= 1
};

class ResultCache {
 public:
  explicit ResultCache(CacheConfig config);

  // Looks up `key`, refreshing its recency on a hit.
  [[nodiscard]] std::optional<Score> get(const CacheKey& key);

  // Inserts (or refreshes) key -> value, evicting the shard's least recently
  // used entry when the shard is at capacity. No-op when capacity == 0.
  void put(CacheKey key, Score value);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t insertions = 0;
    std::size_t entries = 0;
    std::size_t footprint_bytes = 0;
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] obs::Json stats_json() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

  // Live heap footprint of all cached entries, maintained exactly on every
  // insert/evict/clear (no shard locks needed to read). Mirrored into the
  // `serve.cache_bytes` gauge for /metrics and the memory ledger.
  [[nodiscard]] std::size_t bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }

  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const CacheKey& k) const noexcept {
      return static_cast<std::size_t>(k.digest);
    }
  };

  struct Entry {
    Score value = 0;
    // Position in the shard's recency list (front = most recent). The list
    // stores pointers into the map's stable node-based keys, so the key is
    // materialized once.
    std::list<const CacheKey*>::iterator lru_it;
  };

  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::unordered_map<CacheKey, Entry, KeyHash> entries;
    std::list<const CacheKey*> lru;  // front = most recently used
  };

  // Shard choice uses the digest's high bits; the low bits drive the
  // unordered_map buckets, so the two stay independent.
  [[nodiscard]] Shard& shard_for(const CacheKey& key) noexcept {
    return *shards_[static_cast<std::size_t>(key.digest >> 32) % shards_.size()];
  }
  [[nodiscard]] const Shard& shard_for(const CacheKey& key) const noexcept {
    return *shards_[static_cast<std::size_t>(key.digest >> 32) % shards_.size()];
  }

  std::size_t capacity_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::size_t> bytes_{0};
};

}  // namespace srna::serve
