#include "serve/server.hpp"

#include "serve/admin.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace srna::serve {

namespace {

// Routes one input line and answers through `emit_line` (a raw response
// line, no trailing newline). Exactly one emit per call:
//   * `{"admin": "metrics" | "healthz" | "readyz" | "statz"}` lines are answered
//     inline from the admin plane — they never enter the admission queue,
//     so they keep working while the service is overloaded or draining.
//   * parse failures and admission rejects answer inline;
//   * accepted requests answer from a worker (the caller tracks outstanding
//     responses itself via emit_line).
void submit_line(QueryService& service, const std::string& line,
                 const std::function<void(const std::string&)>& emit_line) {
  if (line.find("\"admin\"") != std::string::npos) {
    if (const std::optional<obs::Json> doc = obs::Json::parse(line);
        doc && doc->is_object()) {
      if (const obs::Json* what = doc->find("admin");
          what != nullptr && what->is_string()) {
        emit_line(admin_json(service, what->as_string()).dump(0));
        return;
      }
    }
  }
  ServeRequest request;
  try {
    request = parse_request(line);
  } catch (const std::exception& e) {
    ServeResponse resp;
    resp.status = ResponseStatus::kError;
    resp.error = e.what();
    emit_line(resp.to_line());
    return;
  }
  // Captured by value: the worker invokes this after submit_line returned.
  service.submit(std::move(request),
                 [emit_line](const ServeResponse& resp) { emit_line(resp.to_line()); });
}

}  // namespace

TcpServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

std::size_t run_offline(QueryService& service, std::istream& in, std::ostream& out) {
  std::mutex out_mutex;
  std::condition_variable all_done;
  std::size_t outstanding = 0;  // guarded by out_mutex

  const auto emit = [&](const std::string& line) {
    std::lock_guard lock(out_mutex);
    out << line << '\n';
    out.flush();
    --outstanding;
    all_done.notify_all();
  };

  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    {
      std::lock_guard lock(out_mutex);
      ++outstanding;
    }
    submit_line(service, line, emit);
  }

  std::unique_lock lock(out_mutex);
  all_done.wait(lock, [&] { return outstanding == 0; });
  return lines;
}

// ------------------------------------------------------------------ TcpServer

TcpServer::TcpServer(QueryService& service, const std::string& host, std::uint16_t port)
    : TcpServer(
          [&service](const std::string& line, const EmitLine& emit) {
            submit_line(service, line, emit);
          },
          host, port) {}

TcpServer::TcpServer(LineHandler handler, const std::string& host, std::uint16_t port)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("serve: bad listen address '" + host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    throw std::runtime_error("serve: bind(" + host + ":" + std::to_string(port) +
                             ") failed: " + std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    throw std::runtime_error(std::string("serve: listen() failed: ") + std::strerror(err));
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = ntohs(bound.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  // shutdown() wakes accept() and every blocked recv(); close() alone is not
  // reliable for that across platforms.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::weak_ptr<Connection>> connections;
  std::vector<std::thread> readers;
  {
    std::lock_guard lock(mutex_);
    connections.swap(connections_);
    readers.swap(readers_);
  }
  for (const std::weak_ptr<Connection>& weak : connections) {
    if (const std::shared_ptr<Connection> conn = weak.lock()) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (std::thread& t : readers) {
    if (t.joinable()) t.join();
  }
}

void TcpServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop) or fatal; either way we are done
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard lock(mutex_);
    if (stopped_) {
      ::close(fd);
      return;
    }
    connections_.push_back(conn);
    readers_.emplace_back([this, conn = std::move(conn)]() mutable {
      serve_connection(std::move(conn));
    });
  }
}

void TcpServer::serve_connection(std::shared_ptr<Connection> conn) {
  // In-flight responses may outlive the reader loop (a worker finishes after
  // the client half-closes); the shared_ptr keeps the fd and write mutex
  // alive until the last callback drops its reference. send() failures on a
  // gone peer are ignored — there is nobody left to answer.
  const auto emit = [conn](const std::string& response_line) {
    const std::string line = response_line + "\n";
    std::lock_guard lock(conn->write_mutex);
    std::size_t sent = 0;
    while (sent < line.size()) {
      const ssize_t n =
          ::send(conn->fd, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return;
      sent += static_cast<std::size_t>(n);
    }
  };

  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // peer closed or server stopping
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      start = nl + 1;
      if (!line.empty()) handler_(line, emit);
    }
    buffer.erase(0, start);
  }
  // Half-close only: late worker callbacks may still hold the Connection and
  // attempt a send (which now fails cleanly). The fd itself is closed by the
  // Connection destructor once the last reference drops — closing here would
  // race a concurrent send() against fd reuse.
  ::shutdown(conn->fd, SHUT_RDWR);
}

}  // namespace srna::serve
