#include "serve/cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "rna/structure_hash.hpp"

namespace srna::serve {

namespace {

std::uint64_t fingerprint_seed(const std::string& fingerprint) noexcept {
  std::uint64_t h = kFnvOffsetBasis;
  for (const char c : fingerprint) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

CacheKey CacheKey::make(const SecondaryStructure& a, const SecondaryStructure& b,
                        std::string fingerprint) {
  CacheKey key;
  key.digest = hash_structure_pair(a, b, fingerprint_seed(fingerprint));
  key.len_a = a.length();
  key.len_b = b.length();
  key.arcs_a = a.arcs_by_right();
  key.arcs_b = b.arcs_by_right();
  key.fingerprint = std::move(fingerprint);
  return key;
}

ResultCache::ResultCache(CacheConfig config) : capacity_(config.capacity) {
  const std::size_t shard_count = std::max<std::size_t>(1, config.shards);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) shards_.push_back(std::make_unique<Shard>());
  // Round the per-shard slice up so shards * slice >= capacity; a capacity
  // smaller than the shard count still caches one entry per shard.
  per_shard_capacity_ = capacity_ == 0 ? 0 : (capacity_ + shard_count - 1) / shard_count;
}

std::optional<Score> ResultCache::get(const CacheKey& key) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("serve.cache_misses").add();
    return std::nullopt;
  }
  // Refresh recency: splice the node to the front without reallocation.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  hits_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::instance().counter("serve.cache_hits").add();
  return it->second.value;
}

void ResultCache::put(CacheKey key, Score value) {
  if (capacity_ == 0) return;
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  if (const auto it = shard.entries.find(key); it != shard.entries.end()) {
    // Same key solved twice (two workers raced past the same miss): refresh.
    it->second.value = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return;
  }
  if (shard.entries.size() >= per_shard_capacity_ && !shard.lru.empty()) {
    const CacheKey* victim = shard.lru.back();
    shard.lru.pop_back();
    bytes_.fetch_sub(victim->footprint_bytes() + sizeof(Entry), std::memory_order_relaxed);
    shard.entries.erase(*victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("serve.cache_evictions").add();
  }
  const auto [it, inserted] = shard.entries.emplace(std::move(key), Entry{value, {}});
  shard.lru.push_front(&it->first);
  it->second.lru_it = shard.lru.begin();
  insertions_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(it->first.footprint_bytes() + sizeof(Entry), std::memory_order_relaxed);
  obs::Registry::instance().gauge("serve.cache_bytes")
      .set(static_cast<double>(bytes_.load(std::memory_order_relaxed)));
  (void)inserted;
}

ResultCache::Stats ResultCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    out.entries += shard->entries.size();
    for (const auto& [key, entry] : shard->entries)
      out.footprint_bytes += key.footprint_bytes() + sizeof(Entry);
  }
  return out;
}

obs::Json ResultCache::stats_json() const {
  const Stats s = stats();
  obs::Json doc = obs::Json::object();
  doc.set("hits", obs::Json(s.hits));
  doc.set("misses", obs::Json(s.misses));
  const std::uint64_t lookups = s.hits + s.misses;
  doc.set("hit_rate", obs::Json(lookups > 0 ? static_cast<double>(s.hits) /
                                                  static_cast<double>(lookups)
                                            : 0.0));
  doc.set("evictions", obs::Json(s.evictions));
  doc.set("insertions", obs::Json(s.insertions));
  doc.set("entries", obs::Json(static_cast<std::uint64_t>(s.entries)));
  doc.set("capacity", obs::Json(static_cast<std::uint64_t>(capacity_)));
  doc.set("shards", obs::Json(static_cast<std::uint64_t>(shards_.size())));
  doc.set("footprint_bytes", obs::Json(static_cast<std::uint64_t>(s.footprint_bytes)));
  return doc;
}

void ResultCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    for (const auto& [key, entry] : shard->entries)
      bytes_.fetch_sub(key.footprint_bytes() + sizeof(Entry), std::memory_order_relaxed);
    shard->entries.clear();
    shard->lru.clear();
  }
  obs::Registry::instance().gauge("serve.cache_bytes")
      .set(static_cast<double>(bytes_.load(std::memory_order_relaxed)));
}

}  // namespace srna::serve
