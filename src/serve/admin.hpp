// Admin/metrics plane for the query service — deliberately separate from the
// serving data plane, so a scrape or health probe never competes with
// request lines for a connection (and keeps working while the data listener
// is saturated).
//
// Two transports for the same three views:
//
//   AdminServer    a minimal HTTP/1.0 listener (GET only), for Prometheus
//                  and load balancers:
//                    GET /metrics   text exposition of the whole obs
//                                   Registry (render_prometheus) — counters,
//                                   gauges, histogram buckets, sliding-window
//                                   p50/p90/p95/p99 summaries, tracer totals
//                    GET /healthz   200 "ok" | 503 "draining"/"overloaded"
//                    GET /statz     the service's stats_json() document
//   admin_json     the same payloads as in-band JSON-lines requests
//                  ({"admin": "metrics"}), for offline mode and tests where
//                  no second listener exists. Admin lines are answered
//                  inline by the transport — they never enter the admission
//                  queue, so they work during overload (which is when you
//                  need them).
//
// One connection is served at a time (scrapes are rare and tiny); a receive
// timeout keeps a stuck client from wedging the accept loop.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "obs/json.hpp"

namespace srna::serve {

class QueryService;

// "ok" while admitting with queue headroom, "overloaded" while the admission
// queue is full (probes should shed load), "draining" once stop/drain closed
// the queue (probes should deregister the instance).
[[nodiscard]] std::string healthz_body(const QueryService& service);
// Probe verdict: true only for "ok" (HTTP 200 vs 503).
[[nodiscard]] bool healthy(const QueryService& service);

// One in-band admin answer: {"admin": <what>, ...payload}. Unknown commands
// get an "error" member instead of a payload.
[[nodiscard]] obs::Json admin_json(const QueryService& service, std::string_view what);

class AdminServer {
 public:
  // Binds host:port (0 = ephemeral; read back with port()). Throws
  // std::runtime_error on bind/listen failure.
  AdminServer(const QueryService& service, const std::string& host, std::uint16_t port);
  ~AdminServer();  // stop()

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  // Stops the listener and joins the accept thread. Idempotent.
  void stop();

 private:
  void accept_loop();
  void handle_connection(int fd);

  const QueryService& service_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex stop_mutex_;
  bool stopped_ = false;
};

}  // namespace srna::serve
