// Admin/metrics plane for the query service — deliberately separate from the
// serving data plane, so a scrape or health probe never competes with
// request lines for a connection (and keeps working while the data listener
// is saturated).
//
// Two transports for the same three views:
//
//   AdminServer    a minimal HTTP/1.0 listener (GET only), for Prometheus
//                  and load balancers:
//                    GET /metrics   text exposition of the whole obs
//                                   Registry (render_prometheus) — counters,
//                                   gauges, histogram buckets, sliding-window
//                                   p50/p90/p95/p99 summaries, tracer totals
//                    GET /healthz   liveness: 200 "ok" as long as the admin
//                                   plane answers at all (supervisors restart
//                                   on failure — a draining process must NOT
//                                   look dead)
//                    GET /readyz    readiness: 200 "ok" only when the service
//                                   is admitting with queue headroom; 503
//                                   "starting" before every worker reached
//                                   its loop, "overloaded" while the queue is
//                                   full, "draining" after stop/drain (load
//                                   balancers and the router's prober stop
//                                   routing here, without killing the process)
//                    GET /statz     the service's stats_json() document
//                    GET /flightz   the flight recorder's view: the ring of
//                                   recent request records plus the retained
//                                   anomaly exemplars (obs/flight.hpp)
//                    GET /tracez    the process's Chrome trace so far, with
//                                   its wall-clock anchor — what
//                                   srna-trace-collect scrapes and merges
//   admin_json     the same payloads as in-band JSON-lines requests
//                  ({"admin": "metrics"}), for offline mode and tests where
//                  no second listener exists. Admin lines are answered
//                  inline by the transport — they never enter the admission
//                  queue, so they work during overload (which is when you
//                  need them).
//
// One connection is served at a time (scrapes are rare and tiny); a receive
// timeout keeps a stuck client from wedging the accept loop.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "obs/json.hpp"

namespace srna::serve {

class QueryService;

// Liveness: "ok" as long as the process can answer — the service existing is
// the whole test. Restart-on-failure supervisors key off this; a draining or
// overloaded service is still alive.
[[nodiscard]] std::string healthz_body(const QueryService& service);
[[nodiscard]] bool healthy(const QueryService& service);

// Readiness: "ok" while admitting with queue headroom, "starting" until every
// worker has reached its loop (engine registry resolved), "overloaded" while
// the admission queue is full (probes should shed load), "draining" once
// stop/drain closed the queue (probes should deregister the instance).
[[nodiscard]] std::string readyz_body(const QueryService& service);
// Probe verdict: true only for "ok" (HTTP 200 vs 503).
[[nodiscard]] bool ready(const QueryService& service);

// One in-band admin answer: {"admin": <what>, ...payload}. Unknown commands
// get an "error" member instead of a payload.
[[nodiscard]] obs::Json admin_json(const QueryService& service, std::string_view what);

// One HTTP answer from an AdminServer handler.
struct HttpReply {
  int status = 200;               // 200/404/503; the reason phrase is derived
  std::string content_type = "text/plain";
  std::string body;
};

class AdminServer {
 public:
  // The generic form: `handler` maps a request path ("/metrics", …) to a
  // reply, called on the accept thread. The distributed router's aggregated
  // admin plane plugs in here; the QueryService ctor below is this with the
  // standard single-process routes.
  using HttpHandler = std::function<HttpReply(const std::string& path)>;

  // Binds host:port (0 = ephemeral; read back with port()). Throws
  // std::runtime_error on bind/listen failure.
  AdminServer(HttpHandler handler, const std::string& host, std::uint16_t port);
  AdminServer(const QueryService& service, const std::string& host, std::uint16_t port);
  ~AdminServer();  // stop()

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  // Stops the listener and joins the accept thread. Idempotent.
  void stop();

 private:
  void accept_loop();
  void handle_connection(int fd);

  HttpHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex stop_mutex_;
  bool stopped_ = false;
};

}  // namespace srna::serve
