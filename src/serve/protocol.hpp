// The serve wire protocol: JSON-lines over any byte stream.
//
// One request per line, one response per line; responses carry the
// request's `id` and may arrive out of order (the worker pool completes
// fast requests ahead of slow ones), so clients correlate by id. The same
// schema runs over the TCP listener and the offline stdin/stdout mode —
// tests and CI exercise the full service with no networking.
//
// Request:
//   {"id": 7, "a": "((..))", "b": "(..)"}                  structure-pair form
//   {"id": 8, "a_name": "rrna1", "b_name": "rrna2"}        db-name form
//   optional: "algorithm" (engine backend, default per service),
//             "layout" ("dense" | "compressed"),
//             "deadline_ms" (0 = service default), "no_cache" (bool),
//             "trace" (bool: record per-phase spans for this request)
//
// Response: {"id": 7, "status": "ok", "value": 3, "normalized": 0.75,
//            "cache_hit": false, "latency_ms": 1.2, "algorithm": "srna2",
//            "trace_id": 42, "queued_ms": 0.1, "solve_ms": 1.0}
//   status "rejected" adds "retry_after_ms" (admission backpressure);
//   status "over_memory_budget" means the solve's estimated footprint does
//   not fit the service's memory budget — it adds "estimated_bytes" (the
//   backend's upper bound for this pair) and, when the request would fit an
//   idle service (it was only crowded out by in-flight solves),
//   "retry_after_ms"; a response without the hint is a permanent rejection
//   for this (pair, algorithm) — retrying cannot succeed;
//   status "timeout" means the deadline expired (queued or mid-solve);
//   status "error" carries the failure text in "error".
//   Every admitted request echoes the service-assigned "trace_id" (the key
//   correlating its spans in a Chrome trace) and its phase breakdown:
//   "queued_ms" (admission -> worker pickup) and "solve_ms" (engine time;
//   0 on a cache hit). Rejected requests never reach a worker and carry none
//   of the three.
//   Responses whose structure pair resolved also echo "digest": the canonical
//   structure-pair digest (rna/structure_hash.hpp, 16 lowercase hex digits).
//   The distributed router hashes the same digest onto its shard ring, so a
//   client can audit end to end that a response came from the owning shard.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/result.hpp"
#include "obs/json.hpp"

namespace srna::serve {

struct ServeRequest {
  std::int64_t id = 0;
  // Exactly one of the two pair forms: dot-bracket literals...
  std::string a;
  std::string b;
  // ...or names resolved against the service's structure database.
  std::string a_name;
  std::string b_name;

  std::string algorithm;  // empty = service default
  std::string layout;     // empty = "dense"
  double deadline_ms = 0;  // 0 = service default; < 0 invalid
  bool no_cache = false;   // bypass the result cache (solve + do not store)
  bool trace = false;      // record per-phase spans for this request
  // Propagated correlation id: when nonzero the service ADOPTS it instead of
  // minting its own, so one id follows a request across process boundaries.
  // The distributed router stamps a fleet-unique id here before forwarding;
  // direct clients normally leave it 0.
  std::uint64_t trace_id = 0;

  [[nodiscard]] bool by_name() const noexcept { return !a_name.empty() || !b_name.empty(); }

  [[nodiscard]] obs::Json to_json() const;
  [[nodiscard]] std::string to_line() const;  // one-line JSON, no trailing newline
};

// Parses one request line. Throws std::invalid_argument on malformed JSON,
// unknown fields, or an inconsistent pair form — the message is safe to
// embed in an error response.
ServeRequest parse_request(std::string_view line);

enum class ResponseStatus : std::uint8_t {
  kOk,
  kRejected,          // admission backpressure (queue full / draining)
  kOverMemoryBudget,  // estimated footprint exceeds the service memory budget
  kTimeout,
  kError,
};

[[nodiscard]] const char* to_string(ResponseStatus status) noexcept;

struct ServeResponse {
  std::int64_t id = 0;
  ResponseStatus status = ResponseStatus::kError;
  Score value = 0;
  double normalized = 0.0;   // 2*value / (arcs_a + arcs_b), ok responses only
  bool cache_hit = false;
  // True when this answer was produced by another request's solve: the
  // request cache-missed while an identical (pair, config) solve was already
  // in flight, parked behind it, and received the leader's outcome.
  bool coalesced = false;
  double latency_ms = 0.0;   // admission -> completion, as observed by the service
  double retry_after_ms = 0.0;  // rejected responses: suggested client backoff
  // over_memory_budget responses: the backend's resident-byte upper bound for
  // this pair, so clients can see how far over they were (and pick a leaner
  // algorithm). 0 otherwise.
  std::uint64_t estimated_bytes = 0;
  std::uint64_t trace_id = 0;  // service-assigned correlation id; 0 = not admitted
  double queued_ms = 0.0;    // admission -> worker pickup (admitted requests)
  double solve_ms = 0.0;     // engine solve time; 0 on cache hits
  std::string algorithm;     // backend that (would have) solved it
  // Canonical structure-pair digest in wire form (pair_digest_hex); empty when
  // the pair never resolved (parse failure, unknown db name, early rejection).
  std::string digest;
  std::string error;         // timeout / rejected / error detail
  // Router hop fields, appended by the distributed router on traced requests
  // only ("trace": true) — untraced routed responses stay byte-identical to
  // direct serving. attempts == 0 means "did not pass through a router" (or
  // the request was untraced).
  std::uint32_t attempts = 0;     // dispatch attempts the router used (>= 1)
  std::string shard;              // the shard whose answer won
  double router_queued_ms = 0.0;  // router admission -> first dispatch

  [[nodiscard]] obs::Json to_json() const;
  [[nodiscard]] std::string to_line() const;

  // Parses one response line (the loadgen's receive path). Throws
  // std::invalid_argument on malformed input.
  static ServeResponse from_line(std::string_view line);
};

}  // namespace srna::serve
