#include "serve/admin.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "obs/exposition.hpp"
#include "obs/perf/memory.hpp"
#include "obs/perf/perf_counters.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"

namespace srna::serve {

std::string healthz_body(const QueryService& service) {
  // Liveness is the process answering at all; the service merely existing is
  // the whole test. Draining/overload are readiness concerns (/readyz) — a
  // restart-on-failure supervisor must not kill a draining process.
  (void)service;
  return "ok";
}

bool healthy(const QueryService& service) { return healthz_body(service) == "ok"; }

std::string readyz_body(const QueryService& service) {
  if (service.draining()) return "draining";
  if (!service.ready()) return "starting";
  if (service.queue_depth() >= service.config().queue_capacity) return "overloaded";
  return "ok";
}

bool ready(const QueryService& service) { return readyz_body(service) == "ok"; }

obs::Json admin_json(const QueryService& service, std::string_view what) {
  obs::Json doc = obs::Json::object();
  doc.set("admin", obs::Json(std::string(what)));
  if (what == "metrics") {
    // Sampled gauges (RSS, counter availability) are refreshed per scrape so
    // the exposition is never stale.
    obs::update_memory_gauges();
    obs::publish_counter_availability();
    doc.set("body", obs::Json(obs::render_prometheus()));
  } else if (what == "healthz") {
    doc.set("status", obs::Json(healthz_body(service)));
    doc.set("healthy", obs::Json(healthy(service)));
  } else if (what == "readyz") {
    doc.set("status", obs::Json(readyz_body(service)));
    doc.set("ready", obs::Json(ready(service)));
  } else if (what == "statz") {
    doc.set("stats", service.stats_json());
  } else if (what == "flightz") {
    doc.set("flight", service.flight().to_json());
  } else if (what == "tracez") {
    // The process's Chrome trace so far (with its clock anchor), for the
    // cross-process collector; also answers in offline mode where no admin
    // listener exists.
    doc.set("enabled", obs::Json(obs::Tracer::instance().enabled()));
    doc.set("trace", obs::Tracer::instance().to_json());
  } else {
    doc.set("error",
            obs::Json("unknown admin command (metrics | healthz | readyz | statz | "
                      "flightz | tracez)"));
  }
  return doc;
}

// ---------------------------------------------------------------- AdminServer

namespace {

std::string http_response(int status, const char* reason, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

// The standard single-process admin routes, as a pluggable handler.
HttpReply service_routes(const QueryService& service, const std::string& path) {
  if (path == "/metrics") {
    obs::update_memory_gauges();
    obs::publish_counter_availability();
    return HttpReply{200, "text/plain; version=0.0.4", obs::render_prometheus()};
  }
  if (path == "/healthz") {
    const std::string body = healthz_body(service);
    return HttpReply{body == "ok" ? 200 : 503, "text/plain", body + "\n"};
  }
  if (path == "/readyz") {
    const std::string body = readyz_body(service);
    return HttpReply{body == "ok" ? 200 : 503, "text/plain", body + "\n"};
  }
  if (path == "/statz")
    return HttpReply{200, "application/json", service.stats_json().dump(2) + "\n"};
  if (path == "/flightz")
    return HttpReply{200, "application/json", service.flight().to_json().dump(2) + "\n"};
  if (path == "/tracez")
    // The raw Chrome trace document — srna-trace-collect fetches this from
    // every process and clock-aligns them via the embedded anchors.
    return HttpReply{200, "application/json",
                     obs::Tracer::instance().to_json().dump(0) + "\n"};
  return HttpReply{404, "text/plain",
                   "routes: /metrics /healthz /readyz /statz /flightz /tracez\n"};
}

}  // namespace

AdminServer::AdminServer(const QueryService& service, const std::string& host,
                         std::uint16_t port)
    : AdminServer(
          [&service](const std::string& path) { return service_routes(service, path); },
          host, port) {}

AdminServer::AdminServer(HttpHandler handler, const std::string& host, std::uint16_t port)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("admin: socket() failed");

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("admin: bad listen address '" + host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    throw std::runtime_error("admin: bind(" + host + ":" + std::to_string(port) +
                             ") failed: " + std::strerror(err));
  }
  if (::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    throw std::runtime_error(std::string("admin: listen() failed: ") + std::strerror(err));
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = ntohs(bound.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::stop() {
  {
    std::lock_guard lock(stop_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
}

void AdminServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop) or fatal
    }
    // A stuck client must not wedge the (single-threaded) admin plane.
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    handle_connection(fd);
    ::close(fd);
  }
}

void AdminServer::handle_connection(int fd) {
  // Read until the end of the request head (we ignore everything past the
  // request line) or a sanity limit.
  std::string head;
  char chunk[1024];
  while (head.find("\r\n") == std::string::npos && head.size() < 8192) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return;
    head.append(chunk, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) return;
  const std::string_view request_line = std::string_view(head).substr(0, line_end);

  const std::size_t method_end = request_line.find(' ');
  if (method_end == std::string_view::npos) return;
  const std::string_view method = request_line.substr(0, method_end);
  std::string_view path = request_line.substr(method_end + 1);
  if (const std::size_t path_end = path.find(' '); path_end != std::string_view::npos)
    path = path.substr(0, path_end);
  if (const std::size_t query = path.find('?'); query != std::string_view::npos)
    path = path.substr(0, query);

  if (method != "GET") {
    send_all(fd, http_response(405, "Method Not Allowed", "text/plain", "GET only\n"));
    return;
  }
  const HttpReply reply = handler_(std::string(path));
  const char* reason = "OK";
  switch (reply.status) {
    case 200: reason = "OK"; break;
    case 404: reason = "Not Found"; break;
    case 405: reason = "Method Not Allowed"; break;
    case 503: reason = "Service Unavailable"; break;
    default: reason = "Internal Server Error"; break;
  }
  send_all(fd, http_response(reply.status, reason, reply.content_type.c_str(), reply.body));
}

}  // namespace srna::serve
