#include "serve/service.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/perf/memory.hpp"
#include "obs/trace.hpp"
#include "rna/dot_bracket.hpp"
#include "rna/structure_hash.hpp"

namespace srna::serve {

namespace {

using Clock = DeadlineMonitor::Clock;

double ms_between(Clock::time_point from, Clock::time_point to) noexcept {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

double seconds_between(Clock::time_point from, Clock::time_point to) noexcept {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

// ------------------------------------------------------------ DeadlineMonitor

DeadlineMonitor::DeadlineMonitor() : thread_([this] { run(); }) {}

DeadlineMonitor::~DeadlineMonitor() { stop(); }

std::uint64_t DeadlineMonitor::watch(Clock::time_point deadline,
                                     std::shared_ptr<std::atomic<bool>> flag) {
  std::uint64_t ticket;
  {
    std::lock_guard lock(mutex_);
    ticket = next_ticket_++;
    active_.emplace(ticket, std::move(flag));
    heap_.push_back(Watch{deadline, ticket});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
  wake_.notify_one();
  return ticket;
}

void DeadlineMonitor::release(std::uint64_t ticket) {
  std::lock_guard lock(mutex_);
  // Lazy deletion: the heap entry is discarded when it surfaces.
  active_.erase(ticket);
}

void DeadlineMonitor::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void DeadlineMonitor::run() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    // Drop released tickets off the top, fire everything due.
    const Clock::time_point now = Clock::now();
    while (!heap_.empty()) {
      const Watch& top = heap_.front();
      const auto it = active_.find(top.ticket);
      if (it == active_.end()) {
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
        heap_.pop_back();
        continue;
      }
      if (top.deadline > now) break;
      it->second->store(true, std::memory_order_relaxed);
      active_.erase(it);
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
      heap_.pop_back();
    }
    if (heap_.empty()) {
      wake_.wait(lock, [&] { return stopping_ || !heap_.empty(); });
    } else {
      wake_.wait_until(lock, heap_.front().deadline);
    }
  }
}

// --------------------------------------------------------------- QueryService

std::string config_fingerprint(const std::string& algorithm, const SolverConfig& config) {
  // Only knobs that change the *value* or are worth keying separately need
  // to appear; layout cannot change the answer but keeps entries honest
  // about what was measured.
  return algorithm + "/" +
         (config.layout == SliceLayout::kCompressed ? "compressed" : "dense");
}

QueryService::QueryService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache),
      queue_(std::max<std::size_t>(1, config_.queue_capacity)),
      flight_(config_.flight),
      started_(Clock::now()) {
  if (config_.default_algorithm.empty()) config_.default_algorithm = "srna2";
  // Fail construction, not the first request, on an unknown default backend.
  (void)McosEngine::instance().at(config_.default_algorithm);
  obs::Registry::instance().gauge("serve.memory_budget_bytes").set(
      static_cast<double>(config_.memory_budget_bytes));
  const int workers = std::max(1, config_.workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) workers_.emplace_back([this] { worker_loop(); });
}

QueryService::~QueryService() { drain(); }

void QueryService::drain() {
  std::lock_guard drain_lock(drain_mutex_);
  if (drained_) return;
  obs::log_info("serve.drain",
                obs::log_fields({{"queued", obs::Json(static_cast<std::uint64_t>(
                                                queue_.depth()))}}));
  queue_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  monitor_.stop();
  drained_ = true;
  obs::log_info("serve.drained",
                obs::log_fields(
                    {{"accepted", obs::Json(accepted_.load(std::memory_order_relaxed))},
                     {"rejected", obs::Json(rejected_.load(std::memory_order_relaxed))}}));
}

bool QueryService::try_reserve_memory(std::uint64_t bytes) {
  const std::uint64_t budget = config_.memory_budget_bytes;
  if (budget == 0) return true;
  std::uint64_t current = memory_reserved_.load(std::memory_order_relaxed);
  for (;;) {
    if (bytes > budget - current) return false;  // current <= budget always
    if (memory_reserved_.compare_exchange_weak(current, current + bytes,
                                               std::memory_order_relaxed))
      break;
  }
  auto& registry = obs::Registry::instance();
  registry.gauge("serve.memory_reserved_bytes").set(
      static_cast<double>(memory_reserved_.load(std::memory_order_relaxed)));
  registry.gauge("serve.memory_reserved_peak_bytes").set_max(
      static_cast<double>(current + bytes));
  return true;
}

void QueryService::release_memory(std::uint64_t bytes) {
  if (config_.memory_budget_bytes == 0 || bytes == 0) return;
  const std::uint64_t after =
      memory_reserved_.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
  obs::Registry::instance().gauge("serve.memory_reserved_bytes").set(
      static_cast<double>(after));
}

double QueryService::retry_after_ms_hint() const {
  // Rough service-time model: depth/workers solves ahead of a retry, each
  // costing the observed EWMA. Floor at 1ms so clients always back off.
  const double ewma =
      std::bit_cast<double>(solve_ewma_bits_.load(std::memory_order_relaxed));
  const double per_solve = ewma > 0 ? ewma : 1e-3;
  const double workers = static_cast<double>(workers_.empty() ? 1 : workers_.size());
  const double depth = static_cast<double>(queue_.depth());
  return std::max(1.0, 1e3 * per_solve * (depth + 1.0) / workers);
}

bool QueryService::submit(ServeRequest request, Callback done) {
  obs::Registry::instance().counter("serve.requests").add();
  Job job;
  job.admitted = Clock::now();
  // A propagated correlation id (the distributed router's, or any upstream
  // caller's) is adopted wholesale; only uncorrelated requests mint locally.
  job.trace_id = request.trace_id != 0
                     ? request.trace_id
                     : next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  // Tracer timestamp captured up front so the worker can record the queued
  // phase retroactively (the span belongs to this request's lane even though
  // no thread runs it while it waits).
  if (request.trace && obs::Tracer::instance().enabled())
    job.admitted_us = obs::Tracer::instance().now_us();
  const double deadline_ms =
      request.deadline_ms > 0 ? request.deadline_ms : config_.default_deadline_ms;
  job.deadline = deadline_ms > 0
                     ? job.admitted + std::chrono::duration_cast<Clock::duration>(
                                          std::chrono::duration<double, std::milli>(deadline_ms))
                     : Clock::time_point::max();
  job.request = std::move(request);
  job.done = std::move(done);

  const std::int64_t request_id = job.request.id;
  const std::uint64_t trace_id = job.trace_id;
  const PushResult admission = queue_.try_push(std::move(job));
  if (admission == PushResult::kAccepted) {
    accepted_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().gauge("serve.queue_depth").set(
        static_cast<double>(queue_.depth()));
    if (obs::Logger::instance().enabled(obs::LogLevel::kDebug))
      obs::log_debug("serve.accept",
                     obs::log_fields({{"id", obs::Json(request_id)},
                                      {"trace_id", obs::Json(trace_id)}}));
    return true;
  }

  // Rejected inline: try_push moves from its argument only on accept, so
  // `job` still owns the request and callback here.
  rejected_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::instance().counter("serve.admission_rejects").add();
  ServeResponse resp;
  resp.id = job.request.id;
  resp.status = ResponseStatus::kRejected;
  if (admission == PushResult::kFull) {
    resp.retry_after_ms = retry_after_ms_hint();
    resp.error = "queue full (capacity " + std::to_string(queue_.capacity() ) + ")";
  } else {
    resp.error = "service is draining";
  }
  obs::log_warn(
      "serve.reject",
      obs::log_fields({{"id", obs::Json(job.request.id)},
                       {"reason", obs::Json(resp.error)},
                       {"retry_after_ms", obs::Json(resp.retry_after_ms)}}));
  resp.latency_ms = ms_between(job.admitted, Clock::now());
  // Rejections never reach respond(), so the flight recorder hears about
  // them here — a burst of these records is exactly the anomaly it watches.
  obs::FlightRecord flight_record;
  flight_record.trace_id = trace_id;
  flight_record.request_id = resp.id;
  flight_record.outcome = to_string(resp.status);
  flight_record.detail = resp.error;
  flight_record.latency_ms = resp.latency_ms;
  flight_.record(std::move(flight_record));
  job.done(resp);
  return false;
}

std::future<ServeResponse> QueryService::solve_async(ServeRequest request) {
  auto promise = std::make_shared<std::promise<ServeResponse>>();
  std::future<ServeResponse> future = promise->get_future();
  submit(std::move(request),
         [promise](const ServeResponse& resp) { promise->set_value(resp); });
  return future;
}

ServeResponse QueryService::solve(ServeRequest request) {
  return solve_async(std::move(request)).get();
}

void QueryService::worker_loop() {
  workers_running_.fetch_add(1, std::memory_order_acq_rel);
  while (auto job = queue_.pop()) {
    obs::Registry::instance().gauge("serve.queue_depth").set(
        static_cast<double>(queue_.depth()));
    process(std::move(*job));
  }
}

void QueryService::process(Job job) {
  const Clock::time_point picked_up = Clock::now();
  obs::Registry::instance().histogram("serve.queue_wait").observe(
      std::max(1e-9, seconds_between(job.admitted, picked_up)));
  // Stored on the job because a parked job is answered later, by its flight
  // or batch leader, which must echo this job's own queue timing.
  job.queued_ms = ms_between(job.admitted, picked_up);

  // Everything recorded while this worker owns the request — including spans
  // from the engine and PRNA layers below — carries the request's trace id.
  obs::TraceContextScope trace_scope(job.trace_id);
  if (job.admitted_us != 0 && obs::Tracer::instance().enabled()) {
    // The queued phase, recorded retroactively now that a thread owns it.
    obs::Tracer& tracer = obs::Tracer::instance();
    tracer.record("serve", "queued", job.admitted_us,
                  tracer.now_us() - job.admitted_us,
                  obs::trace_args({{"id", job.request.id}}));
  }

  const std::uint64_t trace_id = job.trace_id;
  const double queued_ms = job.queued_ms;
  ServeResponse response;
  bool parked = false;
  std::vector<Job> batch_members;
  if (picked_up >= job.deadline) {
    // Expired while queued: answer without burning a solve on it.
    obs::Registry::instance().counter("serve.deadline_queue_expirations").add();
    response.id = job.request.id;
    response.status = ResponseStatus::kTimeout;
    response.error = "deadline expired while queued";
  } else {
    response = solve_job(job, parked, batch_members);
  }
  if (!parked) {
    response.trace_id = trace_id;
    response.queued_ms = queued_ms;
    respond(job, std::move(response));
  }
  // Members collected while this job led a batch window run back-to-back on
  // this thread — against its warm per-thread workspace — after the leader's
  // own answer went out.
  for (Job& member : batch_members) run_batch_member(std::move(member));

  const Clock::time_point finished = Clock::now();
  worker_busy_us_.fetch_add(
      static_cast<std::uint64_t>(1e6 * seconds_between(picked_up, finished)),
      std::memory_order_relaxed);
}

void QueryService::run_batch_member(Job job) {
  job.no_batch = true;  // one accumulation window per request, ever
  obs::TraceContextScope trace_scope(job.trace_id);
  ServeResponse response;
  bool parked = false;
  std::vector<Job> no_members;  // no_batch ⇒ solve_job never fills this
  if (Clock::now() >= job.deadline) {
    obs::Registry::instance().counter("serve.deadline_queue_expirations").add();
    response.id = job.request.id;
    response.status = ResponseStatus::kTimeout;
    response.error = "deadline expired while batched";
  } else {
    batched_solves_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("serve.batched_solves").add();
    response = solve_job(job, parked, no_members);
  }
  if (parked) return;  // joined an in-flight duplicate; that leader answers it
  response.trace_id = job.trace_id;
  response.queued_ms = job.queued_ms;
  respond(job, std::move(response));
}

void QueryService::finish_flight(const std::string& key,
                                 const ServeResponse& leader_response) {
  std::vector<Job> followers;
  {
    std::lock_guard lock(coalesce_mutex_);
    const auto it = inflight_.find(key);
    if (it == inflight_.end()) return;
    followers = std::move(it->second.followers);
    inflight_.erase(it);
  }
  // Followers share the leader's outcome wholesale — value, status, error,
  // solve_ms — under their own correlation identity. A follower whose
  // deadline passed mid-flight still gets the result: an answer in hand
  // beats a timeout for a solve that completed anyway.
  for (Job& follower : followers) {
    ServeResponse fanned = leader_response;
    fanned.id = follower.request.id;
    fanned.trace_id = follower.trace_id;
    fanned.queued_ms = follower.queued_ms;
    fanned.coalesced = true;
    respond(follower, std::move(fanned));
  }
}

ServeResponse QueryService::solve_job(Job& job, bool& parked,
                                      std::vector<Job>& batch_members) {
  const ServeRequest& req = job.request;
  ServeResponse resp;
  resp.id = req.id;
  const std::string algorithm =
      req.algorithm.empty() ? config_.default_algorithm : req.algorithm;
  resp.algorithm = algorithm;

  // Set once this worker registers itself as the single-flight leader for
  // its (pair, config); every exit after that point — ok, over-memory,
  // timeout, error — must fan the outcome out to parked followers.
  bool flight_leader = false;
  std::string flight_key;

  try {
    obs::TraceScope span("serve", "request");
    if (span.active()) span.set_args(obs::trace_args({{"id", req.id}}));

    // Resolve the pair (worker-side, off the submitter's thread).
    SecondaryStructure a;
    SecondaryStructure b;
    if (req.by_name()) {
      if (config_.db == nullptr)
        throw std::invalid_argument("this service has no structure database loaded");
      const std::size_t ia = config_.db->find(req.a_name);
      const std::size_t ib = config_.db->find(req.b_name);
      if (ia == StructureDatabase::npos)
        throw std::invalid_argument("unknown structure name '" + req.a_name + "'");
      if (ib == StructureDatabase::npos)
        throw std::invalid_argument("unknown structure name '" + req.b_name + "'");
      a = config_.db->record(ia).structure;
      b = config_.db->record(ib).structure;
    } else {
      a = parse_dot_bracket(req.a);
      b = parse_dot_bracket(req.b);
    }

    // The canonical pair digest, echoed so routing is auditable end to end
    // (the distributed router hashes the same digest onto its shard ring).
    resp.digest = pair_digest_hex(a, b);

    SolverConfig config;
    if (req.layout == "compressed") config.layout = SliceLayout::kCompressed;
    const SolverBackend& backend = McosEngine::instance().at(algorithm);

    const double denom = static_cast<double>(a.arc_count() + b.arc_count());
    const auto normalized = [&](Score value) {
      return denom > 0 ? 2.0 * static_cast<double>(value) / denom : 1.0;
    };

    const std::string fingerprint = config_fingerprint(algorithm, config);
    CacheKey key = CacheKey::make(a, b, fingerprint);
    if (!req.no_cache) {
      obs::TraceScope cache_span("serve", "cache_lookup", req.trace);
      const std::optional<Score> hit = cache_.get(key);
      if (cache_span.active())
        cache_span.set_args(obs::trace_args({{"hit", hit.has_value() ? 1 : 0}}));
      cache_span.close();
      if (hit) {
        resp.status = ResponseStatus::kOk;
        resp.value = *hit;
        resp.normalized = normalized(*hit);
        resp.cache_hit = true;
        return resp;
      }
    }

    // Shared-structure batching: the first miss for a structure A sleeps out
    // the accumulation window while later misses sharing A park behind it;
    // the leader then runs the members sequentially on its thread (via
    // process(), after its own answer). no_cache requests skip this — they
    // demand a fresh, immediate solve.
    if (config_.batch_window_ms > 0 && !req.no_cache && !job.no_batch) {
      const std::string batch_key = digest_hex(hash_structure(a)) + "|" + fingerprint;
      bool batch_leader = false;
      {
        std::lock_guard lock(coalesce_mutex_);
        auto [it, inserted] = batches_.try_emplace(batch_key);
        if (inserted)
          batch_leader = true;
        else
          it->second.members.push_back(std::move(job));
      }
      if (!batch_leader) {
        parked = true;
        return resp;
      }
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          config_.batch_window_ms));
      {
        std::lock_guard lock(coalesce_mutex_);
        const auto it = batches_.find(batch_key);
        if (it != batches_.end()) {
          batch_members = std::move(it->second.members);
          batches_.erase(it);
        }
      }
      if (!batch_members.empty()) {
        batch_groups_.fetch_add(1, std::memory_order_relaxed);
        obs::Registry::instance().counter("serve.batch_groups").add();
        obs::log_debug(
            "serve.batch_group",
            obs::log_fields({{"id", obs::Json(req.id)},
                             {"members", obs::Json(static_cast<std::uint64_t>(
                                             batch_members.size()))}}));
      }
    }

    // Single-flight coalescing: if another worker is already solving this
    // exact (pair, config), park behind it instead of solving it again; the
    // leader fans its outcome out to every follower. Duplicate misses cost
    // one solve total, and followers add nothing to the memory reservation.
    if (!req.no_cache) {
      flight_key = resp.digest + "|" + fingerprint;
      bool joined = false;
      {
        std::lock_guard lock(coalesce_mutex_);
        auto [it, inserted] = inflight_.try_emplace(flight_key);
        if (inserted)
          flight_leader = true;
        else {
          it->second.followers.push_back(std::move(job));
          joined = true;
        }
      }
      if (joined) {
        coalesced_.fetch_add(1, std::memory_order_relaxed);
        obs::Registry::instance().counter("serve.coalesced_requests").add();
        parked = true;
        return resp;
      }
    }

    // Memory admission: reserve the backend's resident-byte upper bound
    // against the process budget before dispatching, so concurrent large
    // solves cannot sum past the cap. Runs after the cache lookup on
    // purpose — a hit costs no solver memory and must never be rejected.
    std::uint64_t reserved_bytes = 0;
    if (const std::uint64_t budget = config_.memory_budget_bytes; budget != 0) {
      const std::uint64_t estimate = backend.estimate_memory_bytes(a, b, config);
      if (!try_reserve_memory(estimate)) {
        obs::Registry::instance().counter("serve.over_memory_rejects").add();
        resp.status = ResponseStatus::kOverMemoryBudget;
        resp.estimated_bytes = estimate;
        if (estimate <= budget) {
          // Fits an idle service; it was only crowded out by in-flight
          // solves. The hint tells the client when to come back.
          resp.retry_after_ms = retry_after_ms_hint();
          resp.error = "estimated " + std::to_string(estimate) +
                       " solver bytes do not fit the remaining memory budget";
        } else {
          // No retry can ever succeed for this (pair, algorithm).
          resp.error = "estimated " + std::to_string(estimate) +
                       " solver bytes exceed the service memory budget of " +
                       std::to_string(budget) + " bytes";
        }
        obs::log_warn("serve.over_memory",
                      obs::log_fields({{"id", obs::Json(req.id)},
                                       {"algorithm", obs::Json(algorithm)},
                                       {"estimated_bytes", obs::Json(estimate)},
                                       {"budget_bytes", obs::Json(budget)}}));
        if (flight_leader) finish_flight(flight_key, resp);
        return resp;
      }
      reserved_bytes = estimate;
    }
    // Local classes share the enclosing member function's access, so the
    // guard may call the private release on every exit path below.
    struct ReservationGuard {
      QueryService* service;
      std::uint64_t bytes;
      ~ReservationGuard() { service->release_memory(bytes); }
    } reservation_guard{this, reserved_bytes};

    // Deadline enforcement: the monitor flips `cancel` when the request's
    // absolute deadline passes; the solver polls it at slice boundaries.
    auto cancel = std::make_shared<std::atomic<bool>>(false);
    std::uint64_t ticket = 0;
    const bool watched = job.deadline != Clock::time_point::max() &&
                         backend.caps().cancel;
    if (watched) {
      config.cancel = cancel.get();
      ticket = monitor_.watch(job.deadline, cancel);
    }

    const Clock::time_point solve_start = Clock::now();
    try {
      obs::TraceScope solve_span("serve", "solve", req.trace);
      if (solve_span.active())
        solve_span.set_args(obs::trace_args(
            {{"n_a", static_cast<std::int64_t>(a.length())},
             {"n_b", static_cast<std::int64_t>(b.length())}}));
      const EngineResult result =
          solve_with(backend, a, b, config, Workspace::local());
      solve_span.close();
      if (watched) monitor_.release(ticket);
      const double solve_seconds = seconds_between(solve_start, Clock::now());
      resp.solve_ms = solve_seconds * 1e3;
      obs::Registry::instance().histogram("serve.solve_seconds").observe(
          std::max(1e-9, solve_seconds));
      obs::Registry::instance().window("serve.solve_ms_window").observe(
          resp.solve_ms, job.trace_id);
      // EWMA(1/8) feeds the retry-after hint; benign update race is fine.
      const double prev =
          std::bit_cast<double>(solve_ewma_bits_.load(std::memory_order_relaxed));
      const double next = prev > 0 ? prev + (solve_seconds - prev) / 8.0 : solve_seconds;
      solve_ewma_bits_.store(std::bit_cast<std::uint64_t>(next),
                             std::memory_order_relaxed);

      resp.status = ResponseStatus::kOk;
      resp.value = result.value;
      resp.normalized = normalized(result.value);
      if (!req.no_cache) cache_.put(std::move(key), result.value);
    } catch (const SolveCancelled&) {
      if (watched) monitor_.release(ticket);
      obs::Registry::instance().counter("serve.deadline_solve_expirations").add();
      resp.status = ResponseStatus::kTimeout;
      resp.error = "deadline expired mid-solve (cancelled at a slice boundary)";
      resp.solve_ms = ms_between(solve_start, Clock::now());
    } catch (...) {
      if (watched) monitor_.release(ticket);
      throw;
    }
  } catch (const std::exception& e) {
    resp.status = ResponseStatus::kError;
    resp.error = e.what();
  }
  // Fan the leader's outcome — whatever it is — out to parked duplicates.
  // Runs after the cache put above, so a follower-turned-new-leader race
  // (miss before the put, join after the erase) can only cost a redundant
  // solve, never a wrong or missing answer.
  if (flight_leader) finish_flight(flight_key, resp);
  return resp;
}

void QueryService::respond(const Job& job, ServeResponse response) {
  response.latency_ms = ms_between(job.admitted, Clock::now());
  auto& registry = obs::Registry::instance();
  registry.histogram("serve.request_latency").observe(
      std::max(1e-9, response.latency_ms / 1e3));
  // The sliding window behind the admin endpoint's live p50/p95/p99 gauges.
  // The trace id rides along as the exemplar: the window's max quantile can
  // name the exact request that set it.
  registry.window("serve.latency_ms_window").observe(response.latency_ms,
                                                     response.trace_id);
  switch (response.status) {
    case ResponseStatus::kOk:
      responses_ok_.fetch_add(1, std::memory_order_relaxed);
      registry.counter("serve.responses_ok").add();
      break;
    case ResponseStatus::kTimeout:
      responses_timeout_.fetch_add(1, std::memory_order_relaxed);
      registry.counter("serve.responses_timeout").add();
      obs::log_warn("serve.timeout",
                    obs::log_fields({{"id", obs::Json(response.id)},
                                     {"trace_id", obs::Json(response.trace_id)},
                                     {"latency_ms", obs::Json(response.latency_ms)},
                                     {"detail", obs::Json(response.error)}}));
      break;
    case ResponseStatus::kRejected:
      registry.counter("serve.responses_rejected").add();
      break;
    case ResponseStatus::kOverMemoryBudget:
      responses_over_memory_.fetch_add(1, std::memory_order_relaxed);
      registry.counter("serve.responses_over_memory").add();
      break;
    case ResponseStatus::kError:
      responses_error_.fetch_add(1, std::memory_order_relaxed);
      registry.counter("serve.responses_error").add();
      obs::log_warn("serve.error",
                    obs::log_fields({{"id", obs::Json(response.id)},
                                     {"trace_id", obs::Json(response.trace_id)},
                                     {"detail", obs::Json(response.error)}}));
      break;
  }
  // Every answered request leaves one flight record; timeouts, errors, and
  // slow responses (past flight.slow_ms) trip the anomaly dump.
  obs::FlightRecord flight_record;
  flight_record.trace_id = response.trace_id;
  flight_record.request_id = response.id;
  flight_record.digest = response.digest;
  flight_record.outcome = to_string(response.status);
  flight_record.detail = response.error;
  flight_record.latency_ms = response.latency_ms;
  flight_record.queued_ms = response.queued_ms;
  flight_record.solve_ms = response.solve_ms;
  flight_record.cache_hit = response.cache_hit;
  flight_.record(std::move(flight_record));
  job.done(response);
}

obs::Json QueryService::stats_json() const {
  auto& registry = obs::Registry::instance();
  obs::Json doc = obs::Json::object();
  doc.set("workers", obs::Json(static_cast<std::uint64_t>(workers_.size())));
  doc.set("queue_capacity", obs::Json(static_cast<std::uint64_t>(queue_.capacity())));
  doc.set("queue_depth", obs::Json(static_cast<std::uint64_t>(queue_.depth())));
  doc.set("accepted", obs::Json(accepted_.load(std::memory_order_relaxed)));
  doc.set("rejected", obs::Json(rejected_.load(std::memory_order_relaxed)));
  doc.set("responses_ok", obs::Json(responses_ok_.load(std::memory_order_relaxed)));
  doc.set("responses_timeout", obs::Json(responses_timeout_.load(std::memory_order_relaxed)));
  doc.set("responses_error", obs::Json(responses_error_.load(std::memory_order_relaxed)));
  doc.set("responses_over_memory",
          obs::Json(responses_over_memory_.load(std::memory_order_relaxed)));
  doc.set("coalesced_requests", obs::Json(coalesced_.load(std::memory_order_relaxed)));
  doc.set("batched_solves", obs::Json(batched_solves_.load(std::memory_order_relaxed)));
  doc.set("batch_groups", obs::Json(batch_groups_.load(std::memory_order_relaxed)));
  doc.set("memory_budget_bytes", obs::Json(config_.memory_budget_bytes));
  doc.set("memory_reserved_bytes",
          obs::Json(memory_reserved_.load(std::memory_order_relaxed)));
  doc.set("cache", cache_.stats_json());

  const double busy_seconds =
      static_cast<double>(worker_busy_us_.load(std::memory_order_relaxed)) / 1e6;
  const double elapsed = seconds_between(started_, Clock::now());
  doc.set("worker_busy_seconds", obs::Json(busy_seconds));
  doc.set("uptime_seconds", obs::Json(elapsed));
  doc.set("worker_utilization",
          obs::Json(elapsed > 0 ? busy_seconds /
                                      (elapsed * static_cast<double>(workers_.size()))
                                : 0.0));

  obs::Json latency = obs::Json::object();
  const auto lat = registry.histogram("serve.request_latency").snapshot();
  latency.set("count", obs::Json(lat.count));
  latency.set("p50_ms", obs::Json(lat.p50 * 1e3));
  latency.set("p90_ms", obs::Json(lat.p90 * 1e3));
  latency.set("p99_ms", obs::Json(lat.p99 * 1e3));
  latency.set("max_ms", obs::Json(lat.max * 1e3));
  doc.set("request_latency", std::move(latency));
  // Exact percentiles over the recent window (what the admin endpoint
  // exposes live), alongside the since-start bucket estimates above.
  doc.set("latency_ms_window", registry.window("serve.latency_ms_window").to_json());
  // The memory ledger: RSS plus the exact byte gauges (memo table, slice
  // scratch, result cache) — one place to answer "what does serving cost in
  // bytes right now".
  doc.set("memory", obs::memory_ledger_json());
  return doc;
}

}  // namespace srna::serve
