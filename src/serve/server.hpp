// Transport layer for the query service: the same JSON-lines protocol over
// two byte streams.
//
//   run_offline   reads request lines from an istream, writes response lines
//                 to an ostream (interleaved in completion order, serialized
//                 by a mutex). This is the stdin/stdout mode — tests, CI,
//                 and `srna-serve --offline` exercise the full service
//                 (admission, deadlines, cache, drain) with no networking.
//   TcpServer     a localhost TCP listener: one accept thread, one reader
//                 thread per connection, responses written under a
//                 per-connection mutex as workers complete them (out of
//                 order; clients correlate by id). Malformed lines get an
//                 immediate "error" response rather than killing the
//                 connection.
//
// Both transports guarantee one response line per request line, in every
// path (parse failure, admission reject, timeout, error, success).
//
// Both also answer in-band admin lines (`{"admin": "metrics" | "healthz" |
// "readyz" | "statz"}`, see serve/admin.hpp) inline, without entering the
// admission queue — the offline mode's stand-in for the HTTP admin listener.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace srna::serve {

// Drives `service` from a stream of request lines until EOF, then waits for
// every outstanding response before returning. Returns the number of input
// lines consumed (in-band admin lines included). Blank lines are skipped.
std::size_t run_offline(QueryService& service, std::istream& in, std::ostream& out);

class TcpServer {
 public:
  // The generic form: `handler` receives each complete input line plus an
  // emitter for response lines (no trailing newline; callable from any
  // thread, any number of times after the handler returned — the transport
  // keeps the connection's write path alive until the last emitter drops).
  // The distributed router's client-facing listener plugs in here; the
  // QueryService ctor below is this with the standard submit-or-admin line
  // routing.
  using EmitLine = std::function<void(const std::string&)>;
  using LineHandler = std::function<void(const std::string& line, const EmitLine& emit)>;

  // Binds and listens on host:port (port 0 picks an ephemeral port — read it
  // back with port()). Throws std::runtime_error on bind/listen failure.
  TcpServer(LineHandler handler, const std::string& host, std::uint16_t port);
  TcpServer(QueryService& service, const std::string& host, std::uint16_t port);
  ~TcpServer();  // stop()

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  // Stops accepting, closes every connection, joins all threads. Idempotent.
  // The service itself is NOT drained — that is the caller's decision.
  void stop();

 private:
  struct Connection {
    ~Connection();  // closes fd
    int fd = -1;
    std::mutex write_mutex;  // serializes response lines from worker threads
  };

  void accept_loop();
  void serve_connection(std::shared_ptr<Connection> conn);

  LineHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;

  std::mutex mutex_;  // guards connections_ / readers_ / stopped_
  std::vector<std::weak_ptr<Connection>> connections_;
  std::vector<std::thread> readers_;
  bool stopped_ = false;
};

}  // namespace srna::serve
