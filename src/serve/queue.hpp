// Bounded MPMC admission queue for the query service.
//
// Admission control is the service's backpressure mechanism: the queue has a
// hard capacity, try_push never blocks, and a full queue is an explicit
// kFull result the caller turns into a reject-with-retry-after response —
// load the service cannot absorb is pushed back to clients immediately
// instead of accumulating as unbounded latency.
//
// Shutdown is a drain: close() stops admissions but poppers keep receiving
// queued work until the queue is empty, then get std::nullopt. Every item
// accepted before close() is therefore handed to exactly one worker — the
// "no lost requests on shutdown" guarantee the serve tests pin down.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace srna::serve {

enum class PushResult : std::uint8_t {
  kAccepted,  // enqueued; a worker will pop it
  kFull,      // at capacity — backpressure, caller should reject/retry
  kClosed,    // shutting down — no further admissions
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Non-blocking admission. Takes an rvalue and moves from it ONLY on
  // kAccepted — on kFull/kClosed the caller still owns the intact item (the
  // service answers rejects through the job's own callback).
  [[nodiscard]] PushResult try_push(T&& item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return PushResult::kAccepted;
  }

  // Blocks until an item is available or the queue is closed AND drained.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Stops admissions and wakes every blocked popper. Queued items remain
  // poppable (drain semantics). Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] std::size_t depth() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace srna::serve
