// QueryService — the concurrent MCOS query service.
//
// A pool of std::thread workers drains a bounded admission queue of
// ServeRequests, dispatches each through the McosEngine registry (per-thread
// pooled Workspaces, so steady-state solves allocate nothing), and answers
// through a caller-supplied completion callback. Production behaviors, in
// the order a request meets them:
//
//   admission   try_push on the bounded queue; a full queue rejects
//               synchronously with a retry-after hint derived from the
//               current depth and the observed solve-time EWMA (explicit
//               backpressure, never unbounded queueing).
//   resolution  dot-bracket literals are parsed / db names resolved on the
//               worker, off the submitter's thread.
//   cache       completed solves are memoized in a sharded LRU keyed by the
//               canonical (A, B, config) digest; a hit skips the solver.
//   coalescing  cache-missed cacheable requests for the *same* (pair, config)
//               single-flight: the first worker in becomes the leader and
//               solves; duplicates arriving while it runs park as followers
//               and are fanned the leader's outcome (their own ids/trace ids,
//               `coalesced: true`). One solve, N answers — the shared-
//               structure analogue of the cache for in-flight misses.
//   batching    with ServiceConfig::batch_window_ms > 0, the first cache-miss
//               for a given structure A (+ config) sleeps the window while
//               other workers park later misses sharing that A; the leader
//               then executes the members back-to-back on its thread, so a
//               shared-structure burst runs against one warm workspace
//               instead of bouncing across the pool.
//   memory      with ServiceConfig::memory_budget_bytes set, the worker asks
//               the backend for its resident-byte upper bound and reserves it
//               against the process-wide budget (atomic CAS) before solving —
//               concurrent large solves cannot sum past the cap. A request
//               that does not fit is answered "over_memory_budget" with the
//               estimate; it never reaches the solver. Cache hits skip the
//               reservation entirely.
//   deadline    each request carries an absolute deadline. Expiry while
//               queued is detected at pop; expiry mid-solve is enforced by
//               the deadline-monitor thread flipping the request's cancel
//               flag, which the solver polls at slice boundaries
//               (SolveCancelled). Either way the client gets a "timeout"
//               response — never a torn result, never silence.
//   drain       stop() closes the queue, lets workers finish every accepted
//               request, then joins. Exactly one response per accepted
//               request, always.
//
// The pool is std::thread (not OpenMP) on purpose: every synchronization
// primitive here is TSan-modeled, making serve the first subsystem with
// end-to-end race coverage (scripts/check_tsan.sh runs the serve suite).
//
// Metrics (obs Registry): serve.requests, serve.responses_{ok,timeout,
// rejected,error,over_memory}, serve.admission_rejects,
// serve.over_memory_rejects, serve.memory_budget_bytes /
// serve.memory_reserved_bytes / serve.memory_reserved_peak_bytes (gauges:
// the admission budget, the live in-flight reservation sum, and its
// high-water mark), serve.deadline_{queue,solve}_
// expirations, serve.cache_{hits,misses,evictions}, serve.coalesced_requests /
// serve.batched_solves / serve.batch_groups (duplicate misses answered by a
// flight leader; member solves executed by batch leaders; non-empty batch
// groups formed), serve.queue_depth
// (gauge), serve.queue_wait / serve.solve_seconds / serve.request_latency
// (histograms), serve.latency_ms_window / serve.solve_ms_window (sliding
// windows feeding the admin endpoint's live p50/p95/p99), serve.worker_busy_us.
// stats_json() snapshots everything a run report needs, including worker
// utilization.
//
// Tracing: every admitted request gets a monotonically increasing trace id,
// echoed in its response and installed as the worker's obs trace context
// while the request is processed — all spans recorded anywhere downstream
// (cache lookup, engine solve, PRNA's parallel stage one) carry
// `"trace_id": N` and group into one correlated lane set in the Chrome
// trace. Per-phase spans (queued / cache_lookup / solve) are recorded only
// for requests that ask (`"trace": true`), keeping the common path at one
// id assignment. Operational events (rejects, timeouts, drain) go through
// the structured obs logger under `serve.*` event keys.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "db/structure_db.hpp"
#include "engine/engine.hpp"
#include "obs/flight.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"

namespace srna::serve {

// Flips request cancel flags when their deadlines pass. One monitor thread
// sleeps until the earliest registered deadline; watch()/release() bracket a
// worker's solve. Lazy deletion: released tickets stay in the heap until
// they surface and are discarded.
class DeadlineMonitor {
 public:
  DeadlineMonitor();
  ~DeadlineMonitor();

  DeadlineMonitor(const DeadlineMonitor&) = delete;
  DeadlineMonitor& operator=(const DeadlineMonitor&) = delete;

  using Clock = std::chrono::steady_clock;

  // Registers `flag` to be set to true at `deadline` (unless released
  // first). Returns the ticket for release().
  std::uint64_t watch(Clock::time_point deadline, std::shared_ptr<std::atomic<bool>> flag);
  void release(std::uint64_t ticket);

  void stop();  // joins the monitor thread; pending flags are left unset

 private:
  struct Watch {
    Clock::time_point deadline;
    std::uint64_t ticket;
    // Min-heap by deadline.
    bool operator>(const Watch& other) const noexcept { return deadline > other.deadline; }
  };

  void run();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<Watch> heap_;  // std::push_heap/pop_heap with std::greater
  std::unordered_map<std::uint64_t, std::shared_ptr<std::atomic<bool>>> active_;
  std::uint64_t next_ticket_ = 1;
  bool stopping_ = false;
  std::thread thread_;
};

struct ServiceConfig {
  int workers = 4;                   // clamped to >= 1
  std::size_t queue_capacity = 64;   // admission queue slots
  CacheConfig cache;                 // result cache (capacity 0 disables)
  double default_deadline_ms = 0;    // applied when a request carries none (0 = unlimited)
  std::string default_algorithm = "srna2";
  // Process-wide cap on the summed estimated footprint of in-flight solves
  // (0 = unlimited). Before dispatching, a worker asks the backend for its
  // estimate_memory_bytes(a, b, config) upper bound and reserves that many
  // bytes against this budget with a CAS; a request that cannot fit gets an
  // "over_memory_budget" response instead of a solve. The estimate alone
  // exceeding the budget is a permanent rejection (no retry hint); being
  // crowded out by concurrent solves carries retry_after_ms. Cache hits and
  // name resolution never reserve — only the solve itself does.
  std::uint64_t memory_budget_bytes = 0;
  // Shared-structure batch accumulation window (0 = off). The first
  // cache-missed request for a structure A (+ solver config) waits this long
  // for later misses sharing A to park behind it, then executes the whole
  // group sequentially on one worker (warm per-thread workspace, no
  // cross-worker bouncing). A burst of (A, B_i) queries pays one window of
  // added latency on the leader in exchange for locality; keep it well under
  // request deadlines. Exact duplicates are already deduplicated by the
  // always-on single-flight coalescing regardless of this setting.
  double batch_window_ms = 0;
  // Optional name-resolution corpus for a_name/b_name requests. Not owned;
  // must outlive the service and must not be mutated while serving (lookups
  // run concurrently on workers).
  const StructureDatabase* db = nullptr;
  // Always-on flight recorder (obs/flight.hpp): every response leaves a
  // record in the ring; anomalies (slow responses past flight.slow_ms,
  // timeouts, rejection bursts) dump recent history and retain exemplars
  // behind GET /flightz.
  obs::FlightConfig flight;
};

class QueryService {
 public:
  explicit QueryService(ServiceConfig config);
  ~QueryService();  // drains

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  using Callback = std::function<void(const ServeResponse&)>;

  // Admission. Returns true when the request was queued; the callback will
  // run exactly once, on a worker thread. Returns false when admission
  // failed (queue full or draining) — the callback has already run inline
  // with a "rejected" response. Either way, every submit produces exactly
  // one response.
  bool submit(ServeRequest request, Callback done);

  // Conveniences for tests and the in-process load generator.
  [[nodiscard]] std::future<ServeResponse> solve_async(ServeRequest request);
  [[nodiscard]] ServeResponse solve(ServeRequest request);

  // Graceful drain: stop admitting, complete every accepted request, join
  // the workers and the deadline monitor. Idempotent; implied by ~QueryService.
  void drain();

  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  [[nodiscard]] bool draining() const { return queue_.closed(); }

  // Readiness (the /readyz contract): every worker thread has reached its
  // pop loop — the engine registry resolved and per-thread workspaces exist —
  // and the service is not draining. Liveness (/healthz) is weaker: the
  // process answering at all.
  [[nodiscard]] bool ready() const noexcept {
    return workers_running_.load(std::memory_order_acquire) ==
               static_cast<int>(workers_.size()) &&
           !queue_.closed();
  }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }
  [[nodiscard]] const ResultCache& cache() const noexcept { return cache_; }
  // The flight-recorder view (GET /flightz and the in-band admin command).
  [[nodiscard]] const obs::FlightRecorder& flight() const noexcept { return flight_; }

  // Everything a run report wants: request/response counts by status, cache
  // stats, queue capacity/depth, latency percentiles (from the registry
  // histograms), worker utilization since construction.
  [[nodiscard]] obs::Json stats_json() const;

 private:
  struct Job {
    ServeRequest request;
    Callback done;
    DeadlineMonitor::Clock::time_point admitted;
    DeadlineMonitor::Clock::time_point deadline;  // time_point::max() = none
    std::uint64_t trace_id = 0;   // service-assigned, echoed in the response
    std::uint64_t admitted_us = 0;  // tracer timestamp at admission (traced requests)
    double queued_ms = 0.0;  // admission -> first worker pickup, set at pickup
    // Set on batch members re-executed by their leader so they cannot park
    // into a second accumulation window.
    bool no_batch = false;
  };

  // A single-flight entry: jobs that cache-missed on a (pair, config) some
  // other worker is already solving. The leader fans its outcome out to every
  // follower when its solve resolves (ok, timeout, or error alike).
  struct Flight {
    std::vector<Job> followers;
  };
  // A batch accumulation group: cache-missed jobs sharing structure A (+
  // config) parked behind a leader sleeping out the batch window.
  struct BatchGroup {
    std::vector<Job> members;
  };

  void worker_loop();
  void process(Job job);
  // Solves job.request. When the job parked behind an in-flight duplicate or
  // a batch leader instead, sets `parked` and returns a meaningless response —
  // ownership of the job (and the duty to answer it) moved to that leader.
  // When this job led a batch, its collected members are appended to
  // `batch_members` for the caller to execute after responding to the leader.
  [[nodiscard]] ServeResponse solve_job(Job& job, bool& parked,
                                        std::vector<Job>& batch_members);
  // Runs a parked batch member on the current (leader) thread: deadline
  // check, solve, respond. The member may still coalesce into another flight.
  void run_batch_member(Job job);
  // Pops the flight for `key` and answers every follower with the leader's
  // outcome (per-follower id / trace id / queue timing, coalesced = true).
  void finish_flight(const std::string& key, const ServeResponse& leader_response);
  void respond(const Job& job, ServeResponse response);
  [[nodiscard]] double retry_after_ms_hint() const;

  // Memory admission: CAS-reserves `bytes` against memory_budget_bytes.
  // Returns false when the reservation would push the in-flight sum over
  // the budget (the caller rejects the request). A budget of 0 always
  // succeeds without touching the counter.
  [[nodiscard]] bool try_reserve_memory(std::uint64_t bytes);
  void release_memory(std::uint64_t bytes);

  ServiceConfig config_;
  ResultCache cache_;
  BoundedQueue<Job> queue_;
  DeadlineMonitor monitor_;
  obs::FlightRecorder flight_;
  std::vector<std::thread> workers_;

  // Workers that have entered worker_loop (readiness, see ready()).
  std::atomic<int> workers_running_{0};
  std::atomic<std::uint64_t> next_trace_id_{1};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> responses_ok_{0};
  std::atomic<std::uint64_t> responses_timeout_{0};
  std::atomic<std::uint64_t> responses_error_{0};
  std::atomic<std::uint64_t> responses_over_memory_{0};
  // Summed estimates of in-flight solves, bounded by memory_budget_bytes.
  std::atomic<std::uint64_t> memory_reserved_{0};
  // Duplicate in-flight misses answered by a flight leader's solve.
  std::atomic<std::uint64_t> coalesced_{0};
  // Member solves executed by batch leaders / non-empty groups formed.
  std::atomic<std::uint64_t> batched_solves_{0};
  std::atomic<std::uint64_t> batch_groups_{0};
  std::atomic<std::uint64_t> worker_busy_us_{0};
  // EWMA of solve seconds, for the retry-after hint (stored as double bits).
  std::atomic<std::uint64_t> solve_ewma_bits_{0};
  std::chrono::steady_clock::time_point started_;
  bool drained_ = false;
  std::mutex drain_mutex_;
  // Guards inflight_ and batches_. Held only for map insert/extract — never
  // across a solve or a callback — so it cannot deadlock against workers.
  std::mutex coalesce_mutex_;
  std::unordered_map<std::string, Flight> inflight_;   // digest|fingerprint
  std::unordered_map<std::string, BatchGroup> batches_;  // digest(A)|fingerprint
};

// The cache-key fingerprint of everything outside the structure pair that
// changes an answer: backend name + layout. Exposed for tests.
[[nodiscard]] std::string config_fingerprint(const std::string& algorithm,
                                             const SolverConfig& config);

}  // namespace srna::serve
