#include "serve/protocol.hpp"

#include <stdexcept>

namespace srna::serve {

namespace {

[[noreturn]] void bad_request(const std::string& what) {
  throw std::invalid_argument("bad request: " + what);
}

std::string string_field(const obs::Json& doc, std::string_view key) {
  const obs::Json* v = doc.find(key);
  if (v == nullptr) return {};
  if (!v->is_string()) bad_request("field '" + std::string(key) + "' must be a string");
  return v->as_string();
}

double number_field(const obs::Json& doc, std::string_view key, double def) {
  const obs::Json* v = doc.find(key);
  if (v == nullptr) return def;
  if (!v->is_number()) bad_request("field '" + std::string(key) + "' must be a number");
  return v->as_double();
}

bool bool_field(const obs::Json& doc, std::string_view key) {
  const obs::Json* v = doc.find(key);
  if (v == nullptr) return false;
  if (v->kind() != obs::Json::Kind::kBool)
    bad_request("field '" + std::string(key) + "' must be a boolean");
  return v->as_bool();
}

}  // namespace

ServeRequest parse_request(std::string_view line) {
  const std::optional<obs::Json> doc = obs::Json::parse(line);
  if (!doc || !doc->is_object()) bad_request("expected one JSON object per line");

  static constexpr std::string_view kKnown[] = {"id",     "a",           "b",
                                                "a_name", "b_name",      "algorithm",
                                                "layout", "deadline_ms", "no_cache",
                                                "trace",  "trace_id"};
  for (const auto& [key, value] : doc->members()) {
    bool known = false;
    for (const std::string_view k : kKnown) known = known || key == k;
    if (!known) bad_request("unknown field '" + key + "'");
  }

  ServeRequest req;
  req.id = static_cast<std::int64_t>(number_field(*doc, "id", 0));
  req.a = string_field(*doc, "a");
  req.b = string_field(*doc, "b");
  req.a_name = string_field(*doc, "a_name");
  req.b_name = string_field(*doc, "b_name");
  req.algorithm = string_field(*doc, "algorithm");
  req.layout = string_field(*doc, "layout");
  req.deadline_ms = number_field(*doc, "deadline_ms", 0.0);
  req.no_cache = bool_field(*doc, "no_cache");
  req.trace = bool_field(*doc, "trace");
  // Exact 64-bit read (as_uint, not the double-based number_field): router-
  // minted ids use high bits a double round-trip would corrupt.
  if (const obs::Json* v = doc->find("trace_id")) {
    if (!v->is_number()) bad_request("field 'trace_id' must be a number");
    req.trace_id = v->as_uint();
  }

  const bool literal_pair = !req.a.empty() || !req.b.empty();
  const bool name_pair = !req.a_name.empty() || !req.b_name.empty();
  if (literal_pair && name_pair)
    bad_request("give either a/b dot-bracket literals or a_name/b_name, not both");
  if (!literal_pair && !name_pair) bad_request("missing structure pair (a/b or a_name/b_name)");
  if (literal_pair && (req.a.empty() || req.b.empty()))
    bad_request("both 'a' and 'b' are required");
  if (name_pair && (req.a_name.empty() || req.b_name.empty()))
    bad_request("both 'a_name' and 'b_name' are required");
  if (req.deadline_ms < 0) bad_request("'deadline_ms' must be >= 0");
  if (!req.layout.empty() && req.layout != "dense" && req.layout != "compressed")
    bad_request("'layout' must be 'dense' or 'compressed'");
  return req;
}

obs::Json ServeRequest::to_json() const {
  obs::Json doc = obs::Json::object();
  doc.set("id", obs::Json(id));
  if (by_name()) {
    doc.set("a_name", obs::Json(a_name));
    doc.set("b_name", obs::Json(b_name));
  } else {
    doc.set("a", obs::Json(a));
    doc.set("b", obs::Json(b));
  }
  if (!algorithm.empty()) doc.set("algorithm", obs::Json(algorithm));
  if (!layout.empty()) doc.set("layout", obs::Json(layout));
  if (deadline_ms > 0) doc.set("deadline_ms", obs::Json(deadline_ms));
  if (no_cache) doc.set("no_cache", obs::Json(true));
  if (trace) doc.set("trace", obs::Json(true));
  if (trace_id != 0) doc.set("trace_id", obs::Json(trace_id));
  return doc;
}

std::string ServeRequest::to_line() const { return to_json().dump(0); }

const char* to_string(ResponseStatus status) noexcept {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kRejected: return "rejected";
    case ResponseStatus::kOverMemoryBudget: return "over_memory_budget";
    case ResponseStatus::kTimeout: return "timeout";
    case ResponseStatus::kError: return "error";
  }
  return "error";
}

obs::Json ServeResponse::to_json() const {
  obs::Json doc = obs::Json::object();
  doc.set("id", obs::Json(id));
  doc.set("status", obs::Json(to_string(status)));
  if (status == ResponseStatus::kOk) {
    doc.set("value", obs::Json(static_cast<std::int64_t>(value)));
    doc.set("normalized", obs::Json(normalized));
    doc.set("cache_hit", obs::Json(cache_hit));
  }
  // Sparse: present only on answers fanned out by a coalescing flight leader
  // (any status — followers share the leader's outcome, timeout included).
  if (coalesced) doc.set("coalesced", obs::Json(true));
  if (status == ResponseStatus::kRejected) doc.set("retry_after_ms", obs::Json(retry_after_ms));
  if (status == ResponseStatus::kOverMemoryBudget) {
    doc.set("estimated_bytes", obs::Json(estimated_bytes));
    // Present only when the request would fit an idle service; its absence
    // marks the rejection permanent for this pair.
    if (retry_after_ms > 0) doc.set("retry_after_ms", obs::Json(retry_after_ms));
  }
  if (!algorithm.empty()) doc.set("algorithm", obs::Json(algorithm));
  if (!digest.empty()) doc.set("digest", obs::Json(digest));
  if (trace_id != 0) {
    // Admitted requests echo their correlation id and phase breakdown.
    doc.set("trace_id", obs::Json(trace_id));
    doc.set("queued_ms", obs::Json(queued_ms));
    doc.set("solve_ms", obs::Json(solve_ms));
  }
  doc.set("latency_ms", obs::Json(latency_ms));
  if (!error.empty()) doc.set("error", obs::Json(error));
  // Router hop fields trail the document — the router appends them to a
  // shard's serialized response, so emitting them last keeps this writer
  // byte-compatible with that path.
  if (attempts > 0) {
    doc.set("attempts", obs::Json(static_cast<std::uint64_t>(attempts)));
    if (!shard.empty()) doc.set("shard", obs::Json(shard));
    doc.set("router_queued_ms", obs::Json(router_queued_ms));
  }
  return doc;
}

std::string ServeResponse::to_line() const { return to_json().dump(0); }

ServeResponse ServeResponse::from_line(std::string_view line) {
  const std::optional<obs::Json> doc = obs::Json::parse(line);
  if (!doc || !doc->is_object())
    throw std::invalid_argument("bad response: expected one JSON object per line");
  ServeResponse resp;
  resp.id = static_cast<std::int64_t>(number_field(*doc, "id", 0));
  const std::string status = string_field(*doc, "status");
  if (status == "ok") {
    resp.status = ResponseStatus::kOk;
  } else if (status == "rejected") {
    resp.status = ResponseStatus::kRejected;
  } else if (status == "over_memory_budget") {
    resp.status = ResponseStatus::kOverMemoryBudget;
  } else if (status == "timeout") {
    resp.status = ResponseStatus::kTimeout;
  } else if (status == "error") {
    resp.status = ResponseStatus::kError;
  } else {
    throw std::invalid_argument("bad response: unknown status '" + status + "'");
  }
  resp.value = static_cast<Score>(number_field(*doc, "value", 0));
  resp.normalized = number_field(*doc, "normalized", 0.0);
  if (const obs::Json* v = doc->find("cache_hit")) resp.cache_hit = v->as_bool();
  if (const obs::Json* v = doc->find("coalesced")) resp.coalesced = v->as_bool();
  resp.latency_ms = number_field(*doc, "latency_ms", 0.0);
  resp.retry_after_ms = number_field(*doc, "retry_after_ms", 0.0);
  resp.estimated_bytes =
      static_cast<std::uint64_t>(number_field(*doc, "estimated_bytes", 0.0));
  // Exact 64-bit read: router-minted trace ids do not survive a double.
  if (const obs::Json* v = doc->find("trace_id")) resp.trace_id = v->as_uint();
  resp.queued_ms = number_field(*doc, "queued_ms", 0.0);
  resp.solve_ms = number_field(*doc, "solve_ms", 0.0);
  resp.algorithm = string_field(*doc, "algorithm");
  resp.digest = string_field(*doc, "digest");
  resp.error = string_field(*doc, "error");
  resp.attempts = static_cast<std::uint32_t>(number_field(*doc, "attempts", 0.0));
  resp.shard = string_field(*doc, "shard");
  resp.router_queued_ms = number_field(*doc, "router_queued_ms", 0.0);
  return resp;
}

}  // namespace srna::serve
