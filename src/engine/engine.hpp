// McosEngine — the unified solver engine: one name-keyed registry of
// pluggable MCOS backends behind a single configuration surface.
//
// Everything above the core solvers (CLI, structure DB, clustering, bench,
// examples) dispatches through here instead of naming srna1()/srna2()/prna()
// directly. That buys three things:
//   * one `--algorithm` vocabulary everywhere (compare/search/matrix all
//     accept the same names, including the parallel and reference backends),
//   * per-backend validation of the unified SolverConfig (asking SRNA2 for a
//     hash-map memo is a config error, not a silently ignored flag),
//   * centralized workspace pooling: solve_with() threads a reusable
//     Workspace through every solve and publishes reuse/allocation counters
//     (engine.workspace_reuse, engine.workspace_alloc_bytes) proving that
//     steady-state corpus loops allocate nothing.
//
// Built-in backends (registered on first McosEngine::instance() call —
// explicit registration, not static-init self-registration, because the
// static-library link would dead-strip unreferenced registrar TUs):
//   srna1         lazy memoize-on-miss slice tabulation   (paper Algorithm 1)
//   srna2         two-stage eager tabulation              (Algorithms 2–3)
//   prna          shared-memory parallel SRNA2            (Algorithm 4, OpenMP)
//   prna-mpi-sim  Algorithm 4 over the mini-MPI substrate (replicated memo,
//                 per-row Allreduce)
//   topdown       memoized 4-D reference (ground truth, small inputs)
//   bottomup      full 4-D tabulation (the over-tabulating baseline)
//   prna-steal    barrier-free PRNA (dependency counting + work stealing)
//   srna-lean     space-lean SRNA2: windowed memo store + streamed slices
//                 under SolverConfig::memory_budget_bytes (long sequences)
//
// Adding a backend: subclass SolverBackend, then
// McosEngine::instance().register_backend(std::make_unique<MyBackend>()).
// See docs/ENGINE.md for the full walk-through.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/options.hpp"
#include "core/result.hpp"
#include "core/workspace.hpp"
#include "obs/json.hpp"
#include "parallel/load_balance.hpp"
#include "parallel/prna.hpp"
#include "parallel/prna_mpi.hpp"
#include "rna/secondary_structure.hpp"

namespace srna {

// The unified solver configuration: the union of every backend's knobs, with
// defaults chosen so a default-constructed SolverConfig is valid for every
// backend. Backends validate() the fields they cannot honor — a non-default
// value on a knob a backend does not implement is an error, with two
// deliberate exceptions (accept-and-ignore, see BackendCaps): `layout` and
// `validate_memo`, so layout/validation sweeps can run over the reference
// backends too.
struct SolverConfig {
  // All solvers (references accept-and-ignore).
  SliceLayout layout = SliceLayout::kDense;
  bool validate_memo = false;

  // Dense-slice kernel variant (srna1/srna2/prna/prna-steal); backends
  // without the capability reject non-auto values rather than silently
  // solving with a different kernel than requested.
  KernelVariant kernel = KernelVariant::kAuto;

  // SRNA1 only: lazy-evaluation controls.
  MemoKind memo_kind = MemoKind::kArray;
  bool memoize = true;
  std::uint64_t spawn_limit = 0;

  // Parallel backends. threads drives prna (0 = OpenMP default); ranks
  // drives prna-mpi-sim.
  int threads = 0;
  int ranks = 2;
  BalanceStrategy balance = BalanceStrategy::kGreedyLpt;
  PrnaSchedule schedule = PrnaSchedule::kStaticColumns;
  bool parallel_stage2 = false;
  // Test-only fault injection (prna); see PrnaOptions::stage1_hook.
  std::function<void(std::size_t, std::size_t)> stage1_hook;

  // Cooperative cancellation (srna1/srna2): polled at slice boundaries; the
  // solver throws SolveCancelled once the flag reads true. The serve
  // subsystem's deadline monitor owns the flag. See McosOptions::cancel.
  const std::atomic<bool>* cancel = nullptr;

  // Cap on resident solver bytes (srna-lean: memo window + streaming
  // scratch); 0 = unlimited. Backends without the memory_budget capability
  // reject non-default values — a budget they would silently ignore is a
  // config error. solve_with() additionally trims the pooled workspace back
  // under the budget after a solve that overshot it.
  std::uint64_t memory_budget_bytes = 0;

  // Projections onto the solver-native option structs.
  [[nodiscard]] McosOptions to_mcos() const;
  [[nodiscard]] PrnaOptions to_prna() const;
  [[nodiscard]] PrnaMpiOptions to_prna_mpi() const;
};

// What a backend implements, driving the default validate(). `layout` and
// `validate_memo` are never validated against (accept-and-ignore by design);
// everything else must be at its default unless the flag below is set.
struct BackendCaps {
  bool threads = false;          // honors SolverConfig::threads
  bool ranks = false;            // honors SolverConfig::ranks
  bool lazy_controls = false;    // honors memo_kind / memoize / spawn_limit
  bool balance_control = false;  // honors balance
  bool schedule_controls = false;  // honors schedule / parallel_stage2 / stage1_hook
  bool cancel = false;           // honors SolverConfig::cancel (slice-boundary polls)
  bool memory_budget = false;    // honors SolverConfig::memory_budget_bytes
  bool kernel_variants = false;  // honors SolverConfig::kernel (dense slice fills)
  bool honors_layout = true;     // informational: layout switches the kernel
};

// One backend's answer: the MCOS value plus execution statistics, and a
// backend-specific JSON blob (PRNA timeline, MPI communication counters;
// null for the sequential solvers) for run reports.
struct EngineResult {
  Score value = 0;
  McosStats stats;
  int threads_used = 1;  // threads (prna) or ranks (prna-mpi-sim); 1 otherwise
  obs::Json detail;      // null unless the backend has extra structure
};

// A solver implementation the engine can dispatch to. Stateless by
// contract: all per-solve state lives in the Workspace and on the stack, so
// one backend instance may be invoked concurrently from many threads
// (all_pairs_similarity does exactly this).
class SolverBackend {
 public:
  virtual ~SolverBackend() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual const char* description() const noexcept = 0;
  [[nodiscard]] virtual BackendCaps caps() const noexcept = 0;

  // Rejects (std::invalid_argument) configs this backend cannot honor. The
  // default implementation is caps()-driven; override for extra rules.
  virtual void validate(const SolverConfig& config) const;

  // Upper bound on the resident bytes one solve of (s1, s2) under `config`
  // will hold — what the serve layer's memory admission checks against its
  // process budget before dispatching. The default is the dense-family
  // footprint: the Θ(nm) memo table plus one live slice grid. Backends with
  // a different memory model (the 4-D references, the budgeted lean path)
  // override.
  [[nodiscard]] virtual std::uint64_t estimate_memory_bytes(
      const SecondaryStructure& s1, const SecondaryStructure& s2,
      const SolverConfig& config) const;

  // Solves MCOS(s1, s2). `workspace` provides the reusable buffers; backends
  // that manage their own memory (the references) may ignore it.
  [[nodiscard]] virtual EngineResult solve(const SecondaryStructure& s1,
                                           const SecondaryStructure& s2,
                                           const SolverConfig& config,
                                           Workspace& workspace) const = 0;
};

// The backend registry. A process-wide singleton: instance() registers the
// built-ins on first use; register_backend() adds plugins (duplicate names
// rejected). Lookups are mutex-guarded but cheap — still, resolve the
// backend once before a parallel pair loop rather than per pair.
class McosEngine {
 public:
  static McosEngine& instance();

  McosEngine(const McosEngine&) = delete;
  McosEngine& operator=(const McosEngine&) = delete;

  // Takes ownership. Throws std::invalid_argument on a duplicate name.
  void register_backend(std::unique_ptr<SolverBackend> backend);

  // nullptr when unknown.
  [[nodiscard]] const SolverBackend* find(std::string_view name) const;
  // Throws std::invalid_argument listing the registered names when unknown.
  [[nodiscard]] const SolverBackend& at(std::string_view name) const;

  // Registration order (built-ins first).
  [[nodiscard]] std::vector<const SolverBackend*> backends() const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::string names_joined(const char* separator = ", ") const;

 private:
  McosEngine();

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<SolverBackend>> backends_;
};

// Validates, then solves out of `workspace`, counting the solve as a reuse
// (engine.workspace_reuse) when the workspace has served a solve before and
// charging any capacity growth to engine.workspace_alloc_bytes. This is THE
// dispatch point: corpus loops call it per pair with a per-thread workspace.
EngineResult solve_with(const SolverBackend& backend, const SecondaryStructure& s1,
                        const SecondaryStructure& s2, const SolverConfig& config,
                        Workspace& workspace);

// One-shot convenience: look up `algorithm` in the registry and solve_with()
// the calling thread's pooled workspace.
EngineResult engine_solve(std::string_view algorithm, const SecondaryStructure& s1,
                          const SecondaryStructure& s2, const SolverConfig& config = {});

namespace detail {
// Defined in backends.cpp; called once from the McosEngine constructor.
void register_builtin_backends(McosEngine& engine);
}  // namespace detail

}  // namespace srna
