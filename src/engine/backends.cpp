// The built-in SolverBackend implementations: thin adapters from the
// unified SolverConfig onto the solver-native entry points. Registered
// explicitly from the McosEngine constructor (static-init self-registration
// would be dead-stripped out of the static-library link).

#include <memory>
#include <stdexcept>

#include "core/mcos.hpp"
#include "core/srna_lean.hpp"
#include "engine/engine.hpp"
#include "parallel/prna.hpp"
#include "parallel/prna_mpi.hpp"

namespace srna {

namespace {

EngineResult from_mcos(McosResult&& r) {
  EngineResult out;
  out.value = r.value;
  out.stats = r.stats;
  return out;
}

// The 4-D references memoize over interval pairs: ~(n²/2)·(m²/2) cells. This
// is exactly why the serve layer's memory admission exists — asking a
// reference for a genome-scale pair must be rejected up front.
std::uint64_t reference_estimate(const SecondaryStructure& s1, const SecondaryStructure& s2) {
  const auto n = static_cast<std::uint64_t>(s1.length());
  const auto m = static_cast<std::uint64_t>(s2.length());
  return n * n * m * m / 4 * sizeof(Score);
}

class Srna1Backend final : public SolverBackend {
 public:
  const char* name() const noexcept override { return "srna1"; }
  const char* description() const noexcept override {
    return "lazy slice tabulation with memoize-on-miss spawning (Algorithm 1)";
  }
  BackendCaps caps() const noexcept override {
    BackendCaps c;
    c.lazy_controls = true;
    c.cancel = true;
    c.kernel_variants = true;
    return c;
  }
  EngineResult solve(const SecondaryStructure& s1, const SecondaryStructure& s2,
                     const SolverConfig& config, Workspace& workspace) const override {
    return from_mcos(srna1(s1, s2, config.to_mcos(), workspace));
  }
};

class Srna2Backend final : public SolverBackend {
 public:
  const char* name() const noexcept override { return "srna2"; }
  const char* description() const noexcept override {
    return "two-stage eager slice tabulation (Algorithms 2-3)";
  }
  BackendCaps caps() const noexcept override {
    BackendCaps c;
    c.cancel = true;
    c.kernel_variants = true;
    return c;
  }
  EngineResult solve(const SecondaryStructure& s1, const SecondaryStructure& s2,
                     const SolverConfig& config, Workspace& workspace) const override {
    return from_mcos(srna2(s1, s2, config.to_mcos(), workspace));
  }
};

class SrnaLeanBackend final : public SolverBackend {
 public:
  const char* name() const noexcept override { return "srna-lean"; }
  const char* description() const noexcept override {
    return "space-lean SRNA2: windowed memo store + streamed slices under a "
           "byte budget (long sequences)";
  }
  BackendCaps caps() const noexcept override {
    BackendCaps c;
    c.cancel = true;
    c.memory_budget = true;
    return c;
  }
  std::uint64_t estimate_memory_bytes(const SecondaryStructure& s1,
                                      const SecondaryStructure& s2,
                                      const SolverConfig& config) const override {
    const std::uint64_t floor = lean_minimum_bytes(s1, s2);
    if (config.memory_budget_bytes != 0)
      // The solver holds the budget (validated against the floor at entry).
      return std::max<std::uint64_t>(config.memory_budget_bytes, floor);
    // Unbudgeted: the window can grow to one cell per arc pair.
    return floor + static_cast<std::uint64_t>(s1.arc_count()) *
                       static_cast<std::uint64_t>(s2.arc_count()) * sizeof(Score);
  }
  EngineResult solve(const SecondaryStructure& s1, const SecondaryStructure& s2,
                     const SolverConfig& config, Workspace& workspace) const override {
    LeanOptions options;
    options.base = config.to_mcos();
    options.memory_budget_bytes = config.memory_budget_bytes;
    return from_mcos(srna_lean(s1, s2, options, workspace));
  }
};

class PrnaBackend final : public SolverBackend {
 public:
  const char* name() const noexcept override { return "prna"; }
  const char* description() const noexcept override {
    return "shared-memory parallel SRNA2 with per-row barriers (Algorithm 4, OpenMP)";
  }
  BackendCaps caps() const noexcept override {
    BackendCaps c;
    c.threads = true;
    c.balance_control = true;
    c.schedule_controls = true;
    c.kernel_variants = true;
    return c;
  }
  void validate(const SolverConfig& config) const override {
    SolverBackend::validate(config);
    // The stealing schedule has no static column ownership, so a balance
    // strategy would be silently ignored — reject instead.
    const SolverConfig defaults;
    if (config.schedule == PrnaSchedule::kStealing && config.balance != defaults.balance)
      throw std::invalid_argument(
          "backend 'prna': the kStealing schedule has no static ownership; "
          "balance must be left at its default");
  }
  EngineResult solve(const SecondaryStructure& s1, const SecondaryStructure& s2,
                     const SolverConfig& config, Workspace& workspace) const override {
    PrnaResult r = prna(s1, s2, config.to_prna(), workspace);
    EngineResult out;
    out.value = r.value;
    out.stats = r.stats;
    out.threads_used = r.threads_used;
    out.detail = r.to_json();
    return out;
  }
};

class PrnaStealBackend final : public SolverBackend {
 public:
  const char* name() const noexcept override { return "prna-steal"; }
  const char* description() const noexcept override {
    return "barrier-free parallel SRNA2: dependency-counting scheduler with "
           "work-stealing deques";
  }
  BackendCaps caps() const noexcept override {
    BackendCaps c;
    c.threads = true;
    c.schedule_controls = true;  // parallel_stage2 / stage1_hook pass through
    c.kernel_variants = true;
    return c;
  }
  void validate(const SolverConfig& config) const override {
    SolverBackend::validate(config);
    const SolverConfig defaults;
    if (config.schedule != defaults.schedule && config.schedule != PrnaSchedule::kStealing)
      throw std::invalid_argument(
          "backend 'prna-steal' always runs the kStealing schedule; pick "
          "backend 'prna' for the barrier schedules");
  }
  EngineResult solve(const SecondaryStructure& s1, const SecondaryStructure& s2,
                     const SolverConfig& config, Workspace& workspace) const override {
    PrnaOptions options = config.to_prna();
    options.schedule = PrnaSchedule::kStealing;
    PrnaResult r = prna(s1, s2, options, workspace);
    EngineResult out;
    out.value = r.value;
    out.stats = r.stats;
    out.threads_used = r.threads_used;
    out.detail = r.to_json();
    return out;
  }
};

class PrnaMpiSimBackend final : public SolverBackend {
 public:
  const char* name() const noexcept override { return "prna-mpi-sim"; }
  const char* description() const noexcept override {
    return "Algorithm 4 over the mini-MPI substrate (replicated memo, per-row Allreduce)";
  }
  BackendCaps caps() const noexcept override {
    BackendCaps c;
    c.ranks = true;
    c.balance_control = true;
    return c;
  }
  EngineResult solve(const SecondaryStructure& s1, const SecondaryStructure& s2,
                     const SolverConfig& config, Workspace& /*workspace*/) const override {
    // The replicated-memo design is the point: every rank owns its own table,
    // so the shared workspace does not apply.
    PrnaMpiResult r = prna_mpi(s1, s2, config.to_prna_mpi());
    EngineResult out;
    out.value = r.value;
    out.stats = r.stats;
    out.threads_used = r.ranks;
    obs::Json detail = obs::Json::object();
    detail.set("ranks", obs::Json(static_cast<std::int64_t>(r.ranks)));
    detail.set("allreduce_bytes", obs::Json(r.allreduce_bytes()));
    obs::Json cells = obs::Json::array();
    for (const std::uint64_t c : r.cells_per_rank) cells.push(obs::Json(c));
    detail.set("cells_per_rank", std::move(cells));
    out.detail = std::move(detail);
    return out;
  }
};

class TopDownBackend final : public SolverBackend {
 public:
  const char* name() const noexcept override { return "topdown"; }
  const char* description() const noexcept override {
    return "memoized top-down 4-D reference (ground truth; small inputs)";
  }
  BackendCaps caps() const noexcept override {
    BackendCaps c;
    c.honors_layout = false;  // accept-and-ignore: no slice kernel to switch
    return c;
  }
  std::uint64_t estimate_memory_bytes(const SecondaryStructure& s1,
                                      const SecondaryStructure& s2,
                                      const SolverConfig& /*config*/) const override {
    return reference_estimate(s1, s2);
  }
  EngineResult solve(const SecondaryStructure& s1, const SecondaryStructure& s2,
                     const SolverConfig& /*config*/, Workspace& /*workspace*/) const override {
    return from_mcos(mcos_reference_topdown(s1, s2));
  }
};

class BottomUpBackend final : public SolverBackend {
 public:
  const char* name() const noexcept override { return "bottomup"; }
  const char* description() const noexcept override {
    return "full bottom-up 4-D tabulation (over-tabulating baseline; small inputs)";
  }
  BackendCaps caps() const noexcept override {
    BackendCaps c;
    c.honors_layout = false;
    return c;
  }
  std::uint64_t estimate_memory_bytes(const SecondaryStructure& s1,
                                      const SecondaryStructure& s2,
                                      const SolverConfig& /*config*/) const override {
    return reference_estimate(s1, s2);
  }
  EngineResult solve(const SecondaryStructure& s1, const SecondaryStructure& s2,
                     const SolverConfig& /*config*/, Workspace& /*workspace*/) const override {
    return from_mcos(mcos_reference_bottomup(s1, s2));
  }
};

}  // namespace

namespace detail {

void register_builtin_backends(McosEngine& engine) {
  engine.register_backend(std::make_unique<Srna1Backend>());
  engine.register_backend(std::make_unique<Srna2Backend>());
  engine.register_backend(std::make_unique<PrnaBackend>());
  engine.register_backend(std::make_unique<PrnaMpiSimBackend>());
  engine.register_backend(std::make_unique<TopDownBackend>());
  engine.register_backend(std::make_unique<BottomUpBackend>());
  engine.register_backend(std::make_unique<PrnaStealBackend>());
  engine.register_backend(std::make_unique<SrnaLeanBackend>());
}

}  // namespace detail

}  // namespace srna
