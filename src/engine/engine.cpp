#include "engine/engine.hpp"

#include <sstream>
#include <stdexcept>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace srna {

McosOptions SolverConfig::to_mcos() const {
  McosOptions options;
  options.layout = layout;
  options.memo_kind = memo_kind;
  options.memoize = memoize;
  options.spawn_limit = spawn_limit;
  options.validate_memo = validate_memo;
  options.cancel = cancel;
  options.kernel = kernel;
  return options;
}

PrnaOptions SolverConfig::to_prna() const {
  PrnaOptions options;
  options.num_threads = threads;
  options.balance = balance;
  options.layout = layout;
  options.schedule = schedule;
  options.parallel_stage2 = parallel_stage2;
  options.validate_memo = validate_memo;
  options.stage1_hook = stage1_hook;
  options.kernel = kernel;
  return options;
}

PrnaMpiOptions SolverConfig::to_prna_mpi() const {
  PrnaMpiOptions options;
  options.ranks = ranks;
  options.balance = balance;
  options.layout = layout;
  return options;
}

void SolverBackend::validate(const SolverConfig& config) const {
  const BackendCaps c = caps();
  const SolverConfig defaults;
  auto reject = [&](const char* knob) {
    obs::Registry::instance().counter("engine.validate_rejects").add();
    obs::log_warn("engine.validate_reject",
                  obs::log_fields({{"backend", obs::Json(name())},
                                   {"knob", obs::Json(knob)}}));
    throw std::invalid_argument(std::string("backend '") + name() +
                                "' does not support non-default " + knob);
  };
  if (!c.threads && config.threads != defaults.threads) reject("threads");
  if (!c.ranks && config.ranks != defaults.ranks) reject("ranks");
  if (!c.lazy_controls) {
    if (config.memo_kind != defaults.memo_kind) reject("memo_kind");
    if (config.memoize != defaults.memoize) reject("memoize");
    if (config.spawn_limit != defaults.spawn_limit) reject("spawn_limit");
  }
  if (!c.balance_control && config.balance != defaults.balance) reject("balance");
  if (!c.schedule_controls) {
    if (config.schedule != defaults.schedule) reject("schedule");
    if (config.parallel_stage2 != defaults.parallel_stage2) reject("parallel_stage2");
    if (config.stage1_hook != nullptr) reject("stage1_hook");
  }
  if (!c.cancel && config.cancel != nullptr) reject("cancel");
  if (!c.memory_budget && config.memory_budget_bytes != defaults.memory_budget_bytes)
    reject("memory_budget_bytes");
  if (!c.kernel_variants && config.kernel != defaults.kernel) reject("kernel");
  // layout and validate_memo are accept-and-ignore by design (BackendCaps).
}

std::uint64_t SolverBackend::estimate_memory_bytes(const SecondaryStructure& s1,
                                                   const SecondaryStructure& s2,
                                                   const SolverConfig& /*config*/) const {
  // Dense family (srna1/srna2/prna*): the Θ(nm) memo table plus one live
  // slice grid — the parent slice is the worst case at the same n × m.
  const auto nm = static_cast<std::uint64_t>(s1.length()) *
                  static_cast<std::uint64_t>(s2.length());
  return 2 * nm * sizeof(Score);
}

McosEngine& McosEngine::instance() {
  static McosEngine engine;
  return engine;
}

McosEngine::McosEngine() { detail::register_builtin_backends(*this); }

void McosEngine::register_backend(std::unique_ptr<SolverBackend> backend) {
  if (backend == nullptr) throw std::invalid_argument("null backend");
  std::lock_guard lock(mutex_);
  for (const auto& existing : backends_)
    if (std::string_view(existing->name()) == backend->name())
      throw std::invalid_argument(std::string("backend '") + backend->name() +
                                  "' is already registered");
  backends_.push_back(std::move(backend));
}

const SolverBackend* McosEngine::find(std::string_view name) const {
  std::lock_guard lock(mutex_);
  for (const auto& backend : backends_)
    if (std::string_view(backend->name()) == name) return backend.get();
  return nullptr;
}

const SolverBackend& McosEngine::at(std::string_view name) const {
  if (const SolverBackend* backend = find(name); backend != nullptr) return *backend;
  throw std::invalid_argument("unknown algorithm '" + std::string(name) +
                              "' (registered: " + names_joined() + ")");
}

std::vector<const SolverBackend*> McosEngine::backends() const {
  std::lock_guard lock(mutex_);
  std::vector<const SolverBackend*> out;
  out.reserve(backends_.size());
  for (const auto& backend : backends_) out.push_back(backend.get());
  return out;
}

std::vector<std::string> McosEngine::names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const auto& backend : backends_) out.emplace_back(backend->name());
  return out;
}

std::string McosEngine::names_joined(const char* separator) const {
  std::ostringstream joined;
  bool first = true;
  for (const std::string& name : names()) {
    if (!first) joined << separator;
    joined << name;
    first = false;
  }
  return joined.str();
}

EngineResult solve_with(const SolverBackend& backend, const SecondaryStructure& s1,
                        const SecondaryStructure& s2, const SolverConfig& config,
                        Workspace& workspace) {
  backend.validate(config);
  const bool reused = workspace.solves() > 0;
  const std::size_t footprint_before = workspace.footprint_bytes();
  workspace.set_budget(static_cast<std::size_t>(config.memory_budget_bytes));
  EngineResult result = backend.solve(s1, s2, config, workspace);
  workspace.note_solve();
  auto& metrics = obs::Registry::instance();
  if (reused) metrics.counter("engine.workspace_reuse").add();
  std::size_t footprint_after = workspace.footprint_bytes();
  if (footprint_after > footprint_before)
    metrics.counter("engine.workspace_alloc_bytes").add(footprint_after - footprint_before);
  // High-watermark of any single pooled workspace — with
  // engine.workspace_pool_threads it bounds the pool's steady-state memory.
  metrics.gauge("engine.workspace_peak_bytes")
      .set_max(static_cast<double>(footprint_after));
  // Split watermarks, the memory ledger's exact view: memo table versus
  // per-slice scratch versus the per-solve event table (the paper's "M plus
  // one live slice" decomposition, plus the preprocessing state).
  metrics.gauge("engine.memo_table_bytes")
      .set_max(static_cast<double>(workspace.memo_bytes()));
  metrics.gauge("engine.slice_scratch_bytes")
      .set_max(static_cast<double>(workspace.slice_scratch_bytes()));
  metrics.gauge("engine.event_table_bytes")
      .set_max(static_cast<double>(workspace.event_table_bytes()));
  // A budgeted solve may leave the pool over budget (e.g. the lean window is
  // retained for tracebacks when driven directly): release pooled storage
  // back under the cap so concurrent budgeted workspaces stay bounded.
  if (workspace.budget() != 0 && footprint_after > workspace.budget())
    footprint_after = workspace.trim(workspace.budget());
  return result;
}

EngineResult engine_solve(std::string_view algorithm, const SecondaryStructure& s1,
                          const SecondaryStructure& s2, const SolverConfig& config) {
  return solve_with(McosEngine::instance().at(algorithm), s1, s2, config,
                    Workspace::local());
}

}  // namespace srna
