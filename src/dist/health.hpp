// Readiness probing for the router: one background thread polls every
// shard's admin-plane /readyz and keeps a per-shard verdict the dispatch
// path reads lock-free.
//
// /readyz (not /healthz) on purpose — a draining or still-warming shard is
// alive but must not receive new requests; liveness is the supervisor's
// concern, readiness is the router's. Verdicts flip pessimistically on
// `down_after` consecutive probe failures (one slow scrape must not eject a
// shard) and optimistically on a single success. Shards start out assumed
// ready: the dispatch path discovers a dead shard on its own (connection
// reset -> failover), so an optimistic start only costs one cheap retry,
// while a pessimistic start would blackhole the warm-up window.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/net.hpp"
#include "obs/json.hpp"

namespace srna::dist {

struct ProbeTarget {
  std::string name;
  Endpoint admin;  // port 0 = no admin plane; the shard is assumed ready
};

struct ProberConfig {
  int interval_ms = 200;  // pause between full probe rounds
  int timeout_ms = 500;   // per-probe connect/read budget
  int down_after = 2;     // consecutive failures before a shard goes not-ready
};

class HealthProber {
 public:
  // `on_change(name, ready)` fires on every verdict flip, from the probe
  // thread. Pass {} to skip notifications.
  HealthProber(std::vector<ProbeTarget> targets, ProberConfig config,
               std::function<void(const std::string&, bool)> on_change = {});
  ~HealthProber();

  HealthProber(const HealthProber&) = delete;
  HealthProber& operator=(const HealthProber&) = delete;

  // Current verdict (unknown names read as not ready).
  [[nodiscard]] bool ready(const std::string& name) const;
  [[nodiscard]] std::size_t ready_count() const;

  // Blocks until every target is ready or the timeout passes. Probes run at
  // their own cadence; this just watches the verdicts. Returns ready_count()
  // == targets at return time.
  bool wait_all_ready(int timeout_ms);

  [[nodiscard]] obs::Json status_json() const;

  void stop();  // joins the probe thread; idempotent

 private:
  struct State {
    ProbeTarget target;
    std::atomic<bool> ready{true};
    std::atomic<int> failures{0};
    std::atomic<std::uint64_t> probes{0};
    std::atomic<bool> probed{false};  // at least one probe completed
  };

  void run();

  ProberConfig config_;
  std::function<void(const std::string&, bool)> on_change_;
  std::vector<std::unique_ptr<State>> states_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace srna::dist
