#include "dist/supervisor.hpp"

#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

#include "obs/log.hpp"

namespace srna::dist {

Supervisor::Supervisor(SupervisorConfig config) : config_(config) {
  monitor_ = std::thread([this] { monitor_loop(); });
}

Supervisor::~Supervisor() { stop_all(); }

pid_t Supervisor::spawn(const ProcessSpec& spec) {
  const pid_t child = ::fork();
  if (child < 0) return -1;
  if (child == 0) {
    // If the supervisor dies, take the shard with it — no orphan may keep
    // squatting on the port a restart would need.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    std::vector<char*> argv;
    argv.reserve(spec.args.size() + 2);
    argv.push_back(const_cast<char*>(spec.binary.c_str()));
    for (const std::string& arg : spec.args) argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execvp(spec.binary.c_str(), argv.data());
    _exit(127);  // exec failed; the monitor sees an immediate exit
  }
  return child;
}

pid_t Supervisor::start(const ProcessSpec& spec) {
  std::lock_guard lock(mutex_);
  for (const Child& child : children_)
    if (child.spec.name == spec.name)
      throw std::invalid_argument("duplicate supervised process name: " + spec.name);
  Child child;
  child.spec = spec;
  child.pid = spawn(spec);
  child.running = child.pid > 0;
  if (child.running)
    obs::log_info("dist.spawn",
                  obs::log_fields({{"name", obs::Json(spec.name)},
                                   {"pid", obs::Json(static_cast<std::int64_t>(child.pid))}}));
  const pid_t pid = child.pid;
  children_.push_back(std::move(child));
  return pid;
}

bool Supervisor::stop(const std::string& name) {
  pid_t pid = -1;
  {
    std::lock_guard lock(mutex_);
    bool found = false;
    for (Child& child : children_) {
      if (child.spec.name != name) continue;
      found = true;
      child.stop_requested = true;
      if (child.running) pid = child.pid;
    }
    if (!found) return false;
  }
  if (pid <= 0) return true;  // already down; stop_requested blocks restarts

  ::kill(pid, SIGTERM);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.stop_grace_ms);
  for (;;) {
    int status = 0;
    const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
    if (reaped == pid || (reaped < 0 && errno == ECHILD)) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::lock_guard lock(mutex_);
  for (Child& child : children_) {
    if (child.spec.name == name && child.pid == pid) child.running = false;
  }
  return true;
}

void Supervisor::stop_all() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    for (Child& child : children_) {
      child.stop_requested = true;
      if (child.running && child.pid > 0) ::kill(child.pid, SIGTERM);
    }
  }
  if (monitor_.joinable()) monitor_.join();

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.stop_grace_ms);
  std::lock_guard lock(mutex_);
  for (Child& child : children_) {
    if (!child.running || child.pid <= 0) continue;
    for (;;) {
      int status = 0;
      const pid_t reaped = ::waitpid(child.pid, &status, WNOHANG);
      if (reaped == child.pid || (reaped < 0 && errno == ECHILD)) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(child.pid, SIGKILL);
        ::waitpid(child.pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    child.running = false;
  }
}

void Supervisor::monitor_loop() {
  for (;;) {
    {
      std::lock_guard lock(mutex_);
      if (stopping_) return;
      const auto now = std::chrono::steady_clock::now();
      for (Child& child : children_) {
        if (child.running && child.pid > 0) {
          int status = 0;
          const pid_t reaped = ::waitpid(child.pid, &status, WNOHANG);
          if (reaped == child.pid) {
            child.running = false;
            obs::log_warn(
                "dist.child_exit",
                obs::log_fields(
                    {{"name", obs::Json(child.spec.name)},
                     {"pid", obs::Json(static_cast<std::int64_t>(child.pid))},
                     {"status", obs::Json(static_cast<std::int64_t>(status))}}));
            child.restart_at =
                now + std::chrono::milliseconds(config_.restart_backoff_ms);
          }
        } else if (!child.running && config_.restart && !child.stop_requested &&
                   now >= child.restart_at) {
          child.pid = spawn(child.spec);
          if (child.pid > 0) {
            child.running = true;
            ++child.restarts;
            obs::log_info(
                "dist.restart",
                obs::log_fields(
                    {{"name", obs::Json(child.spec.name)},
                     {"pid", obs::Json(static_cast<std::int64_t>(child.pid))},
                     {"restarts", obs::Json(child.restarts)}}));
          } else {
            child.restart_at =
                now + std::chrono::milliseconds(config_.restart_backoff_ms);
          }
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.poll_interval_ms));
  }
}

pid_t Supervisor::pid(const std::string& name) const {
  std::lock_guard lock(mutex_);
  for (const Child& child : children_)
    if (child.spec.name == name) return child.running ? child.pid : -1;
  return -1;
}

bool Supervisor::running(const std::string& name) const { return pid(name) > 0; }

std::uint64_t Supervisor::restarts(const std::string& name) const {
  std::lock_guard lock(mutex_);
  for (const Child& child : children_)
    if (child.spec.name == name) return child.restarts;
  return 0;
}

obs::Json Supervisor::status_json() const {
  std::lock_guard lock(mutex_);
  obs::Json doc = obs::Json::object();
  for (const Child& child : children_) {
    obs::Json entry = obs::Json::object();
    entry.set("pid", obs::Json(static_cast<std::int64_t>(child.running ? child.pid : -1)));
    entry.set("running", obs::Json(child.running));
    entry.set("restarts", obs::Json(child.restarts));
    doc.set(child.spec.name, std::move(entry));
  }
  return doc;
}

}  // namespace srna::dist
