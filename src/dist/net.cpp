#include "dist/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace srna::dist {

Endpoint parse_endpoint(const std::string& text) {
  Endpoint out;
  std::string port_text = text;
  if (const std::size_t colon = text.rfind(':'); colon != std::string::npos) {
    if (colon > 0) out.host = text.substr(0, colon);
    port_text = text.substr(colon + 1);
  }
  try {
    std::size_t pos = 0;
    const long port = std::stol(port_text, &pos);
    if (pos != port_text.size() || port < 0 || port > 65535)
      throw std::invalid_argument(port_text);
    out.port = static_cast<std::uint16_t>(port);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad endpoint '" + text + "' (want host:port)");
  }
  return out;
}

namespace {

void set_timeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

int tcp_connect(const Endpoint& endpoint, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  // SO_SNDTIMEO bounds the connect() itself on Linux; good enough for the
  // localhost links this tier manages.
  set_timeouts(fd, timeout_ms);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> http_get_body(const Endpoint& endpoint, const std::string& path,
                                         int timeout_ms) {
  const int fd = tcp_connect(endpoint, timeout_ms);
  if (fd < 0) return std::nullopt;
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!send_all(fd, request)) {
    ::close(fd);
    return std::nullopt;
  }
  std::string response;
  char chunk[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
    response.append(chunk, static_cast<std::size_t>(n));
  ::close(fd);

  // "HTTP/1.0 200 OK" — the status code is the token after the first space.
  const std::size_t space = response.find(' ');
  if (space == std::string::npos || response.size() < space + 2) return std::nullopt;
  if (response[space + 1] != '2') return std::nullopt;
  const std::size_t body = response.find("\r\n\r\n");
  if (body == std::string::npos) return std::nullopt;
  return response.substr(body + 4);
}

std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  std::uint16_t port = 0;
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
      port = ntohs(bound.sin_port);
  }
  ::close(fd);
  return port;
}

}  // namespace srna::dist
