#include "dist/health.hpp"

#include <chrono>

namespace srna::dist {

HealthProber::HealthProber(std::vector<ProbeTarget> targets, ProberConfig config,
                           std::function<void(const std::string&, bool)> on_change)
    : config_(config), on_change_(std::move(on_change)) {
  states_.reserve(targets.size());
  for (ProbeTarget& target : targets) {
    auto state = std::make_unique<State>();
    state->target = std::move(target);
    states_.push_back(std::move(state));
  }
  thread_ = std::thread([this] { run(); });
}

HealthProber::~HealthProber() { stop(); }

void HealthProber::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool HealthProber::ready(const std::string& name) const {
  for (const auto& state : states_)
    if (state->target.name == name) return state->ready.load(std::memory_order_relaxed);
  return false;
}

std::size_t HealthProber::ready_count() const {
  std::size_t count = 0;
  for (const auto& state : states_)
    if (state->ready.load(std::memory_order_relaxed)) ++count;
  return count;
}

bool HealthProber::wait_all_ready(int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    bool all = true;
    for (const auto& state : states_) {
      const bool probed_or_unprobeable =
          state->target.admin.port == 0 || state->probed.load(std::memory_order_relaxed);
      if (!probed_or_unprobeable || !state->ready.load(std::memory_order_relaxed))
        all = false;
    }
    if (all) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

obs::Json HealthProber::status_json() const {
  obs::Json doc = obs::Json::object();
  for (const auto& state : states_) {
    obs::Json entry = obs::Json::object();
    entry.set("ready", obs::Json(state->ready.load(std::memory_order_relaxed)));
    entry.set("probes", obs::Json(state->probes.load(std::memory_order_relaxed)));
    entry.set("consecutive_failures",
              obs::Json(static_cast<std::int64_t>(
                  state->failures.load(std::memory_order_relaxed))));
    doc.set(state->target.name, std::move(entry));
  }
  return doc;
}

void HealthProber::run() {
  for (;;) {
    for (const auto& state : states_) {
      if (state->target.admin.port == 0) continue;  // assumed ready
      {
        std::lock_guard lock(mutex_);
        if (stopping_) return;
      }
      const bool ok =
          http_get_body(state->target.admin, "/readyz", config_.timeout_ms).has_value();
      state->probes.fetch_add(1, std::memory_order_relaxed);
      state->probed.store(true, std::memory_order_relaxed);
      if (ok) {
        state->failures.store(0, std::memory_order_relaxed);
        if (!state->ready.exchange(true, std::memory_order_relaxed) && on_change_)
          on_change_(state->target.name, true);
      } else {
        const int failures = state->failures.fetch_add(1, std::memory_order_relaxed) + 1;
        if (failures >= config_.down_after &&
            state->ready.exchange(false, std::memory_order_relaxed) && on_change_)
          on_change_(state->target.name, false);
      }
    }
    std::unique_lock lock(mutex_);
    if (wake_.wait_for(lock, std::chrono::milliseconds(config_.interval_ms),
                       [&] { return stopping_; }))
      return;
  }
}

}  // namespace srna::dist
