#include "dist/hash_ring.hpp"

#include <algorithm>

#include "rna/structure_hash.hpp"

namespace srna::dist {

std::uint64_t fnv1a_bytes(const std::string& data) {
  std::uint64_t h = kFnvOffsetBasis;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t ring_point(const std::string& name, int vnode_index) {
  // Raw FNV-1a clusters badly on near-identical short inputs ("shard0#0",
  // "shard0#1", ...) — the last byte barely stirs the high bits lower_bound
  // keys on, and a 16-shard ring ends up with 3x load skew. A SplitMix64
  // finalizer restores avalanche; tests/dist/hash_ring_test.cpp pins both
  // the uniformity this buys and this exact placement function.
  std::uint64_t x = fnv1a_bytes(name + "#" + std::to_string(vnode_index));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

HashRing::HashRing(int vnodes) : vnodes_(std::max(1, vnodes)) {}

void HashRing::add_node(const std::string& name) {
  const auto it = std::lower_bound(names_.begin(), names_.end(), name);
  if (it != names_.end() && *it == name) return;
  names_.insert(it, name);
  rebuild();
}

void HashRing::remove_node(const std::string& name) {
  const auto it = std::lower_bound(names_.begin(), names_.end(), name);
  if (it == names_.end() || *it != name) return;
  names_.erase(it);
  rebuild();
}

void HashRing::rebuild() {
  ring_.clear();
  ring_.reserve(names_.size() * static_cast<std::size_t>(vnodes_));
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    for (int v = 0; v < vnodes_; ++v)
      ring_.push_back(VNode{ring_point(names_[i], v), i});
  }
  std::sort(ring_.begin(), ring_.end());
}

std::string HashRing::owner(std::uint64_t key) const {
  const std::vector<std::string> one = owners(key, 1);
  return one.empty() ? std::string() : one.front();
}

std::vector<std::string> HashRing::owners(std::uint64_t key, std::size_t n) const {
  std::vector<std::string> out;
  if (ring_.empty() || n == 0) return out;
  n = std::min(n, names_.size());
  out.reserve(n);

  // First vnode clockwise from the key (wrapping past the top).
  const auto start = std::lower_bound(ring_.begin(), ring_.end(), VNode{key, 0});
  std::vector<bool> taken(names_.size(), false);
  std::size_t offset = static_cast<std::size_t>(start - ring_.begin());
  for (std::size_t step = 0; step < ring_.size() && out.size() < n; ++step) {
    const VNode& vn = ring_[(offset + step) % ring_.size()];
    if (taken[vn.name_index]) continue;
    taken[vn.name_index] = true;
    out.push_back(names_[vn.name_index]);
  }
  return out;
}

}  // namespace srna::dist
