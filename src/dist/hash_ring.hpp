// Consistent hashing for the distributed serving tier.
//
// The router places every shard at `vnodes` pseudo-random points on a 64-bit
// ring (FNV-1a over "name#i" — the same primitive the canonical structure
// digests use — through a SplitMix64 finalizer, because raw FNV barely
// stirs the high bits on near-identical short names). A request keys the
// ring with its canonical structure-pair digest; the owner is the first
// virtual node clockwise from the key, and the replicas are the next virtual
// nodes that belong to *distinct* shards. Three properties carry the whole
// design, and tests/dist/hash_ring_test.cpp pins each:
//
//   uniformity    with enough virtual nodes, every shard owns ~1/N of the
//                 key space (the bench leans on this: N shards ≈ N result
//                 caches' worth of distinct pairs).
//   minimal       adding a shard only steals keys *to* the new shard
//   disruption    (~K/N of them); removing one only re-homes the keys it
//                 owned. Nothing else moves, so N-1 caches stay warm
//                 through a topology change.
//   determinism   owners(key) depends only on the member set — every
//                 router instance, restart, and test run agrees.
//
// The ring is a value type; the router copies it under its own lock. Lookups
// are a binary search over the sorted vnode table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace srna::dist {

class HashRing {
 public:
  // `vnodes` is per shard; 128 keeps the max/min shard load ratio tight
  // (~1.3 at 16 shards) at a few KB of table.
  explicit HashRing(int vnodes = 128);

  // Adding an existing name or removing an absent one is a no-op.
  void add_node(const std::string& name);
  void remove_node(const std::string& name);

  [[nodiscard]] std::size_t node_count() const noexcept { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& nodes() const noexcept { return names_; }

  // The owning shard for `key` (first vnode clockwise). Empty string on an
  // empty ring.
  [[nodiscard]] std::string owner(std::uint64_t key) const;

  // The first min(n, node_count) distinct shards clockwise from `key`:
  // owners(key, n)[0] is the owner, the rest are failover replicas in
  // deterministic preference order.
  [[nodiscard]] std::vector<std::string> owners(std::uint64_t key, std::size_t n) const;

 private:
  struct VNode {
    std::uint64_t point;
    std::uint32_t name_index;
    bool operator<(const VNode& other) const noexcept { return point < other.point; }
  };

  void rebuild();

  int vnodes_;
  std::vector<std::string> names_;  // sorted member set (determinism)
  std::vector<VNode> ring_;         // sorted by point
};

// The ring position of one virtual node: FNV-1a over "name#index", then a
// SplitMix64 avalanche. Exposed so tests can pin the placement function
// itself.
[[nodiscard]] std::uint64_t ring_point(const std::string& name, int vnode_index);

// FNV-1a over raw bytes — the router's fallback routing key for requests
// whose structure pair cannot be resolved locally (db-name form, parse
// errors): deterministic per request content, so retries land on the same
// shard even when the canonical digest is unavailable.
[[nodiscard]] std::uint64_t fnv1a_bytes(const std::string& data);

}  // namespace srna::dist
