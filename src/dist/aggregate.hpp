// Cross-shard admin aggregation: one /metrics and one /statz for the whole
// topology, computed from per-shard scrapes.
//
// Merge semantics (the part worth writing down):
//   counters     summed — a fleet-wide rate is the only useful reading.
//   gauges       per-shard labelled (`srna_x{shard="s1"} v`) — summing a
//                queue depth across shards hides exactly the imbalance an
//                operator is looking for.
//   histograms   cumulative `_bucket{le=...}` series summed bucket-by-bucket
//                (all shards share the same bucket bound table; a bound a
//                shard did not emit contributes its total — the exposition
//                truncates trailing empty buckets), `_sum`/`_count` summed.
//                This merge is exact.
//   summaries    window quantiles cannot be merged exactly from quantiles
//                alone; the aggregate reports the count-weighted mean of the
//                per-shard quantiles (labelled per-shard series are also
//                emitted, which are exact). `_count` is summed.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace srna::dist {

// One shard's scrape: its name label plus the raw exposition text / statz doc.
using ShardText = std::pair<std::string, std::string>;
using ShardJson = std::pair<std::string, obs::Json>;

// Merges Prometheus text expositions per the table above. Metrics keep their
// first-seen order; unparseable lines are dropped (a half-written scrape
// must not poison the aggregate).
[[nodiscard]] std::string merge_prometheus(const std::vector<ShardText>& shards);

// Aggregates per-shard stats_json() documents: a "totals" object sums every
// numeric field the shard docs share (recursively — cache hit counts sum just
// like response counts), and "per_shard" keeps each full doc for drill-down.
[[nodiscard]] obs::Json aggregate_statz(const std::vector<ShardJson>& shards);

// Merges per-process /flightz documents (obs::FlightRecorder::to_json) into
// one fleet view: "recorded"/"anomalies"/"anomaly_dumps" summed, "records"
// and "exemplars" interleaved by wall clock with a "process" label naming the
// source, and "per_process" keeping each full doc for drill-down. Flight
// records carry CLOCK_REALTIME stamps, so cross-process interleaving is
// meaningful to NTP accuracy — plenty for a human reading an incident.
[[nodiscard]] obs::Json aggregate_flightz(const std::vector<ShardJson>& shards);

}  // namespace srna::dist
