// Cross-process trace collection: pull each process's Chrome trace from its
// admin plane (`GET /tracez`) and merge them into one Perfetto-loadable
// document spanning the whole fleet.
//
// The alignment problem: every process's Tracer stamps event timestamps as
// microseconds since its own enable() (a steady_clock epoch), so two
// processes' timelines share no origin. The tracer therefore records a
// wall-clock anchor — CLOCK_REALTIME at the instant of enable() — in its
// document (`srna_clock_anchor.realtime_unix_us`). The merge picks the
// earliest anchor as the base and shifts every other process's events by
// (anchor - base), putting all timelines on one axis to the accuracy the
// machines' wall clocks agree (exact on one host, NTP-grade across hosts —
// and the distributed tier targets one host).
//
// Each source process becomes one pid lane group (pid = index + 1) labelled
// with its collector-side name ("router", "shard0", ...), so one request's
// correlated spans — router queued/attempt/failover, the winning shard's
// serve/solve — read top-to-bottom across lanes, tied together by the
// `trace_id` arg the trace context stamps into every event.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dist/net.hpp"
#include "obs/json.hpp"

namespace srna::dist {

// One process's trace, as fetched: the lane-group label plus the raw
// /tracez document (obs::Tracer::to_json shape).
struct ProcessTrace {
  std::string name;
  obs::Json doc;
};

// One scrape target: a process name and its admin endpoint.
struct TraceSource {
  std::string name;
  Endpoint admin;
};

// Extracts the scrape targets from a router --status-file document
// ({"router": {host, admin_port}, "shards": [{name, admin}, ...]}): the
// router first, then every shard. Sources without an admin plane (port 0 or
// a missing/unparseable field) are skipped.
[[nodiscard]] std::vector<TraceSource> sources_from_status(const obs::Json& status);

// GET /tracez from one process. std::nullopt on connect failure, timeout,
// non-2xx, or an unparseable body.
[[nodiscard]] std::optional<obs::Json> fetch_trace(const Endpoint& admin,
                                                   int timeout_ms);

// Merges per-process traces into one Chrome trace document:
//   - pid remapped to source index + 1, with a process_name metadata event
//     carrying the source's name (source-side process_name metadata is
//     dropped in favour of the collector's label);
//   - event timestamps shifted by (anchor - min anchor); a source without an
//     anchor (tracing never enabled) keeps its timestamps unshifted;
//   - doc-level extras: "srna_clock_base_unix_us" (the base anchor — add it
//     to any ts to recover absolute wall time) and "srna_processes"
//     (name -> {pid, clock_offset_us, events}).
[[nodiscard]] obs::Json merge_traces(const std::vector<ProcessTrace>& traces);

}  // namespace srna::dist
