// Small blocking-socket helpers shared by the distributed tier: the router's
// shard links, the health prober's HTTP probes, and the supervisor/tests'
// port bookkeeping. Everything is IPv4 localhost-grade plumbing on purpose —
// the distributed tier targets one machine (N processes around one kernel
// library), not a datacenter fabric.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace srna::dist {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const { return host + ":" + std::to_string(port); }
};

// Parses "host:port" (host optional: ":8080" and "8080" mean 127.0.0.1).
// Throws std::invalid_argument on a malformed port.
[[nodiscard]] Endpoint parse_endpoint(const std::string& text);

// Connects with a bounded wait (connect() itself plus SO_SNDTIMEO/SO_RCVTIMEO
// on the resulting socket). Returns -1 on failure. TCP_NODELAY is set: every
// payload here is a small line or probe.
[[nodiscard]] int tcp_connect(const Endpoint& endpoint, int timeout_ms);

// Sends the whole buffer. Returns false on any short write/error (the
// caller treats the peer as gone).
bool send_all(int fd, const std::string& data);

// One HTTP/1.0 GET: returns the response body on a 2xx status, std::nullopt
// on connect failure, timeout, or a non-2xx status. This is the probe/scrape
// client for shard admin planes.
[[nodiscard]] std::optional<std::string> http_get_body(const Endpoint& endpoint,
                                                       const std::string& path,
                                                       int timeout_ms);

// Binds an ephemeral listener, reads the port back, and closes it. Good
// enough for tests and the supervisor to pre-assign shard ports (the race
// window is harmless on a single machine running one supervisor).
[[nodiscard]] std::uint16_t pick_free_port();

}  // namespace srna::dist
