#include "dist/aggregate.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string_view>
#include <unordered_map>

namespace srna::dist {

namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

struct Sample {
  std::string suffix;  // "", "_bucket", "_sum", "_count"
  std::string labels;  // raw text inside {}, "" when unlabelled
  double value = 0;
};

struct Family {
  std::string type = "untyped";
  // samples[i] belongs to shards[i]; indices align with the input vector.
  std::vector<std::vector<Sample>> samples;
};

// Pulls `le="x"` / `quantile="x"` out of a raw label string.
std::string label_value(const std::string& labels, std::string_view key) {
  const std::string needle = std::string(key) + "=\"";
  const std::size_t at = labels.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t start = at + needle.size();
  const std::size_t end = labels.find('"', start);
  if (end == std::string::npos) return {};
  return labels.substr(start, end - start);
}

// One exposition text into (family -> samples), registering family order and
// types as they first appear.
void parse_exposition(const std::string& text, std::size_t shard_index,
                      std::size_t shard_count, std::vector<std::string>& order,
                      std::unordered_map<std::string, Family>& families) {
  const auto family_of = [&](const std::string& series,
                             std::string& suffix) -> std::string {
    if (families.count(series) != 0) {
      suffix.clear();
      return series;
    }
    for (const std::string_view candidate : {"_bucket", "_sum", "_count"}) {
      if (series.size() > candidate.size() &&
          series.compare(series.size() - candidate.size(), candidate.size(),
                         candidate) == 0) {
        const std::string base = series.substr(0, series.size() - candidate.size());
        if (families.count(base) != 0) {
          suffix = std::string(candidate);
          return base;
        }
      }
    }
    suffix.clear();
    return series;  // sample without a TYPE line: treated as its own family
  };

  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view line = std::string_view(text).substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // "# TYPE <name> <type>"
      if (line.rfind("# TYPE ", 0) != 0) continue;
      const std::string_view rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      if (space == std::string_view::npos) continue;
      const std::string name(rest.substr(0, space));
      auto [it, inserted] = families.emplace(name, Family{});
      if (inserted) {
        it->second.type = std::string(rest.substr(space + 1));
        it->second.samples.resize(shard_count);
        order.push_back(name);
      }
      continue;
    }

    // "<series>[{labels}] <value>"
    const std::size_t value_at = line.rfind(' ');
    if (value_at == std::string_view::npos) continue;
    char* parsed_end = nullptr;
    const std::string value_text(line.substr(value_at + 1));
    const double value = std::strtod(value_text.c_str(), &parsed_end);
    if (parsed_end == value_text.c_str()) continue;

    std::string series(line.substr(0, value_at));
    std::string labels;
    if (const std::size_t brace = series.find('{'); brace != std::string::npos) {
      const std::size_t close = series.rfind('}');
      if (close == std::string::npos || close < brace) continue;
      labels = series.substr(brace + 1, close - brace - 1);
      series.resize(brace);
    }

    std::string suffix;
    const std::string name = family_of(series, suffix);
    auto [it, inserted] = families.emplace(name, Family{});
    if (inserted) {
      it->second.samples.resize(shard_count);
      order.push_back(name);
    }
    it->second.samples[shard_index].push_back(Sample{suffix, labels, value});
  }
}

void merge_counter(std::string& out, const std::string& name, const Family& family) {
  double total = 0;
  for (const auto& shard : family.samples)
    for (const Sample& s : shard)
      if (s.suffix.empty()) total += s.value;
  out += "# TYPE " + name + " counter\n";
  out += name + " " + fmt(total) + "\n";
}

void merge_gauge(std::string& out, const std::string& name, const Family& family,
                 const std::vector<ShardText>& shards) {
  out += "# TYPE " + name + " gauge\n";
  for (std::size_t i = 0; i < family.samples.size(); ++i)
    for (const Sample& s : family.samples[i])
      if (s.suffix.empty())
        out += name + "{shard=\"" + shards[i].first + "\"} " + fmt(s.value) + "\n";
}

void merge_histogram(std::string& out, const std::string& name, const Family& family) {
  // Per shard: cumulative count at each emitted le, plus the shard total
  // (+Inf). A bound the shard did not emit lies past its last occupied
  // bucket, so its cumulative count there is the shard total.
  struct PerShard {
    std::map<double, double> le_to_value;
    double total = 0, sum = 0, count = 0;
  };
  std::vector<PerShard> per_shard(family.samples.size());
  std::vector<double> bounds;
  for (std::size_t i = 0; i < family.samples.size(); ++i) {
    for (const Sample& s : family.samples[i]) {
      if (s.suffix == "_sum") {
        per_shard[i].sum += s.value;
      } else if (s.suffix == "_count") {
        per_shard[i].count += s.value;
      } else if (s.suffix == "_bucket") {
        const std::string le = label_value(s.labels, "le");
        if (le == "+Inf") {
          per_shard[i].total = s.value;
        } else {
          const double bound = std::strtod(le.c_str(), nullptr);
          per_shard[i].le_to_value[bound] = s.value;
          bounds.push_back(bound);
        }
      }
    }
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  out += "# TYPE " + name + " histogram\n";
  for (const double bound : bounds) {
    double cumulative = 0;
    for (const PerShard& shard : per_shard) {
      const auto it = shard.le_to_value.find(bound);
      cumulative += it != shard.le_to_value.end() ? it->second : shard.total;
    }
    out += name + "_bucket{le=\"" + fmt(bound) + "\"} " + fmt(cumulative) + "\n";
  }
  double total = 0, sum = 0, count = 0;
  for (const PerShard& shard : per_shard) {
    total += shard.total;
    sum += shard.sum;
    count += shard.count;
  }
  out += name + "_bucket{le=\"+Inf\"} " + fmt(total) + "\n";
  out += name + "_sum " + fmt(sum) + "\n";
  out += name + "_count " + fmt(count) + "\n";
}

void merge_summary(std::string& out, const std::string& name, const Family& family,
                   const std::vector<ShardText>& shards) {
  struct PerShard {
    std::vector<std::pair<std::string, double>> quantiles;
    double count = 0;
  };
  std::vector<PerShard> per_shard(family.samples.size());
  std::vector<std::string> quantile_order;
  for (std::size_t i = 0; i < family.samples.size(); ++i) {
    for (const Sample& s : family.samples[i]) {
      if (s.suffix == "_count") {
        per_shard[i].count += s.value;
      } else if (s.suffix.empty()) {
        const std::string q = label_value(s.labels, "quantile");
        if (q.empty()) continue;
        per_shard[i].quantiles.emplace_back(q, s.value);
        if (std::find(quantile_order.begin(), quantile_order.end(), q) ==
            quantile_order.end())
          quantile_order.push_back(q);
      }
    }
  }

  out += "# TYPE " + name + " summary\n";
  // Count-weighted mean of the per-shard quantiles (approximate; the exact
  // per-shard series follow, labelled).
  double total_count = 0;
  for (const PerShard& shard : per_shard) total_count += shard.count;
  for (const std::string& q : quantile_order) {
    double weighted = 0;
    for (const PerShard& shard : per_shard) {
      for (const auto& [sq, v] : shard.quantiles)
        if (sq == q) weighted += v * shard.count;
    }
    const double merged = total_count > 0 ? weighted / total_count : 0;
    out += name + "{quantile=\"" + q + "\"} " + fmt(merged) + "\n";
  }
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    for (const auto& [q, v] : per_shard[i].quantiles)
      out += name + "{shard=\"" + shards[i].first + "\",quantile=\"" + q + "\"} " +
             fmt(v) + "\n";
  }
  out += name + "_count " + fmt(total_count) + "\n";
}

}  // namespace

std::string merge_prometheus(const std::vector<ShardText>& shards) {
  std::vector<std::string> order;
  std::unordered_map<std::string, Family> families;
  for (std::size_t i = 0; i < shards.size(); ++i)
    parse_exposition(shards[i].second, i, shards.size(), order, families);

  std::string out;
  out.reserve(4096);
  for (const std::string& name : order) {
    const Family& family = families.at(name);
    if (family.type == "counter") {
      merge_counter(out, name, family);
    } else if (family.type == "histogram") {
      merge_histogram(out, name, family);
    } else if (family.type == "summary") {
      merge_summary(out, name, family, shards);
    } else {
      // Gauges and untyped samples: per-shard labels, never summed.
      merge_gauge(out, name, family, shards);
    }
  }
  return out;
}

namespace {

// Recursively sums `doc`'s numeric fields into `into` (objects recurse,
// numbers add, everything else keeps the first shard's value).
void sum_into(obs::Json& into, const obs::Json& doc) {
  if (!doc.is_object()) return;
  for (const auto& [key, value] : doc.members()) {
    const obs::Json* existing = into.find(key);
    if (value.is_object()) {
      obs::Json merged = existing != nullptr && existing->is_object()
                             ? *existing
                             : obs::Json::object();
      sum_into(merged, value);
      into.set(key, std::move(merged));
    } else if (value.is_number()) {
      const double sum = (existing != nullptr ? existing->as_double() : 0.0) +
                         value.as_double();
      into.set(key, obs::Json(sum));
    } else if (existing == nullptr) {
      into.set(key, value);
    }
  }
}

}  // namespace

namespace {

// Collects `field` arrays ("records" | "exemplars") from every process doc,
// tagging each element with its source, and interleaves by wall_us.
obs::Json interleave_flight(const std::vector<ShardJson>& shards,
                            std::string_view field) {
  struct Tagged {
    std::uint64_t wall_us = 0;
    obs::Json record;
  };
  std::vector<Tagged> all;
  for (const auto& [name, doc] : shards) {
    const obs::Json* records = doc.find(field);
    if (records == nullptr || !records->is_array()) continue;
    for (const obs::Json& record : records->items()) {
      if (!record.is_object()) continue;
      obs::Json tagged = record;
      tagged.set("process", obs::Json(name));
      const obs::Json* wall = record.find("wall_us");
      all.push_back(Tagged{
          wall != nullptr && wall->is_number() ? wall->as_uint() : 0,
          std::move(tagged)});
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Tagged& a, const Tagged& b) { return a.wall_us < b.wall_us; });
  obs::Json merged = obs::Json::array();
  for (Tagged& t : all) merged.push(std::move(t.record));
  return merged;
}

}  // namespace

obs::Json aggregate_flightz(const std::vector<ShardJson>& shards) {
  obs::Json doc = obs::Json::object();
  doc.set("processes", obs::Json(static_cast<std::uint64_t>(shards.size())));

  std::uint64_t recorded = 0, anomalies = 0, dumps = 0;
  for (const auto& [name, view] : shards) {
    const auto field = [&](const char* key) -> std::uint64_t {
      const obs::Json* v = view.find(key);
      return v != nullptr && v->is_number() ? v->as_uint() : 0;
    };
    recorded += field("recorded");
    anomalies += field("anomalies");
    dumps += field("anomaly_dumps");
  }
  doc.set("recorded", obs::Json(recorded));
  doc.set("anomalies", obs::Json(anomalies));
  doc.set("anomaly_dumps", obs::Json(dumps));

  doc.set("records", interleave_flight(shards, "records"));
  doc.set("exemplars", interleave_flight(shards, "exemplars"));

  obs::Json per_process = obs::Json::object();
  for (const auto& [name, view] : shards) per_process.set(name, view);
  doc.set("per_process", std::move(per_process));
  return doc;
}

obs::Json aggregate_statz(const std::vector<ShardJson>& shards) {
  obs::Json doc = obs::Json::object();
  doc.set("shards", obs::Json(static_cast<std::uint64_t>(shards.size())));

  obs::Json totals = obs::Json::object();
  for (const auto& [name, stats] : shards) sum_into(totals, stats);
  doc.set("totals", std::move(totals));

  obs::Json per_shard = obs::Json::object();
  for (const auto& [name, stats] : shards) per_shard.set(name, stats);
  doc.set("per_shard", std::move(per_shard));
  return doc;
}

}  // namespace srna::dist
