// Shard process supervision: fork/exec srna-serve-style children, watch
// their pids, restart crashed ones with backoff, and tear everything down
// politely (SIGTERM, grace, SIGKILL).
//
// Children get PR_SET_PDEATHSIG(SIGKILL): if the supervisor itself dies, no
// orphan shard keeps squatting on its port. The monitor polls per-pid
// waitpid(WNOHANG) rather than reaping -1 — tests and the router embed a
// Supervisor inside processes that own other children.
//
// A restart is a fresh exec of the same spec: the replacement shard comes up
// with a cold result cache and empty ledger, re-announces readiness through
// its admin plane, and the router's prober folds it back in. Nothing is
// migrated — correctness comes from the router's exactly-one-response
// bookkeeping, not from process state surviving.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace srna::dist {

struct ProcessSpec {
  std::string name;                // unique within this supervisor
  std::string binary;              // path to the executable
  std::vector<std::string> args;   // argv[1..]
};

struct SupervisorConfig {
  bool restart = true;         // restart children that exit uncommanded
  int poll_interval_ms = 50;   // pid poll cadence
  int restart_backoff_ms = 200;
  int stop_grace_ms = 2000;    // SIGTERM -> SIGKILL window
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorConfig config = {});
  ~Supervisor();  // stop_all()

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // Spawns and begins monitoring. Returns the child pid, or -1 when the
  // fork failed (exec failure surfaces as an immediate exit + restart
  // attempts, like any crash). Duplicate names throw std::invalid_argument.
  pid_t start(const ProcessSpec& spec);

  // Commanded stop of one child (no restart). Returns false for unknown
  // names. Blocks until the child is reaped.
  bool stop(const std::string& name);

  // SIGTERM everyone, wait up to stop_grace_ms, SIGKILL stragglers, join the
  // monitor. Idempotent.
  void stop_all();

  [[nodiscard]] pid_t pid(const std::string& name) const;
  [[nodiscard]] bool running(const std::string& name) const;
  [[nodiscard]] std::uint64_t restarts(const std::string& name) const;
  [[nodiscard]] obs::Json status_json() const;

 private:
  struct Child {
    ProcessSpec spec;
    pid_t pid = -1;
    bool running = false;
    bool stop_requested = false;
    std::uint64_t restarts = 0;
    std::chrono::steady_clock::time_point restart_at{};  // backoff gate
  };

  void monitor_loop();
  static pid_t spawn(const ProcessSpec& spec);

  SupervisorConfig config_;
  mutable std::mutex mutex_;  // guards children_ / stopping_
  std::vector<Child> children_;
  bool stopping_ = false;
  std::thread monitor_;
};

}  // namespace srna::dist
