#include "dist/trace_collect.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

namespace srna::dist {

namespace {

// The wall-clock anchor of one process trace; 0 = absent (tracing was never
// enabled in that process, so its timestamps cannot be aligned).
std::uint64_t anchor_of(const obs::Json& doc) {
  const obs::Json* anchor = doc.find("srna_clock_anchor");
  if (anchor == nullptr || !anchor->is_object()) return 0;
  const obs::Json* us = anchor->find("realtime_unix_us");
  return us != nullptr && us->is_number() ? us->as_uint() : 0;
}

}  // namespace

std::vector<TraceSource> sources_from_status(const obs::Json& status) {
  std::vector<TraceSource> sources;
  if (!status.is_object()) return sources;

  if (const obs::Json* router = status.find("router");
      router != nullptr && router->is_object()) {
    const obs::Json* host = router->find("host");
    const obs::Json* port = router->find("admin_port");
    if (port != nullptr && port->is_number() && port->as_uint() != 0) {
      TraceSource source;
      source.name = "router";
      source.admin.host = host != nullptr && host->is_string() ? host->as_string()
                                                               : "127.0.0.1";
      source.admin.port = static_cast<std::uint16_t>(port->as_uint());
      sources.push_back(std::move(source));
    }
  }

  if (const obs::Json* shards = status.find("shards");
      shards != nullptr && shards->is_array()) {
    for (const obs::Json& shard : shards->items()) {
      if (!shard.is_object()) continue;
      const obs::Json* name = shard.find("name");
      const obs::Json* admin = shard.find("admin");
      if (admin == nullptr || !admin->is_string()) continue;
      TraceSource source;
      source.name = name != nullptr && name->is_string() ? name->as_string()
                                                         : admin->as_string();
      try {
        source.admin = parse_endpoint(admin->as_string());
      } catch (const std::exception&) {
        continue;
      }
      if (source.admin.port == 0) continue;
      sources.push_back(std::move(source));
    }
  }
  return sources;
}

std::optional<obs::Json> fetch_trace(const Endpoint& admin, int timeout_ms) {
  const std::optional<std::string> body = http_get_body(admin, "/tracez", timeout_ms);
  if (!body) return std::nullopt;
  std::optional<obs::Json> doc = obs::Json::parse(*body);
  if (!doc || !doc->is_object()) return std::nullopt;
  return doc;
}

obs::Json merge_traces(const std::vector<ProcessTrace>& traces) {
  // The earliest anchor is the merged timeline's origin; anchorless traces
  // (never enabled) contribute offset 0 — their few events stay where their
  // own clock put them rather than being flung to a bogus offset.
  std::uint64_t base = std::numeric_limits<std::uint64_t>::max();
  for (const ProcessTrace& trace : traces) {
    const std::uint64_t anchor = anchor_of(trace.doc);
    if (anchor != 0) base = std::min(base, anchor);
  }
  if (base == std::numeric_limits<std::uint64_t>::max()) base = 0;

  obs::Json events = obs::Json::array();
  obs::Json processes = obs::Json::object();
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const ProcessTrace& trace = traces[i];
    const std::int64_t pid = static_cast<std::int64_t>(i + 1);
    const std::uint64_t anchor = anchor_of(trace.doc);
    const std::uint64_t offset_us = anchor > base ? anchor - base : 0;

    // The collector's label wins over any source-side process_name metadata
    // — the status file knows "shard0"; the process only knows "srna-serve".
    obs::Json meta = obs::Json::object();
    meta.set("ph", "M").set("name", "process_name").set("pid", pid);
    obs::Json meta_args = obs::Json::object();
    meta_args.set("name", trace.name);
    meta.set("args", std::move(meta_args));
    events.push(std::move(meta));

    std::uint64_t copied = 0;
    const obs::Json* source_events = trace.doc.find("traceEvents");
    if (source_events != nullptr && source_events->is_array()) {
      for (const obs::Json& event : source_events->items()) {
        if (!event.is_object()) continue;
        const obs::Json* ph = event.find("ph");
        const bool metadata =
            ph != nullptr && ph->is_string() && ph->as_string() == "M";
        if (metadata) {
          const obs::Json* name = event.find("name");
          if (name != nullptr && name->is_string() &&
              name->as_string() == "process_name")
            continue;  // replaced by the collector's label above
        }
        obs::Json copy = event;
        copy.set("pid", obs::Json(pid));
        if (!metadata) {
          const obs::Json* ts = event.find("ts");
          if (ts != nullptr && ts->is_number())
            copy.set("ts", obs::Json(ts->as_uint() + offset_us));
          copied += 1;
        }
        events.push(std::move(copy));
      }
    }

    obs::Json entry = obs::Json::object();
    entry.set("pid", obs::Json(pid));
    entry.set("clock_offset_us", obs::Json(offset_us));
    entry.set("events", obs::Json(copied));
    processes.set(trace.name, std::move(entry));
  }

  obs::Json doc = obs::Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  doc.set("srna_clock_base_unix_us", obs::Json(base));
  doc.set("srna_processes", std::move(processes));
  return doc;
}

}  // namespace srna::dist
