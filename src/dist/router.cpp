#include "dist/router.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "dist/aggregate.hpp"
#include "obs/exposition.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rna/dot_bracket.hpp"
#include "rna/structure_hash.hpp"
#include "serve/protocol.hpp"

namespace srna::dist {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) noexcept {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Router::Router(RouterConfig config)
    : config_(std::move(config)), ring_(config_.vnodes), flight_(config_.flight) {
  config_.replicas = std::max(1, config_.replicas);
  config_.max_attempts = std::max(1, config_.max_attempts);

  // Fleet-unique trace ids: two routers (or a router restart) must not mint
  // colliding ids, so salt the id space per process.
  const std::uint64_t seed =
      static_cast<std::uint64_t>(::getpid()) ^
      static_cast<std::uint64_t>(Clock::now().time_since_epoch().count());
  trace_salt_ = ((splitmix64(seed) & 0xfffull) | 0x800ull) << 40;

  links_.reserve(config_.shards.size());
  std::vector<ProbeTarget> targets;
  targets.reserve(config_.shards.size());
  for (std::size_t i = 0; i < config_.shards.size(); ++i) {
    auto link = std::make_unique<Link>();
    link->address = config_.shards[i];
    link->index = i;
    links_.push_back(std::move(link));
    ring_.add_node(config_.shards[i].name);
    targets.push_back(ProbeTarget{config_.shards[i].name, config_.shards[i].admin});
  }
  prober_ = std::make_unique<HealthProber>(std::move(targets), config_.probe);
  maintenance_ = std::thread([this] { maintenance_loop(); });
}

Router::~Router() { stop(); }

std::uint64_t Router::mint_trace_id() noexcept {
  return trace_salt_ |
         (next_trace_.fetch_add(1, std::memory_order_relaxed) & ((1ull << 40) - 1));
}

std::uint64_t Router::routing_key(const serve::ServeRequest& request,
                                  bool* canonical) const {
  if (canonical != nullptr) *canonical = false;
  if (!request.by_name()) {
    try {
      const SecondaryStructure a = parse_dot_bracket(request.a);
      const SecondaryStructure b = parse_dot_bracket(request.b);
      if (canonical != nullptr) *canonical = true;
      return hash_structure_pair(a, b);
    } catch (const std::exception&) {
      // Unparseable literals are still forwarded — the owning shard produces
      // the same error bytes direct serving would. \x1f keeps ("ab","c")
      // distinct from ("a","bc").
      return fnv1a_bytes(request.a + '\x1f' + request.b);
    }
  }
  // The router carries no structure database; deterministic content hashing
  // still pins a name pair to one shard (and its cache entry).
  return fnv1a_bytes(request.a_name + '\x1f' + request.b_name);
}

std::vector<std::string> Router::route_of(const std::string& line) const {
  const serve::ServeRequest request = serve::parse_request(line);
  return ring_.owners(routing_key(request), static_cast<std::size_t>(config_.replicas));
}

void Router::handle_line(const std::string& line,
                         const serve::TcpServer::EmitLine& emit) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::instance().counter("router.requests").add();

  // In-band admin lines answer from the aggregated views, mirroring the
  // single-process transports.
  if (line.find("\"admin\"") != std::string::npos) {
    if (const std::optional<obs::Json> doc = obs::Json::parse(line);
        doc && doc->is_object()) {
      if (const obs::Json* what = doc->find("admin");
          what != nullptr && what->is_string()) {
        emit(admin_in_band(what->as_string()).dump(0));
        return;
      }
    }
  }

  serve::ServeRequest request;
  try {
    request = serve::parse_request(line);
  } catch (const std::exception& e) {
    // Same inline answer (and bytes) a shard's transport would produce.
    serve::ServeResponse resp;
    resp.status = serve::ResponseStatus::kError;
    resp.error = e.what();
    emit(resp.to_line());
    responses_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  bool canonical = false;
  const std::uint64_t key = routing_key(request, &canonical);
  const std::vector<std::string> owners =
      ring_.owners(key, static_cast<std::size_t>(config_.replicas));

  Pending entry;
  entry.candidates.reserve(owners.size());
  for (const std::string& owner : owners) {
    for (const auto& link : links_)
      if (link->address.name == owner) entry.candidates.push_back(link->index);
  }

  std::optional<obs::Json> doc = obs::Json::parse(line);
  if (!doc || !doc->is_object() || entry.candidates.empty()) {
    serve::ServeResponse resp;
    resp.id = request.id;
    resp.status = serve::ResponseStatus::kRejected;
    resp.retry_after_ms = config_.retry_after_ms;
    resp.error = entry.candidates.empty() ? "no shards configured"
                                          : "router could not parse request";
    emit(resp.to_line());
    rejected_.fetch_add(1, std::memory_order_relaxed);
    responses_.fetch_add(1, std::memory_order_relaxed);
    obs::FlightRecord rejected_record;
    rejected_record.request_id = resp.id;
    rejected_record.outcome = "rejected";
    rejected_record.detail = resp.error;
    flight_.record(std::move(rejected_record));
    return;
  }

  entry.doc = std::move(*doc);
  entry.original_id = entry.doc.contains("id") ? *entry.doc.find("id")
                                               : obs::Json(std::int64_t{0});
  entry.emit = emit;
  entry.attempts_left = config_.max_attempts;
  entry.trace = request.trace;
  entry.admitted = Clock::now();
  if (canonical) entry.digest = digest_hex(key);
  // One correlation id per request, spanning processes: adopt an upstream
  // caller's id, mint a fleet-unique one otherwise, and stamp it into the
  // forwarded line so the owning shard adopts it too.
  entry.trace_id = request.trace_id != 0 ? request.trace_id : mint_trace_id();
  entry.doc.set("trace_id", obs::Json(entry.trace_id));
  if (obs::Tracer::instance().enabled())
    entry.admitted_us = obs::Tracer::instance().now_us();

  const std::uint64_t trace_id = entry.trace_id;
  const std::int64_t client_id = entry.original_id.is_number()
                                     ? entry.original_id.as_int()
                                     : std::int64_t{0};
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  entry.doc.set("id", obs::Json(id));
  {
    std::lock_guard lock(pending_mutex_);
    pending_.emplace(id, std::move(entry));
    obs::Registry::instance().gauge("router.pending").set(
        static_cast<double>(pending_.size()));
  }
  if (obs::Logger::instance().enabled(obs::LogLevel::kDebug))
    obs::log_debug("router.admit",
                   obs::log_fields({{"id", obs::Json(client_id)},
                                    {"trace_id", obs::Json(trace_id)}}));
  dispatch(id);
}

void Router::dispatch(std::uint64_t id) {
  for (;;) {
    std::string line;
    std::size_t target = static_cast<std::size_t>(-1);
    std::optional<Pending> exhausted;
    std::uint64_t trace_id = 0;
    std::uint64_t attempt_start_us = 0;  // tracer clock; 0 = tracing off
    std::uint64_t queued_start_us = 0;   // nonzero on the first attempt only
    std::uint64_t queued_dur_us = 0;
    int attempt = 0;
    {
      std::lock_guard lock(pending_mutex_);
      const auto it = pending_.find(id);
      if (it == pending_.end()) return;  // already answered (claimed)
      Pending& entry = it->second;
      if (entry.attempts_left <= 0) {
        exhausted = std::move(entry);
        pending_.erase(it);
        obs::Registry::instance().gauge("router.pending").set(
            static_cast<double>(pending_.size()));
      } else {
        entry.attempts_left -= 1;

        // Next candidate, preferring probe-ready shards; with every replica
        // un-ready, fall through optimistically — the send failure (or probe
        // recovery) sorts it out, and a cold-starting fleet should not
        // insta-reject.
        const std::size_t n = entry.candidates.size();
        std::size_t chosen = entry.candidates[entry.cursor % n];
        for (std::size_t step = 0; step < n; ++step) {
          const std::size_t candidate = entry.candidates[(entry.cursor + step) % n];
          if (prober_->ready(links_[candidate]->address.name)) {
            chosen = candidate;
            entry.cursor += step;
            break;
          }
        }
        entry.cursor += 1;
        entry.shard = chosen;
        const Clock::time_point now = Clock::now();
        entry.deadline = now + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(
                                       config_.request_timeout_ms));
        entry.attempts_used += 1;
        attempt = entry.attempts_used;
        trace_id = entry.trace_id;
        if (entry.first_dispatch_ms < 0)
          entry.first_dispatch_ms = ms_between(entry.admitted, now);
        if (entry.admitted_us != 0 && obs::Tracer::instance().enabled()) {
          const std::uint64_t now_us = obs::Tracer::instance().now_us();
          if (attempt == 1) {
            // The router-side queued phase, recorded retroactively below.
            queued_start_us = entry.admitted_us;
            queued_dur_us = now_us - entry.admitted_us;
          }
          entry.attempt_start_us = now_us;
          attempt_start_us = now_us;
        }
        target = chosen;
        line = entry.doc.dump(0);
      }
    }
    if (exhausted) {
      // Emitting to the client never happens under the map lock.
      reject(id, std::move(*exhausted),
             "no shard available (routing attempts exhausted)");
      return;
    }

    Link& link = *links_[target];
    // Everything this attempt records — spans, instants — carries the
    // request's trace id via the thread-local context.
    obs::TraceContextScope trace_scope(trace_id);
    if (queued_start_us != 0)
      obs::Tracer::instance().record("dist", "queued", queued_start_us, queued_dur_us);
    if (obs::Logger::instance().enabled(obs::LogLevel::kDebug))
      obs::log_debug(
          "router.dispatch",
          obs::log_fields({{"trace_id", obs::Json(trace_id)},
                           {"attempt", obs::Json(static_cast<std::int64_t>(attempt))},
                           {"shard", obs::Json(link.address.name)}}));
    if (send_to_link(link, line)) {
      link.forwarded.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::instance().counter("router.forwarded").add();
      return;
    }
    // Send failed: the shard is down right now. Loop — the cursor already
    // advanced past it, so the next iteration tries the following replica
    // (or exhausts the budget into an explicit rejection).
    failovers_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("router.failovers").add();
    if (attempt_start_us != 0) {
      obs::Tracer& tracer = obs::Tracer::instance();
      tracer.record("dist", "attempt", attempt_start_us,
                    tracer.now_us() - attempt_start_us,
                    obs::trace_args({{"attempt", attempt}, {"ok", 0}}));
      tracer.instant("dist", "failover");
    }
    obs::log_warn(
        "router.failover",
        obs::log_fields({{"trace_id", obs::Json(trace_id)},
                         {"attempt", obs::Json(static_cast<std::int64_t>(attempt))},
                         {"shard", obs::Json(link.address.name)},
                         {"reason", obs::Json("send failed (shard down)")}}));
  }
}

bool Router::send_to_link(Link& link, const std::string& line) {
  std::lock_guard lock(link.mutex);
  if (!link.connected) {
    if (link.reader.joinable()) {
      if (!link.reader_done.load(std::memory_order_acquire))
        return false;  // previous reader still winding down; try a replica
      link.reader.join();
    }
    if (link.fd >= 0) {
      ::close(link.fd);
      link.fd = -1;
    }
    const int fd = tcp_connect(link.address.data, config_.connect_timeout_ms);
    if (fd < 0) return false;
    link.fd = fd;
    link.connected = true;
    link.reader_done.store(false, std::memory_order_release);
    link.reader = std::thread([this, &link] { read_loop(link); });
  }
  if (!send_all(link.fd, line + "\n")) {
    mark_link_down(link);
    return false;
  }
  return true;
}

void Router::mark_link_down(Link& link) {
  // Caller holds link.mutex. shutdown() (not close()) wakes the reader and
  // fails concurrent sends without racing fd reuse; the fd is recycled on
  // the next reconnect attempt.
  if (link.connected) {
    link.connected = false;
    if (link.fd >= 0) ::shutdown(link.fd, SHUT_RDWR);
  }
}

void Router::read_loop(Link& link) {
  const int fd = link.fd;  // stable for the life of this reader
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty()) handle_shard_response(link, line);
    }
    buffer.erase(0, start);
  }
  {
    std::lock_guard lock(link.mutex);
    mark_link_down(link);
  }
  link.reader_done.store(true, std::memory_order_release);
  // The maintenance thread re-homes this link's in-flight requests; a reader
  // must never dispatch (it could block on another link's write mutex while
  // that link's owner is joining us).
  {
    std::lock_guard lock(events_mutex_);
    if (!stopping_) down_events_.push_back(link.index);
  }
  events_wake_.notify_one();
}

void Router::handle_shard_response(Link& link, const std::string& line) {
  const std::optional<obs::Json> doc = obs::Json::parse(line);
  if (!doc || !doc->is_object()) return;
  const obs::Json* id_field = doc->find("id");
  if (id_field == nullptr) return;
  const std::uint64_t id = id_field->as_uint();

  Pending claimed;
  {
    std::lock_guard lock(pending_mutex_);
    const auto it = pending_.find(id);
    if (it == pending_.end()) {
      // A late answer from a timed-out or failed-over attempt; the client
      // already got (or will get) exactly one response from elsewhere.
      late_drops_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::instance().counter("router.late_drops").add();
      return;
    }
    claimed = std::move(it->second);
    pending_.erase(it);
    obs::Registry::instance().gauge("router.pending").set(
        static_cast<double>(pending_.size()));
  }

  const Clock::time_point now = Clock::now();
  obs::TraceContextScope trace_scope(claimed.trace_id);
  if (claimed.attempt_start_us != 0 && obs::Tracer::instance().enabled()) {
    // The winning attempt's span: dispatch -> shard answer, on this request's
    // lane alongside the shard's own serve/solve spans.
    obs::Tracer& tracer = obs::Tracer::instance();
    tracer.record("dist", "attempt", claimed.attempt_start_us,
                  tracer.now_us() - claimed.attempt_start_us,
                  obs::trace_args({{"attempt", claimed.attempts_used}, {"ok", 1}}));
  }

  // Swap the client's id back in. Shards serialize with the same writer, so
  // this re-dump is byte-identical to the shard's line outside the id field.
  obs::Json response = *doc;
  response.set("id", claimed.original_id);
  // Hop fields, traced requests only (set() appends, matching the tail
  // position ServeResponse::to_json gives them); untraced routed responses
  // stay byte-identical to direct serving.
  if (claimed.trace) {
    response.set("attempts",
                 obs::Json(static_cast<std::uint64_t>(claimed.attempts_used)));
    response.set("shard", obs::Json(link.address.name));
    response.set("router_queued_ms",
                 obs::Json(std::max(0.0, claimed.first_dispatch_ms)));
  }
  // Flight-record before emitting: a client that reads its response and
  // immediately asks /flightz must find its own request in the ring.
  obs::FlightRecord flight_record;
  flight_record.trace_id = claimed.trace_id;
  flight_record.request_id =
      claimed.original_id.is_number() ? claimed.original_id.as_int() : 0;
  flight_record.digest = claimed.digest;
  if (const obs::Json* s = doc->find("status"); s != nullptr && s->is_string())
    flight_record.outcome = s->as_string();
  if (const obs::Json* e = doc->find("error"); e != nullptr && e->is_string())
    flight_record.detail = e->as_string();
  flight_record.shard = link.address.name;
  flight_record.latency_ms = ms_between(claimed.admitted, now);
  flight_record.queued_ms = std::max(0.0, claimed.first_dispatch_ms);
  if (const obs::Json* v = doc->find("solve_ms"); v != nullptr && v->is_number())
    flight_record.solve_ms = v->as_double();
  flight_record.attempts = static_cast<std::uint32_t>(claimed.attempts_used);
  flight_record.failovers =
      claimed.attempts_used > 1 ? static_cast<std::uint32_t>(claimed.attempts_used - 1)
                                : 0;
  if (const obs::Json* v = doc->find("cache_hit");
      v != nullptr && v->kind() == obs::Json::Kind::kBool)
    flight_record.cache_hit = v->as_bool();
  flight_.record(std::move(flight_record));

  claimed.emit(response.dump(0));
  link.answered.fetch_add(1, std::memory_order_relaxed);
  responses_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::instance().counter("router.responses").add();

  if (obs::Logger::instance().enabled(obs::LogLevel::kDebug))
    obs::log_debug(
        "router.respond",
        obs::log_fields(
            {{"trace_id", obs::Json(claimed.trace_id)},
             {"shard", obs::Json(link.address.name)},
             {"attempts",
              obs::Json(static_cast<std::int64_t>(claimed.attempts_used))}}));
}

void Router::reject(std::uint64_t id, Pending entry, const std::string& reason) {
  (void)id;
  serve::ServeResponse resp;
  resp.id = entry.original_id.as_int();
  resp.status = serve::ResponseStatus::kRejected;
  resp.retry_after_ms = config_.retry_after_ms;
  resp.error = reason;
  // Echo the trace id even on rejection — it is the handle a client quotes
  // to find this request's record in GET /flightz.
  resp.trace_id = entry.trace_id;

  // Flight-record before emitting (same ordering as handle_shard_response):
  // the rejected client can immediately look itself up in /flightz.
  obs::FlightRecord flight_record;
  flight_record.trace_id = entry.trace_id;
  flight_record.request_id = resp.id;
  flight_record.digest = entry.digest;
  flight_record.outcome = "rejected";
  flight_record.detail = reason;
  if (entry.admitted != Clock::time_point{})
    flight_record.latency_ms = ms_between(entry.admitted, Clock::now());
  flight_record.queued_ms = std::max(0.0, entry.first_dispatch_ms);
  flight_record.attempts = static_cast<std::uint32_t>(entry.attempts_used);
  // Every attempt failed — each one was a failover away from an answer.
  flight_record.failovers = static_cast<std::uint32_t>(entry.attempts_used);
  flight_.record(std::move(flight_record));

  entry.emit(resp.to_line());
  rejected_.fetch_add(1, std::memory_order_relaxed);
  responses_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::instance().counter("router.rejected").add();
  obs::log_warn("router.reject",
                obs::log_fields({{"id", obs::Json(resp.id)},
                                 {"trace_id", obs::Json(entry.trace_id)},
                                 {"reason", obs::Json(reason)}}));
}

void Router::maintenance_loop() {
  for (;;) {
    std::vector<std::size_t> downed;
    {
      std::unique_lock lock(events_mutex_);
      events_wake_.wait_for(lock, std::chrono::milliseconds(50),
                            [&] { return stopping_ || !down_events_.empty(); });
      if (stopping_) return;
      downed.assign(down_events_.begin(), down_events_.end());
      down_events_.clear();
    }

    // Re-home everything in flight on a dead link, and everything whose
    // per-attempt deadline passed (a hung-but-connected shard looks exactly
    // like a slow one; the timeout is the only tell).
    struct Redispatch {
      std::uint64_t id = 0;
      std::uint64_t trace_id = 0;
      std::uint64_t attempt_start_us = 0;
      int attempt = 0;
      std::size_t shard = static_cast<std::size_t>(-1);
      bool dead_link = false;
    };
    std::vector<Redispatch> redispatch;
    const auto now = Clock::now();
    {
      std::lock_guard lock(pending_mutex_);
      for (const auto& [id, entry] : pending_) {
        const bool on_dead_link =
            std::find(downed.begin(), downed.end(), entry.shard) != downed.end();
        if (on_dead_link || now >= entry.deadline)
          redispatch.push_back(Redispatch{id, entry.trace_id, entry.attempt_start_us,
                                          entry.attempts_used, entry.shard,
                                          on_dead_link});
      }
    }
    for (const Redispatch& r : redispatch) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      failovers_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::instance().counter("router.failovers").add();
      obs::TraceContextScope trace_scope(r.trace_id);
      if (r.attempt_start_us != 0 && obs::Tracer::instance().enabled()) {
        // The failed attempt's span closes here — its shard never answered.
        obs::Tracer& tracer = obs::Tracer::instance();
        tracer.record("dist", "attempt", r.attempt_start_us,
                      tracer.now_us() - r.attempt_start_us,
                      obs::trace_args({{"attempt", r.attempt}, {"ok", 0}}));
        tracer.instant("dist", "failover");
      }
      obs::log_warn(
          "router.failover",
          obs::log_fields(
              {{"trace_id", obs::Json(r.trace_id)},
               {"attempt", obs::Json(static_cast<std::int64_t>(r.attempt))},
               {"shard", obs::Json(r.shard < links_.size()
                                       ? links_[r.shard]->address.name
                                       : std::string{})},
               {"reason", obs::Json(r.dead_link ? "shard connection died"
                                                : "attempt timeout")}}));
      dispatch(r.id);
    }
  }
}

void Router::stop() {
  {
    std::lock_guard lock(events_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  events_wake_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();
  prober_->stop();

  for (const auto& link : links_) {
    {
      std::lock_guard lock(link->mutex);
      mark_link_down(*link);
    }
    if (link->reader.joinable()) link->reader.join();
    std::lock_guard lock(link->mutex);
    if (link->fd >= 0) {
      ::close(link->fd);
      link->fd = -1;
    }
  }

  // Nobody is left to answer; reject the stragglers so no client hangs.
  std::unordered_map<std::uint64_t, Pending> leftover;
  {
    std::lock_guard lock(pending_mutex_);
    leftover.swap(pending_);
  }
  for (auto& [id, entry] : leftover)
    reject(id, std::move(entry), "router shutting down");
}

obs::Json Router::admin_in_band(std::string_view what) {
  obs::Json doc = obs::Json::object();
  doc.set("admin", obs::Json(std::string(what)));
  if (what == "metrics") {
    doc.set("body", obs::Json(merged_metrics()));
  } else if (what == "healthz") {
    doc.set("status", obs::Json("ok"));
    doc.set("healthy", obs::Json(true));
  } else if (what == "readyz") {
    const bool ready = prober_->ready_count() > 0;
    doc.set("status", obs::Json(ready ? "ok" : "no shard ready"));
    doc.set("ready", obs::Json(ready));
  } else if (what == "statz") {
    doc.set("stats", stats_json());
  } else if (what == "flightz") {
    doc.set("flight", merged_flightz());
  } else if (what == "tracez") {
    doc.set("enabled", obs::Json(obs::Tracer::instance().enabled()));
    doc.set("trace", obs::Tracer::instance().to_json());
  } else {
    doc.set("error",
            obs::Json("unknown admin command (metrics | healthz | readyz | statz | "
                      "flightz | tracez)"));
  }
  return doc;
}

std::string Router::merged_metrics() {
  std::vector<ShardText> scrapes;
  for (const auto& link : links_) {
    if (link->address.admin.port == 0) continue;
    if (std::optional<std::string> body =
            http_get_body(link->address.admin, "/metrics", config_.connect_timeout_ms))
      scrapes.emplace_back(link->address.name, std::move(*body));
  }
  // Router-local metrics first (router.* counters, plus whatever else this
  // process records), then the cross-shard merge.
  return obs::render_prometheus() + merge_prometheus(scrapes);
}

obs::Json Router::merged_flightz() {
  // The router's own ring first (labelled "router"), then every shard's —
  // aggregate_flightz interleaves the records by wall clock so the merged
  // view reads as one fleet timeline.
  std::vector<ShardJson> views;
  views.emplace_back("router", flight_.to_json());
  for (const auto& link : links_) {
    if (link->address.admin.port == 0) continue;
    if (const std::optional<std::string> body = http_get_body(
            link->address.admin, "/flightz", config_.connect_timeout_ms)) {
      if (std::optional<obs::Json> doc = obs::Json::parse(*body))
        views.emplace_back(link->address.name, std::move(*doc));
    }
  }
  return aggregate_flightz(views);
}

obs::Json Router::aggregated_statz() {
  std::vector<ShardJson> stats;
  for (const auto& link : links_) {
    if (link->address.admin.port == 0) continue;
    if (const std::optional<std::string> body = http_get_body(
            link->address.admin, "/statz", config_.connect_timeout_ms)) {
      if (std::optional<obs::Json> doc = obs::Json::parse(*body))
        stats.emplace_back(link->address.name, std::move(*doc));
    }
  }
  return aggregate_statz(stats);
}

obs::Json Router::stats_json() {
  obs::Json doc = obs::Json::object();
  obs::Json router = obs::Json::object();
  router.set("shards", obs::Json(static_cast<std::uint64_t>(links_.size())));
  router.set("requests", obs::Json(requests_.load(std::memory_order_relaxed)));
  router.set("responses", obs::Json(responses_.load(std::memory_order_relaxed)));
  router.set("failovers", obs::Json(failovers_.load(std::memory_order_relaxed)));
  router.set("rejected", obs::Json(rejected_.load(std::memory_order_relaxed)));
  router.set("late_drops", obs::Json(late_drops_.load(std::memory_order_relaxed)));
  router.set("attempt_timeouts", obs::Json(timeouts_.load(std::memory_order_relaxed)));
  router.set("flight_recorded", obs::Json(flight_.recorded()));
  router.set("flight_anomalies", obs::Json(flight_.anomalies()));
  {
    std::lock_guard lock(pending_mutex_);
    router.set("pending", obs::Json(static_cast<std::uint64_t>(pending_.size())));
  }
  obs::Json per_link = obs::Json::object();
  for (const auto& link : links_) {
    obs::Json entry = obs::Json::object();
    {
      std::lock_guard lock(link->mutex);
      entry.set("connected", obs::Json(link->connected));
    }
    entry.set("ready", obs::Json(prober_->ready(link->address.name)));
    entry.set("forwarded", obs::Json(link->forwarded.load(std::memory_order_relaxed)));
    entry.set("answered", obs::Json(link->answered.load(std::memory_order_relaxed)));
    per_link.set(link->address.name, std::move(entry));
  }
  router.set("links", std::move(per_link));
  router.set("probes", prober_->status_json());
  doc.set("router", std::move(router));
  doc.set("fleet", aggregated_statz());
  return doc;
}

serve::HttpReply Router::admin_http(const std::string& path) {
  if (path == "/metrics")
    return serve::HttpReply{200, "text/plain; version=0.0.4", merged_metrics()};
  if (path == "/healthz") return serve::HttpReply{200, "text/plain", "ok\n"};
  if (path == "/readyz") {
    const bool ready = prober_->ready_count() > 0;
    return serve::HttpReply{ready ? 200 : 503, "text/plain",
                            ready ? "ok\n" : "no shard ready\n"};
  }
  if (path == "/statz")
    return serve::HttpReply{200, "application/json", stats_json().dump(2) + "\n"};
  if (path == "/flightz")
    return serve::HttpReply{200, "application/json", merged_flightz().dump(2) + "\n"};
  if (path == "/tracez")
    // The router's own Chrome trace (with its clock anchor); the collector
    // scrapes the shards' /tracez directly from the status file's topology.
    return serve::HttpReply{200, "application/json",
                            obs::Tracer::instance().to_json().dump(0) + "\n"};
  return serve::HttpReply{404, "text/plain",
                          "routes: /metrics /healthz /readyz /statz /flightz /tracez\n"};
}

}  // namespace srna::dist
