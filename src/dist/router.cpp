#include "dist/router.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "dist/aggregate.hpp"
#include "obs/exposition.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "rna/dot_bracket.hpp"
#include "rna/structure_hash.hpp"
#include "serve/protocol.hpp"

namespace srna::dist {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

Router::Router(RouterConfig config)
    : config_(std::move(config)), ring_(config_.vnodes) {
  config_.replicas = std::max(1, config_.replicas);
  config_.max_attempts = std::max(1, config_.max_attempts);

  links_.reserve(config_.shards.size());
  std::vector<ProbeTarget> targets;
  targets.reserve(config_.shards.size());
  for (std::size_t i = 0; i < config_.shards.size(); ++i) {
    auto link = std::make_unique<Link>();
    link->address = config_.shards[i];
    link->index = i;
    links_.push_back(std::move(link));
    ring_.add_node(config_.shards[i].name);
    targets.push_back(ProbeTarget{config_.shards[i].name, config_.shards[i].admin});
  }
  prober_ = std::make_unique<HealthProber>(std::move(targets), config_.probe);
  maintenance_ = std::thread([this] { maintenance_loop(); });
}

Router::~Router() { stop(); }

std::uint64_t Router::routing_key(const serve::ServeRequest& request,
                                  bool* canonical) const {
  if (canonical != nullptr) *canonical = false;
  if (!request.by_name()) {
    try {
      const SecondaryStructure a = parse_dot_bracket(request.a);
      const SecondaryStructure b = parse_dot_bracket(request.b);
      if (canonical != nullptr) *canonical = true;
      return hash_structure_pair(a, b);
    } catch (const std::exception&) {
      // Unparseable literals are still forwarded — the owning shard produces
      // the same error bytes direct serving would. \x1f keeps ("ab","c")
      // distinct from ("a","bc").
      return fnv1a_bytes(request.a + '\x1f' + request.b);
    }
  }
  // The router carries no structure database; deterministic content hashing
  // still pins a name pair to one shard (and its cache entry).
  return fnv1a_bytes(request.a_name + '\x1f' + request.b_name);
}

std::vector<std::string> Router::route_of(const std::string& line) const {
  const serve::ServeRequest request = serve::parse_request(line);
  return ring_.owners(routing_key(request), static_cast<std::size_t>(config_.replicas));
}

void Router::handle_line(const std::string& line,
                         const serve::TcpServer::EmitLine& emit) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::instance().counter("router.requests").add();

  // In-band admin lines answer from the aggregated views, mirroring the
  // single-process transports.
  if (line.find("\"admin\"") != std::string::npos) {
    if (const std::optional<obs::Json> doc = obs::Json::parse(line);
        doc && doc->is_object()) {
      if (const obs::Json* what = doc->find("admin");
          what != nullptr && what->is_string()) {
        emit(admin_in_band(what->as_string()).dump(0));
        return;
      }
    }
  }

  serve::ServeRequest request;
  try {
    request = serve::parse_request(line);
  } catch (const std::exception& e) {
    // Same inline answer (and bytes) a shard's transport would produce.
    serve::ServeResponse resp;
    resp.status = serve::ResponseStatus::kError;
    resp.error = e.what();
    emit(resp.to_line());
    responses_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const std::uint64_t key = routing_key(request);
  const std::vector<std::string> owners =
      ring_.owners(key, static_cast<std::size_t>(config_.replicas));

  Pending entry;
  entry.candidates.reserve(owners.size());
  for (const std::string& owner : owners) {
    for (const auto& link : links_)
      if (link->address.name == owner) entry.candidates.push_back(link->index);
  }

  std::optional<obs::Json> doc = obs::Json::parse(line);
  if (!doc || !doc->is_object() || entry.candidates.empty()) {
    serve::ServeResponse resp;
    resp.id = request.id;
    resp.status = serve::ResponseStatus::kRejected;
    resp.retry_after_ms = config_.retry_after_ms;
    resp.error = entry.candidates.empty() ? "no shards configured"
                                          : "router could not parse request";
    emit(resp.to_line());
    rejected_.fetch_add(1, std::memory_order_relaxed);
    responses_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  entry.doc = std::move(*doc);
  entry.original_id = entry.doc.contains("id") ? *entry.doc.find("id")
                                               : obs::Json(std::int64_t{0});
  entry.emit = emit;
  entry.attempts_left = config_.max_attempts;

  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  entry.doc.set("id", obs::Json(id));
  {
    std::lock_guard lock(pending_mutex_);
    pending_.emplace(id, std::move(entry));
    obs::Registry::instance().gauge("router.pending").set(
        static_cast<double>(pending_.size()));
  }
  dispatch(id);
}

void Router::dispatch(std::uint64_t id) {
  for (;;) {
    std::string line;
    std::size_t target = static_cast<std::size_t>(-1);
    std::optional<Pending> exhausted;
    {
      std::lock_guard lock(pending_mutex_);
      const auto it = pending_.find(id);
      if (it == pending_.end()) return;  // already answered (claimed)
      Pending& entry = it->second;
      if (entry.attempts_left <= 0) {
        exhausted = std::move(entry);
        pending_.erase(it);
        obs::Registry::instance().gauge("router.pending").set(
            static_cast<double>(pending_.size()));
      } else {
        entry.attempts_left -= 1;

        // Next candidate, preferring probe-ready shards; with every replica
        // un-ready, fall through optimistically — the send failure (or probe
        // recovery) sorts it out, and a cold-starting fleet should not
        // insta-reject.
        const std::size_t n = entry.candidates.size();
        std::size_t chosen = entry.candidates[entry.cursor % n];
        for (std::size_t step = 0; step < n; ++step) {
          const std::size_t candidate = entry.candidates[(entry.cursor + step) % n];
          if (prober_->ready(links_[candidate]->address.name)) {
            chosen = candidate;
            entry.cursor += step;
            break;
          }
        }
        entry.cursor += 1;
        entry.shard = chosen;
        entry.deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                            std::chrono::duration<double, std::milli>(
                                                config_.request_timeout_ms));
        target = chosen;
        line = entry.doc.dump(0);
      }
    }
    if (exhausted) {
      // Emitting to the client never happens under the map lock.
      reject(id, std::move(*exhausted),
             "no shard available (routing attempts exhausted)");
      return;
    }

    Link& link = *links_[target];
    if (send_to_link(link, line)) {
      link.forwarded.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::instance().counter("router.forwarded").add();
      return;
    }
    // Send failed: the shard is down right now. Loop — the cursor already
    // advanced past it, so the next iteration tries the following replica
    // (or exhausts the budget into an explicit rejection).
    failovers_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("router.failovers").add();
  }
}

bool Router::send_to_link(Link& link, const std::string& line) {
  std::lock_guard lock(link.mutex);
  if (!link.connected) {
    if (link.reader.joinable()) {
      if (!link.reader_done.load(std::memory_order_acquire))
        return false;  // previous reader still winding down; try a replica
      link.reader.join();
    }
    if (link.fd >= 0) {
      ::close(link.fd);
      link.fd = -1;
    }
    const int fd = tcp_connect(link.address.data, config_.connect_timeout_ms);
    if (fd < 0) return false;
    link.fd = fd;
    link.connected = true;
    link.reader_done.store(false, std::memory_order_release);
    link.reader = std::thread([this, &link] { read_loop(link); });
  }
  if (!send_all(link.fd, line + "\n")) {
    mark_link_down(link);
    return false;
  }
  return true;
}

void Router::mark_link_down(Link& link) {
  // Caller holds link.mutex. shutdown() (not close()) wakes the reader and
  // fails concurrent sends without racing fd reuse; the fd is recycled on
  // the next reconnect attempt.
  if (link.connected) {
    link.connected = false;
    if (link.fd >= 0) ::shutdown(link.fd, SHUT_RDWR);
  }
}

void Router::read_loop(Link& link) {
  const int fd = link.fd;  // stable for the life of this reader
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty()) handle_shard_response(link, line);
    }
    buffer.erase(0, start);
  }
  {
    std::lock_guard lock(link.mutex);
    mark_link_down(link);
  }
  link.reader_done.store(true, std::memory_order_release);
  // The maintenance thread re-homes this link's in-flight requests; a reader
  // must never dispatch (it could block on another link's write mutex while
  // that link's owner is joining us).
  {
    std::lock_guard lock(events_mutex_);
    if (!stopping_) down_events_.push_back(link.index);
  }
  events_wake_.notify_one();
}

void Router::handle_shard_response(Link& link, const std::string& line) {
  const std::optional<obs::Json> doc = obs::Json::parse(line);
  if (!doc || !doc->is_object()) return;
  const obs::Json* id_field = doc->find("id");
  if (id_field == nullptr) return;
  const std::uint64_t id = id_field->as_uint();

  Pending claimed;
  {
    std::lock_guard lock(pending_mutex_);
    const auto it = pending_.find(id);
    if (it == pending_.end()) {
      // A late answer from a timed-out or failed-over attempt; the client
      // already got (or will get) exactly one response from elsewhere.
      late_drops_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::instance().counter("router.late_drops").add();
      return;
    }
    claimed = std::move(it->second);
    pending_.erase(it);
    obs::Registry::instance().gauge("router.pending").set(
        static_cast<double>(pending_.size()));
  }

  // Swap the client's id back in. Shards serialize with the same writer, so
  // this re-dump is byte-identical to the shard's line outside the id field.
  obs::Json response = *doc;
  response.set("id", claimed.original_id);
  claimed.emit(response.dump(0));
  link.answered.fetch_add(1, std::memory_order_relaxed);
  responses_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::instance().counter("router.responses").add();
}

void Router::reject(std::uint64_t id, Pending entry, const std::string& reason) {
  (void)id;
  serve::ServeResponse resp;
  resp.id = entry.original_id.as_int();
  resp.status = serve::ResponseStatus::kRejected;
  resp.retry_after_ms = config_.retry_after_ms;
  resp.error = reason;
  entry.emit(resp.to_line());
  rejected_.fetch_add(1, std::memory_order_relaxed);
  responses_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::instance().counter("router.rejected").add();
}

void Router::maintenance_loop() {
  for (;;) {
    std::vector<std::size_t> downed;
    {
      std::unique_lock lock(events_mutex_);
      events_wake_.wait_for(lock, std::chrono::milliseconds(50),
                            [&] { return stopping_ || !down_events_.empty(); });
      if (stopping_) return;
      downed.assign(down_events_.begin(), down_events_.end());
      down_events_.clear();
    }

    // Re-home everything in flight on a dead link, and everything whose
    // per-attempt deadline passed (a hung-but-connected shard looks exactly
    // like a slow one; the timeout is the only tell).
    std::vector<std::uint64_t> redispatch;
    const auto now = Clock::now();
    {
      std::lock_guard lock(pending_mutex_);
      for (const auto& [id, entry] : pending_) {
        const bool on_dead_link =
            std::find(downed.begin(), downed.end(), entry.shard) != downed.end();
        if (on_dead_link || now >= entry.deadline) redispatch.push_back(id);
      }
    }
    for (const std::uint64_t id : redispatch) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      failovers_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::instance().counter("router.failovers").add();
      dispatch(id);
    }
  }
}

void Router::stop() {
  {
    std::lock_guard lock(events_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  events_wake_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();
  prober_->stop();

  for (const auto& link : links_) {
    {
      std::lock_guard lock(link->mutex);
      mark_link_down(*link);
    }
    if (link->reader.joinable()) link->reader.join();
    std::lock_guard lock(link->mutex);
    if (link->fd >= 0) {
      ::close(link->fd);
      link->fd = -1;
    }
  }

  // Nobody is left to answer; reject the stragglers so no client hangs.
  std::unordered_map<std::uint64_t, Pending> leftover;
  {
    std::lock_guard lock(pending_mutex_);
    leftover.swap(pending_);
  }
  for (auto& [id, entry] : leftover)
    reject(id, std::move(entry), "router shutting down");
}

obs::Json Router::admin_in_band(std::string_view what) {
  obs::Json doc = obs::Json::object();
  doc.set("admin", obs::Json(std::string(what)));
  if (what == "metrics") {
    doc.set("body", obs::Json(merged_metrics()));
  } else if (what == "healthz") {
    doc.set("status", obs::Json("ok"));
    doc.set("healthy", obs::Json(true));
  } else if (what == "readyz") {
    const bool ready = prober_->ready_count() > 0;
    doc.set("status", obs::Json(ready ? "ok" : "no shard ready"));
    doc.set("ready", obs::Json(ready));
  } else if (what == "statz") {
    doc.set("stats", stats_json());
  } else {
    doc.set("error",
            obs::Json("unknown admin command (metrics | healthz | readyz | statz)"));
  }
  return doc;
}

std::string Router::merged_metrics() {
  std::vector<ShardText> scrapes;
  for (const auto& link : links_) {
    if (link->address.admin.port == 0) continue;
    if (std::optional<std::string> body =
            http_get_body(link->address.admin, "/metrics", config_.connect_timeout_ms))
      scrapes.emplace_back(link->address.name, std::move(*body));
  }
  // Router-local metrics first (router.* counters, plus whatever else this
  // process records), then the cross-shard merge.
  return obs::render_prometheus() + merge_prometheus(scrapes);
}

obs::Json Router::aggregated_statz() {
  std::vector<ShardJson> stats;
  for (const auto& link : links_) {
    if (link->address.admin.port == 0) continue;
    if (const std::optional<std::string> body = http_get_body(
            link->address.admin, "/statz", config_.connect_timeout_ms)) {
      if (std::optional<obs::Json> doc = obs::Json::parse(*body))
        stats.emplace_back(link->address.name, std::move(*doc));
    }
  }
  return aggregate_statz(stats);
}

obs::Json Router::stats_json() {
  obs::Json doc = obs::Json::object();
  obs::Json router = obs::Json::object();
  router.set("shards", obs::Json(static_cast<std::uint64_t>(links_.size())));
  router.set("requests", obs::Json(requests_.load(std::memory_order_relaxed)));
  router.set("responses", obs::Json(responses_.load(std::memory_order_relaxed)));
  router.set("failovers", obs::Json(failovers_.load(std::memory_order_relaxed)));
  router.set("rejected", obs::Json(rejected_.load(std::memory_order_relaxed)));
  router.set("late_drops", obs::Json(late_drops_.load(std::memory_order_relaxed)));
  router.set("attempt_timeouts", obs::Json(timeouts_.load(std::memory_order_relaxed)));
  {
    std::lock_guard lock(pending_mutex_);
    router.set("pending", obs::Json(static_cast<std::uint64_t>(pending_.size())));
  }
  obs::Json per_link = obs::Json::object();
  for (const auto& link : links_) {
    obs::Json entry = obs::Json::object();
    {
      std::lock_guard lock(link->mutex);
      entry.set("connected", obs::Json(link->connected));
    }
    entry.set("ready", obs::Json(prober_->ready(link->address.name)));
    entry.set("forwarded", obs::Json(link->forwarded.load(std::memory_order_relaxed)));
    entry.set("answered", obs::Json(link->answered.load(std::memory_order_relaxed)));
    per_link.set(link->address.name, std::move(entry));
  }
  router.set("links", std::move(per_link));
  router.set("probes", prober_->status_json());
  doc.set("router", std::move(router));
  doc.set("fleet", aggregated_statz());
  return doc;
}

serve::HttpReply Router::admin_http(const std::string& path) {
  if (path == "/metrics")
    return serve::HttpReply{200, "text/plain; version=0.0.4", merged_metrics()};
  if (path == "/healthz") return serve::HttpReply{200, "text/plain", "ok\n"};
  if (path == "/readyz") {
    const bool ready = prober_->ready_count() > 0;
    return serve::HttpReply{ready ? 200 : 503, "text/plain",
                            ready ? "ok\n" : "no shard ready\n"};
  }
  if (path == "/statz")
    return serve::HttpReply{200, "application/json", stats_json().dump(2) + "\n"};
  return serve::HttpReply{404, "text/plain",
                          "routes: /metrics /healthz /readyz /statz\n"};
}

}  // namespace srna::dist
