// The consistent-hash request router: the client-facing front of the
// distributed serving tier.
//
// Clients speak the exact serve JSON-lines protocol to the router; shards
// are plain srna-serve processes that never learn they are behind one. Per
// request the router:
//
//   1. computes a routing key — the canonical structure-pair digest
//      (rna/structure_hash.hpp) when the literal pair parses locally, an
//      FNV-1a fallback over the raw request fields otherwise (db-name pairs,
//      malformed dot-brackets: the request is still forwarded so the owning
//      shard produces the same error bytes direct serving would);
//   2. looks up the owner + replicas on the hash ring (dist/hash_ring.hpp);
//   3. rewrites the request's "id" to a router-internal correlation id,
//      records a Pending entry, and forwards the line over the owner's
//      persistent TCP link (lazily connected, one reader thread per link);
//   4. on the shard's response line, swaps the original id back in and
//      emits to the client. Both directions reserialize through obs::Json,
//      the same writer the shards use, so routed bytes equal direct bytes.
//
// Failover: a dead link (connection reset) or a per-attempt timeout
// re-dispatches the request to the next distinct replica on the ring, up to
// `max_attempts`; exhaustion answers an explicit retryable "rejected"
// response with a retry_after_ms hint. The Pending map is the single source
// of truth — erasing an entry is the one claim point, so every accepted
// request gets exactly one response: the first shard answer wins, late
// duplicates from timed-out attempts find no entry and are dropped, and
// shutdown rejects whatever is left. A health prober (dist/health.hpp)
// polls each shard's /readyz so new dispatches skip draining or warming
// shards; in-flight requests on a draining shard are NOT failed over — a
// draining srna-serve still answers everything it accepted.
//
// The admin plane (serve::AdminServer with a router handler) aggregates the
// topology: /metrics merges shard scrapes per dist/aggregate.hpp on top of
// the router's own counters, /statz nests per-shard stats under fleet
// totals, /readyz is 200 while at least one shard is ready.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dist/hash_ring.hpp"
#include "dist/health.hpp"
#include "dist/net.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "serve/admin.hpp"
#include "serve/server.hpp"

namespace srna::dist {

struct ShardAddress {
  std::string name;
  Endpoint data;   // the shard's JSON-lines listener
  Endpoint admin;  // the shard's admin plane; port 0 = none (no probe, no scrape)
};

struct RouterConfig {
  std::vector<ShardAddress> shards;
  int replicas = 2;    // owner + failover candidates consulted per request
  int vnodes = 128;    // hash-ring virtual nodes per shard
  ProberConfig probe;
  // Per-attempt response budget. Set it above the slowest expected solve:
  // a timeout re-dispatches to a replica, and while duplicate solves are
  // harmless (first answer wins, MCOS is pure), they waste shard time.
  double request_timeout_ms = 10000;
  int max_attempts = 3;  // total dispatch attempts before rejecting
  int connect_timeout_ms = 1000;
  double retry_after_ms = 50;  // backoff hint on router-side rejections
  // The router's own flight recorder (obs/flight.hpp): every routed request
  // leaves a record; failovers and rejection bursts are its anomalies.
  obs::FlightConfig flight;
};

class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();  // stop()

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // The serve::TcpServer::LineHandler — wire this as the data-plane
  // listener's handler. In-band `{"admin": ...}` lines are answered with the
  // aggregated views, mirroring single-process serving.
  void handle_line(const std::string& line, const serve::TcpServer::EmitLine& emit);

  // The serve::AdminServer::HttpHandler for the router's admin plane.
  [[nodiscard]] serve::HttpReply admin_http(const std::string& path);

  [[nodiscard]] obs::Json stats_json();

  // Routing key + replica set for one request line; exposed for tests and
  // the shardctl "where does this pair go" command.
  [[nodiscard]] std::vector<std::string> route_of(const std::string& line) const;

  // The router's own flight recorder (the "router"-labelled slice of the
  // merged /flightz view).
  [[nodiscard]] const obs::FlightRecorder& flight() const noexcept { return flight_; }

  // Rejects every outstanding request, closes shard links, joins all
  // threads. Idempotent.
  void stop();

 private:
  struct Link {
    ShardAddress address;
    std::size_t index = 0;
    std::mutex mutex;  // guards fd / connected / reader lifecycle / writes
    int fd = -1;
    bool connected = false;
    std::thread reader;
    std::atomic<bool> reader_done{false};
    std::atomic<std::uint64_t> forwarded{0};
    std::atomic<std::uint64_t> answered{0};
  };

  struct Pending {
    obs::Json doc;          // request, "id" rewritten to the internal id
    obs::Json original_id;  // restored into the response before emit
    serve::TcpServer::EmitLine emit;
    std::vector<std::size_t> candidates;  // ring replica order, link indices
    std::size_t cursor = 0;               // next candidate to try
    int attempts_left = 0;
    std::size_t shard = static_cast<std::size_t>(-1);  // current in-flight link
    std::chrono::steady_clock::time_point deadline;
    // Correlation: the fleet-unique trace id stamped into the forwarded line
    // (the owning shard adopts it), plus what the hop spans and the flight
    // record need when the answer (or the failure) comes back.
    std::uint64_t trace_id = 0;
    bool trace = false;  // client asked for hop fields in the response
    std::string digest;  // canonical pair digest hex ("" = fallback key)
    std::chrono::steady_clock::time_point admitted;
    std::uint64_t admitted_us = 0;       // tracer clock at admission (0 = off)
    std::uint64_t attempt_start_us = 0;  // tracer clock at the live dispatch
    int attempts_used = 0;
    double first_dispatch_ms = -1;  // admission -> first dispatch (router_queued_ms)
  };

  [[nodiscard]] std::uint64_t routing_key(const serve::ServeRequest& request,
                                          bool* canonical = nullptr) const;
  void dispatch(std::uint64_t id);
  bool send_to_link(Link& link, const std::string& line);
  void read_loop(Link& link);
  void handle_shard_response(Link& link, const std::string& line);
  void mark_link_down(Link& link);
  void maintenance_loop();
  void reject(std::uint64_t id, Pending entry, const std::string& reason);
  [[nodiscard]] obs::Json admin_in_band(std::string_view what);
  [[nodiscard]] std::string merged_metrics();
  [[nodiscard]] obs::Json aggregated_statz();
  [[nodiscard]] obs::Json merged_flightz();
  [[nodiscard]] std::uint64_t mint_trace_id() noexcept;

  RouterConfig config_;
  HashRing ring_;
  std::vector<std::unique_ptr<Link>> links_;
  std::unique_ptr<HealthProber> prober_;

  std::mutex pending_mutex_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::atomic<std::uint64_t> next_id_{1};

  obs::FlightRecorder flight_;
  // Fleet-unique trace ids: a per-process random 12-bit salt (top bit forced
  // on) in bits 40..51 over a 40-bit counter — ids land in [2^51, 2^52), so
  // they survive even a double round-trip in external JSON tooling exactly.
  std::uint64_t trace_salt_ = 0;
  std::atomic<std::uint64_t> next_trace_{1};

  std::mutex events_mutex_;
  std::condition_variable events_wake_;
  std::deque<std::size_t> down_events_;  // link indices whose connection died
  bool stopping_ = false;  // guarded by events_mutex_
  std::thread maintenance_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> late_drops_{0};
  std::atomic<std::uint64_t> timeouts_{0};
};

}  // namespace srna::dist
