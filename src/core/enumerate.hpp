// Enumeration of *all* optimal witnesses.
//
// The traceback (traceback.hpp) returns one maximum common ordered
// substructure; ties are everywhere in structure comparison (symmetric
// stems, repeated motifs), and downstream analyses often want the full set
// of co-optimal matchings — e.g. to ask which arc pairs are matched in
// *every* optimum (persistent matches) versus just in some.
//
// Same machinery as the traceback — re-tabulate a slice from the retained
// memo table, walk its decision structure — but exploring every decision
// that reproduces the optimal cell value, with the resulting match sets
// deduplicated (distinct DP paths frequently yield the same set).
#pragma once

#include <vector>

#include "core/options.hpp"
#include "core/traceback.hpp"
#include "rna/secondary_structure.hpp"

namespace srna {

struct EnumerationResult {
  Score value = 0;
  // Distinct optimal match sets; each sorted by (a1.left). Sorted
  // lexicographically overall for determinism.
  std::vector<std::vector<ArcMatch>> witnesses;
  // True when the enumeration stopped at `limit` — more witnesses exist.
  bool truncated = false;

  // Arc pairs present in every enumerated witness (the "persistent core");
  // meaningful only when truncated == false.
  [[nodiscard]] std::vector<ArcMatch> persistent_matches() const;
};

// Enumerates up to `limit` distinct optimal witnesses (limit >= 1).
EnumerationResult enumerate_optimal_matches(const SecondaryStructure& s1,
                                            const SecondaryStructure& s2, std::size_t limit,
                                            const McosOptions& options = {});

}  // namespace srna
