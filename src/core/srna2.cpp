// SRNA2 (paper Algorithms 2–3): the two-stage eager algorithm.
//
// Stage one walks every arc pair ((i1,j1), (i2,j2)) — S1 arcs outer, S2 arcs
// inner, both by increasing right endpoint — and tabulates the child slice
// under the pair, memoizing its final value at M(i1+1, i2+1). Because a
// slice's dynamic dependencies always involve an S1 arc with a strictly
// smaller right endpoint, every d2 lookup hits an entry memoized in an
// earlier outer iteration: the per-cell "have we memoized this yet?" branch
// and the recursion of SRNA1 disappear. Stage two tabulates the parent slice
// (0, n-1, 0, m-1) with lookup-only d2.
//
// The S2 (inner) loop order is immaterial for correctness — the fact PRNA
// exploits to tabulate the inner loop's slices in parallel.

#include "core/arc_index.hpp"
#include "core/detail.hpp"
#include "core/mcos.hpp"
#include "core/tabulate_slice.hpp"
#include "core/workspace.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace srna {

namespace detail {

Score run_srna2(const SecondaryStructure& s1, const SecondaryStructure& s2,
                const McosOptions& options, McosStats& stats, MemoTable& memo,
                Workspace& scratch) {
  SRNA_REQUIRE(s1.is_nonpseudoknot() && s2.is_nonpseudoknot(),
               "MCOS model requires non-pseudoknot structures");
  SRNA_REQUIRE(memo.rows() == s1.length() && memo.cols() == s2.length(),
               "memo table must be n x m");

  const bool dense = options.layout == SliceLayout::kDense;
  const bool validate = options.validate_memo;

  // Preprocessing: determine the arc endpoints / traversal order (ArcIndex)
  // and the memo table initialization.
  WallTimer phase;
  obs::TraceScope preprocess_span("srna2", "preprocess");
  memo.fill(validate ? MemoTable::kUnset : Score{0});
  const ArcIndex idx1(s1);
  const ArcIndex idx2(s2);
  // The event-run dense kernel's per-solve S2 column-event table, shared by
  // every stage-one slice and stage two (O(m) to build; reuses capacity).
  const ColumnEvents& col_events = scratch.column_events().build(s2);
  preprocess_span.close();
  stats.preprocess_seconds = phase.seconds();

  auto d2_lookup = [&](Pos k1, Pos /*x*/, Pos k2, Pos /*y*/) -> Score {
    const Score v = memo.get(k1 + 1, k2 + 1);
    if (validate)
      SRNA_CHECK(v != MemoTable::kUnset,
                 "SRNA2 ordering violated: d2 lookup missed the memo table");
    return v;
  };

  // Stage one: tabulate all child slices.
  phase.reset();
  obs::TraceScope stage1_span("srna2", "stage1");
  Matrix<Score>& dense_scratch = scratch.dense_grid(0);
  EventScratch& compressed_scratch = scratch.events(0);
  const SliceKernel kernel = scratch.slice_kernel(options.kernel, 0);
  std::uint64_t slices_started = 0;
  for (std::size_t a = 0; a < idx1.size(); ++a) {
    const Arc arc1 = idx1.arc(a);
    obs::TraceScope row_span("srna2", "row");
    if (row_span.active())
      row_span.set_args(obs::trace_args({{"row", static_cast<std::int64_t>(a)}}));
    for (std::size_t b = 0; b < idx2.size(); ++b) {
      // Slice boundary: one cancel poll per slice (never per row/cell).
      if (options.cancelled()) throw SolveCancelled();
      if (options.slice_hook) options.slice_hook(slices_started);
      ++slices_started;
      const Arc arc2 = idx2.arc(b);
      Score value;
      if (dense) {
        value = tabulate_slice_dense(
            s1, s2, col_events,
            SliceBounds::under(arc1.left, arc1.right, arc2.left, arc2.right),
            dense_scratch, kernel, d2_lookup, &stats);
      } else {
        value = tabulate_slice_compressed(idx1.interior(a), idx2.interior(b),
                                          compressed_scratch, d2_lookup, &stats);
      }
      memo.set(arc1.left + 1, arc2.left + 1, value);
    }
  }
  stage1_span.close();
  stats.stage1_seconds = phase.seconds();

  // Stage two: tabulate the parent slice.
  if (options.cancelled()) throw SolveCancelled();
  if (options.slice_hook) options.slice_hook(slices_started);
  phase.reset();
  obs::TraceScope stage2_span("srna2", "stage2");
  Score answer;
  if (dense) {
    answer = tabulate_slice_dense(s1, s2, col_events,
                                  SliceBounds{0, s1.length() - 1, 0, s2.length() - 1},
                                  dense_scratch, kernel, d2_lookup, &stats);
  } else {
    answer = tabulate_slice_compressed(idx1.all(), idx2.all(), compressed_scratch,
                                       d2_lookup, &stats);
  }
  stage2_span.close();
  stats.stage2_seconds = phase.seconds();
  return answer;
}

Score run_srna2(const SecondaryStructure& s1, const SecondaryStructure& s2,
                const McosOptions& options, McosStats& stats, MemoTable& memo) {
  return run_srna2(s1, s2, options, stats, memo, Workspace::local());
}

}  // namespace detail

McosResult srna2(const SecondaryStructure& s1, const SecondaryStructure& s2,
                 const McosOptions& options) {
  return srna2(s1, s2, options, Workspace::local());
}

McosResult srna2(const SecondaryStructure& s1, const SecondaryStructure& s2,
                 const McosOptions& options, Workspace& workspace) {
  McosResult result;
  // run_srna2 overwrites every memo cell it needs; the initial fill value is
  // re-applied there, so 0 here is just the re-shape.
  MemoTable& memo = workspace.memo(s1.length(), s2.length(), 0);
  result.value = detail::run_srna2(s1, s2, options, result.stats, memo, workspace);
  bridge_stats_to_metrics("srna2", result.stats);
  return result;
}

}  // namespace srna
