// Arc indexing for slice tabulation.
//
// Both SRNA algorithms traverse "arcs within an interval, by increasing
// right endpoint". For non-crossing arcs the sorted-by-right-endpoint order
// is exactly a post-order of the arc nesting forest, so the arcs strictly
// inside any arc form a contiguous range [interior_begin(a), index(a)) of
// that order. ArcIndex precomputes those ranges (this is the paper's
// preprocessing step of "determining all of the ending points of arcs") so
// every child slice can enumerate its arcs in O(1) per arc with no search.
#pragma once

#include <span>
#include <vector>

#include "rna/secondary_structure.hpp"

namespace srna {

class ArcIndex {
 public:
  static constexpr std::size_t kNoArc = static_cast<std::size_t>(-1);

  // Requires a non-pseudoknot structure (the contiguous-range property does
  // not hold across crossings).
  explicit ArcIndex(const SecondaryStructure& s);

  [[nodiscard]] std::size_t size() const noexcept { return arcs_.size(); }
  [[nodiscard]] const Arc& arc(std::size_t idx) const noexcept { return arcs_[idx]; }

  // All arcs, sorted by increasing right endpoint.
  [[nodiscard]] std::span<const Arc> all() const noexcept { return arcs_; }

  // Arcs strictly inside arc `idx` (the rows/columns of the child slice that
  // arc spawns), sorted by increasing right endpoint.
  [[nodiscard]] std::span<const Arc> interior(std::size_t idx) const noexcept {
    return std::span<const Arc>(arcs_).subspan(interior_begin_[idx],
                                               idx - interior_begin_[idx]);
  }

  [[nodiscard]] std::size_t interior_begin(std::size_t idx) const noexcept {
    return interior_begin_[idx];
  }

  // Index of the arc whose right endpoint is `right`, or kNoArc.
  [[nodiscard]] std::size_t index_of_right(Pos right) const noexcept {
    return by_right_[static_cast<std::size_t>(right)];
  }

 private:
  std::vector<Arc> arcs_;                 // sorted by right endpoint
  std::vector<std::size_t> interior_begin_;
  std::vector<std::size_t> by_right_;     // position -> arc index or kNoArc
};

}  // namespace srna
