// Options shared by the MCOS solvers.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace srna {

// Thrown by a solver that observed its cancel flag (see McosOptions::cancel)
// between slices. The partially tabulated state lives entirely in the
// workspace, which the next solve re-shapes, so a cancelled solve leaves no
// torn results behind — callers (the serve subsystem's deadline path) map
// this to a timeout response.
class SolveCancelled : public std::runtime_error {
 public:
  SolveCancelled() : std::runtime_error("MCOS solve cancelled") {}
};

// How a child/parent slice is laid out during tabulation.
//
// kDense is the paper-faithful layout: the slice is a full
// (width × height) grid and every cell is tabulated — the cost model in the
// paper (and the counts in Figure 7) measure exactly these cells.
//
// kCompressed exploits the fact that F only changes at arc right-endpoint
// pairs ("events"): the slice stores one cell per event pair and resolves
// arbitrary coordinates to the last event at or before them. Asymptotically
// identical for the contrived worst case, substantially cheaper for sparse
// structures (ablation: bench/ablation_slice_layout).
enum class SliceLayout : std::uint8_t { kDense, kCompressed };

// Memo-table representation used by SRNA1's lazy lookups.
//
// The paper's Algorithm 1 phrases the probe as "if d2 is KEY_NOT_FOUND" —
// associative-lookup semantics. kArray is the Θ(nm) dense table with an
// unset sentinel (cheapest possible probe); kHashMap memoizes into a hash
// map keyed by the (i1, i2) pair, reproducing the associative-container
// overhead SRNA2 was designed to eliminate (ablation:
// bench/ablation_memoization).
enum class MemoKind : std::uint8_t { kArray, kHashMap };

// Which dense slice kernel evaluates the event rows (DESIGN.md §4.5).
//
// All variants are bit-identical to fill_slice_dense_reference (pinned by
// tests/core/kernel_equivalence_test.cpp); they differ only in how the
// run-max reduction and the per-event memo gather are scheduled:
//
//   kEventRun      the PR 4 kernel: one scalar max-chain cell per event plus
//                  constant fills between events.
//   kSimd          batched event evaluation: per-slice precomputed event
//                  columns, a gather/candidate pass with no loop-carried
//                  dependency, then a vectorized inclusive prefix-max scan
//                  (AVX2 / SSE2 at compile time; a bit-identical scalar
//                  instantiation of the same blocked code path under
//                  -DSRNA_DISABLE_SIMD, which is the only path sanitizer
//                  builds compile).
//   kFourRussians  Four-Russians-style block evaluation: per-event deltas
//                  against the running row maximum are clamped into 3-bit
//                  codes, four events pack into a 12-bit word, and one
//                  lookup in a precomputed 4096-entry table (pooled in
//                  Workspace) replaces the block's max chain. Blocks whose
//                  deltas exceed the DP delta bound (possible only under
//                  synthetic d2 oracles) fall back to the scalar chain, so
//                  the variant stays exact for arbitrary oracles.
//   kAuto          resolve to the best variant for this build (kSimd).
//
// The compressed layout has no event runs to batch; it ignores the variant.
enum class KernelVariant : std::uint8_t { kAuto, kEventRun, kSimd, kFourRussians };

[[nodiscard]] constexpr const char* kernel_variant_name(KernelVariant v) noexcept {
  switch (v) {
    case KernelVariant::kEventRun: return "event-run";
    case KernelVariant::kSimd: return "simd";
    case KernelVariant::kFourRussians: return "four-russians";
    case KernelVariant::kAuto: break;
  }
  return "auto";
}

// Parses the CLI spelling (the names kernel_variant_name returns). Throws
// std::invalid_argument listing the choices on anything else.
[[nodiscard]] inline KernelVariant parse_kernel_variant(const std::string& name) {
  if (name.empty() || name == "auto") return KernelVariant::kAuto;
  if (name == "event-run") return KernelVariant::kEventRun;
  if (name == "simd") return KernelVariant::kSimd;
  if (name == "four-russians") return KernelVariant::kFourRussians;
  throw std::invalid_argument("unknown kernel variant '" + name +
                              "' (choices: auto, event-run, simd, four-russians)");
}

struct McosOptions {
  SliceLayout layout = SliceLayout::kDense;

  // Dense-layout slice kernel variant (see KernelVariant). kAuto picks the
  // best variant for this build; every choice is bit-identical.
  KernelVariant kernel = KernelVariant::kAuto;

  // SRNA1 only: memo-table representation (see MemoKind).
  MemoKind memo_kind = MemoKind::kArray;

  // SRNA1 only: memoize child-slice results (the algorithm as published).
  // Disabling turns SRNA1 into the naive "spawn again and again" variant the
  // paper calls out as "not dynamic programming at all" — exponential
  // redundant work; exposed for the memoization ablation.
  bool memoize = true;

  // Safety valve for the memoize=false ablation: abort (throws
  // std::runtime_error) once this many slices have been spawned. 0 disables
  // the limit.
  std::uint64_t spawn_limit = 0;

  // SRNA2/PRNA only: initialize the memo table with the "unset" sentinel and
  // verify that every stage-one/stage-two d2 lookup hits an explicitly
  // tabulated entry (the ordering guarantee the algorithm rests on). Costs
  // one compare per lookup — the exact overhead SRNA2 exists to remove — so
  // it is off by default and used by the test suite.
  bool validate_memo = false;

  // Cooperative cancellation (SRNA1/SRNA2): when non-null, the solver polls
  // this flag at slice boundaries — one relaxed load per slice, never per
  // cell — and throws SolveCancelled once it reads true. This is how the
  // serve subsystem enforces per-request deadlines without tearing a result:
  // the flag's owner (a deadline monitor thread) flips it, the worker
  // unwinds at the next slice, and the workspace is reusable as-is.
  const std::atomic<bool>* cancel = nullptr;

  // True when the owner of `cancel` has requested a stop.
  [[nodiscard]] bool cancelled() const noexcept {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }

  // Test seam (SRNA1/SRNA2): invoked at each slice boundary, after the cancel
  // poll and before the slice tabulates, with the number of slices already
  // started. Lets tests flip `cancel` at an exact slice and assert the solver
  // unwinds within one slice. Never set on hot production paths.
  std::function<void(std::uint64_t)> slice_hook;
};

}  // namespace srna
