// TabulateSlice — the bottom-up kernel shared by SRNA1, SRNA2, PRNA and the
// traceback (paper Algorithm 2).
//
// A slice is the two-dimensional restriction of the 4-D table to fixed
// beginning positions (lo1, lo2):
//
//     slice[x][y] = F(lo1, x, lo2, y),   lo1 <= x <= hi1, lo2 <= y <= hi2.
//
// Inside a slice the recurrence needs
//     s1 = slice[x-1][y],  s2 = slice[x][y-1],  d1 = slice[k1-1][k2-1]
// and the one cross-slice term d2 = F(k1+1, x-1, k2+1, y-1), which the
// caller supplies through the `d2_of(k1, x, k2, y)` callable — a memo-table
// read for SRNA2/PRNA, a memoize-on-miss recursive spawn for SRNA1.
//
// Two layouts (DESIGN.md §4.4):
//   * dense      — tabulates every cell of the grid; paper-faithful, and the
//                  cell count is the paper's work measure (Figure 7).
//   * compressed — one cell per (arc-right-endpoint, arc-right-endpoint)
//                  event pair, exploiting that F only changes at events.
//
// The dense fill is an *event-run* kernel: the column positions where the
// dynamic case can fire (S2 arc right endpoints) are precomputed once per
// solve into a ColumnEvents table, and each row decomposes into arc-match
// cells at the events plus constant fills between them — F is provably
// constant between events, and a row where no S1 arc ends is a verbatim
// copy of the row above. Same cells, same stats, no per-cell partner probe
// or load. The pre-event-run per-cell loop is retained as
// fill_slice_dense_reference for the equivalence property test and the
// perf-regression gate (bench/micro_kernels --smoke).
//
// Both return the slice's final value F(lo1, hi1, lo2, hi2) — the only value
// the memo table M retains ("only the last tabulated subproblem of each
// child slice needs to be memoized").
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/result.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rna/secondary_structure.hpp"
#include "util/matrix.hpp"

namespace srna {

namespace detail {

// Per-cell instrumentation is off the table (the cell loop IS the paper's
// cost model), so slices are traced *sampled*: when tracing is on, one slice
// in 64 per thread gets a span and a latency-histogram observation. When
// tracing is off this is a single relaxed atomic load per slice.
inline bool slice_trace_sample() noexcept {
  if (!obs::Tracer::instance().enabled()) return false;
  thread_local std::uint32_t n = 0;
  return (n++ & 63U) == 0;
}

inline obs::Histogram& sampled_slice_histogram() {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("slice.sampled_seconds");
  return hist;
}

}  // namespace detail

struct SliceBounds {
  Pos lo1 = 0, hi1 = -1, lo2 = 0, hi2 = -1;

  [[nodiscard]] bool empty() const noexcept { return hi1 < lo1 || hi2 < lo2; }
  [[nodiscard]] Pos width() const noexcept { return hi1 - lo1 + 1; }   // rows
  [[nodiscard]] Pos height() const noexcept { return hi2 - lo2 + 1; }  // cols

  // The child slice spawned by matching arcs (k1, x) and (k2, y): the
  // intervals strictly underneath the two arcs.
  static SliceBounds under(Pos k1, Pos x, Pos k2, Pos y) noexcept {
    return SliceBounds{k1 + 1, x - 1, k2 + 1, y - 1};
  }
};

// The column-event table of S2: every position y that is an arc right
// endpoint, paired with its left endpoint k, sorted by y, plus an O(1)
// position → first-event index so a slice restriction is two array reads.
// F is constant between these events (DESIGN.md §1), so inside a slice row
// the dynamic case can only fire at them — the fact the event-run dense
// kernel below exploits. Built once per solve (pooled in Workspace;
// rebuilding reuses capacity) and shared read-only by every slice of that
// solve, including PRNA's stage-one workers.
struct ColumnEvents {
  struct Event {
    Pos y;  // arc right endpoint (the event column)
    Pos k;  // matching left endpoint: (k, y) is an arc of S2
  };
  std::vector<Event> events;            // sorted by y
  std::vector<std::uint32_t> first_at;  // size m+1: index of first event with y >= pos

  ColumnEvents& build(const SecondaryStructure& s2) {
    const auto m = static_cast<std::size_t>(s2.length());
    events.clear();
    first_at.resize(m + 1);
    for (std::size_t y = 0; y < m; ++y) {
      first_at[y] = static_cast<std::uint32_t>(events.size());
      const Pos k = s2.arc_left_of(static_cast<Pos>(y));
      if (k >= 0) events.push_back(Event{static_cast<Pos>(y), k});
    }
    first_at[m] = static_cast<std::uint32_t>(events.size());
    return *this;
  }

  // Events with y in [lo, hi] — the columns of a slice restricted to
  // [lo, hi]. Requires 0 <= lo <= hi < m.
  [[nodiscard]] std::span<const Event> in_range(Pos lo, Pos hi) const noexcept {
    const auto begin = first_at[static_cast<std::size_t>(lo)];
    const auto end = first_at[static_cast<std::size_t>(hi) + 1];
    return std::span<const Event>(events).subspan(begin, end - begin);
  }

  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return events.capacity() * sizeof(Event) + first_at.capacity() * sizeof(std::uint32_t);
  }
};


// Fills `grid` (resized to width × height) with the dense slice:
// grid(x - lo1, y - lo2) = F(lo1, x, lo2, y). Used directly by the traceback,
// which needs the whole grid, and by tabulate_slice_dense below.
// No-op for empty bounds.
//
// `col_events` must be ColumnEvents::build(s2) — computed once per solve by
// the callers, not here, so tabulating a slice costs nothing beyond its own
// cells.
template <typename D2>
void fill_slice_dense(const SecondaryStructure& s1, const SecondaryStructure& /*s2*/,
                      const ColumnEvents& col_events, SliceBounds b, Matrix<Score>& grid,
                      D2&& d2_of, McosStats* stats = nullptr) {
  if (b.empty()) {
    grid.resize(0, 0);
    return;
  }
  const auto rows = static_cast<std::size_t>(b.width());
  const auto cols = static_cast<std::size_t>(b.height());
  grid.resize(rows, cols, 0);

  if (stats != nullptr) {
    ++stats->slices_tabulated;
    stats->cells_tabulated += static_cast<std::uint64_t>(rows) * cols;
  }

  const std::span<const ColumnEvents::Event> events = col_events.in_range(b.lo2, b.hi2);

  // Two facts of the max-recurrence, independent of the d2 oracle, carry the
  // whole kernel (DESIGN.md §4.4):
  //   * a row where no S1 arc ends is a verbatim copy of the row above
  //     (position x is unusable, and rows are left-to-right monotone), and
  //   * within any row, F is constant between S2 events — the dynamic case
  //     fires only at event columns, and between them both `up` and `left`
  //     are frozen.
  // So arc rows touch one `up` cell per event plus one per run (a constant
  // std::fill), and arc-free rows are a single copy. Cell and arc-event
  // accounting stay identical to the per-cell reference: every cell is still
  // written, and the dynamic case is evaluated for exactly the same
  // (row, column) pairs.
  for (Pos x = b.lo1; x <= b.hi1; ++x) {
    const auto r = static_cast<std::size_t>(x - b.lo1);
    Score* row = grid.row_data(r);

    // Arc of S1 ending at x, if its left endpoint is inside the slice. The
    // first row never qualifies (k1 >= lo1 needs x > lo1), so arc rows
    // always have a row above.
    const Pos k1 = s1.arc_left_of(x);
    if (k1 < b.lo1) {
      if (r == 0) {
        std::fill(row, row + cols, Score{0});
      } else {
        const Score* up = grid.row_data(r - 1);
        std::copy(up, up + cols, row);
      }
      continue;
    }

    const Score* up = grid.row_data(r - 1);
    const Score* d1_row =
        k1 - 1 >= b.lo1 ? grid.row_data(static_cast<std::size_t>(k1 - 1 - b.lo1)) : nullptr;
    const Pos lo2 = b.lo2;

    // Event-free runs are constant: up[] is frozen across a run (the row
    // above is also constant between events), and after an event the event
    // cell's value already dominates it (v >= up[event]), so only the run
    // before the *first* event reads up[] at all. One fill per run.
    Score left = 0;  // slice[x][y-1], carried across the row
    std::size_t c = 0;
    std::uint64_t row_arc_events = 0;
    if (lo2 == 0 && d1_row != nullptr) {
      // Root-anchored slice: every event qualifies (e.k >= 0 == lo2), so the
      // qualify branch and the d1_row null check drop out of the hot loop.
      row_arc_events = events.size();
      for (const ColumnEvents::Event& e : events) {
        const auto ce = static_cast<std::size_t>(e.y);
        if (ce > c) {
          if (c == 0) left = up[0];
          std::fill(row + c, row + ce, left);
        }
        Score v = std::max(up[ce], left);
        const Score d1 = e.k >= 1 ? d1_row[static_cast<std::size_t>(e.k - 1)] : 0;
        const Score d2 = d2_of(k1, x, e.k, e.y);
        v = std::max(v, static_cast<Score>(1 + d1 + d2));
        row[ce] = v;
        left = v;
        c = ce + 1;
      }
    } else {
      for (const ColumnEvents::Event& e : events) {
        const auto ce = static_cast<std::size_t>(e.y - lo2);
        if (ce > c) {
          if (c == 0) left = up[0];
          std::fill(row + c, row + ce, left);
        }
        // The event cell: the one column in [c, ce] where an S2 arc ends.
        Score v = std::max(up[ce], left);
        if (e.k >= lo2) {
          const Score d1 = (d1_row != nullptr && e.k - 1 >= lo2)
                               ? d1_row[static_cast<std::size_t>(e.k - 1 - lo2)]
                               : 0;
          const Score d2 = d2_of(k1, x, e.k, e.y);
          v = std::max(v, static_cast<Score>(1 + d1 + d2));
          ++row_arc_events;
        }
        row[ce] = v;
        left = v;
        c = ce + 1;
      }
    }
    if (c < cols) {
      if (c == 0) left = up[0];
      std::fill(row + c, row + cols, left);
    }
    if (stats != nullptr) stats->arc_match_events += row_arc_events;
  }
}

// Convenience overload building the column events locally: for the few-slice
// callers (traceback re-tabulation, enumeration, tests). The per-slice
// solvers pass a prebuilt table instead — never use this form in a loop over
// slices.
template <typename D2>
void fill_slice_dense(const SecondaryStructure& s1, const SecondaryStructure& s2,
                      SliceBounds b, Matrix<Score>& grid, D2&& d2_of,
                      McosStats* stats = nullptr) {
  ColumnEvents col_events;
  col_events.build(s2);
  fill_slice_dense(s1, s2, col_events, b, grid, static_cast<D2&&>(d2_of), stats);
}

// The pre-event-run dense fill: one partner probe and one arc branch per
// cell. Kept (not as a fast path) so the randomized equivalence test and the
// micro_kernels perf gate can pin the event-run kernel against the exact
// loop the paper's cost model describes.
template <typename D2>
void fill_slice_dense_reference(const SecondaryStructure& s1, const SecondaryStructure& s2,
                                SliceBounds b, Matrix<Score>& grid, D2&& d2_of,
                                McosStats* stats = nullptr) {
  if (b.empty()) {
    grid.resize(0, 0);
    return;
  }
  const auto rows = static_cast<std::size_t>(b.width());
  const auto cols = static_cast<std::size_t>(b.height());
  grid.resize(rows, cols, 0);

  if (stats != nullptr) {
    ++stats->slices_tabulated;
    stats->cells_tabulated += static_cast<std::uint64_t>(rows) * cols;
  }

  for (Pos x = b.lo1; x <= b.hi1; ++x) {
    const auto r = static_cast<std::size_t>(x - b.lo1);
    Score* row = grid.row_data(r);
    const Score* up = r > 0 ? grid.row_data(r - 1) : nullptr;

    // Arc of S1 ending at x, if its left endpoint is inside the slice.
    const Pos k1 = s1.arc_left_of(x);
    const bool has_arc1 = k1 >= b.lo1;
    const Score* d1_row =
        has_arc1 && k1 - 1 >= b.lo1 ? grid.row_data(static_cast<std::size_t>(k1 - 1 - b.lo1))
                                    : nullptr;

    Score left = 0;  // slice[x][y-1], carried across the row
    for (Pos y = b.lo2; y <= b.hi2; ++y) {
      const auto c = static_cast<std::size_t>(y - b.lo2);
      Score v = up != nullptr ? std::max(up[c], left) : left;
      if (has_arc1) {
        const Pos k2 = s2.arc_left_of(y);
        if (k2 >= b.lo2) {
          const Score d1 =
              (d1_row != nullptr && k2 - 1 >= b.lo2)
                  ? d1_row[static_cast<std::size_t>(k2 - 1 - b.lo2)]
                  : 0;
          const Score d2 = d2_of(k1, x, k2, y);
          v = std::max(v, static_cast<Score>(1 + d1 + d2));
          if (stats != nullptr) ++stats->arc_match_events;
        }
      }
      row[c] = v;
      left = v;
    }
  }
}

// Dense TabulateSlice: fills into `scratch` (reused across calls — the
// paper's per-call allocate/deallocate without the allocator churn) and
// returns the final value. `col_events` is the per-solve ColumnEvents table.
template <typename D2>
Score tabulate_slice_dense(const SecondaryStructure& s1, const SecondaryStructure& s2,
                           const ColumnEvents& col_events, SliceBounds b,
                           Matrix<Score>& scratch, D2&& d2_of, McosStats* stats = nullptr) {
  if (b.empty()) {
    // An empty slice (hairpin interior) still counts as one tabulated slice:
    // SRNA2's stage one visits it and memoizes 0.
    if (stats != nullptr) ++stats->slices_tabulated;
    return 0;
  }
  obs::TraceScope span("slice", "tabulate_dense", detail::slice_trace_sample());
  if (span.active())
    span.set_args(obs::trace_args({{"rows", b.width()}, {"cols", b.height()}}));
  fill_slice_dense(s1, s2, col_events, b, scratch, static_cast<D2&&>(d2_of), stats);
  if (span.active()) {
    const std::uint64_t elapsed = obs::Tracer::instance().now_us() - span.start_us();
    detail::sampled_slice_histogram().observe(static_cast<double>(elapsed) * 1e-6);
  }
  return scratch(static_cast<std::size_t>(b.width()) - 1,
                 static_cast<std::size_t>(b.height()) - 1);
}

// Convenience overload building the column events locally (few-slice callers
// and tests only; see fill_slice_dense).
template <typename D2>
Score tabulate_slice_dense(const SecondaryStructure& s1, const SecondaryStructure& s2,
                           SliceBounds b, Matrix<Score>& scratch, D2&& d2_of,
                           McosStats* stats = nullptr) {
  ColumnEvents col_events;
  col_events.build(s2);
  return tabulate_slice_dense(s1, s2, col_events, b, scratch, static_cast<D2&&>(d2_of),
                              stats);
}

// Reusable buffers for the compressed (event-grid) layout: one value cell
// per (arc-right-endpoint, arc-right-endpoint) event pair plus the resolved
// d1 predecessor indices. Pooled inside Workspace so repeated solves reuse
// the allocations.
struct EventScratch {
  Matrix<Score> val;                    // one cell per (row arc, col arc)
  std::vector<std::size_t> prev_row;    // per row arc: last row with right < left(arc)
  std::vector<std::size_t> prev_col;    // per col arc: last col with right < left(arc)
  std::vector<std::size_t> stack;       // nesting stack for the prev_* scans
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  // Reserved backing bytes — feeds the engine.workspace_alloc_bytes accounting.
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return val.flat().capacity() * sizeof(Score) +
           (prev_row.capacity() + prev_col.capacity() + stack.capacity()) *
               sizeof(std::size_t);
  }
};

namespace detail {

// prev[i]: the index of the last arc a' (in `arcs`, sorted by right
// endpoint) with right(a') < left(arcs[i]) — the predecessor a d1 lookup
// resolves to — or EventScratch::kNone. Sorted-by-right order is a
// post-order of the nesting forest, so one pass with a nesting stack
// resolves every arc in amortized O(1): the stack holds the already-seen
// arcs not nested inside any later-seen arc; popping the arcs nested inside
// arcs[i] (left endpoint greater than ours — non-crossing makes that the
// containment test) leaves exactly the latest arc entirely left of arcs[i]
// on top. Every arc is pushed and popped once: O(n) total, replacing the
// per-arc binary search this used to do.
inline void fill_prev_indices(std::span<const Arc> arcs, std::vector<std::size_t>& prev,
                              std::vector<std::size_t>& stack) {
  const std::size_t n = arcs.size();
  prev.resize(n);
  stack.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const Pos left = arcs[i].left;
    while (!stack.empty() && arcs[stack.back()].left > left) stack.pop_back();
    prev[i] = stack.empty() ? EventScratch::kNone : stack.back();
    stack.push_back(i);
  }
}

}  // namespace detail

// Compressed TabulateSlice over the event grid. `rows` / `cols` are the arcs
// fully inside the slice's two intervals, sorted by right endpoint (use
// ArcIndex::interior / ArcIndex::all). Returns F(lo1, hi1, lo2, hi2).
template <typename D2>
Score tabulate_slice_compressed(std::span<const Arc> rows, std::span<const Arc> cols,
                                EventScratch& scratch, D2&& d2_of,
                                McosStats* stats = nullptr) {
  const std::size_t nr = rows.size();
  const std::size_t nc = cols.size();
  if (stats != nullptr) {
    ++stats->slices_tabulated;
    stats->cells_tabulated += static_cast<std::uint64_t>(nr) * nc;
    stats->arc_match_events += static_cast<std::uint64_t>(nr) * nc;
  }
  if (nr == 0 || nc == 0) return 0;

  obs::TraceScope span("slice", "tabulate_compressed", detail::slice_trace_sample());
  if (span.active())
    span.set_args(obs::trace_args({{"rows", static_cast<std::int64_t>(nr)},
                                   {"cols", static_cast<std::int64_t>(nc)}}));

  // prev_row[r]: the last row index r' with rows[r'].right < rows[r].left —
  // the row d1 resolves to. Resolved for all rows in one amortized O(nr)
  // nesting-stack pass (see fill_prev_indices), not a per-row binary search.
  detail::fill_prev_indices(rows, scratch.prev_row, scratch.stack);
  detail::fill_prev_indices(cols, scratch.prev_col, scratch.stack);

  Matrix<Score>& val = scratch.val;
  val.resize(nr, nc, 0);
  for (std::size_t r = 0; r < nr; ++r) {
    Score* row = val.row_data(r);
    const Score* up = r > 0 ? val.row_data(r - 1) : nullptr;
    const std::size_t d1r = scratch.prev_row[r];
    const Score* d1_row = d1r != EventScratch::kNone ? val.row_data(d1r) : nullptr;
    Score left = 0;
    for (std::size_t c = 0; c < nc; ++c) {
      Score v = up != nullptr ? std::max(up[c], left) : left;
      const std::size_t d1c = scratch.prev_col[c];
      const Score d1 =
          (d1_row != nullptr && d1c != EventScratch::kNone) ? d1_row[d1c] : 0;
      const Score d2 = d2_of(rows[r].left, rows[r].right, cols[c].left, cols[c].right);
      v = std::max(v, static_cast<Score>(1 + d1 + d2));
      row[c] = v;
      left = v;
    }
  }
  if (span.active()) {
    const std::uint64_t elapsed = obs::Tracer::instance().now_us() - span.start_us();
    detail::sampled_slice_histogram().observe(static_cast<double>(elapsed) * 1e-6);
  }
  return val(nr - 1, nc - 1);
}

}  // namespace srna
