// TabulateSlice — the bottom-up kernel shared by SRNA1, SRNA2, PRNA and the
// traceback (paper Algorithm 2).
//
// A slice is the two-dimensional restriction of the 4-D table to fixed
// beginning positions (lo1, lo2):
//
//     slice[x][y] = F(lo1, x, lo2, y),   lo1 <= x <= hi1, lo2 <= y <= hi2.
//
// Inside a slice the recurrence needs
//     s1 = slice[x-1][y],  s2 = slice[x][y-1],  d1 = slice[k1-1][k2-1]
// and the one cross-slice term d2 = F(k1+1, x-1, k2+1, y-1), which the
// caller supplies through the `d2_of(k1, x, k2, y)` callable — a memo-table
// read for SRNA2/PRNA, a memoize-on-miss recursive spawn for SRNA1.
//
// Two layouts (DESIGN.md §4.4):
//   * dense      — tabulates every cell of the grid; paper-faithful, and the
//                  cell count is the paper's work measure (Figure 7).
//   * compressed — one cell per (arc-right-endpoint, arc-right-endpoint)
//                  event pair, exploiting that F only changes at events.
//
// The dense fill is an *event-run* kernel: the column positions where the
// dynamic case can fire (S2 arc right endpoints) are precomputed once per
// solve into a ColumnEvents table, and each row decomposes into arc-match
// cells at the events plus constant fills between them — F is provably
// constant between events, and a row where no S1 arc ends is a verbatim
// copy of the row above. Same cells, same stats, no per-cell partner probe
// or load. The pre-event-run per-cell loop is retained as
// fill_slice_dense_reference for the equivalence property test and the
// perf-regression gate (bench/micro_kernels --smoke).
//
// Both return the slice's final value F(lo1, hi1, lo2, hi2) — the only value
// the memo table M retains ("only the last tabulated subproblem of each
// child slice needs to be memoized").
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/options.hpp"
#include "core/result.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rna/secondary_structure.hpp"
#include "util/matrix.hpp"

// Compile-time SIMD dispatch for the batched kernel variants (DESIGN.md
// §4.5). -DSRNA_DISABLE_SIMD forces the scalar instantiation of the same
// blocked code path — the only instantiation sanitizer builds compile
// (scripts/check_asan.sh / check_ubsan.sh / check_tsan.sh configure with it),
// so a sanitizer-clean run certifies exactly the kernel it ran.
#if !defined(SRNA_DISABLE_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#define SRNA_KERNEL_AVX2 1
#define SRNA_KERNEL_SSE2 1
#if defined(__AVX512F__)
#define SRNA_KERNEL_AVX512 1
#endif
#elif !defined(SRNA_DISABLE_SIMD) && defined(__SSE2__)
#include <emmintrin.h>
#if defined(__SSE4_1__)
#include <smmintrin.h>
#endif
#define SRNA_KERNEL_SSE2 1
#endif

namespace srna {

namespace detail {

// Per-cell instrumentation is off the table (the cell loop IS the paper's
// cost model), so slices are traced *sampled*: when tracing is on, one slice
// in 64 per thread gets a span and a latency-histogram observation. When
// tracing is off this is a single relaxed atomic load per slice.
inline bool slice_trace_sample() noexcept {
  if (!obs::Tracer::instance().enabled()) return false;
  thread_local std::uint32_t n = 0;
  return (n++ & 63U) == 0;
}

inline obs::Histogram& sampled_slice_histogram() {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("slice.sampled_seconds");
  return hist;
}

}  // namespace detail

struct SliceBounds {
  Pos lo1 = 0, hi1 = -1, lo2 = 0, hi2 = -1;

  [[nodiscard]] bool empty() const noexcept { return hi1 < lo1 || hi2 < lo2; }
  [[nodiscard]] Pos width() const noexcept { return hi1 - lo1 + 1; }   // rows
  [[nodiscard]] Pos height() const noexcept { return hi2 - lo2 + 1; }  // cols

  // The child slice spawned by matching arcs (k1, x) and (k2, y): the
  // intervals strictly underneath the two arcs.
  static SliceBounds under(Pos k1, Pos x, Pos k2, Pos y) noexcept {
    return SliceBounds{k1 + 1, x - 1, k2 + 1, y - 1};
  }
};

// The column-event table of S2: every position y that is an arc right
// endpoint, paired with its left endpoint k, sorted by y, plus an O(1)
// position → first-event index so a slice restriction is two array reads.
// F is constant between these events (DESIGN.md §1), so inside a slice row
// the dynamic case can only fire at them — the fact the event-run dense
// kernel below exploits. Built once per solve (pooled in Workspace;
// rebuilding reuses capacity) and shared read-only by every slice of that
// solve, including PRNA's stage-one workers.
struct ColumnEvents {
  struct Event {
    Pos y;  // arc right endpoint (the event column)
    Pos k;  // matching left endpoint: (k, y) is an arc of S2
  };
  std::vector<Event> events;            // sorted by y
  std::vector<std::uint32_t> first_at;  // size m+1: index of first event with y >= pos

  ColumnEvents& build(const SecondaryStructure& s2) {
    const auto m = static_cast<std::size_t>(s2.length());
    events.clear();
    first_at.resize(m + 1);
    for (std::size_t y = 0; y < m; ++y) {
      first_at[y] = static_cast<std::uint32_t>(events.size());
      const Pos k = s2.arc_left_of(static_cast<Pos>(y));
      if (k >= 0) events.push_back(Event{static_cast<Pos>(y), k});
    }
    first_at[m] = static_cast<std::uint32_t>(events.size());
    return *this;
  }

  // Events with y in [lo, hi] — the columns of a slice restricted to
  // [lo, hi]. Requires 0 <= lo <= hi < m.
  [[nodiscard]] std::span<const Event> in_range(Pos lo, Pos hi) const noexcept {
    const auto begin = first_at[static_cast<std::size_t>(lo)];
    const auto end = first_at[static_cast<std::size_t>(hi) + 1];
    return std::span<const Event>(events).subspan(begin, end - begin);
  }

  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return events.capacity() * sizeof(Event) + first_at.capacity() * sizeof(std::uint32_t);
  }
};


// Fills `grid` (resized to width × height) with the dense slice:
// grid(x - lo1, y - lo2) = F(lo1, x, lo2, y). Used directly by the traceback,
// which needs the whole grid, and by tabulate_slice_dense below.
// No-op for empty bounds.
//
// `col_events` must be ColumnEvents::build(s2) — computed once per solve by
// the callers, not here, so tabulating a slice costs nothing beyond its own
// cells.
template <typename D2>
void fill_slice_dense(const SecondaryStructure& s1, const SecondaryStructure& /*s2*/,
                      const ColumnEvents& col_events, SliceBounds b, Matrix<Score>& grid,
                      D2&& d2_of, McosStats* stats = nullptr) {
  if (b.empty()) {
    grid.resize(0, 0);
    return;
  }
  const auto rows = static_cast<std::size_t>(b.width());
  const auto cols = static_cast<std::size_t>(b.height());
  // Deliberately the zeroing resize: this kernel is the pre-batching baseline
  // the micro_kernels perf gate compares the batched variants against, so it
  // stays exactly as shipped (the no-zero reshape() is part of the batched
  // kernels' win).
  grid.resize(rows, cols, 0);

  if (stats != nullptr) {
    ++stats->slices_tabulated;
    stats->cells_tabulated += static_cast<std::uint64_t>(rows) * cols;
  }

  const std::span<const ColumnEvents::Event> events = col_events.in_range(b.lo2, b.hi2);

  // Two facts of the max-recurrence, independent of the d2 oracle, carry the
  // whole kernel (DESIGN.md §4.4):
  //   * a row where no S1 arc ends is a verbatim copy of the row above
  //     (position x is unusable, and rows are left-to-right monotone), and
  //   * within any row, F is constant between S2 events — the dynamic case
  //     fires only at event columns, and between them both `up` and `left`
  //     are frozen.
  // So arc rows touch one `up` cell per event plus one per run (a constant
  // std::fill), and arc-free rows are a single copy. Cell and arc-event
  // accounting stay identical to the per-cell reference: every cell is still
  // written, and the dynamic case is evaluated for exactly the same
  // (row, column) pairs.
  for (Pos x = b.lo1; x <= b.hi1; ++x) {
    const auto r = static_cast<std::size_t>(x - b.lo1);
    Score* row = grid.row_data(r);

    // Arc of S1 ending at x, if its left endpoint is inside the slice. The
    // first row never qualifies (k1 >= lo1 needs x > lo1), so arc rows
    // always have a row above.
    const Pos k1 = s1.arc_left_of(x);
    if (k1 < b.lo1) {
      if (r == 0) {
        std::fill(row, row + cols, Score{0});
      } else {
        const Score* up = grid.row_data(r - 1);
        std::copy(up, up + cols, row);
      }
      continue;
    }

    const Score* up = grid.row_data(r - 1);
    const Score* d1_row =
        k1 - 1 >= b.lo1 ? grid.row_data(static_cast<std::size_t>(k1 - 1 - b.lo1)) : nullptr;
    const Pos lo2 = b.lo2;

    // Event-free runs are constant: up[] is frozen across a run (the row
    // above is also constant between events), and after an event the event
    // cell's value already dominates it (v >= up[event]), so only the run
    // before the *first* event reads up[] at all. One fill per run.
    Score left = 0;  // slice[x][y-1], carried across the row
    std::size_t c = 0;
    std::uint64_t row_arc_events = 0;
    if (lo2 == 0 && d1_row != nullptr) {
      // Root-anchored slice: every event qualifies (e.k >= 0 == lo2), so the
      // qualify branch and the d1_row null check drop out of the hot loop.
      row_arc_events = events.size();
      for (const ColumnEvents::Event& e : events) {
        const auto ce = static_cast<std::size_t>(e.y);
        if (ce > c) {
          if (c == 0) left = up[0];
          std::fill(row + c, row + ce, left);
        }
        Score v = std::max(up[ce], left);
        const Score d1 = e.k >= 1 ? d1_row[static_cast<std::size_t>(e.k - 1)] : 0;
        const Score d2 = d2_of(k1, x, e.k, e.y);
        v = std::max(v, static_cast<Score>(1 + d1 + d2));
        row[ce] = v;
        left = v;
        c = ce + 1;
      }
    } else {
      for (const ColumnEvents::Event& e : events) {
        const auto ce = static_cast<std::size_t>(e.y - lo2);
        if (ce > c) {
          if (c == 0) left = up[0];
          std::fill(row + c, row + ce, left);
        }
        // The event cell: the one column in [c, ce] where an S2 arc ends.
        Score v = std::max(up[ce], left);
        if (e.k >= lo2) {
          const Score d1 = (d1_row != nullptr && e.k - 1 >= lo2)
                               ? d1_row[static_cast<std::size_t>(e.k - 1 - lo2)]
                               : 0;
          const Score d2 = d2_of(k1, x, e.k, e.y);
          v = std::max(v, static_cast<Score>(1 + d1 + d2));
          ++row_arc_events;
        }
        row[ce] = v;
        left = v;
        c = ce + 1;
      }
    }
    if (c < cols) {
      if (c == 0) left = up[0];
      std::fill(row + c, row + cols, left);
    }
    if (stats != nullptr) stats->arc_match_events += row_arc_events;
  }
}

// Convenience overload building the column events locally: for the few-slice
// callers (traceback re-tabulation, enumeration, tests). The per-slice
// solvers pass a prebuilt table instead — never use this form in a loop over
// slices.
template <typename D2>
void fill_slice_dense(const SecondaryStructure& s1, const SecondaryStructure& s2,
                      SliceBounds b, Matrix<Score>& grid, D2&& d2_of,
                      McosStats* stats = nullptr) {
  ColumnEvents col_events;
  col_events.build(s2);
  fill_slice_dense(s1, s2, col_events, b, grid, static_cast<D2&&>(d2_of), stats);
}

// The pre-event-run dense fill: one partner probe and one arc branch per
// cell. Kept (not as a fast path) so the randomized equivalence test and the
// micro_kernels perf gate can pin the event-run kernel against the exact
// loop the paper's cost model describes.
template <typename D2>
void fill_slice_dense_reference(const SecondaryStructure& s1, const SecondaryStructure& s2,
                                SliceBounds b, Matrix<Score>& grid, D2&& d2_of,
                                McosStats* stats = nullptr) {
  if (b.empty()) {
    grid.resize(0, 0);
    return;
  }
  const auto rows = static_cast<std::size_t>(b.width());
  const auto cols = static_cast<std::size_t>(b.height());
  grid.resize(rows, cols, 0);

  if (stats != nullptr) {
    ++stats->slices_tabulated;
    stats->cells_tabulated += static_cast<std::uint64_t>(rows) * cols;
  }

  for (Pos x = b.lo1; x <= b.hi1; ++x) {
    const auto r = static_cast<std::size_t>(x - b.lo1);
    Score* row = grid.row_data(r);
    const Score* up = r > 0 ? grid.row_data(r - 1) : nullptr;

    // Arc of S1 ending at x, if its left endpoint is inside the slice.
    const Pos k1 = s1.arc_left_of(x);
    const bool has_arc1 = k1 >= b.lo1;
    const Score* d1_row =
        has_arc1 && k1 - 1 >= b.lo1 ? grid.row_data(static_cast<std::size_t>(k1 - 1 - b.lo1))
                                    : nullptr;

    Score left = 0;  // slice[x][y-1], carried across the row
    for (Pos y = b.lo2; y <= b.hi2; ++y) {
      const auto c = static_cast<std::size_t>(y - b.lo2);
      Score v = up != nullptr ? std::max(up[c], left) : left;
      if (has_arc1) {
        const Pos k2 = s2.arc_left_of(y);
        if (k2 >= b.lo2) {
          const Score d1 =
              (d1_row != nullptr && k2 - 1 >= b.lo2)
                  ? d1_row[static_cast<std::size_t>(k2 - 1 - b.lo2)]
                  : 0;
          const Score d2 = d2_of(k1, x, k2, y);
          v = std::max(v, static_cast<Score>(1 + d1 + d2));
          if (stats != nullptr) ++stats->arc_match_events;
        }
      }
      row[c] = v;
      left = v;
    }
  }
}

// ---------------------------------------------------------------------------
// Batched kernel variants (DESIGN.md §4.5).
//
// The event-run kernel above still evaluates the per-event max chain
// serially: `v = max(up[ce], left); v = max(v, 1 + d1 + d2); left = v` is a
// loop-carried dependency through `left`. The variants below break the row
// into three passes over contiguous per-event arrays:
//
//   1. candidates — cand[j] = 1 + d1 + d2 for the qualifying events (the
//      memo gather), no loop-carried dependency;
//   2. combine    — a[j] = max(cand[j], up[ce_j]) (vertical max, SIMD);
//   3. reduce     — v[j] = max(a_0..a_j), an inclusive prefix max. kSimd
//      runs a log-step vector scan; kFourRussians packs four per-event
//      deltas into a 12-bit word and resolves the block with one lookup in
//      a precomputed table.
//
// Row identity: v_j = max(a_0..a_j) with no seed term, because the run
// before the first event contributes up[0] <= up[ce_0] <= a_0 (rows of F
// are monotone non-decreasing left to right). Cells between events keep
// their run values exactly as in the event-run kernel.
//
// The event columns and d1 gather indices are row-invariant, so they are
// precomputed once per slice into a KernelScratch (pooled per recursion
// level in Workspace).

// Reusable per-slice buffers of the batched kernels. Pooled in Workspace
// (kernel_scratch(level)); a steady-state solve allocates nothing.
struct KernelScratch {
  // d1_idx sentinels: the event qualifies with d1 = 0 (its partner arc
  // starts exactly at the slice edge), or does not qualify at all.
  static constexpr std::int32_t kZeroD1 = -1;
  static constexpr std::int32_t kSkip = -2;

  std::vector<std::uint32_t> cols;   // per event: column offset within the slice
  std::vector<std::int32_t> d1_idx;  // per event: d1 gather column, or a sentinel
  std::vector<Score> vals;           // per event: candidate -> combined -> reduced

  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return cols.capacity() * sizeof(std::uint32_t) +
           d1_idx.capacity() * sizeof(std::int32_t) + vals.capacity() * sizeof(Score);
  }
};

// The Four-Russians block-combine table. Within a row, consecutive event
// values satisfy a_j - v_{j-1} <= 1 for any true-DP d2 oracle (the arc-match
// increment bound, DESIGN.md §4.5), so the delta of a_j against the value
// entering a 4-event block lies in [-1, 4] (deltas below -1 clamp losslessly:
// they cannot win a max). Each delta packs into a 3-bit code, four events
// into a 12-bit word, and this table maps the word to the four packed
// running maxima — one lookup replaces the block's max chain. Blocks whose
// deltas exceed kMaxDelta (possible only under synthetic oracles, e.g. the
// equivalence test's position-dependent fake d2) are detected at encode time
// and fall back to the scalar chain, keeping the variant exact for arbitrary
// oracles. Built once and pooled in Workspace (~8 KiB).
struct FourRussiansTable {
  static constexpr std::size_t kBlockEvents = 4;
  static constexpr unsigned kCodeBits = 3;
  static constexpr std::int32_t kMaxDelta = 4;  // j + 1 <= 4 within a block
  static constexpr std::size_t kEntries = std::size_t{1} << (kCodeBits * kBlockEvents);

  // combine[word] packs, per event j of the block, max(0, delta_0..delta_j)
  // in the same 3-bit slots; v_j = base + that running maximum.
  std::vector<std::uint16_t> combine;

  void build() {
    if (!combine.empty()) return;
    combine.resize(kEntries);
    for (std::size_t word = 0; word < kEntries; ++word) {
      std::uint16_t out = 0;
      std::int32_t running = 0;
      for (unsigned j = 0; j < kBlockEvents; ++j) {
        const auto code = static_cast<std::int32_t>((word >> (kCodeBits * j)) & 7U);
        running = std::max(running, code - 1);  // codes 0..5 encode deltas -1..4
        out = static_cast<std::uint16_t>(
            out | (static_cast<unsigned>(running) << (kCodeBits * j)));
      }
      combine[word] = out;
    }
  }

  [[nodiscard]] bool built() const noexcept { return !combine.empty(); }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return combine.capacity() * sizeof(std::uint16_t);
  }
};

// kAuto resolves to the best variant for this build. The blocked kernels are
// always selectable — under SRNA_DISABLE_SIMD their vector primitives are
// scalar loops with bit-identical results — so resolution is unconditional.
[[nodiscard]] constexpr KernelVariant resolve_kernel_variant(KernelVariant v) noexcept {
  return v == KernelVariant::kAuto ? KernelVariant::kSimd : v;
}

// A resolved kernel selection bundled with its pooled state: what the
// per-slice call sites thread through. Workspace::slice_kernel() builds one;
// tests build them by hand around a local scratch/table.
struct SliceKernel {
  KernelVariant variant = KernelVariant::kEventRun;  // resolved; never kAuto
  KernelScratch* scratch = nullptr;                  // kSimd / kFourRussians
  const FourRussiansTable* table = nullptr;          // kFourRussians only
};

namespace detail {

// Row-invariant per-slice event metadata, computed once per fill call.
struct PreparedEvents {
  std::size_t count = 0;       // events inside the slice columns
  std::size_t qualifying = 0;  // events whose dynamic case can fire
  std::size_t desc_prefix = 0; // leading events whose d1 columns descend by 1
  bool contiguous = false;     // event columns are consecutive offsets
};

inline PreparedEvents prepare_kernel_events(std::span<const ColumnEvents::Event> events,
                                            Pos lo2, KernelScratch& ks) {
  PreparedEvents prep;
  prep.count = events.size();
  ks.cols.resize(prep.count);
  ks.d1_idx.resize(prep.count);
  ks.vals.resize(prep.count);
  prep.contiguous = true;
  for (std::size_t j = 0; j < prep.count; ++j) {
    const ColumnEvents::Event& e = events[j];
    const auto ce = static_cast<std::uint32_t>(e.y - lo2);
    ks.cols[j] = ce;
    if (j > 0 && ce != ks.cols[j - 1] + 1) prep.contiguous = false;
    if (e.k >= lo2) {
      ++prep.qualifying;
      ks.d1_idx[j] = e.k - 1 >= lo2 ? static_cast<std::int32_t>(e.k - 1 - lo2)
                                    : KernelScratch::kZeroD1;
    } else {
      ks.d1_idx[j] = KernelScratch::kSkip;
    }
  }
  // Nested-arc runs (the Table I worst case is one) produce d1 columns that
  // descend by exactly one: d1_idx[j] = d1_idx[0] - j while nonnegative.
  // Over that prefix the d1 reads of a row are one reversed contiguous
  // block — a plain load instead of a gather.
  if (prep.count > 0 && ks.d1_idx[0] >= 0) {
    std::size_t p = 1;
    while (p < prep.count && ks.d1_idx[p] == ks.d1_idx[0] - static_cast<std::int32_t>(p) &&
           ks.d1_idx[p] >= 0)
      ++p;
    prep.desc_prefix = p;
  }
  return prep;
}

// Candidate value of a non-qualifying event: loses every max against the
// up-row (grid values are never negative — row 0 is zero and rows are
// pointwise monotone), so the event contributes up[ce] alone, exactly as in
// the reference.
inline constexpr Score kNoCandidate = std::numeric_limits<Score>::min();

// Pass 1b: vals[j] (holding the event's d2 value) += 1 + d1, kNoCandidate
// where the event does not qualify. Over the descending prefix the d1 reads
// are one reversed contiguous load per block; the remainder is a masked
// gather on AVX2 (masked-off lanes — the kZeroD1/kSkip sentinels — touch no
// memory).
inline void apply_d1_candidates(const std::int32_t* d1_idx, std::size_t ne,
                                std::size_t desc_prefix, const Score* d1_row,
                                Score* vals) noexcept {
  std::size_t j = 0;
#if defined(SRNA_KERNEL_AVX2)
  const __m256i ones = _mm256_set1_epi32(1);
  if (d1_row != nullptr && desc_prefix >= 8) {
    const __m256i rev = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);
    const auto base = static_cast<std::size_t>(d1_idx[0]);
    for (; j + 8 <= desc_prefix; j += 8) {
      __m256i d1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(d1_row + (base - j - 7)));
      d1 = _mm256_permutevar8x32_epi32(d1, rev);
      __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + j));
      v = _mm256_add_epi32(_mm256_add_epi32(v, d1), ones);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(vals + j), v);
    }
  }
  const __m256i skip = _mm256_set1_epi32(KernelScratch::kSkip);
  const __m256i none = _mm256_set1_epi32(kNoCandidate);
  const __m256i minus1 = _mm256_set1_epi32(-1);
  for (; j + 8 <= ne; j += 8) {
    const __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d1_idx + j));
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + j));
    if (d1_row != nullptr) {
      const __m256i mask = _mm256_cmpgt_epi32(idx, minus1);  // di >= 0: real d1 column
      const __m256i d1 = _mm256_mask_i32gather_epi32(
          _mm256_setzero_si256(), reinterpret_cast<const int*>(d1_row), idx, mask, 4);
      v = _mm256_add_epi32(v, d1);
    }
    v = _mm256_add_epi32(v, ones);
    v = _mm256_blendv_epi8(v, none, _mm256_cmpeq_epi32(idx, skip));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(vals + j), v);
  }
#else
  (void)desc_prefix;
#endif
  for (; j < ne; ++j) {
    const std::int32_t di = d1_idx[j];
    if (di == KernelScratch::kSkip) {
      vals[j] = kNoCandidate;
      continue;
    }
    const Score d1 =
        (d1_row != nullptr && di >= 0) ? d1_row[static_cast<std::size_t>(di)] : Score{0};
    vals[j] = static_cast<Score>(vals[j] + 1 + d1);
  }
}

// Fused pass 1b + 2 for contiguous events: a[j] = max(cand[j], up_run[j])
// in one sweep over vals, avoiding a separate combine pass. Same descending-
// prefix reversed-load fast path as apply_d1_candidates.
inline void apply_d1_up_contiguous(const std::int32_t* d1_idx, std::size_t ne,
                                   std::size_t desc_prefix, const Score* d1_row,
                                   const Score* up_run, Score* vals) noexcept {
  std::size_t j = 0;
#if defined(SRNA_KERNEL_AVX2)
  const __m256i ones = _mm256_set1_epi32(1);
  if (d1_row != nullptr && desc_prefix >= 8) {
    const __m256i rev = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);
    const auto base = static_cast<std::size_t>(d1_idx[0]);
    for (; j + 8 <= desc_prefix; j += 8) {
      __m256i d1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(d1_row + (base - j - 7)));
      d1 = _mm256_permutevar8x32_epi32(d1, rev);
      __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + j));
      v = _mm256_add_epi32(_mm256_add_epi32(v, d1), ones);
      const __m256i up = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(up_run + j));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(vals + j), _mm256_max_epi32(v, up));
    }
  }
  const __m256i skip = _mm256_set1_epi32(KernelScratch::kSkip);
  const __m256i none = _mm256_set1_epi32(kNoCandidate);
  const __m256i minus1 = _mm256_set1_epi32(-1);
  for (; j + 8 <= ne; j += 8) {
    const __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d1_idx + j));
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + j));
    if (d1_row != nullptr) {
      const __m256i mask = _mm256_cmpgt_epi32(idx, minus1);
      const __m256i d1 = _mm256_mask_i32gather_epi32(
          _mm256_setzero_si256(), reinterpret_cast<const int*>(d1_row), idx, mask, 4);
      v = _mm256_add_epi32(v, d1);
    }
    v = _mm256_add_epi32(v, ones);
    v = _mm256_blendv_epi8(v, none, _mm256_cmpeq_epi32(idx, skip));
    const __m256i up = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(up_run + j));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(vals + j), _mm256_max_epi32(v, up));
  }
#else
  (void)desc_prefix;
#endif
  for (; j < ne; ++j) {
    const std::int32_t di = d1_idx[j];
    if (di == KernelScratch::kSkip) {
      vals[j] = up_run[j];
      continue;
    }
    const Score d1 =
        (d1_row != nullptr && di >= 0) ? d1_row[static_cast<std::size_t>(di)] : Score{0};
    vals[j] = std::max(static_cast<Score>(vals[j] + 1 + d1), up_run[j]);
  }
}

// Pass 1a: vals[j] = the event's d2 value — d2_of invoked for the same
// (k1, x, k2, y) tuples, in the same left-to-right order, as the reference;
// SRNA1's memoize-on-miss oracle depends on that. Qualification is
// row-invariant, so the all-qualify sweep is branch-free (and
// auto-vectorizes for trivial oracles).
template <typename D2>
inline void compute_event_d2(const KernelScratch& ks, const PreparedEvents& prep, Pos k1,
                             Pos x, std::span<const ColumnEvents::Event> events,
                             Score* vals, D2&& d2_of) {
  const std::size_t ne = prep.count;
  if (prep.qualifying == ne) {
    for (std::size_t j = 0; j < ne; ++j)
      vals[j] = static_cast<Score>(d2_of(k1, x, events[j].k, events[j].y));
  } else {
    for (std::size_t j = 0; j < ne; ++j)
      vals[j] = ks.d1_idx[j] == KernelScratch::kSkip
                    ? Score{0}
                    : static_cast<Score>(d2_of(k1, x, events[j].k, events[j].y));
  }
}

// Pass 1 in one call: cand[j] = 1 + d1 + d2 for qualifying events,
// kNoCandidate otherwise (the Four-Russians and non-contiguous paths).
template <typename D2>
inline void compute_event_candidates(const KernelScratch& ks, const PreparedEvents& prep,
                                     const Score* d1_row, Pos k1, Pos x,
                                     std::span<const ColumnEvents::Event> events,
                                     Score* vals, D2&& d2_of) {
  compute_event_d2(ks, prep, k1, x, events, vals, d2_of);
  apply_d1_candidates(ks.d1_idx.data(), prep.count, prep.desc_prefix, d1_row, vals);
}

#if defined(SRNA_KERNEL_SSE2)
inline __m128i max_epi32_sse(__m128i a, __m128i b) noexcept {
#if defined(__SSE4_1__) || defined(SRNA_KERNEL_AVX2)
  return _mm_max_epi32(a, b);
#else
  const __m128i gt = _mm_cmpgt_epi32(a, b);
  return _mm_or_si128(_mm_and_si128(gt, a), _mm_andnot_si128(gt, b));
#endif
}
#endif

// Pass 2a (contiguous events): a[j] = max(a[j], up_run[j]) — a vertical max
// over two contiguous blocks.
inline void combine_up_contiguous(Score* vals, const Score* up, std::size_t n) noexcept {
  std::size_t j = 0;
#if defined(SRNA_KERNEL_AVX2)
  for (; j + 8 <= n; j += 8) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + j));
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(up + j));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(vals + j), _mm256_max_epi32(a, b));
  }
#elif defined(SRNA_KERNEL_SSE2)
  for (; j + 4 <= n; j += 4) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + j));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(up + j));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(vals + j), max_epi32_sse(a, b));
  }
#endif
  for (; j < n; ++j) vals[j] = std::max(vals[j], up[j]);
}

// Pass 2b (general events): a[j] = max(a[j], up[cols[j]]) — a gather on
// AVX2, scalar otherwise.
inline void combine_up_gather(Score* vals, const Score* up, const std::uint32_t* cols,
                              std::size_t n) noexcept {
  std::size_t j = 0;
#if defined(SRNA_KERNEL_AVX2)
  for (; j + 8 <= n; j += 8) {
    const __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + j));
    const __m256i b = _mm256_i32gather_epi32(reinterpret_cast<const int*>(up), idx, 4);
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + j));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(vals + j), _mm256_max_epi32(a, b));
  }
#endif
  for (; j < n; ++j) vals[j] = std::max(vals[j], up[cols[j]]);
}

// Pass 3 (kSimd): inclusive prefix max of src into dst (dst == src for
// in-place), returning the running maximum. Vector blocks of four with a
// log-step shift-and-max scan; zeros shifted in at the block edge are
// harmless because the inputs (already maxed with the up row) are never
// negative. Writing straight into the grid row skips the scatter copy on
// the contiguous path.
inline Score prefix_max_to(Score* dst, const Score* src, std::size_t n) noexcept {
  std::size_t j = 0;
  Score carry = 0;
#if defined(SRNA_KERNEL_AVX2)
  __m256i vcarry = _mm256_setzero_si256();
  for (; j + 8 <= n; j += 8) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + j));
    // In-lane log-step scan, then propagate lane 0's max into lane 1.
    x = _mm256_max_epi32(x, _mm256_slli_si256(x, 4));
    x = _mm256_max_epi32(x, _mm256_slli_si256(x, 8));
    const __m256i tops = _mm256_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
    x = _mm256_max_epi32(x, _mm256_permute2x128_si256(tops, tops, 0x08));  // [0, tops.lo]
    const __m256i hi = _mm256_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
    const __m256i bmax = _mm256_permute2x128_si256(hi, hi, 0x11);  // broadcast block max
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + j), _mm256_max_epi32(x, vcarry));
    vcarry = _mm256_max_epi32(vcarry, bmax);  // the only op on the serial chain
  }
  carry = static_cast<Score>(_mm256_extract_epi32(vcarry, 0));
#elif defined(SRNA_KERNEL_SSE2)
  __m128i vcarry = _mm_setzero_si128();
  for (; j + 4 <= n; j += 4) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + j));
    x = max_epi32_sse(x, _mm_slli_si128(x, 4));
    x = max_epi32_sse(x, _mm_slli_si128(x, 8));
    x = max_epi32_sse(x, vcarry);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + j), x);
    vcarry = _mm_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
  }
  carry = static_cast<Score>(_mm_cvtsi128_si32(vcarry));
#endif
  for (; j < n; ++j) {
    carry = std::max(carry, src[j]);
    dst[j] = carry;
  }
  return carry;
}

inline void prefix_max_inclusive(Score* vals, std::size_t n) noexcept {
  (void)prefix_max_to(vals, vals, n);
}

#if defined(SRNA_KERNEL_AVX2)
#if defined(SRNA_KERNEL_AVX512) && defined(__GNUC__) && !defined(__clang__)
// GCC 12's -Wmaybe-uninitialized fires on the _mm512_undefined_epi32()
// pass-through inside the unmasked AVX-512 intrinsics themselves.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
// Fully fused passes 1b + 2 + 3 for the contiguous case: candidate combine,
// up-max, and the inclusive prefix-max scan in a single loop writing straight
// into the grid row. The scan's carry chain is latency-bound (a shuffle +
// permute + max per block that each iteration must wait on); folding the
// d1 loads and max work into the same loop lets them execute in that shadow
// instead of costing a separate pass over the row.
inline Score fused_candidates_scan(const std::int32_t* d1_idx, std::size_t ne,
                                   std::size_t desc_prefix, const Score* d1_row,
                                   const Score* up_run, const Score* vals,
                                   Score* out) noexcept {
  std::size_t j = 0;
  Score carry = 0;
  // The reversed-load path reads through d1_row; without one, every
  // qualifying lane's d1 term is zero and the gather branch handles that.
  const std::size_t desc = d1_row != nullptr ? desc_prefix : 0;
  const std::size_t base = desc > 0 ? static_cast<std::size_t>(d1_idx[0]) : 0;
#if defined(SRNA_KERNEL_AVX512)
  // 16-wide leg over the descending prefix. The loop is bound by the shuffle
  // port (reverse permute + the scan's lane shifts all compete for it), so
  // doubling the lane count roughly halves the shuffle ops per event.
  if (desc >= 16) {
    const __m512i ones16 = _mm512_set1_epi32(1);
    const __m512i rev16 =
        _mm512_setr_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
    const __m512i zero16 = _mm512_setzero_si512();
    const __m512i lane15 = _mm512_set1_epi32(15);
    __m512i vcarry16 = zero16;
    for (; j + 16 <= desc; j += 16) {
      __m512i v = _mm512_loadu_si512(vals + j);
      __m512i d1 = _mm512_loadu_si512(d1_row + (base - j - 15));
      d1 = _mm512_permutexvar_epi32(rev16, d1);
      v = _mm512_add_epi32(_mm512_add_epi32(v, d1), ones16);
      __m512i x = _mm512_max_epi32(v, _mm512_loadu_si512(up_run + j));
      x = _mm512_max_epi32(x, _mm512_alignr_epi32(x, zero16, 15));  // shift left 1
      x = _mm512_max_epi32(x, _mm512_alignr_epi32(x, zero16, 14));  // shift left 2
      x = _mm512_max_epi32(x, _mm512_alignr_epi32(x, zero16, 12));  // shift left 4
      x = _mm512_max_epi32(x, _mm512_alignr_epi32(x, zero16, 8));   // shift left 8
      const __m512i bmax = _mm512_permutexvar_epi32(lane15, x);
      _mm512_storeu_si512(out + j, _mm512_max_epi32(x, vcarry16));
      vcarry16 = _mm512_max_epi32(vcarry16, bmax);
    }
    carry = static_cast<Score>(_mm_cvtsi128_si32(_mm512_castsi512_si128(vcarry16)));
  }
#endif
  const __m256i ones = _mm256_set1_epi32(1);
  const __m256i rev = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);
  const __m256i skipv = _mm256_set1_epi32(KernelScratch::kSkip);
  const __m256i none = _mm256_set1_epi32(kNoCandidate);
  const __m256i minus1 = _mm256_set1_epi32(-1);
  __m256i vcarry = _mm256_set1_epi32(carry);
  for (; j + 8 <= ne; j += 8) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + j));
    if (j + 8 <= desc) {
      __m256i d1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(d1_row + (base - j - 7)));
      d1 = _mm256_permutevar8x32_epi32(d1, rev);
      v = _mm256_add_epi32(_mm256_add_epi32(v, d1), ones);
    } else {
      const __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d1_idx + j));
      if (d1_row != nullptr) {
        const __m256i mask = _mm256_cmpgt_epi32(idx, minus1);
        const __m256i d1 = _mm256_mask_i32gather_epi32(
            _mm256_setzero_si256(), reinterpret_cast<const int*>(d1_row), idx, mask, 4);
        v = _mm256_add_epi32(v, d1);
      }
      v = _mm256_add_epi32(v, ones);
      v = _mm256_blendv_epi8(v, none, _mm256_cmpeq_epi32(idx, skipv));
    }
    __m256i x = _mm256_max_epi32(v, _mm256_loadu_si256(
                                        reinterpret_cast<const __m256i*>(up_run + j)));
    x = _mm256_max_epi32(x, _mm256_slli_si256(x, 4));
    x = _mm256_max_epi32(x, _mm256_slli_si256(x, 8));
    const __m256i tops = _mm256_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
    x = _mm256_max_epi32(x, _mm256_permute2x128_si256(tops, tops, 0x08));
    // The block max (last element of the in-block scan) is broadcast from
    // the PRE-carry scan so only the final max sits on the serial carry
    // chain — the shuffles execute in the next block's shadow.
    const __m256i hi = _mm256_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
    const __m256i bmax = _mm256_permute2x128_si256(hi, hi, 0x11);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j),
                        _mm256_max_epi32(x, vcarry));
    vcarry = _mm256_max_epi32(vcarry, bmax);
  }
  carry = static_cast<Score>(_mm256_extract_epi32(vcarry, 0));
  for (; j < ne; ++j) {
    const std::int32_t di = d1_idx[j];
    Score cand;
    if (di == KernelScratch::kSkip) {
      cand = up_run[j];
    } else {
      const Score d1 =
          (d1_row != nullptr && di >= 0) ? d1_row[static_cast<std::size_t>(di)] : Score{0};
      cand = std::max(static_cast<Score>(vals[j] + 1 + d1), up_run[j]);
    }
    carry = std::max(carry, cand);
    out[j] = carry;
  }
  return carry;
}
#if defined(SRNA_KERNEL_AVX512) && defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#endif

// Writes one reduced event row back into the grid: the head run before the
// first event, the event cells, the constant runs between them, and the
// tail run. In the contiguous case the event cells are one block copy.
inline void scatter_event_row(Score* row, std::size_t cols, Score head,
                              const std::uint32_t* ecols, const Score* vals,
                              std::size_t ne, bool contiguous) noexcept {
  const std::size_t first = ecols[0];
  if (first > 0) std::fill(row, row + first, head);
  if (contiguous) {
    std::copy(vals, vals + ne, row + first);
  } else {
    std::size_t c = first;
    for (std::size_t j = 0; j < ne; ++j) {
      const std::size_t ce = ecols[j];
      if (ce > c) std::fill(row + c, row + ce, vals[j - 1]);
      row[ce] = vals[j];
      c = ce + 1;
    }
  }
  const std::size_t last = ecols[ne - 1];
  if (last + 1 < cols) std::fill(row + last + 1, row + cols, vals[ne - 1]);
}

}  // namespace detail

// The kSimd dense fill: same cells, same stats, same d2 call pattern as
// fill_slice_dense, with the event rows evaluated by the three batched
// passes above.
template <typename D2>
void fill_slice_dense_simd(const SecondaryStructure& s1, const SecondaryStructure& /*s2*/,
                           const ColumnEvents& col_events, SliceBounds b,
                           Matrix<Score>& grid, KernelScratch& ks, D2&& d2_of,
                           McosStats* stats = nullptr) {
  if (b.empty()) {
    grid.resize(0, 0);
    return;
  }
  const auto rows = static_cast<std::size_t>(b.width());
  const auto cols = static_cast<std::size_t>(b.height());
  grid.reshape(rows, cols);  // every cell is written below; no zero pass
  if (stats != nullptr) {
    ++stats->slices_tabulated;
    stats->cells_tabulated += static_cast<std::uint64_t>(rows) * cols;
  }
  const std::span<const ColumnEvents::Event> events = col_events.in_range(b.lo2, b.hi2);
  const detail::PreparedEvents prep = detail::prepare_kernel_events(events, b.lo2, ks);
  const std::size_t ne = prep.count;

  for (Pos x = b.lo1; x <= b.hi1; ++x) {
    const auto r = static_cast<std::size_t>(x - b.lo1);
    Score* row = grid.row_data(r);
    const Pos k1 = s1.arc_left_of(x);
    if (k1 < b.lo1) {
      if (r == 0) {
        std::fill(row, row + cols, Score{0});
      } else {
        const Score* up = grid.row_data(r - 1);
        std::copy(up, up + cols, row);
      }
      continue;
    }

    const Score* up = grid.row_data(r - 1);
    if (ne == 0) {  // no events: the whole row is one constant run
      std::fill(row, row + cols, up[0]);
      continue;
    }
    const Score* d1_row =
        k1 - 1 >= b.lo1 ? grid.row_data(static_cast<std::size_t>(k1 - 1 - b.lo1)) : nullptr;
    Score* vals = ks.vals.data();
    detail::compute_event_d2(ks, prep, k1, x, events, vals, d2_of);
    if (prep.contiguous) {
      // Fused pipeline: one sweep combines cand/up, the prefix scan writes
      // straight into the grid row — no separate combine or scatter copy.
      const std::size_t first = ks.cols[0];
      std::fill(row, row + first, up[0]);
#if defined(SRNA_KERNEL_AVX2)
      const Score tail = detail::fused_candidates_scan(ks.d1_idx.data(), ne, prep.desc_prefix,
                                                       d1_row, up + first, vals, row + first);
#else
      detail::apply_d1_up_contiguous(ks.d1_idx.data(), ne, prep.desc_prefix, d1_row, up + first,
                                     vals);
      const Score tail = detail::prefix_max_to(row + first, vals, ne);
#endif
      if (first + ne < cols) std::fill(row + first + ne, row + cols, tail);
    } else {
      detail::apply_d1_candidates(ks.d1_idx.data(), ne, prep.desc_prefix, d1_row, vals);
      detail::combine_up_gather(vals, up, ks.cols.data(), ne);
      detail::prefix_max_inclusive(vals, ne);
      detail::scatter_event_row(row, cols, up[0], ks.cols.data(), vals, ne, false);
    }
    if (stats != nullptr) stats->arc_match_events += prep.qualifying;
  }
}

// The kFourRussians dense fill: passes 1–2 as in kSimd, then the prefix max
// resolved four events at a time through the block-combine table. `table`
// must be built (FourRussiansTable::build).
template <typename D2>
void fill_slice_dense_four_russians(const SecondaryStructure& s1,
                                    const SecondaryStructure& /*s2*/,
                                    const ColumnEvents& col_events, SliceBounds b,
                                    Matrix<Score>& grid, KernelScratch& ks,
                                    const FourRussiansTable& table, D2&& d2_of,
                                    McosStats* stats = nullptr) {
  if (b.empty()) {
    grid.resize(0, 0);
    return;
  }
  const auto rows = static_cast<std::size_t>(b.width());
  const auto cols = static_cast<std::size_t>(b.height());
  grid.reshape(rows, cols);  // every cell is written below; no zero pass
  if (stats != nullptr) {
    ++stats->slices_tabulated;
    stats->cells_tabulated += static_cast<std::uint64_t>(rows) * cols;
  }
  const std::span<const ColumnEvents::Event> events = col_events.in_range(b.lo2, b.hi2);
  const detail::PreparedEvents prep = detail::prepare_kernel_events(events, b.lo2, ks);
  const std::size_t ne = prep.count;

  for (Pos x = b.lo1; x <= b.hi1; ++x) {
    const auto r = static_cast<std::size_t>(x - b.lo1);
    Score* row = grid.row_data(r);
    const Pos k1 = s1.arc_left_of(x);
    if (k1 < b.lo1) {
      if (r == 0) {
        std::fill(row, row + cols, Score{0});
      } else {
        const Score* up = grid.row_data(r - 1);
        std::copy(up, up + cols, row);
      }
      continue;
    }

    const Score* up = grid.row_data(r - 1);
    if (ne == 0) {
      std::fill(row, row + cols, up[0]);
      continue;
    }
    const Score* d1_row =
        k1 - 1 >= b.lo1 ? grid.row_data(static_cast<std::size_t>(k1 - 1 - b.lo1)) : nullptr;
    Score* vals = ks.vals.data();
    detail::compute_event_candidates(ks, prep, d1_row, k1, x, events, vals, d2_of);
    if (prep.contiguous) {
      detail::combine_up_contiguous(vals, up + ks.cols[0], ne);
    } else {
      detail::combine_up_gather(vals, up, ks.cols.data(), ne);
    }

    // Block reduction: v_j = max(a_0..a_j), four events per table lookup.
    // `left` (the value entering the block) starts at up[ce_0] <= a_0, which
    // keeps the delta codes anchored without changing the maximum.
    Score left = up[ks.cols[0]];
    std::size_t j = 0;
    while (j < ne) {
      if (ne - j >= FourRussiansTable::kBlockEvents) {
        std::uint32_t word = 0;
        bool in_bound = true;
        for (unsigned t = 0; t < FourRussiansTable::kBlockEvents; ++t) {
          const std::int32_t delta = vals[j + t] - left;
          if (delta > FourRussiansTable::kMaxDelta) {
            in_bound = false;  // synthetic oracle broke the DP delta bound
            break;
          }
          const std::int32_t code = (delta < -1 ? -1 : delta) + 1;
          word |= static_cast<std::uint32_t>(code) << (FourRussiansTable::kCodeBits * t);
        }
        if (in_bound) {
          const std::uint16_t m = table.combine[word];
          for (unsigned t = 0; t < FourRussiansTable::kBlockEvents; ++t)
            vals[j + t] = static_cast<Score>(
                left + static_cast<Score>((m >> (FourRussiansTable::kCodeBits * t)) & 7U));
          left = vals[j + FourRussiansTable::kBlockEvents - 1];
          j += FourRussiansTable::kBlockEvents;
          continue;
        }
      }
      // Remainder events and out-of-bound blocks: the scalar max chain.
      left = std::max(left, vals[j]);
      vals[j] = left;
      ++j;
    }
    detail::scatter_event_row(row, cols, up[0], ks.cols.data(), vals, ne, prep.contiguous);
    if (stats != nullptr) stats->arc_match_events += prep.qualifying;
  }
}

// Variant-dispatching fill: the form the solvers call, with the selection
// and pooled state bundled in a SliceKernel (Workspace::slice_kernel()).
template <typename D2>
void fill_slice_dense(const SecondaryStructure& s1, const SecondaryStructure& s2,
                      const ColumnEvents& col_events, SliceBounds b, Matrix<Score>& grid,
                      const SliceKernel& kernel, D2&& d2_of, McosStats* stats = nullptr) {
  switch (kernel.variant) {
    case KernelVariant::kSimd:
      fill_slice_dense_simd(s1, s2, col_events, b, grid, *kernel.scratch,
                            static_cast<D2&&>(d2_of), stats);
      return;
    case KernelVariant::kFourRussians:
      fill_slice_dense_four_russians(s1, s2, col_events, b, grid, *kernel.scratch,
                                     *kernel.table, static_cast<D2&&>(d2_of), stats);
      return;
    case KernelVariant::kEventRun:
    case KernelVariant::kAuto:  // resolved by Workspace::slice_kernel; safe default
      break;
  }
  fill_slice_dense(s1, s2, col_events, b, grid, static_cast<D2&&>(d2_of), stats);
}

// Dense TabulateSlice: fills into `scratch` (reused across calls — the
// paper's per-call allocate/deallocate without the allocator churn) and
// returns the final value. `col_events` is the per-solve ColumnEvents table.
template <typename D2>
Score tabulate_slice_dense(const SecondaryStructure& s1, const SecondaryStructure& s2,
                           const ColumnEvents& col_events, SliceBounds b,
                           Matrix<Score>& scratch, D2&& d2_of, McosStats* stats = nullptr) {
  if (b.empty()) {
    // An empty slice (hairpin interior) still counts as one tabulated slice:
    // SRNA2's stage one visits it and memoizes 0.
    if (stats != nullptr) ++stats->slices_tabulated;
    return 0;
  }
  obs::TraceScope span("slice", "tabulate_dense", detail::slice_trace_sample());
  if (span.active())
    span.set_args(obs::trace_args({{"rows", b.width()}, {"cols", b.height()}}));
  fill_slice_dense(s1, s2, col_events, b, scratch, static_cast<D2&&>(d2_of), stats);
  if (span.active()) {
    const std::uint64_t elapsed = obs::Tracer::instance().now_us() - span.start_us();
    detail::sampled_slice_histogram().observe(static_cast<double>(elapsed) * 1e-6);
  }
  return scratch(static_cast<std::size_t>(b.width()) - 1,
                 static_cast<std::size_t>(b.height()) - 1);
}

// Variant-dispatching TabulateSlice: same contract, with the kernel selected
// by a SliceKernel (the solvers' per-slice entry point).
template <typename D2>
Score tabulate_slice_dense(const SecondaryStructure& s1, const SecondaryStructure& s2,
                           const ColumnEvents& col_events, SliceBounds b,
                           Matrix<Score>& scratch, const SliceKernel& kernel, D2&& d2_of,
                           McosStats* stats = nullptr) {
  if (b.empty()) {
    if (stats != nullptr) ++stats->slices_tabulated;
    return 0;
  }
  obs::TraceScope span("slice", "tabulate_dense", detail::slice_trace_sample());
  if (span.active())
    span.set_args(obs::trace_args({{"rows", b.width()}, {"cols", b.height()}}));
  fill_slice_dense(s1, s2, col_events, b, scratch, kernel, static_cast<D2&&>(d2_of),
                   stats);
  if (span.active()) {
    const std::uint64_t elapsed = obs::Tracer::instance().now_us() - span.start_us();
    detail::sampled_slice_histogram().observe(static_cast<double>(elapsed) * 1e-6);
  }
  return scratch(static_cast<std::size_t>(b.width()) - 1,
                 static_cast<std::size_t>(b.height()) - 1);
}

// Convenience overload building the column events locally (few-slice callers
// and tests only; see fill_slice_dense).
template <typename D2>
Score tabulate_slice_dense(const SecondaryStructure& s1, const SecondaryStructure& s2,
                           SliceBounds b, Matrix<Score>& scratch, D2&& d2_of,
                           McosStats* stats = nullptr) {
  ColumnEvents col_events;
  col_events.build(s2);
  return tabulate_slice_dense(s1, s2, col_events, b, scratch, static_cast<D2&&>(d2_of),
                              stats);
}

// Reusable buffers for the compressed (event-grid) layout: one value cell
// per (arc-right-endpoint, arc-right-endpoint) event pair plus the resolved
// d1 predecessor indices. Pooled inside Workspace so repeated solves reuse
// the allocations.
struct EventScratch {
  Matrix<Score> val;                    // one cell per (row arc, col arc)
  std::vector<std::size_t> prev_row;    // per row arc: last row with right < left(arc)
  std::vector<std::size_t> prev_col;    // per col arc: last col with right < left(arc)
  std::vector<std::size_t> stack;       // nesting stack for the prev_* scans
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  // Reserved backing bytes — feeds the engine.workspace_alloc_bytes accounting.
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return val.flat().capacity() * sizeof(Score) +
           (prev_row.capacity() + prev_col.capacity() + stack.capacity()) *
               sizeof(std::size_t);
  }
};

namespace detail {

// prev[i]: the index of the last arc a' (in `arcs`, sorted by right
// endpoint) with right(a') < left(arcs[i]) — the predecessor a d1 lookup
// resolves to — or EventScratch::kNone. Sorted-by-right order is a
// post-order of the nesting forest, so one pass with a nesting stack
// resolves every arc in amortized O(1): the stack holds the already-seen
// arcs not nested inside any later-seen arc; popping the arcs nested inside
// arcs[i] (left endpoint greater than ours — non-crossing makes that the
// containment test) leaves exactly the latest arc entirely left of arcs[i]
// on top. Every arc is pushed and popped once: O(n) total, replacing the
// per-arc binary search this used to do.
inline void fill_prev_indices(std::span<const Arc> arcs, std::vector<std::size_t>& prev,
                              std::vector<std::size_t>& stack) {
  const std::size_t n = arcs.size();
  prev.resize(n);
  stack.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const Pos left = arcs[i].left;
    while (!stack.empty() && arcs[stack.back()].left > left) stack.pop_back();
    prev[i] = stack.empty() ? EventScratch::kNone : stack.back();
    stack.push_back(i);
  }
}

}  // namespace detail

// Compressed TabulateSlice over the event grid. `rows` / `cols` are the arcs
// fully inside the slice's two intervals, sorted by right endpoint (use
// ArcIndex::interior / ArcIndex::all). Returns F(lo1, hi1, lo2, hi2).
template <typename D2>
Score tabulate_slice_compressed(std::span<const Arc> rows, std::span<const Arc> cols,
                                EventScratch& scratch, D2&& d2_of,
                                McosStats* stats = nullptr) {
  const std::size_t nr = rows.size();
  const std::size_t nc = cols.size();
  if (stats != nullptr) {
    ++stats->slices_tabulated;
    stats->cells_tabulated += static_cast<std::uint64_t>(nr) * nc;
    stats->arc_match_events += static_cast<std::uint64_t>(nr) * nc;
  }
  if (nr == 0 || nc == 0) return 0;

  obs::TraceScope span("slice", "tabulate_compressed", detail::slice_trace_sample());
  if (span.active())
    span.set_args(obs::trace_args({{"rows", static_cast<std::int64_t>(nr)},
                                   {"cols", static_cast<std::int64_t>(nc)}}));

  // prev_row[r]: the last row index r' with rows[r'].right < rows[r].left —
  // the row d1 resolves to. Resolved for all rows in one amortized O(nr)
  // nesting-stack pass (see fill_prev_indices), not a per-row binary search.
  detail::fill_prev_indices(rows, scratch.prev_row, scratch.stack);
  detail::fill_prev_indices(cols, scratch.prev_col, scratch.stack);

  Matrix<Score>& val = scratch.val;
  val.resize(nr, nc, 0);
  for (std::size_t r = 0; r < nr; ++r) {
    Score* row = val.row_data(r);
    const Score* up = r > 0 ? val.row_data(r - 1) : nullptr;
    const std::size_t d1r = scratch.prev_row[r];
    const Score* d1_row = d1r != EventScratch::kNone ? val.row_data(d1r) : nullptr;
    Score left = 0;
    for (std::size_t c = 0; c < nc; ++c) {
      Score v = up != nullptr ? std::max(up[c], left) : left;
      const std::size_t d1c = scratch.prev_col[c];
      const Score d1 =
          (d1_row != nullptr && d1c != EventScratch::kNone) ? d1_row[d1c] : 0;
      const Score d2 = d2_of(rows[r].left, rows[r].right, cols[c].left, cols[c].right);
      v = std::max(v, static_cast<Score>(1 + d1 + d2));
      row[c] = v;
      left = v;
    }
  }
  if (span.active()) {
    const std::uint64_t elapsed = obs::Tracer::instance().now_us() - span.start_us();
    detail::sampled_slice_histogram().observe(static_cast<double>(elapsed) * 1e-6);
  }
  return val(nr - 1, nc - 1);
}

}  // namespace srna
