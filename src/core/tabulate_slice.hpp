// TabulateSlice — the bottom-up kernel shared by SRNA1, SRNA2, PRNA and the
// traceback (paper Algorithm 2).
//
// A slice is the two-dimensional restriction of the 4-D table to fixed
// beginning positions (lo1, lo2):
//
//     slice[x][y] = F(lo1, x, lo2, y),   lo1 <= x <= hi1, lo2 <= y <= hi2.
//
// Inside a slice the recurrence needs
//     s1 = slice[x-1][y],  s2 = slice[x][y-1],  d1 = slice[k1-1][k2-1]
// and the one cross-slice term d2 = F(k1+1, x-1, k2+1, y-1), which the
// caller supplies through the `d2_of(k1, x, k2, y)` callable — a memo-table
// read for SRNA2/PRNA, a memoize-on-miss recursive spawn for SRNA1.
//
// Two layouts (DESIGN.md §4.4):
//   * dense      — tabulates every cell of the grid; paper-faithful, and the
//                  cell count is the paper's work measure (Figure 7).
//   * compressed — one cell per (arc-right-endpoint, arc-right-endpoint)
//                  event pair, exploiting that F only changes at events.
//
// Both return the slice's final value F(lo1, hi1, lo2, hi2) — the only value
// the memo table M retains ("only the last tabulated subproblem of each
// child slice needs to be memoized").
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/result.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rna/secondary_structure.hpp"
#include "util/matrix.hpp"

namespace srna {

namespace detail {

// Per-cell instrumentation is off the table (the cell loop IS the paper's
// cost model), so slices are traced *sampled*: when tracing is on, one slice
// in 64 per thread gets a span and a latency-histogram observation. When
// tracing is off this is a single relaxed atomic load per slice.
inline bool slice_trace_sample() noexcept {
  if (!obs::Tracer::instance().enabled()) return false;
  thread_local std::uint32_t n = 0;
  return (n++ & 63U) == 0;
}

inline obs::Histogram& sampled_slice_histogram() {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("slice.sampled_seconds");
  return hist;
}

}  // namespace detail

struct SliceBounds {
  Pos lo1 = 0, hi1 = -1, lo2 = 0, hi2 = -1;

  [[nodiscard]] bool empty() const noexcept { return hi1 < lo1 || hi2 < lo2; }
  [[nodiscard]] Pos width() const noexcept { return hi1 - lo1 + 1; }   // rows
  [[nodiscard]] Pos height() const noexcept { return hi2 - lo2 + 1; }  // cols

  // The child slice spawned by matching arcs (k1, x) and (k2, y): the
  // intervals strictly underneath the two arcs.
  static SliceBounds under(Pos k1, Pos x, Pos k2, Pos y) noexcept {
    return SliceBounds{k1 + 1, x - 1, k2 + 1, y - 1};
  }
};

// Fills `grid` (resized to width × height) with the dense slice:
// grid(x - lo1, y - lo2) = F(lo1, x, lo2, y). Used directly by the traceback,
// which needs the whole grid, and by tabulate_slice_dense below.
// No-op for empty bounds.
template <typename D2>
void fill_slice_dense(const SecondaryStructure& s1, const SecondaryStructure& s2,
                      SliceBounds b, Matrix<Score>& grid, D2&& d2_of,
                      McosStats* stats = nullptr) {
  if (b.empty()) {
    grid.resize(0, 0);
    return;
  }
  const auto rows = static_cast<std::size_t>(b.width());
  const auto cols = static_cast<std::size_t>(b.height());
  grid.resize(rows, cols, 0);

  if (stats != nullptr) {
    ++stats->slices_tabulated;
    stats->cells_tabulated += static_cast<std::uint64_t>(rows) * cols;
  }

  for (Pos x = b.lo1; x <= b.hi1; ++x) {
    const auto r = static_cast<std::size_t>(x - b.lo1);
    Score* row = grid.row_data(r);
    const Score* up = r > 0 ? grid.row_data(r - 1) : nullptr;

    // Arc of S1 ending at x, if its left endpoint is inside the slice.
    const Pos k1 = s1.arc_left_of(x);
    const bool has_arc1 = k1 >= b.lo1;
    const Score* d1_row =
        has_arc1 && k1 - 1 >= b.lo1 ? grid.row_data(static_cast<std::size_t>(k1 - 1 - b.lo1))
                                    : nullptr;

    Score left = 0;  // slice[x][y-1], carried across the row
    for (Pos y = b.lo2; y <= b.hi2; ++y) {
      const auto c = static_cast<std::size_t>(y - b.lo2);
      Score v = up != nullptr ? std::max(up[c], left) : left;
      if (has_arc1) {
        const Pos k2 = s2.arc_left_of(y);
        if (k2 >= b.lo2) {
          const Score d1 =
              (d1_row != nullptr && k2 - 1 >= b.lo2)
                  ? d1_row[static_cast<std::size_t>(k2 - 1 - b.lo2)]
                  : 0;
          const Score d2 = d2_of(k1, x, k2, y);
          v = std::max(v, static_cast<Score>(1 + d1 + d2));
          if (stats != nullptr) ++stats->arc_match_events;
        }
      }
      row[c] = v;
      left = v;
    }
  }
}

// Dense TabulateSlice: fills into `scratch` (reused across calls — the
// paper's per-call allocate/deallocate without the allocator churn) and
// returns the final value.
template <typename D2>
Score tabulate_slice_dense(const SecondaryStructure& s1, const SecondaryStructure& s2,
                           SliceBounds b, Matrix<Score>& scratch, D2&& d2_of,
                           McosStats* stats = nullptr) {
  if (b.empty()) {
    // An empty slice (hairpin interior) still counts as one tabulated slice:
    // SRNA2's stage one visits it and memoizes 0.
    if (stats != nullptr) ++stats->slices_tabulated;
    return 0;
  }
  obs::TraceScope span("slice", "tabulate_dense", detail::slice_trace_sample());
  if (span.active())
    span.set_args(obs::trace_args({{"rows", b.width()}, {"cols", b.height()}}));
  fill_slice_dense(s1, s2, b, scratch, static_cast<D2&&>(d2_of), stats);
  if (span.active()) {
    const std::uint64_t elapsed = obs::Tracer::instance().now_us() - span.start_us();
    detail::sampled_slice_histogram().observe(static_cast<double>(elapsed) * 1e-6);
  }
  return scratch(static_cast<std::size_t>(b.width()) - 1,
                 static_cast<std::size_t>(b.height()) - 1);
}

// Reusable buffers for the compressed (event-grid) layout: one value cell
// per (arc-right-endpoint, arc-right-endpoint) event pair plus the resolved
// d1 predecessor indices. Pooled inside Workspace so repeated solves reuse
// the allocations.
struct EventScratch {
  Matrix<Score> val;                    // one cell per (row arc, col arc)
  std::vector<std::size_t> prev_row;    // per row arc: last row with right < left(arc)
  std::vector<std::size_t> prev_col;    // per col arc: last col with right < left(arc)
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  // Reserved backing bytes — feeds the engine.workspace_alloc_bytes accounting.
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return val.flat().capacity() * sizeof(Score) +
           (prev_row.capacity() + prev_col.capacity()) * sizeof(std::size_t);
  }
};

// Compressed TabulateSlice over the event grid. `rows` / `cols` are the arcs
// fully inside the slice's two intervals, sorted by right endpoint (use
// ArcIndex::interior / ArcIndex::all). Returns F(lo1, hi1, lo2, hi2).
template <typename D2>
Score tabulate_slice_compressed(std::span<const Arc> rows, std::span<const Arc> cols,
                                EventScratch& scratch, D2&& d2_of,
                                McosStats* stats = nullptr) {
  const std::size_t nr = rows.size();
  const std::size_t nc = cols.size();
  if (stats != nullptr) {
    ++stats->slices_tabulated;
    stats->cells_tabulated += static_cast<std::uint64_t>(nr) * nc;
    stats->arc_match_events += static_cast<std::uint64_t>(nr) * nc;
  }
  if (nr == 0 || nc == 0) return 0;

  obs::TraceScope span("slice", "tabulate_compressed", detail::slice_trace_sample());
  if (span.active())
    span.set_args(obs::trace_args({{"rows", static_cast<std::int64_t>(nr)},
                                   {"cols", static_cast<std::int64_t>(nc)}}));

  // prev_row[r]: the last row index r' with rows[r'].right < rows[r].left —
  // the row d1 resolves to. Rows are sorted by right endpoint, so a backward
  // scan with a moving cursor is O(nr) amortized... a binary search keeps it
  // simple and O(log) per row.
  scratch.prev_row.resize(nr);
  for (std::size_t r = 0; r < nr; ++r) {
    const Pos limit = rows[r].left;  // need right < left(arc r), i.e. right <= left-1
    const auto it = std::partition_point(rows.begin(), rows.begin() + static_cast<std::ptrdiff_t>(r),
                                         [&](const Arc& a) { return a.right < limit; });
    const auto cnt = static_cast<std::size_t>(it - rows.begin());
    scratch.prev_row[r] = cnt == 0 ? EventScratch::kNone : cnt - 1;
  }
  scratch.prev_col.resize(nc);
  for (std::size_t c = 0; c < nc; ++c) {
    const Pos limit = cols[c].left;
    const auto it = std::partition_point(cols.begin(), cols.begin() + static_cast<std::ptrdiff_t>(c),
                                         [&](const Arc& a) { return a.right < limit; });
    const auto cnt = static_cast<std::size_t>(it - cols.begin());
    scratch.prev_col[c] = cnt == 0 ? EventScratch::kNone : cnt - 1;
  }

  Matrix<Score>& val = scratch.val;
  val.resize(nr, nc, 0);
  for (std::size_t r = 0; r < nr; ++r) {
    Score* row = val.row_data(r);
    const Score* up = r > 0 ? val.row_data(r - 1) : nullptr;
    const std::size_t d1r = scratch.prev_row[r];
    const Score* d1_row = d1r != EventScratch::kNone ? val.row_data(d1r) : nullptr;
    Score left = 0;
    for (std::size_t c = 0; c < nc; ++c) {
      Score v = up != nullptr ? std::max(up[c], left) : left;
      const std::size_t d1c = scratch.prev_col[c];
      const Score d1 =
          (d1_row != nullptr && d1c != EventScratch::kNone) ? d1_row[d1c] : 0;
      const Score d2 = d2_of(rows[r].left, rows[r].right, cols[c].left, cols[c].right);
      v = std::max(v, static_cast<Score>(1 + d1 + d2));
      row[c] = v;
      left = v;
    }
  }
  if (span.active()) {
    const std::uint64_t elapsed = obs::Tracer::instance().now_us() - span.start_us();
    detail::sampled_slice_histogram().observe(static_cast<double>(elapsed) * 1e-6);
  }
  return val(nr - 1, nc - 1);
}

}  // namespace srna
