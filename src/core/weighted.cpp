#include "core/weighted.hpp"

#include <functional>
#include <unordered_map>
#include <vector>

#include "core/arc_index.hpp"
#include "util/assert.hpp"
#include "util/matrix.hpp"

namespace srna {

namespace {

struct ScoringContext {
  const SecondaryStructure& s1;
  const SecondaryStructure& s2;
  const SimilarityScoring& scoring;
  const Sequence* seq1;
  const Sequence* seq2;

  [[nodiscard]] Weight arc_score(Pos k1, Pos x, Pos k2, Pos y) const {
    Weight w = scoring.arc_bonus;
    if (seq1 != nullptr && seq2 != nullptr) {
      if ((*seq1)[k1] == (*seq2)[k2]) w += scoring.arc_base_bonus;
      if ((*seq1)[x] == (*seq2)[y]) w += scoring.arc_base_bonus;
    }
    return w;
  }

  [[nodiscard]] Weight base_score(Pos x, Pos y) const {
    if (seq1 == nullptr || seq2 == nullptr) return 0.0;
    return (*seq1)[x] == (*seq2)[y] ? scoring.base_match : scoring.base_mismatch;
  }

  void validate() const {
    SRNA_REQUIRE(s1.is_nonpseudoknot() && s2.is_nonpseudoknot(),
                 "weighted similarity requires non-pseudoknot structures");
    SRNA_REQUIRE(scoring.arc_bonus >= 0 && scoring.arc_base_bonus >= 0 &&
                     scoring.base_match >= 0 && scoring.base_mismatch >= 0,
                 "scores must be non-negative (unmatched positions are free)");
    SRNA_REQUIRE(seq1 == nullptr || seq1->length() == s1.length(),
                 "sequence 1 length must match structure 1");
    SRNA_REQUIRE(seq2 == nullptr || seq2->length() == s2.length(),
                 "sequence 2 length must match structure 2");
    SRNA_REQUIRE((seq1 == nullptr) == (seq2 == nullptr),
                 "provide both sequences or neither");
  }
};

// Dense weighted slice fill; mirrors fill_slice_dense with the extra
// base-alignment case. `memo(k1+1, k2+1)` supplies d2.
Weight tabulate_weighted_slice(const ScoringContext& ctx, Pos lo1, Pos hi1, Pos lo2, Pos hi2,
                               Matrix<Weight>& grid, const Matrix<Weight>& memo,
                               std::uint64_t& cells) {
  if (hi1 < lo1 || hi2 < lo2) return 0.0;
  const auto rows = static_cast<std::size_t>(hi1 - lo1 + 1);
  const auto cols = static_cast<std::size_t>(hi2 - lo2 + 1);
  grid.resize(rows, cols, 0.0);
  cells += static_cast<std::uint64_t>(rows) * cols;

  for (Pos x = lo1; x <= hi1; ++x) {
    const auto r = static_cast<std::size_t>(x - lo1);
    Weight* row = grid.row_data(r);
    const Weight* up = r > 0 ? grid.row_data(r - 1) : nullptr;

    const Pos k1 = ctx.s1.arc_left_of(x);
    const bool has_arc1 = k1 >= lo1;
    const bool unpaired1 = !ctx.s1.paired(x);
    const Weight* d1_row =
        has_arc1 && k1 - 1 >= lo1 ? grid.row_data(static_cast<std::size_t>(k1 - 1 - lo1))
                                  : nullptr;

    Weight left = 0.0;
    for (Pos y = lo2; y <= hi2; ++y) {
      const auto c = static_cast<std::size_t>(y - lo2);
      Weight v = up != nullptr ? std::max(up[c], left) : left;
      if (unpaired1 && !ctx.s2.paired(y)) {
        const Weight diag =
            (r > 0 && c > 0) ? grid(r - 1, c - 1) : 0.0;  // out of range -> 0
        v = std::max(v, diag + ctx.base_score(x, y));
      }
      if (has_arc1) {
        const Pos k2 = ctx.s2.arc_left_of(y);
        if (k2 >= lo2) {
          const Weight d1 =
              (d1_row != nullptr && k2 - 1 >= lo2)
                  ? d1_row[static_cast<std::size_t>(k2 - 1 - lo2)]
                  : 0.0;
          const Weight d2 = memo(static_cast<std::size_t>(k1 + 1), static_cast<std::size_t>(k2 + 1));
          v = std::max(v, d1 + d2 + ctx.arc_score(k1, x, k2, y));
        }
      }
      row[c] = v;
      left = v;
    }
  }
  return grid(rows - 1, cols - 1);
}

}  // namespace

WeightedResult weighted_similarity(const SecondaryStructure& s1, const SecondaryStructure& s2,
                                   const SimilarityScoring& scoring, const Sequence* seq1,
                                   const Sequence* seq2) {
  const ScoringContext ctx{s1, s2, scoring, seq1, seq2};
  ctx.validate();

  WeightedResult result;
  if (s1.length() == 0 || s2.length() == 0) return result;

  const ArcIndex idx1(s1);
  const ArcIndex idx2(s2);
  Matrix<Weight> memo(static_cast<std::size_t>(s1.length()),
                      static_cast<std::size_t>(s2.length()), 0.0);
  Matrix<Weight> scratch;

  // Stage one: every arc pair by increasing right endpoints (the same
  // ordering guarantee as SRNA2's).
  for (std::size_t a = 0; a < idx1.size(); ++a) {
    const Arc a1 = idx1.arc(a);
    for (std::size_t b = 0; b < idx2.size(); ++b) {
      const Arc a2 = idx2.arc(b);
      const Weight value = tabulate_weighted_slice(ctx, a1.left + 1, a1.right - 1, a2.left + 1,
                                                   a2.right - 1, scratch, memo,
                                                   result.cells_tabulated);
      memo(static_cast<std::size_t>(a1.left + 1), static_cast<std::size_t>(a2.left + 1)) = value;
    }
  }

  // Stage two: the parent slice.
  result.value = tabulate_weighted_slice(ctx, 0, s1.length() - 1, 0, s2.length() - 1, scratch,
                                         memo, result.cells_tabulated);
  return result;
}

WeightedResult weighted_reference_topdown(const SecondaryStructure& s1,
                                          const SecondaryStructure& s2,
                                          const SimilarityScoring& scoring, const Sequence* seq1,
                                          const Sequence* seq2) {
  const ScoringContext ctx{s1, s2, scoring, seq1, seq2};
  ctx.validate();
  SRNA_REQUIRE(s1.length() < (1 << 16) && s2.length() < (1 << 16),
               "reference packs indices into 16 bits");

  std::unordered_map<std::uint64_t, Weight> memo;
  WeightedResult result;

  auto pack = [](Pos i1, Pos j1, Pos i2, Pos j2) {
    return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(i1)) << 48) |
           (static_cast<std::uint64_t>(static_cast<std::uint16_t>(j1)) << 32) |
           (static_cast<std::uint64_t>(static_cast<std::uint16_t>(i2)) << 16) |
           static_cast<std::uint64_t>(static_cast<std::uint16_t>(j2));
  };

  const std::function<Weight(Pos, Pos, Pos, Pos)> solve = [&](Pos i1, Pos j1, Pos i2,
                                                              Pos j2) -> Weight {
    if (j1 < i1 || j2 < i2) return 0.0;
    const std::uint64_t key = pack(i1, j1, i2, j2);
    if (const auto it = memo.find(key); it != memo.end()) return it->second;
    ++result.cells_tabulated;

    Weight v = std::max(solve(i1, j1 - 1, i2, j2), solve(i1, j1, i2, j2 - 1));
    if (!ctx.s1.paired(j1) && !ctx.s2.paired(j2))
      v = std::max(v, solve(i1, j1 - 1, i2, j2 - 1) + ctx.base_score(j1, j2));
    const Pos k1 = ctx.s1.arc_left_of(j1);
    const Pos k2 = ctx.s2.arc_left_of(j2);
    if (k1 >= i1 && k2 >= i2) {
      v = std::max(v, solve(i1, k1 - 1, i2, k2 - 1) + solve(k1 + 1, j1 - 1, k2 + 1, j2 - 1) +
                          ctx.arc_score(k1, j1, k2, j2));
    }
    memo.emplace(key, v);
    return v;
  };

  if (s1.length() > 0 && s2.length() > 0)
    result.value = solve(0, s1.length() - 1, 0, s2.length() - 1);
  return result;
}

}  // namespace srna
