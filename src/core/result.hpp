// Result and instrumentation types for the MCOS solvers.
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.hpp"

namespace srna {

// DP cell value: a count of matched arcs. A structure of length n has at
// most n/2 arcs, and n is bounded by memory long before int32 overflows.
using Score = std::int32_t;

// Execution statistics. The solvers fill what applies to them; everything
// else stays zero. These drive Table III (stage breakdown), the
// over-tabulation comparison, and several invariants tested in the suite
// (e.g. SRNA1's recursion depth never exceeding one).
struct McosStats {
  // Work counters.
  std::uint64_t cells_tabulated = 0;   // slice cells written (dense) / event cells (compressed)
  std::uint64_t slices_tabulated = 0;  // TabulateSlice invocations, parent included
  std::uint64_t arc_match_events = 0;  // cells where the dynamic case fired

  // SRNA1 memoization behaviour.
  std::uint64_t memo_lookups = 0;
  std::uint64_t memo_misses = 0;       // lookups that had to spawn a child slice
  std::uint64_t max_spawn_depth = 0;   // deepest recursive spawn chain (paper: <= 1)

  // Wall-clock phase breakdown (seconds). SRNA2/PRNA fill all three phases;
  // SRNA1 reports everything under stage1.
  double preprocess_seconds = 0.0;
  double stage1_seconds = 0.0;
  double stage2_seconds = 0.0;

  [[nodiscard]] double total_seconds() const noexcept {
    return preprocess_seconds + stage1_seconds + stage2_seconds;
  }

  [[nodiscard]] std::string to_string() const;
  // JSON rendering for run reports (obs/report.hpp).
  [[nodiscard]] obs::Json to_json() const;
};

// Adds a solver's final stats into the metrics Registry under
// "<prefix>.cells_tabulated" etc. — once per run, after the solver returns,
// so hot loops stay free of registry traffic.
void bridge_stats_to_metrics(const char* prefix, const McosStats& stats);

struct McosResult {
  Score value = 0;   // |S_c|: arcs in the maximum common ordered substructure
  McosStats stats;
};

}  // namespace srna
