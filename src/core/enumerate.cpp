#include "core/enumerate.hpp"

#include <algorithm>
#include <set>

#include "core/detail.hpp"
#include "core/tabulate_slice.hpp"
#include "util/assert.hpp"

namespace srna {

namespace {

using MatchSet = std::vector<ArcMatch>;

bool match_less(const ArcMatch& a, const ArcMatch& b) {
  if (a.a1 != b.a1) return a.a1 < b.a1;
  return a.a2 < b.a2;
}

MatchSet normalized(MatchSet set) {
  std::sort(set.begin(), set.end(), match_less);
  return set;
}

bool set_less(const MatchSet& a, const MatchSet& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end(), match_less);
}

class Enumerator {
 public:
  Enumerator(const SecondaryStructure& s1, const SecondaryStructure& s2, const MemoTable& memo,
             std::size_t limit)
      : s1_(s1), s2_(s2), memo_(memo), limit_(limit) {
    col_events_.build(s2);  // shared by every re-tabulated slice
  }

  // All distinct match sets achieving the optimum of the slice over
  // `bounds` (capped at limit_; sets truncated_ when capped anywhere).
  std::vector<MatchSet> enumerate_slice(SliceBounds bounds) {
    std::vector<MatchSet> out;
    if (bounds.empty()) {
      out.push_back({});
      return out;
    }
    Matrix<Score> grid;
    fill_slice_dense(s1_, s2_, col_events_, bounds, grid,
                     [&](Pos k1, Pos, Pos k2, Pos) { return memo_.get(k1 + 1, k2 + 1); });

    std::set<MatchSet, bool (*)(const MatchSet&, const MatchSet&)> dedup(set_less);
    collect_cell(bounds, grid, bounds.hi1, bounds.hi2, {}, dedup);
    out.assign(dedup.begin(), dedup.end());
    return out;
  }

  [[nodiscard]] bool truncated() const noexcept { return truncated_; }

 private:
  Score get(const SliceBounds& b, const Matrix<Score>& grid, Pos x, Pos y) const {
    if (x < b.lo1 || y < b.lo2) return 0;
    return grid(static_cast<std::size_t>(x - b.lo1), static_cast<std::size_t>(y - b.lo2));
  }

  // Explores every decision that reproduces the value at (x, y), carrying
  // the matches accumulated so far in this slice (`prefix`).
  //
  // Rather than walking single static moves (which revisits the same
  // decision through exponentially many monotone lattice paths), scan the
  // whole equal-value region {(x', y') <= (x, y) : g(x', y') == v} once and
  // branch on every cell where the dynamic case produces v. Because g is
  // monotone in both coordinates, the equal-value y' of each row form a
  // contiguous suffix, so the scan early-exits rows cheaply.
  void collect_cell(const SliceBounds& b, const Matrix<Score>& grid, Pos x, Pos y,
                    const MatchSet& prefix,
                    std::set<MatchSet, bool (*)(const MatchSet&, const MatchSet&)>& dedup) {
    if (dedup.size() >= limit_) {
      truncated_ = true;
      return;
    }
    const Score v = get(b, grid, x, y);
    if (v == 0) {
      dedup.insert(normalized(prefix));
      return;
    }

    for (Pos xx = x; xx >= b.lo1; --xx) {
      if (get(b, grid, xx, y) < v) break;  // rows further left only shrink
      const Pos k1 = s1_.arc_left_of(xx);
      if (k1 < b.lo1) continue;
      for (Pos yy = y; yy >= b.lo2; --yy) {
        if (get(b, grid, xx, yy) < v) break;  // contiguous suffix in y
        const Pos k2 = s2_.arc_left_of(yy);
        if (k2 < b.lo2) continue;
        const Score d1 = get(b, grid, k1 - 1, k2 - 1);
        const Score d2 = memo_.get(k1 + 1, k2 + 1);
        if (v != 1 + d1 + d2) continue;

        // Every witness of the child slice × continuing before the arcs.
        const std::vector<MatchSet> child_sets =
            enumerate_slice(SliceBounds::under(k1, xx, k2, yy));
        for (const MatchSet& child : child_sets) {
          if (dedup.size() >= limit_) {
            truncated_ = true;
            return;
          }
          MatchSet extended = prefix;
          extended.push_back(ArcMatch{Arc{k1, xx}, Arc{k2, yy}});
          extended.insert(extended.end(), child.begin(), child.end());
          collect_cell(b, grid, k1 - 1, k2 - 1, extended, dedup);
        }
      }
    }
  }

  const SecondaryStructure& s1_;
  const SecondaryStructure& s2_;
  const MemoTable& memo_;
  ColumnEvents col_events_;
  std::size_t limit_;
  bool truncated_ = false;
};

}  // namespace

std::vector<ArcMatch> EnumerationResult::persistent_matches() const {
  std::vector<ArcMatch> core;
  if (witnesses.empty()) return core;
  core = witnesses.front();
  for (std::size_t i = 1; i < witnesses.size() && !core.empty(); ++i) {
    std::vector<ArcMatch> kept;
    for (const ArcMatch& m : core)
      if (std::find(witnesses[i].begin(), witnesses[i].end(), m) != witnesses[i].end())
        kept.push_back(m);
    core = std::move(kept);
  }
  return core;
}

EnumerationResult enumerate_optimal_matches(const SecondaryStructure& s1,
                                            const SecondaryStructure& s2, std::size_t limit,
                                            const McosOptions& options) {
  SRNA_REQUIRE(limit >= 1, "witness limit must be at least 1");
  EnumerationResult result;
  MemoTable memo(s1.length(), s2.length(), 0);
  McosStats stats;
  result.value = detail::run_srna2(s1, s2, options, stats, memo);

  if (s1.length() == 0 || s2.length() == 0) {
    result.witnesses.push_back({});
    return result;
  }

  Enumerator enumerator(s1, s2, memo, limit);
  result.witnesses =
      enumerator.enumerate_slice(SliceBounds{0, s1.length() - 1, 0, s2.length() - 1});
  result.truncated = enumerator.truncated();

  for (const MatchSet& w : result.witnesses)
    SRNA_CHECK(static_cast<Score>(w.size()) == result.value,
               "enumerated witness has non-optimal size");
  return result;
}

}  // namespace srna
