#include "core/result.hpp"

#include <sstream>

namespace srna {

std::string McosStats::to_string() const {
  std::ostringstream os;
  os << "cells=" << cells_tabulated << " slices=" << slices_tabulated
     << " events=" << arc_match_events << " memo_lookups=" << memo_lookups
     << " memo_misses=" << memo_misses << " max_depth=" << max_spawn_depth
     << " pre=" << preprocess_seconds << "s s1=" << stage1_seconds
     << "s s2=" << stage2_seconds << 's';
  return os.str();
}

}  // namespace srna
