#include "core/result.hpp"

#include <sstream>

#include "obs/metrics.hpp"

namespace srna {

std::string McosStats::to_string() const {
  std::ostringstream os;
  os << "cells=" << cells_tabulated << " slices=" << slices_tabulated
     << " events=" << arc_match_events << " memo_lookups=" << memo_lookups
     << " memo_misses=" << memo_misses << " max_depth=" << max_spawn_depth
     << " pre=" << preprocess_seconds << "s s1=" << stage1_seconds
     << "s s2=" << stage2_seconds << 's';
  return os.str();
}

obs::Json McosStats::to_json() const {
  obs::Json out = obs::Json::object();
  out.set("cells_tabulated", cells_tabulated);
  out.set("slices_tabulated", slices_tabulated);
  out.set("arc_match_events", arc_match_events);
  out.set("memo_lookups", memo_lookups);
  out.set("memo_misses", memo_misses);
  out.set("max_spawn_depth", max_spawn_depth);
  out.set("preprocess_seconds", preprocess_seconds);
  out.set("stage1_seconds", stage1_seconds);
  out.set("stage2_seconds", stage2_seconds);
  out.set("total_seconds", total_seconds());
  return out;
}

void bridge_stats_to_metrics(const char* prefix, const McosStats& stats) {
  auto& registry = obs::Registry::instance();
  const std::string p(prefix);
  registry.counter(p + ".runs").add();
  registry.counter(p + ".cells_tabulated").add(stats.cells_tabulated);
  registry.counter(p + ".slices_tabulated").add(stats.slices_tabulated);
  registry.counter(p + ".arc_match_events").add(stats.arc_match_events);
  if (stats.memo_lookups > 0) registry.counter(p + ".memo_lookups").add(stats.memo_lookups);
  if (stats.memo_misses > 0) registry.counter(p + ".memo_misses").add(stats.memo_misses);
  const double total = stats.total_seconds();
  if (total > 0.0 && stats.cells_tabulated > 0)
    registry.gauge(p + ".cells_per_second")
        .set(static_cast<double>(stats.cells_tabulated) / total);
}

}  // namespace srna
