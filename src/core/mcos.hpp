// Public entry points for Maximum Common Ordered Substructure (MCOS)
// computation between two non-pseudoknot RNA secondary structures.
//
// This is the paper's primary contribution: the recurrence of Figure 2
// computed by
//   * SRNA1  — bottom-up slice tabulation with on-demand (lazy) recursive
//              child-slice spawning and memoization (Algorithm 1),
//   * SRNA2  — the two-stage eager algorithm: stage one tabulates every
//              arc-pair child slice in increasing right-endpoint order, then
//              stage two tabulates the parent slice (Algorithms 2–3),
// plus two ground-truth references (top-down memoized and full bottom-up
// four-dimensional tabulation) used for testing and the over-tabulation
// comparison. The parallel algorithm PRNA lives in src/parallel.
#pragma once

#include "core/options.hpp"
#include "core/result.hpp"
#include "core/workspace.hpp"
#include "rna/secondary_structure.hpp"

namespace srna {

// SRNA1 (Algorithm 1). Θ(n²m²) worst-case time, Θ(nm) space.
// The Workspace overloads run the identical algorithm out of caller-owned
// reusable buffers (memo table + slice scratch); the plain overloads use the
// calling thread's pooled workspace (Workspace::local()). Higher layers
// should not call these directly — dispatch through the engine registry
// (engine/engine.hpp), which owns pooling and the reuse accounting.
McosResult srna1(const SecondaryStructure& s1, const SecondaryStructure& s2,
                 const McosOptions& options = {});
McosResult srna1(const SecondaryStructure& s1, const SecondaryStructure& s2,
                 const McosOptions& options, Workspace& workspace);

// SRNA2 (Algorithms 2–3). Same asymptotics as SRNA1 with the per-cell memo
// branch and recursion removed; the paper measures it ~2x faster.
McosResult srna2(const SecondaryStructure& s1, const SecondaryStructure& s2,
                 const McosOptions& options = {});
McosResult srna2(const SecondaryStructure& s1, const SecondaryStructure& s2,
                 const McosOptions& options, Workspace& workspace);

// Ground truth #1: direct top-down memoized evaluation of the 4-D recurrence
// (exact tabulation, hash-map memo). Exponentially gentler on memory than
// the full table but still Θ(visited subproblems); use on small inputs.
McosResult mcos_reference_topdown(const SecondaryStructure& s1, const SecondaryStructure& s2);

// Ground truth #2: full bottom-up 4-D tabulation (the over-tabulating
// conventional approach the paper argues against). Allocates
// (n·(n+1)/2)·(m·(m+1)/2) cells — small inputs only.
McosResult mcos_reference_bottomup(const SecondaryStructure& s1, const SecondaryStructure& s2);

enum class McosAlgorithm { kSrna1, kSrna2, kReferenceTopDown, kReferenceBottomUp };

// Dispatch by algorithm enum (harness convenience).
McosResult mcos(const SecondaryStructure& s1, const SecondaryStructure& s2,
                McosAlgorithm algorithm, const McosOptions& options = {});

const char* to_string(McosAlgorithm algorithm) noexcept;

}  // namespace srna
