// Ground-truth reference solvers for the 4-D recurrence (paper Figure 2).
//
// * mcos_reference_topdown — the "original" depth-first algorithm: directly
//   recursive with a hash-map memo. It performs an exact tabulation (only
//   subproblems reachable from the root are visited) but carries the
//   overhead and memory unpredictability the paper's Section IV motivates
//   against. Used as oracle in tests and in the over-tabulation comparison.
//
// * mcos_reference_bottomup — the conventional bottom-up strategy: allocate
//   the full n²m² table and fill it in order of increasing right endpoints.
//   Every (i1 <= j1, i2 <= j2) subproblem is tabulated whether or not it can
//   contribute ("overtabulation").
//
// Both are deliberately simple; they are correct-by-construction mirrors of
// the recurrence, not performance code.

#include <stdexcept>
#include <unordered_map>

#include "core/mcos.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace srna {

namespace {

class TopDownSolver {
 public:
  TopDownSolver(const SecondaryStructure& s1, const SecondaryStructure& s2, McosStats& stats)
      : s1_(s1), s2_(s2), stats_(stats) {
    SRNA_REQUIRE(s1.length() < (1 << 16) && s2.length() < (1 << 16),
                 "top-down reference packs indices into 16 bits");
    memo_.reserve(1024);
  }

  Score solve(Pos i1, Pos j1, Pos i2, Pos j2) {
    // Intervals that cannot contain an arc contribute nothing.
    if (j1 - i1 < 1 || j2 - i2 < 1) return 0;

    const std::uint64_t key = pack(i1, j1, i2, j2);
    if (const auto it = memo_.find(key); it != memo_.end()) return it->second;

    ++stats_.cells_tabulated;
    Score v = std::max(solve(i1, j1 - 1, i2, j2), solve(i1, j1, i2, j2 - 1));
    const Pos k1 = s1_.arc_left_of(j1);
    const Pos k2 = s2_.arc_left_of(j2);
    if (k1 >= i1 && k2 >= i2) {
      ++stats_.arc_match_events;
      const Score d1 = solve(i1, k1 - 1, i2, k2 - 1);
      const Score d2 = solve(k1 + 1, j1 - 1, k2 + 1, j2 - 1);
      v = std::max(v, static_cast<Score>(1 + d1 + d2));
    }
    memo_.emplace(key, v);
    return v;
  }

  [[nodiscard]] std::size_t memo_size() const noexcept { return memo_.size(); }

 private:
  static std::uint64_t pack(Pos i1, Pos j1, Pos i2, Pos j2) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(i1)) << 48) |
           (static_cast<std::uint64_t>(static_cast<std::uint16_t>(j1)) << 32) |
           (static_cast<std::uint64_t>(static_cast<std::uint16_t>(i2)) << 16) |
           static_cast<std::uint64_t>(static_cast<std::uint16_t>(j2));
  }

  const SecondaryStructure& s1_;
  const SecondaryStructure& s2_;
  McosStats& stats_;
  std::unordered_map<std::uint64_t, Score> memo_;
};

}  // namespace

McosResult mcos_reference_topdown(const SecondaryStructure& s1, const SecondaryStructure& s2) {
  SRNA_REQUIRE(s1.is_nonpseudoknot() && s2.is_nonpseudoknot(),
               "MCOS model requires non-pseudoknot structures");
  McosResult result;
  WallTimer timer;
  if (s1.length() > 0 && s2.length() > 0) {
    TopDownSolver solver(s1, s2, result.stats);
    result.value = solver.solve(0, s1.length() - 1, 0, s2.length() - 1);
  }
  result.stats.stage1_seconds = timer.seconds();
  return result;
}

McosResult mcos_reference_bottomup(const SecondaryStructure& s1, const SecondaryStructure& s2) {
  SRNA_REQUIRE(s1.is_nonpseudoknot() && s2.is_nonpseudoknot(),
               "MCOS model requires non-pseudoknot structures");
  const Pos n = s1.length();
  const Pos m = s2.length();
  McosResult result;
  WallTimer timer;
  if (n == 0 || m == 0) return result;

  const std::size_t total = static_cast<std::size_t>(n) * static_cast<std::size_t>(n) *
                            static_cast<std::size_t>(m) * static_cast<std::size_t>(m);
  SRNA_REQUIRE(total <= std::size_t{256} * 1024 * 1024,
               "bottom-up reference table would exceed 1 GiB; use smaller inputs");

  const auto un = static_cast<std::size_t>(n);
  const auto um = static_cast<std::size_t>(m);
  std::vector<Score> table(total, 0);
  auto cell = [&](Pos i1, Pos j1, Pos i2, Pos j2) -> Score& {
    return table[((static_cast<std::size_t>(i1) * un + static_cast<std::size_t>(j1)) * um +
                  static_cast<std::size_t>(i2)) *
                     um +
                 static_cast<std::size_t>(j2)];
  };
  auto read = [&](Pos i1, Pos j1, Pos i2, Pos j2) -> Score {
    if (j1 - i1 < 1 || j2 - i2 < 1) return 0;
    return cell(i1, j1, i2, j2);
  };

  // Right endpoints ascending; every (i1, i2) beginning pair is tabulated —
  // the overtabulation the paper's Section IV quantifies.
  for (Pos j1 = 0; j1 < n; ++j1) {
    const Pos k1 = s1.arc_left_of(j1);
    for (Pos j2 = 0; j2 < m; ++j2) {
      const Pos k2 = s2.arc_left_of(j2);
      for (Pos i1 = 0; i1 <= j1; ++i1) {
        for (Pos i2 = 0; i2 <= j2; ++i2) {
          ++result.stats.cells_tabulated;
          Score v = std::max(read(i1, j1 - 1, i2, j2), read(i1, j1, i2, j2 - 1));
          if (k1 >= i1 && k2 >= i2) {
            ++result.stats.arc_match_events;
            const Score d1 = read(i1, k1 - 1, i2, k2 - 1);
            const Score d2 = read(k1 + 1, j1 - 1, k2 + 1, j2 - 1);
            v = std::max(v, static_cast<Score>(1 + d1 + d2));
          }
          cell(i1, j1, i2, j2) = v;
        }
      }
    }
  }

  result.value = read(0, n - 1, 0, m - 1);
  result.stats.stage1_seconds = timer.seconds();
  return result;
}

McosResult mcos(const SecondaryStructure& s1, const SecondaryStructure& s2,
                McosAlgorithm algorithm, const McosOptions& options) {
  switch (algorithm) {
    case McosAlgorithm::kSrna1: return srna1(s1, s2, options);
    case McosAlgorithm::kSrna2: return srna2(s1, s2, options);
    case McosAlgorithm::kReferenceTopDown: return mcos_reference_topdown(s1, s2);
    case McosAlgorithm::kReferenceBottomUp: return mcos_reference_bottomup(s1, s2);
  }
  throw std::invalid_argument("unknown MCOS algorithm");
}

const char* to_string(McosAlgorithm algorithm) noexcept {
  switch (algorithm) {
    case McosAlgorithm::kSrna1: return "SRNA1";
    case McosAlgorithm::kSrna2: return "SRNA2";
    case McosAlgorithm::kReferenceTopDown: return "topdown";
    case McosAlgorithm::kReferenceBottomUp: return "bottomup";
  }
  return "?";
}

}  // namespace srna
