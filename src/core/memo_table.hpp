// The two-dimensional memoization table M (paper Figure 5).
//
// M(i1, i2) holds the final value of slice_{i1,i2} — the slice spawned by
// matching the arcs whose left endpoints are i1-1 and i2-1. Because each
// position starts at most one arc, the (interval, value) association is
// unambiguous, and because F is constant past the last arc right-endpoint,
// the slice's last tabulated cell is exactly the value every later d2 lookup
// needs. This table is the entire cross-slice state of SRNA1/SRNA2/PRNA —
// the Θ(nm) space bound.
#pragma once

#include "core/memo_store.hpp"
#include "core/result.hpp"
#include "rna/arc.hpp"
#include "util/matrix.hpp"

namespace srna {

// The dense MemoStore backend. The solvers' hot loops keep calling the
// concrete get()/set() (no virtual dispatch per lookup); the MemoStore
// surface exists for store-agnostic callers — SRNA1's associative probe,
// the lean solver's recompute path, and the workspace accounting.
class MemoTable final : public MemoStore {
 public:
  // Sentinel for "slice not yet tabulated" (valid values are >= 0). SRNA1
  // initializes with the sentinel and spawns on a miss; SRNA2/PRNA
  // initialize with 0 because their stage-one order guarantees every lookup
  // hits (optionally verified via the sentinel — McosOptions::validate_memo).
  static constexpr Score kUnset = kMemoUnset;

  // An empty table; size it with reset() before use. Workspace holds one of
  // these and re-shapes it per solve so the backing storage survives calls.
  MemoTable() = default;

  MemoTable(Pos n, Pos m, Score initial)
      : table_(static_cast<std::size_t>(n), static_cast<std::size_t>(m), initial) {}

  // Re-shapes to n × m and fills with `initial`. The backing vector keeps its
  // capacity, so repeated solves of comparable size allocate nothing.
  void reset(Pos n, Pos m, Score initial) {
    table_.resize(static_cast<std::size_t>(n), static_cast<std::size_t>(m), initial);
  }

  // Bytes of backing storage currently reserved (not the logical size) —
  // feeds the engine.workspace_alloc_bytes accounting.
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return table_.flat().capacity() * sizeof(Score);
  }

  [[nodiscard]] Score get(Pos i1, Pos i2) const noexcept {
    return table_(static_cast<std::size_t>(i1), static_cast<std::size_t>(i2));
  }
  void set(Pos i1, Pos i2, Score value) noexcept {
    table_(static_cast<std::size_t>(i1), static_cast<std::size_t>(i2)) = value;
  }
  [[nodiscard]] Score& ref(Pos i1, Pos i2) noexcept {
    return table_(static_cast<std::size_t>(i1), static_cast<std::size_t>(i2));
  }

  // Row access for PRNA's per-row synchronization (the MPI_Allreduce span in
  // the paper; a barrier in the shared-memory implementation).
  [[nodiscard]] Score* row(Pos i1) noexcept {
    return table_.row_data(static_cast<std::size_t>(i1));
  }
  [[nodiscard]] Pos rows() const noexcept { return static_cast<Pos>(table_.rows()); }
  [[nodiscard]] Pos cols() const noexcept { return static_cast<Pos>(table_.cols()); }

  void fill(Score value) { table_.fill(value); }

  // MemoStore interface (associative view of the dense array).
  [[nodiscard]] const char* store_kind() const noexcept override { return "dense"; }
  bool try_load(Pos i1, Pos i2, Score& out) noexcept override {
    const Score v = get(i1, i2);
    if (v == kUnset) return false;
    out = v;
    return true;
  }
  void store(Pos i1, Pos i2, Score value) override { set(i1, i2, value); }
  [[nodiscard]] std::size_t resident_bytes() const noexcept override {
    return capacity_bytes();
  }
  [[nodiscard]] std::size_t peak_resident_bytes() const noexcept override {
    return capacity_bytes();
  }

  [[nodiscard]] const Matrix<Score>& matrix() const noexcept { return table_; }
  // Mutable access for bulk (de)serialization — checkpoint/restart.
  [[nodiscard]] Matrix<Score>& matrix_mutable() noexcept { return table_; }

 private:
  Matrix<Score> table_;
};

}  // namespace srna
