#include "core/traceback.hpp"

#include <algorithm>
#include <string>

#include "core/detail.hpp"
#include "core/tabulate_slice.hpp"
#include "core/traceback_walk.hpp"
#include "util/assert.hpp"

namespace srna {

namespace {

class TracebackWalker {
 public:
  TracebackWalker(const SecondaryStructure& s1, const SecondaryStructure& s2,
                  const MemoTable& memo)
      : s1_(s1), s2_(s2), memo_(memo) {
    col_events_.build(s2);  // shared by every re-tabulated slice of the walk
  }

  void walk(SliceBounds bounds, std::vector<ArcMatch>& out) {
    if (bounds.empty()) return;

    // Re-tabulate this slice (grid is local so only one level is live at a
    // time — children are collected first and descended into after the grid
    // is released).
    std::vector<SliceBounds> pending;
    {
      Matrix<Score> grid;
      fill_slice_dense(s1_, s2_, col_events_, bounds, grid,
                       [&](Pos k1, Pos /*x*/, Pos k2, Pos /*y*/) {
                         return memo_.get(k1 + 1, k2 + 1);
                       });
      // The decision kernel itself is shared with the lean traceback
      // (detail::walk_slice_path) — only the grid access differs.
      detail::walk_slice_path(
          s1_, s2_, bounds,
          [&](Pos x, Pos y) -> Score {
            if (x < bounds.lo1 || y < bounds.lo2) return 0;
            return grid(static_cast<std::size_t>(x - bounds.lo1),
                        static_cast<std::size_t>(y - bounds.lo2));
          },
          [&](Pos k1, Pos k2) { return memo_.get(k1 + 1, k2 + 1); }, out, pending);
    }  // grid released before descending

    for (const SliceBounds& child : pending) walk(child, out);
  }

 private:
  const SecondaryStructure& s1_;
  const SecondaryStructure& s2_;
  const MemoTable& memo_;
  ColumnEvents col_events_;
};

}  // namespace

CommonSubstructure mcos_traceback(const SecondaryStructure& s1, const SecondaryStructure& s2,
                                  const McosOptions& options) {
  CommonSubstructure result;
  MemoTable memo(s1.length(), s2.length(), 0);
  result.value = detail::run_srna2(s1, s2, options, result.stats, memo);

  if (s1.length() > 0 && s2.length() > 0) {
    TracebackWalker walker(s1, s2, memo);
    walker.walk(SliceBounds{0, s1.length() - 1, 0, s2.length() - 1}, result.matches);
  }

  SRNA_CHECK(static_cast<Score>(result.matches.size()) == result.value,
             "traceback recovered a different number of matches than the optimum");
  std::sort(result.matches.begin(), result.matches.end(),
            [](const ArcMatch& a, const ArcMatch& b) { return a.a1.right < b.a1.right; });
  return result;
}

SecondaryStructure CommonSubstructure::as_structure() const {
  // Collect the S1 endpoints of matched arcs, relabel them by rank, and
  // rebuild the arcs over the compacted coordinates.
  std::vector<Pos> endpoints;
  endpoints.reserve(matches.size() * 2);
  for (const ArcMatch& m : matches) {
    endpoints.push_back(m.a1.left);
    endpoints.push_back(m.a1.right);
  }
  std::sort(endpoints.begin(), endpoints.end());
  auto rank = [&](Pos p) {
    return static_cast<Pos>(std::lower_bound(endpoints.begin(), endpoints.end(), p) -
                            endpoints.begin());
  };
  std::vector<Arc> arcs;
  arcs.reserve(matches.size());
  for (const ArcMatch& m : matches) arcs.push_back(Arc{rank(m.a1.left), rank(m.a1.right)});
  return SecondaryStructure::from_arcs(static_cast<Pos>(endpoints.size()), std::move(arcs));
}

std::string validate_matches(const SecondaryStructure& s1, const SecondaryStructure& s2,
                             const std::vector<ArcMatch>& matches) {
  auto describe = [](const ArcMatch& m) {
    return "match " + std::to_string(m.a1.left) + "," + std::to_string(m.a1.right) + " <-> " +
           std::to_string(m.a2.left) + "," + std::to_string(m.a2.right);
  };

  for (const ArcMatch& m : matches) {
    if (m.a1.right >= s1.length() || s1.arc_left_of(m.a1.right) != m.a1.left)
      return describe(m) + ": first arc not in S1";
    if (m.a2.right >= s2.length() || s2.arc_left_of(m.a2.right) != m.a2.left)
      return describe(m) + ": second arc not in S2";
  }

  // Relation of two arcs in a non-crossing structure with unique endpoints:
  // -1 = a entirely before b, +1 = b entirely before a, 2 = a inside b,
  // 3 = b inside a. Matched pairs must relate identically on both sides.
  auto relation = [](const Arc& a, const Arc& b) -> int {
    if (a.right < b.left) return -1;
    if (b.right < a.left) return 1;
    if (b.nests(a)) return 2;
    if (a.nests(b)) return 3;
    return 0;  // crossing or shared endpoint — invalid here
  };

  for (std::size_t i = 0; i < matches.size(); ++i) {
    for (std::size_t j = i + 1; j < matches.size(); ++j) {
      if (matches[i].a1 == matches[j].a1 || matches[i].a2 == matches[j].a2)
        return describe(matches[i]) + " and " + describe(matches[j]) + ": arc used twice";
      const int r1 = relation(matches[i].a1, matches[j].a1);
      const int r2 = relation(matches[i].a2, matches[j].a2);
      if (r1 == 0 || r2 == 0)
        return describe(matches[i]) + " and " + describe(matches[j]) + ": arcs overlap";
      if (r1 != r2)
        return describe(matches[i]) + " and " + describe(matches[j]) +
               ": ordering differs between the two structures";
    }
  }
  return {};
}

}  // namespace srna
