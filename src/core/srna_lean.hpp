// SRNA-lean — the space-lean long-sequence solve path.
//
// Same recurrence, same two-stage eager schedule as SRNA2, but the
// cross-slice memo lives in a WindowedMemoStore (core/memo_store.hpp)
// instead of the dense Θ(nm) table, and slices are streamed
// (core/lean_slice.hpp) instead of materialized. The resident score state is
//   O(n + m)                      index maps and column events
//   + live memo window            capped by the byte budget
//   + (2 + nesting depth) rows    streaming cur/prev + retained d1 rows
// A d2 probe that misses (row evicted under the budget, or simply not yet
// tabulated) recomputes the child slice on demand, SRNA1-style; the
// recursion terminates because children are strictly nested. Under a
// generous budget nothing is ever evicted and the work matches SRNA2
// exactly; under pressure the store trades recompute time for bytes.
//
// Scores and tracebacks are bit-identical to the dense backends: the
// streaming kernel evaluates the identical event-run recurrence, and the
// lean traceback walks the identical decision kernel
// (core/traceback_walk.hpp) over a checkpoint-replay grid view.
#pragma once

#include <cstdint>

#include "core/checkpoint.hpp"
#include "core/memo_store.hpp"
#include "core/options.hpp"
#include "core/result.hpp"
#include "core/traceback.hpp"
#include "core/workspace.hpp"
#include "rna/secondary_structure.hpp"

namespace srna {

struct LeanOptions {
  McosOptions base;

  // Cap on resident solver bytes (memo window + streaming scratch);
  // 0 = unlimited (the window keeps every row, like a sparse dense table).
  // A non-zero budget below lean_minimum_bytes(s1, s2) fails fast with
  // std::invalid_argument at solve entry — never mid-solve.
  std::uint64_t memory_budget_bytes = 0;
};

// The irreducible resident floor for a pair: index maps + one memo row +
// the streaming rows (cur/prev + one retained row per nesting level) + the
// column-event table. Budgets below this are rejected up front.
std::size_t lean_minimum_bytes(const SecondaryStructure& s1, const SecondaryStructure& s2);

// Upper bound on the streaming-scratch part of the floor (everything except
// the memo window). The solver gives the window budget - this.
std::size_t lean_scratch_floor_bytes(const SecondaryStructure& s1,
                                     const SecondaryStructure& s2);

// SRNA-lean solve. Both layouts are honored (kDense streams; kCompressed
// tabulates the event grid per slice — space-lean in the memo dimension
// only). The workspace overload reuses the caller's pooled buffers.
McosResult srna_lean(const SecondaryStructure& s1, const SecondaryStructure& s2,
                     const LeanOptions& options = {});
McosResult srna_lean(const SecondaryStructure& s1, const SecondaryStructure& s2,
                     const LeanOptions& options, Workspace& workspace);

// Checkpoint/restart for the lean path (dense layout): the serialized state
// is the *resident window* plus the count of completed stage-one rows —
// evicted rows are recomputed on demand after resume, so a checkpoint under
// a tight budget stays small. File format "SRNALCK1"; same policy semantics
// as srna2_checkpointed.
CheckpointedRun srna_lean_checkpointed(const SecondaryStructure& s1,
                                       const SecondaryStructure& s2,
                                       const LeanOptions& options,
                                       const CheckpointPolicy& policy);

// MCOS value plus one witness set, computed entirely on the lean path: the
// walk re-streams each slice once, snapshotting (row, retained-stack)
// checkpoints every ~sqrt(width) rows, and materializes row blocks on demand
// by replaying from the nearest checkpoint — each block is replayed at most
// once because the walk frontier is monotone. Matches mcos_traceback
// bit-for-bit on the same inputs.
CommonSubstructure mcos_traceback_lean(const SecondaryStructure& s1,
                                       const SecondaryStructure& s2,
                                       const LeanOptions& options = {});
CommonSubstructure mcos_traceback_lean(const SecondaryStructure& s1,
                                       const SecondaryStructure& s2,
                                       const LeanOptions& options, Workspace& workspace);

namespace detail {

// Runs the lean solve and leaves the populated window store in `store`
// (configured by this call). Exposed for the traceback and tests, mirroring
// detail::run_srna2.
Score run_srna_lean(const SecondaryStructure& s1, const SecondaryStructure& s2,
                    const LeanOptions& options, McosStats& stats, WindowedMemoStore& store,
                    Workspace& workspace);

}  // namespace detail

}  // namespace srna
