// Weighted structural similarity — the Bafna-style formulation the paper's
// MCOS recurrence was specialized from.
//
// Section III-B derives the MCOS recurrence from Bafna et al.'s RNA string
// similarity by (1) dropping the weight functions and (2) dropping the
// subproblem that aligns interval endpoints without matching arcs. This
// module restores both as an extension: arcs score a configurable bonus
// (plus per-endpoint base agreement when sequences are supplied), and two
// unpaired endpoints may be aligned for a base-level score.
//
//   W[i1,j1,i2,j2] = max(
//     W[i1,j1-1,i2,j2],                          # j1 unmatched (free)
//     W[i1,j1,i2,j2-1],                          # j2 unmatched (free)
//     W[i1,j1-1,i2,j2-1] + base_score(j1, j2)    # both unpaired: align bases
//     W[i1,k1-1,i2,k2-1] + W[k1+1,j1-1,k2+1,j2-1]
//                        + arc_score((k1,j1),(k2,j2))   # matched arcs
//   )
//
// All scores are required to be non-negative (unmatched positions are
// free), which keeps the slice decomposition intact: the cross-slice term
// is still keyed by the unique arc pair, so the same two-stage SRNA2
// machinery — and its Θ(nm) space — carries over unchanged.
#pragma once

#include <optional>

#include "rna/secondary_structure.hpp"
#include "rna/sequence.hpp"

namespace srna {

using Weight = double;

struct SimilarityScoring {
  // Score for matching any arc pair.
  Weight arc_bonus = 1.0;
  // Added per agreeing endpoint base (left and right separately) when both
  // sequences are present.
  Weight arc_base_bonus = 0.25;
  // Score for aligning two unpaired positions with identical bases
  // (sequences required; 0 without them).
  Weight base_match = 0.5;
  // Score for aligning two unpaired positions with differing bases.
  Weight base_mismatch = 0.0;

  // The unit scoring reduces the weighted similarity to the MCOS value
  // exactly (tested): arcs count 1, everything else 0.
  static SimilarityScoring unit() { return {1.0, 0.0, 0.0, 0.0}; }
};

struct WeightedResult {
  Weight value = 0.0;
  std::uint64_t cells_tabulated = 0;
};

// Two-stage (SRNA2-style) weighted similarity. Sequences are optional; when
// absent, base-dependent terms contribute nothing. Throws on pseudoknots,
// negative scores, or sequence/structure length mismatches.
WeightedResult weighted_similarity(const SecondaryStructure& s1, const SecondaryStructure& s2,
                                   const SimilarityScoring& scoring = {},
                                   const Sequence* seq1 = nullptr,
                                   const Sequence* seq2 = nullptr);

// Ground-truth top-down memoized evaluation of the same recurrence (small
// inputs; used by the test suite).
WeightedResult weighted_reference_topdown(const SecondaryStructure& s1,
                                          const SecondaryStructure& s2,
                                          const SimilarityScoring& scoring = {},
                                          const Sequence* seq1 = nullptr,
                                          const Sequence* seq2 = nullptr);

}  // namespace srna
