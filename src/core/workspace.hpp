// Workspace — the reusable working set of one MCOS solve.
//
// The paper's Θ(nm)-space argument is that the entire cross-slice state fits
// in the memo table M plus one live slice grid. That working set is small
// enough to keep around: corpus workloads (all_pairs_similarity,
// query_top_k, the bench sweeps) run millions of independent pair solves,
// and rebuilding M and the slice scratch for each one is pure allocator
// churn. A Workspace owns those buffers and re-shapes them per solve —
// vector capacity survives, so a steady-state solve allocates nothing.
//
// Buffers:
//   * memo(n, m, initial)  — the memo table M, re-shaped per solve
//   * dense_grid(level)    — dense slice grids; `level` keys SRNA1's live
//                            recursion levels (0 for the non-recursive
//                            solvers), each level a stable, reusable Matrix
//   * events(level)        — EventScratch for the compressed layout, same
//                            level discipline
//   * column_events()      — the per-solve S2 column-event table the dense
//                            event-run kernel sweeps between (rebuild per
//                            solve; capacity survives)
//
// Thread pooling: local() hands out one Workspace per thread (thread_local),
// which is what the OpenMP pair loops in the structure DB and PRNA's
// stage-one workers use — each worker reuses its own buffers across pairs /
// rows with no synchronization. The engine wraps solves in
// solve_with(), which counts reuse (engine.workspace_reuse) and capacity
// growth (engine.workspace_alloc_bytes) against these footprints.
//
// A Workspace is NOT thread-safe; share nothing, pool per thread.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/lean_slice.hpp"
#include "core/memo_store.hpp"
#include "core/memo_table.hpp"
#include "core/tabulate_slice.hpp"

namespace srna {

class Workspace {
 public:
  Workspace() = default;

  // Not copyable (the point is to share the buffers, not duplicate them);
  // movable so containers of workspaces work.
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) noexcept = default;
  Workspace& operator=(Workspace&&) noexcept = default;

  // The memo table, re-shaped to n × m and filled with `initial`. The
  // reference stays valid until the next memo() call on this workspace.
  MemoTable& memo(Pos n, Pos m, Score initial) {
    memo_.reset(n, m, initial);
    return memo_;
  }
  // The memo as last shaped — for callers that tabulate first and read after
  // (traceback, enumeration).
  [[nodiscard]] MemoTable& memo() noexcept { return memo_; }

  // Dense slice grid for recursion level `level` (0 for non-recursive use).
  // Level-indexed because SRNA1 spawns child slices while the parent grid is
  // live; each live level needs its own grid. Grids are heap-anchored, so
  // references survive the vector growing for deeper levels.
  Matrix<Score>& dense_grid(std::size_t level = 0) {
    while (dense_grids_.size() <= level)
      dense_grids_.push_back(std::make_unique<Matrix<Score>>());
    return *dense_grids_[level];
  }

  // Compressed-layout event scratch, same level discipline as dense_grid().
  EventScratch& events(std::size_t level = 0) {
    while (events_.size() <= level) events_.push_back(std::make_unique<EventScratch>());
    return *events_[level];
  }

  // The S2 column-event table for the dense event-run kernel. One per
  // workspace (every recursion level of a solve reads the same S2): callers
  // `.build(s2)` it once at solve start and pass it to the slice kernels.
  ColumnEvents& column_events() noexcept { return column_events_; }

  // Per-event kernel scratch for the batched slice kernels, same level
  // discipline as dense_grid() (SRNA1 fills child slices while the parent's
  // prepared events are live).
  KernelScratch& kernel_scratch(std::size_t level = 0) {
    while (kernel_scratch_.size() <= level)
      kernel_scratch_.push_back(std::make_unique<KernelScratch>());
    return *kernel_scratch_[level];
  }

  // The Four-Russians block-combine table, built on first use (~8 KiB,
  // shared by every solve on this workspace; the table depends on nothing
  // solve-specific).
  const FourRussiansTable& four_russians_table() {
    four_russians_.build();
    return four_russians_;
  }

  // Bundles a resolved kernel variant with this workspace's pooled state —
  // what the solvers thread to fill_slice_dense per slice.
  [[nodiscard]] SliceKernel slice_kernel(KernelVariant variant, std::size_t level = 0) {
    SliceKernel kernel;
    kernel.variant = resolve_kernel_variant(variant);
    if (kernel.variant != KernelVariant::kEventRun)
      kernel.scratch = &kernel_scratch(level);
    if (kernel.variant == KernelVariant::kFourRussians)
      kernel.table = &four_russians_table();
    return kernel;
  }

  // The windowed (space-lean) memo store for the srna-lean path. The solver
  // configure()s it per solve; resident rows survive for the traceback.
  WindowedMemoStore& lean_store() noexcept { return lean_store_; }

  // Streaming-slice scratch, same level discipline as dense_grid(): the lean
  // recompute-on-miss path streams a child slice while the parent sweep is
  // live, so each live recursion level needs its own rows.
  LeanSliceScratch& lean_scratch(std::size_t level = 0) {
    while (lean_scratch_.size() <= level)
      lean_scratch_.push_back(std::make_unique<LeanSliceScratch>());
    return *lean_scratch_[level];
  }

  // Reserved bytes of the cross-slice memo state — the dense table M (the
  // paper's Θ(nm) bound) plus whatever the windowed store holds resident.
  [[nodiscard]] std::size_t memo_bytes() const noexcept {
    return memo_.capacity_bytes() + lean_store_.resident_bytes();
  }

  // Reserved bytes of the per-slice scratch: dense grids, event scratch, and
  // the streaming rows of the lean path.
  [[nodiscard]] std::size_t slice_scratch_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& g : dense_grids_) total += g->flat().capacity() * sizeof(Score);
    for (const auto& e : events_) total += e->capacity_bytes();
    for (const auto& l : lean_scratch_) total += l->capacity_bytes();
    for (const auto& k : kernel_scratch_) total += k->capacity_bytes();
    total += four_russians_.capacity_bytes();
    return total;
  }

  // Reserved bytes of the per-solve S2 column-event table.
  [[nodiscard]] std::size_t event_table_bytes() const noexcept {
    return column_events_.capacity_bytes();
  }

  // Slice scratch + event table. Together with memo_bytes() this is the
  // whole footprint, split along the paper's "memo table + one live slice"
  // line.
  [[nodiscard]] std::size_t scratch_bytes() const noexcept {
    return slice_scratch_bytes() + event_table_bytes();
  }

  // Total reserved backing bytes across all buffers. The engine samples this
  // before/after a solve; the delta is what the solve actually allocated.
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return memo_bytes() + scratch_bytes();
  }

  // Number of solves this workspace has served (engine bookkeeping: the
  // second and later solves on a workspace are reuses).
  [[nodiscard]] std::uint64_t solves() const noexcept { return solves_; }
  void note_solve() noexcept { ++solves_; }

  // Session memory budget this workspace should stay under between solves
  // (0 = none). solve_with() sets it from SolverConfig.memory_budget_bytes
  // and trims the pool after a solve that overshot it.
  void set_budget(std::size_t bytes) noexcept { budget_ = bytes; }
  [[nodiscard]] std::size_t budget() const noexcept { return budget_; }

  // Releases pooled backing storage until the footprint fits `max_bytes`
  // (deepest recursion levels first — they only exist for rare deep solves —
  // then the lean window, the event table, and finally the memo table).
  // Returns the footprint after trimming and bumps engine.workspace_trims
  // when anything was actually released. The next solve re-allocates what it
  // needs; nothing here is live between solves.
  std::size_t trim(std::size_t max_bytes);

  // Releases all buffers (memory pressure valve; the next solve re-allocates).
  void clear() {
    memo_ = MemoTable{};
    dense_grids_.clear();
    events_.clear();
    lean_scratch_.clear();
    kernel_scratch_.clear();
    four_russians_ = FourRussiansTable{};
    lean_store_.release();
    column_events_ = ColumnEvents{};
  }

  // The calling thread's pooled workspace. OpenMP worker threads persist
  // across parallel regions, so the pool amortizes across an entire pair
  // loop (and across successive loops).
  static Workspace& local();

 private:
  MemoTable memo_;
  std::vector<std::unique_ptr<Matrix<Score>>> dense_grids_;
  std::vector<std::unique_ptr<EventScratch>> events_;
  std::vector<std::unique_ptr<LeanSliceScratch>> lean_scratch_;
  std::vector<std::unique_ptr<KernelScratch>> kernel_scratch_;
  FourRussiansTable four_russians_;
  WindowedMemoStore lean_store_;
  ColumnEvents column_events_;
  std::uint64_t solves_ = 0;
  std::size_t budget_ = 0;
};

}  // namespace srna
