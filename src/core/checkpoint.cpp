#include "core/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "core/arc_index.hpp"
#include "core/memo_table.hpp"
#include "core/tabulate_slice.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace srna {

namespace {

constexpr char kMagic[8] = {'S', 'R', 'N', 'A', '2', 'C', 'K', '1'};

struct Header {
  char magic[8];
  std::uint64_t fingerprint1;
  std::uint64_t fingerprint2;
  std::int64_t n;
  std::int64_t m;
  std::uint64_t rows_done;
  std::uint64_t cells_tabulated;
  std::uint64_t slices_tabulated;
  std::uint64_t arc_match_events;
};

void write_checkpoint(const std::string& path, const Header& header, const MemoTable& memo) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    SRNA_REQUIRE(out.good(), "cannot write checkpoint: " + tmp);
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    const auto& flat = memo.matrix().flat();
    out.write(reinterpret_cast<const char*>(flat.data()),
              static_cast<std::streamsize>(flat.size() * sizeof(Score)));
    SRNA_CHECK(out.good(), "checkpoint write failed: " + tmp);
  }
  std::filesystem::rename(tmp, path);  // atomic publish
}

// Returns true when a valid, matching checkpoint was loaded.
bool load_checkpoint(const std::string& path, const Header& expected, Header& header,
                     MemoTable& memo) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  if (!in.read(reinterpret_cast<char*>(&header), sizeof(header)))
    throw std::invalid_argument("checkpoint truncated: " + path);
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0)
    throw std::invalid_argument("not an SRNA2 checkpoint: " + path);
  if (header.fingerprint1 != expected.fingerprint1 ||
      header.fingerprint2 != expected.fingerprint2 || header.n != expected.n ||
      header.m != expected.m)
    throw std::invalid_argument("checkpoint does not match these inputs: " + path);

  auto& flat = memo.matrix_mutable().flat();
  if (!in.read(reinterpret_cast<char*>(flat.data()),
               static_cast<std::streamsize>(flat.size() * sizeof(Score))))
    throw std::invalid_argument("checkpoint memo table truncated: " + path);
  return true;
}

}  // namespace

std::uint64_t structure_fingerprint(const SecondaryStructure& s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  auto mix = [&](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(static_cast<std::uint64_t>(s.length()));
  for (const Arc& a : s.arcs_by_right()) {
    mix(static_cast<std::uint64_t>(a.left));
    mix(static_cast<std::uint64_t>(a.right));
  }
  return h;
}

CheckpointedRun srna2_checkpointed(const SecondaryStructure& s1, const SecondaryStructure& s2,
                                   const McosOptions& options, const CheckpointPolicy& policy) {
  SRNA_REQUIRE(!policy.path.empty(), "checkpoint path must be set");
  SRNA_REQUIRE(policy.every_rows >= 1, "checkpoint interval must be >= 1 row");
  SRNA_REQUIRE(s1.is_nonpseudoknot() && s2.is_nonpseudoknot(),
               "MCOS model requires non-pseudoknot structures");
  SRNA_REQUIRE(options.layout == SliceLayout::kDense,
               "checkpointing currently supports the dense layout");

  CheckpointedRun run;
  const ArcIndex idx1(s1);
  const ArcIndex idx2(s2);
  run.rows_total = idx1.size();

  Header expected{};
  std::memcpy(expected.magic, kMagic, sizeof(kMagic));
  expected.fingerprint1 = structure_fingerprint(s1);
  expected.fingerprint2 = structure_fingerprint(s2);
  expected.n = s1.length();
  expected.m = s2.length();

  MemoTable memo(s1.length(), s2.length(), 0);
  McosStats stats;
  std::uint64_t first_row = 0;

  Header loaded{};
  if (load_checkpoint(policy.path, expected, loaded, memo)) {
    run.resumed = true;
    first_row = loaded.rows_done;
    stats.cells_tabulated = loaded.cells_tabulated;
    stats.slices_tabulated = loaded.slices_tabulated;
    stats.arc_match_events = loaded.arc_match_events;
    SRNA_REQUIRE(first_row <= run.rows_total, "checkpoint row count out of range");
  }

  auto d2_lookup = [&](Pos k1, Pos /*x*/, Pos k2, Pos /*y*/) -> Score {
    return memo.get(k1 + 1, k2 + 1);
  };

  // Stage one from the first incomplete row.
  WallTimer phase;
  Matrix<Score> scratch;
  ColumnEvents col_events;
  col_events.build(s2);
  std::uint64_t rows_this_run = 0;
  std::uint64_t row = first_row;
  for (; row < run.rows_total; ++row) {
    if (policy.max_rows_this_run != 0 && rows_this_run >= policy.max_rows_this_run) break;
    const Arc arc1 = idx1.arc(row);
    for (std::size_t b = 0; b < idx2.size(); ++b) {
      const Arc arc2 = idx2.arc(b);
      const Score value = tabulate_slice_dense(
          s1, s2, col_events,
          SliceBounds::under(arc1.left, arc1.right, arc2.left, arc2.right), scratch,
          d2_lookup, &stats);
      memo.set(arc1.left + 1, arc2.left + 1, value);
    }
    ++rows_this_run;
    if ((row + 1 - first_row) % policy.every_rows == 0 && row + 1 < run.rows_total) {
      Header header = expected;
      header.rows_done = row + 1;
      header.cells_tabulated = stats.cells_tabulated;
      header.slices_tabulated = stats.slices_tabulated;
      header.arc_match_events = stats.arc_match_events;
      write_checkpoint(policy.path, header, memo);
    }
  }
  stats.stage1_seconds = phase.seconds();
  run.rows_done = row;

  if (row < run.rows_total) {
    // Interrupted by max_rows_this_run: persist progress and stop.
    Header header = expected;
    header.rows_done = row;
    header.cells_tabulated = stats.cells_tabulated;
    header.slices_tabulated = stats.slices_tabulated;
    header.arc_match_events = stats.arc_match_events;
    write_checkpoint(policy.path, header, memo);
    run.complete = false;
    return run;
  }

  // Stage two and cleanup.
  phase.reset();
  run.result.value =
      tabulate_slice_dense(s1, s2, col_events,
                           SliceBounds{0, s1.length() - 1, 0, s2.length() - 1}, scratch,
                           d2_lookup, &stats);
  stats.stage2_seconds = phase.seconds();
  run.result.stats = stats;
  run.complete = true;
  std::error_code ec;
  std::filesystem::remove(policy.path, ec);  // best effort
  return run;
}

}  // namespace srna
