// Traceback: recovering the common substructure itself, not just its size.
//
// The Θ(nm)-space design discards every slice after its final value is
// memoized, so the usual "walk the full table" traceback is unavailable. The
// paper notes this in passing ("unless we are interested in backtracing the
// subproblem that spawned the child slice..."). This module implements that
// extension: after an SRNA2 run, any slice can be *re*-tabulated in
// O(width × height) using the retained memo table M for its d2 terms, walked
// for one optimal decision path, and discarded again before descending into
// the child slices the path matched. Peak memory stays O(nm): only one
// re-tabulated grid is live at a time.
#pragma once

#include <vector>

#include "core/options.hpp"
#include "core/result.hpp"
#include "rna/secondary_structure.hpp"

namespace srna {

// One matched arc pair: arc `a1` of S1 mapped onto arc `a2` of S2.
struct ArcMatch {
  Arc a1;
  Arc a2;

  // Lexicographic order (enumeration canonicalizes witness sets with it).
  friend auto operator<=>(const ArcMatch&, const ArcMatch&) = default;
};

struct CommonSubstructure {
  // All matched pairs, sorted by increasing right endpoint in S1. Its size
  // equals the MCOS value.
  std::vector<ArcMatch> matches;
  Score value = 0;
  McosStats stats;  // the underlying SRNA2 run's statistics

  // Materializes S_c: the common substructure as a standalone structure over
  // the 2·matches endpoints (relabelled 0..2k-1 in S1 order).
  [[nodiscard]] SecondaryStructure as_structure() const;
};

// Computes the MCOS and one witness set of matched arc pairs.
CommonSubstructure mcos_traceback(const SecondaryStructure& s1, const SecondaryStructure& s2,
                                  const McosOptions& options = {});

// Checks that `matches` is a valid common ordered substructure of (s1, s2):
// every matched arc exists in its structure, no arc is used twice, and every
// pair of matches relates identically (disjoint-before / nested) on both
// sides — i.e. the induced endpoint mapping preserves order and bonds.
// Returns an empty string when valid, else a description of the violation.
std::string validate_matches(const SecondaryStructure& s1, const SecondaryStructure& s2,
                             const std::vector<ArcMatch>& matches);

}  // namespace srna
