#include "core/memo_store.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace srna {

void WindowedMemoStore::configure(const SecondaryStructure& s1, const SecondaryStructure& s2,
                                  std::size_t budget_bytes) {
  const auto n = static_cast<std::size_t>(s1.length());
  const auto m = static_cast<std::size_t>(s2.length());
  row_of_.assign(n + 1, -1);
  col_of_.assign(m + 1, -1);
  rows_.clear();
  // Exact reservation: fixed_bytes() is capacity-true, and minimum_bytes()
  // promises the floor of a fresh store — push_back growth would overshoot it.
  rows_.reserve(static_cast<std::size_t>(s1.arc_count()));
  cols_total_ = 0;
  for (std::size_t i2 = 0; i2 < m; ++i2) {
    const Pos k2 = s2.arc_left_of(static_cast<Pos>(i2));
    if (k2 < 0) continue;
    col_of_[static_cast<std::size_t>(k2) + 1] = static_cast<std::int32_t>(cols_total_++);
  }
  for (std::size_t i1 = 0; i1 < n; ++i1) {
    const Pos k1 = s1.arc_left_of(static_cast<Pos>(i1));
    if (k1 < 0) continue;
    row_of_[static_cast<std::size_t>(k1) + 1] = static_cast<std::int32_t>(rows_.size());
    Row row;
    row.key = k1 + 1;
    rows_.push_back(std::move(row));
  }
  budget_ = budget_bytes;
  rows_resident_ = 0;
  row_value_bytes_ = 0;
  tick_ = 0;
  evictions_ = 0;
  peak_bytes_ = fixed_bytes();
}

std::size_t WindowedMemoStore::fixed_bytes() const noexcept {
  return row_of_.capacity() * sizeof(std::int32_t) + col_of_.capacity() * sizeof(std::int32_t) +
         rows_.capacity() * sizeof(Row);
}

std::size_t WindowedMemoStore::resident_bytes() const noexcept {
  return fixed_bytes() + row_value_bytes_;
}

bool WindowedMemoStore::try_load(Pos i1, Pos i2, Score& out) noexcept {
  const std::int32_t r = row_of_[static_cast<std::size_t>(i1)];
  const std::int32_t c = col_of_[static_cast<std::size_t>(i2)];
  if (r < 0 || c < 0) return false;
  Row& row = rows_[static_cast<std::size_t>(r)];
  if (!row.resident) return false;
  const Score v = row.values[static_cast<std::size_t>(c)];
  if (v == kMemoUnset) return false;
  row.last_used = ++tick_;
  out = v;
  return true;
}

void WindowedMemoStore::store(Pos i1, Pos i2, Score value) {
  const std::int32_t r = row_of_[static_cast<std::size_t>(i1)];
  const std::int32_t c = col_of_[static_cast<std::size_t>(i2)];
  SRNA_CHECK(r >= 0 && c >= 0, "windowed memo store: (i1, i2) does not name an arc pair");
  const auto ordinal = static_cast<std::size_t>(r);
  Row& row = rows_[ordinal];
  if (!row.resident) materialize(ordinal);
  row.values[static_cast<std::size_t>(c)] = value;
  row.last_used = ++tick_;
}

void WindowedMemoStore::materialize(std::size_t ordinal) {
  Row& row = rows_[ordinal];
  row.values.assign(cols_total_, kMemoUnset);
  row.resident = true;
  ++rows_resident_;
  row_value_bytes_ += row.values.capacity() * sizeof(Score);
  row.last_used = ++tick_;
  evict_over_budget(ordinal);
  peak_bytes_ = std::max(peak_bytes_, resident_bytes());
}

void WindowedMemoStore::evict_over_budget(std::size_t keep_ordinal) {
  // The window never shrinks below the row just touched: a budget that can't
  // even hold one row is rejected up front (lean_minimum_bytes), so refusing
  // to evict the working row here can't oscillate.
  while (budget_ != 0 && resident_bytes() > budget_ && rows_resident_ > 1) {
    std::size_t victim = rows_.size();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (!rows_[i].resident || i == keep_ordinal) continue;
      if (rows_[i].last_used < oldest) {
        oldest = rows_[i].last_used;
        victim = i;
      }
    }
    if (victim == rows_.size()) break;
    Row& row = rows_[victim];
    row_value_bytes_ -= row.values.capacity() * sizeof(Score);
    std::vector<Score>().swap(row.values);  // actually release, not just clear
    row.resident = false;
    --rows_resident_;
    ++evictions_;
  }
}

void WindowedMemoStore::restore_row(std::size_t ordinal, std::span<const Score> values) {
  SRNA_REQUIRE(ordinal < rows_.size() && values.size() == cols_total_,
               "windowed memo store: restored row does not match the configured shape");
  Row& row = rows_[ordinal];
  if (!row.resident) {
    row.resident = true;
    ++rows_resident_;
  } else {
    row_value_bytes_ -= row.values.capacity() * sizeof(Score);
  }
  row.values.assign(values.begin(), values.end());
  row_value_bytes_ += row.values.capacity() * sizeof(Score);
  row.last_used = ++tick_;
  evict_over_budget(ordinal);
  peak_bytes_ = std::max(peak_bytes_, resident_bytes());
}

void WindowedMemoStore::release(bool release_maps) {
  for (Row& row : rows_) {
    if (row.resident) ++evictions_;
    std::vector<Score>().swap(row.values);
    row.resident = false;
  }
  rows_resident_ = 0;
  row_value_bytes_ = 0;
  if (release_maps) {
    std::vector<std::int32_t>().swap(row_of_);
    std::vector<std::int32_t>().swap(col_of_);
    std::vector<Row>().swap(rows_);
    cols_total_ = 0;
  }
}

std::size_t WindowedMemoStore::minimum_bytes(const SecondaryStructure& s1,
                                             const SecondaryStructure& s2) noexcept {
  const auto n = static_cast<std::size_t>(s1.length());
  const auto m = static_cast<std::size_t>(s2.length());
  const auto arcs1 = static_cast<std::size_t>(s1.arc_count());
  const auto arcs2 = static_cast<std::size_t>(s2.arc_count());
  return (n + 1 + m + 1) * sizeof(std::int32_t) + arcs1 * sizeof(Row) + arcs2 * sizeof(Score);
}

}  // namespace srna
