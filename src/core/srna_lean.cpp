#include "core/srna_lean.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/arc_index.hpp"
#include "core/lean_slice.hpp"
#include "core/tabulate_slice.hpp"
#include "core/traceback_walk.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace srna {

std::size_t lean_scratch_floor_bytes(const SecondaryStructure& s1,
                                     const SecondaryStructure& s2) {
  const auto m = static_cast<std::size_t>(s2.length());
  const auto depth = static_cast<std::size_t>(s1.max_nesting_depth());
  // cur + prev + one retained row per open arc, all at most height m, plus
  // the S2 column-event table.
  const std::size_t stream_rows = (2 + depth) * m * sizeof(Score);
  const std::size_t events = s2.arc_count() * sizeof(ColumnEvents::Event) +
                             (m + 1) * sizeof(std::uint32_t);
  return stream_rows + events;
}

std::size_t lean_minimum_bytes(const SecondaryStructure& s1, const SecondaryStructure& s2) {
  return WindowedMemoStore::minimum_bytes(s1, s2) + lean_scratch_floor_bytes(s1, s2);
}

namespace {

// Fails fast on a budget that cannot hold even the irreducible floor — the
// negative path the engine validation contract promises: a clear error
// naming the minimum, never an allocation failure mid-solve.
void require_feasible_budget(const SecondaryStructure& s1, const SecondaryStructure& s2,
                             std::uint64_t budget) {
  if (budget == 0) return;
  const std::size_t floor = lean_minimum_bytes(s1, s2);
  if (budget < floor)
    throw std::invalid_argument(
        "srna-lean: memory_budget_bytes=" + std::to_string(budget) +
        " is below the irreducible minimum of " + std::to_string(floor) + " bytes for n=" +
        std::to_string(s1.length()) + ", m=" + std::to_string(s2.length()) +
        " (index maps + one memo row + streaming rows)");
}

// The store gets whatever the budget leaves after the streaming-scratch
// upper bound; require_feasible_budget guarantees this stays at or above the
// store's own minimum.
std::size_t derive_store_budget(const SecondaryStructure& s1, const SecondaryStructure& s2,
                                std::uint64_t budget) {
  if (budget == 0) return 0;
  const std::size_t scratch = lean_scratch_floor_bytes(s1, s2);
  const auto total = static_cast<std::size_t>(budget);
  const std::size_t left = total > scratch ? total - scratch : 0;
  return std::max(left, WindowedMemoStore::minimum_bytes(s1, s2));
}

// Shared machinery of solve, checkpointing and traceback: stage-one row
// tabulation, the parent sweep, and the recompute-on-miss d2 resolver.
class LeanRunner {
 public:
  LeanRunner(const SecondaryStructure& s1, const SecondaryStructure& s2,
             const LeanOptions& options, McosStats& stats, WindowedMemoStore& store,
             Workspace& ws)
      : s1_(s1),
        s2_(s2),
        options_(options),
        stats_(stats),
        store_(store),
        ws_(ws),
        idx1_(s1),
        idx2_(s2),
        dense_(options.base.layout == SliceLayout::kDense),
        col_events_(ws.column_events().build(s2)) {}

  [[nodiscard]] std::size_t rows_total() const noexcept { return idx1_.size(); }
  [[nodiscard]] const ColumnEvents& col_events() const noexcept { return col_events_; }

  // The d2 oracle: window probe, recompute-on-miss. (k1, x) / (k2, y) are
  // arcs of S1 / S2; a miss streams the child slice at recursion level
  // `level + 1` and re-memoizes its value.
  Score resolve(Pos k1, Pos x, Pos k2, Pos y, std::size_t level) {
    ++stats_.memo_lookups;
    Score v = 0;
    if (store_.try_load(k1 + 1, k2 + 1, v)) return v;
    ++stats_.memo_misses;
    stats_.max_spawn_depth =
        std::max(stats_.max_spawn_depth, static_cast<std::uint64_t>(level + 1));
    v = eval_child(idx1_.index_of_right(x), idx2_.index_of_right(y), level + 1);
    store_.store(k1 + 1, k2 + 1, v);
    return v;
  }

  [[nodiscard]] auto d2_fn(std::size_t level) {
    return [this, level](Pos k1, Pos x, Pos k2, Pos y) {
      return resolve(k1, x, k2, y, level);
    };
  }

  // Stage one, one S1 arc row: tabulate the child slice under (arc a, arc b)
  // for every S2 arc b. One cancel poll per slice, like SRNA2.
  void tabulate_row(std::size_t a) {
    const Arc arc1 = idx1_.arc(a);
    for (std::size_t b = 0; b < idx2_.size(); ++b) {
      if (options_.base.cancelled()) throw SolveCancelled();
      if (options_.base.slice_hook) options_.base.slice_hook(slices_started_);
      ++slices_started_;
      const Score value = eval_child(a, b, 0);
      store_.store(arc1.left + 1, idx2_.arc(b).left + 1, value);
    }
  }

  // Stage two: the parent slice.
  Score parent() {
    if (options_.base.cancelled()) throw SolveCancelled();
    if (options_.base.slice_hook) options_.base.slice_hook(slices_started_);
    ++slices_started_;
    if (dense_)
      return stream_slice_dense(s1_, col_events_,
                                SliceBounds{0, s1_.length() - 1, 0, s2_.length() - 1},
                                ws_.lean_scratch(0), d2_fn(0), &stats_);
    return tabulate_slice_compressed(idx1_.all(), idx2_.all(), ws_.events(0), d2_fn(0),
                                     &stats_);
  }

 private:
  Score eval_child(std::size_t a, std::size_t b, std::size_t level) {
    if (dense_) {
      const Arc arc1 = idx1_.arc(a);
      const Arc arc2 = idx2_.arc(b);
      return stream_slice_dense(
          s1_, col_events_,
          SliceBounds::under(arc1.left, arc1.right, arc2.left, arc2.right),
          ws_.lean_scratch(level), d2_fn(level), &stats_);
    }
    return tabulate_slice_compressed(idx1_.interior(a), idx2_.interior(b),
                                     ws_.events(level), d2_fn(level), &stats_);
  }

  const SecondaryStructure& s1_;
  const SecondaryStructure& s2_;
  const LeanOptions& options_;
  McosStats& stats_;
  WindowedMemoStore& store_;
  Workspace& ws_;
  const ArcIndex idx1_;
  const ArcIndex idx2_;
  const bool dense_;
  const ColumnEvents& col_events_;
  std::uint64_t slices_started_ = 0;
};

}  // namespace

namespace detail {

Score run_srna_lean(const SecondaryStructure& s1, const SecondaryStructure& s2,
                    const LeanOptions& options, McosStats& stats, WindowedMemoStore& store,
                    Workspace& workspace) {
  SRNA_REQUIRE(s1.is_nonpseudoknot() && s2.is_nonpseudoknot(),
               "MCOS model requires non-pseudoknot structures");
  require_feasible_budget(s1, s2, options.memory_budget_bytes);

  WallTimer phase;
  obs::TraceScope preprocess_span("srna_lean", "preprocess");
  store.configure(s1, s2, derive_store_budget(s1, s2, options.memory_budget_bytes));
  LeanRunner runner(s1, s2, options, stats, store, workspace);
  preprocess_span.close();
  stats.preprocess_seconds = phase.seconds();

  phase.reset();
  obs::TraceScope stage1_span("srna_lean", "stage1");
  for (std::size_t a = 0; a < runner.rows_total(); ++a) runner.tabulate_row(a);
  stage1_span.close();
  stats.stage1_seconds = phase.seconds();

  phase.reset();
  obs::TraceScope stage2_span("srna_lean", "stage2");
  const Score answer = runner.parent();
  stage2_span.close();
  stats.stage2_seconds = phase.seconds();
  return answer;
}

}  // namespace detail

namespace {

void bridge_lean_store_metrics(const WindowedMemoStore& store) {
  auto& registry = obs::Registry::instance();
  registry.counter("lean.store_evictions").add(store.evictions());
  registry.gauge("lean.store_peak_bytes")
      .set_max(static_cast<double>(store.peak_resident_bytes()));
}

}  // namespace

McosResult srna_lean(const SecondaryStructure& s1, const SecondaryStructure& s2,
                     const LeanOptions& options) {
  return srna_lean(s1, s2, options, Workspace::local());
}

McosResult srna_lean(const SecondaryStructure& s1, const SecondaryStructure& s2,
                     const LeanOptions& options, Workspace& workspace) {
  McosResult result;
  result.value = detail::run_srna_lean(s1, s2, options, result.stats,
                                       workspace.lean_store(), workspace);
  bridge_stats_to_metrics("srna_lean", result.stats);
  bridge_lean_store_metrics(workspace.lean_store());
  return result;
}

// ---------------------------------------------------------------------------
// Checkpoint/restart. The serialized state is the resident window only:
// completed-but-evicted rows are recomputed on demand after resume, which is
// what keeps a tight-budget checkpoint proportional to the window, not nm.

namespace {

constexpr char kLeanMagic[8] = {'S', 'R', 'N', 'A', 'L', 'C', 'K', '1'};

struct LeanHeader {
  char magic[8];
  std::uint64_t fingerprint1;
  std::uint64_t fingerprint2;
  std::int64_t n;
  std::int64_t m;
  std::uint64_t rows_done;
  std::uint64_t cells_tabulated;
  std::uint64_t slices_tabulated;
  std::uint64_t arc_match_events;
  std::uint64_t memo_lookups;
  std::uint64_t memo_misses;
  std::uint64_t resident_rows;
  std::uint64_t cols_total;
};

void write_lean_checkpoint(const std::string& path, const LeanHeader& header,
                           const WindowedMemoStore& store) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    SRNA_REQUIRE(out.good(), "cannot write checkpoint: " + tmp);
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    for (std::size_t ordinal = 0; ordinal < store.rows_total(); ++ordinal) {
      if (!store.row_is_resident(ordinal)) continue;
      const auto tag = static_cast<std::uint64_t>(ordinal);
      out.write(reinterpret_cast<const char*>(&tag), sizeof(tag));
      const std::span<const Score> values = store.row_values(ordinal);
      out.write(reinterpret_cast<const char*>(values.data()),
                static_cast<std::streamsize>(values.size() * sizeof(Score)));
    }
    SRNA_CHECK(out.good(), "checkpoint write failed: " + tmp);
  }
  std::filesystem::rename(tmp, path);  // atomic publish
}

bool load_lean_checkpoint(const std::string& path, const LeanHeader& expected,
                          LeanHeader& header, WindowedMemoStore& store) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  if (!in.read(reinterpret_cast<char*>(&header), sizeof(header)))
    throw std::invalid_argument("checkpoint truncated: " + path);
  if (std::memcmp(header.magic, kLeanMagic, sizeof(kLeanMagic)) != 0)
    throw std::invalid_argument("not an SRNA-lean checkpoint: " + path);
  if (header.fingerprint1 != expected.fingerprint1 ||
      header.fingerprint2 != expected.fingerprint2 || header.n != expected.n ||
      header.m != expected.m || header.cols_total != store.cols_total())
    throw std::invalid_argument("checkpoint does not match these inputs: " + path);

  std::vector<Score> row(store.cols_total());
  for (std::uint64_t i = 0; i < header.resident_rows; ++i) {
    std::uint64_t ordinal = 0;
    if (!in.read(reinterpret_cast<char*>(&ordinal), sizeof(ordinal)) ||
        ordinal >= store.rows_total() ||
        !in.read(reinterpret_cast<char*>(row.data()),
                 static_cast<std::streamsize>(row.size() * sizeof(Score))))
      throw std::invalid_argument("checkpoint window truncated: " + path);
    store.restore_row(static_cast<std::size_t>(ordinal), row);
  }
  return true;
}

}  // namespace

CheckpointedRun srna_lean_checkpointed(const SecondaryStructure& s1,
                                       const SecondaryStructure& s2,
                                       const LeanOptions& options,
                                       const CheckpointPolicy& policy) {
  SRNA_REQUIRE(!policy.path.empty(), "checkpoint path must be set");
  SRNA_REQUIRE(policy.every_rows >= 1, "checkpoint interval must be >= 1 row");
  SRNA_REQUIRE(s1.is_nonpseudoknot() && s2.is_nonpseudoknot(),
               "MCOS model requires non-pseudoknot structures");
  SRNA_REQUIRE(options.base.layout == SliceLayout::kDense,
               "lean checkpointing currently supports the dense layout");
  require_feasible_budget(s1, s2, options.memory_budget_bytes);

  CheckpointedRun run;
  Workspace ws;
  WindowedMemoStore& store = ws.lean_store();
  store.configure(s1, s2, derive_store_budget(s1, s2, options.memory_budget_bytes));

  McosStats stats;
  LeanRunner runner(s1, s2, options, stats, store, ws);
  run.rows_total = runner.rows_total();

  LeanHeader expected{};
  std::memcpy(expected.magic, kLeanMagic, sizeof(kLeanMagic));
  expected.fingerprint1 = structure_fingerprint(s1);
  expected.fingerprint2 = structure_fingerprint(s2);
  expected.n = s1.length();
  expected.m = s2.length();
  expected.cols_total = store.cols_total();

  std::uint64_t first_row = 0;
  LeanHeader loaded{};
  if (load_lean_checkpoint(policy.path, expected, loaded, store)) {
    run.resumed = true;
    first_row = loaded.rows_done;
    stats.cells_tabulated = loaded.cells_tabulated;
    stats.slices_tabulated = loaded.slices_tabulated;
    stats.arc_match_events = loaded.arc_match_events;
    stats.memo_lookups = loaded.memo_lookups;
    stats.memo_misses = loaded.memo_misses;
    SRNA_REQUIRE(first_row <= run.rows_total, "checkpoint row count out of range");
  }

  auto persist = [&](std::uint64_t rows_done) {
    LeanHeader header = expected;
    header.rows_done = rows_done;
    header.cells_tabulated = stats.cells_tabulated;
    header.slices_tabulated = stats.slices_tabulated;
    header.arc_match_events = stats.arc_match_events;
    header.memo_lookups = stats.memo_lookups;
    header.memo_misses = stats.memo_misses;
    header.resident_rows = store.rows_resident();
    write_lean_checkpoint(policy.path, header, store);
  };

  WallTimer phase;
  std::uint64_t rows_this_run = 0;
  std::uint64_t row = first_row;
  for (; row < run.rows_total; ++row) {
    if (policy.max_rows_this_run != 0 && rows_this_run >= policy.max_rows_this_run) break;
    runner.tabulate_row(static_cast<std::size_t>(row));
    ++rows_this_run;
    if ((row + 1 - first_row) % policy.every_rows == 0 && row + 1 < run.rows_total)
      persist(row + 1);
  }
  stats.stage1_seconds = phase.seconds();
  run.rows_done = row;

  if (row < run.rows_total) {
    persist(row);
    run.complete = false;
    return run;
  }

  phase.reset();
  run.result.value = runner.parent();
  stats.stage2_seconds = phase.seconds();
  run.result.stats = stats;
  run.complete = true;
  std::error_code ec;
  std::filesystem::remove(policy.path, ec);  // best effort
  return run;
}

// ---------------------------------------------------------------------------
// Lean traceback: checkpoint-replay grid views + the shared decision kernel.

namespace {

// Read access to one slice's grid without materializing it: a forward
// streaming pass snapshots (row, retained-stack) checkpoints every
// `block_rows` rows and fills a window over the last block; get() serves the
// walk from the window, re-replaying from the nearest checkpoint whenever
// the walk frontier leaves it. The frontier of walk_slice_path is monotone
// non-increasing in x, so every block is replayed at most once — the whole
// walk costs at most two sweeps of the slice. Resident bytes:
// O((block_rows + open-arc depth × width / block_rows) × height).
template <typename D2>
class StreamedSliceView {
 public:
  StreamedSliceView(const SecondaryStructure& s1, const ColumnEvents& col_events,
                    SliceBounds b, D2 d2)
      : s1_(s1), col_events_(col_events), b_(b), d2_(std::move(d2)) {
    const double width = static_cast<double>(b_.width());
    block_rows_ = std::max<Pos>(1, static_cast<Pos>(std::lround(std::ceil(std::sqrt(width)))));
    height_ = static_cast<std::size_t>(b_.height());
    win_lo_ = std::max(b_.lo1, b_.hi1 - block_rows_ + 1);
    win_hi_ = b_.hi1;
    window_.resize(static_cast<std::size_t>(win_hi_ - win_lo_ + 1), height_, 0);
    reset_scratch(nullptr);
    detail::stream_slice_rows(
        s1_, col_events_, b_, b_.lo1, b_.hi1, scratch_, d2_, nullptr,
        [&](Pos x, const Score* row, const LeanSliceScratch& ws) {
          if ((x - b_.lo1 + 1) % block_rows_ == 0 && x < b_.hi1)
            checkpoints_.push_back(Checkpoint{
                x, std::vector<Score>(row, row + height_), ws.stack});
          if (x >= win_lo_)
            std::copy(row, row + height_,
                      window_.row_data(static_cast<std::size_t>(x - win_lo_)));
        });
  }

  // Absolute coordinates; the caller guards x >= lo1 && y >= lo2.
  Score get(Pos x, Pos y) {
    const auto c = static_cast<std::size_t>(y - b_.lo2);
    if (x == row_above_x_) return row_above_[c];
    if (x < win_lo_ || x > win_hi_) load_window_ending_at(x);
    return window_(static_cast<std::size_t>(x - win_lo_), c);
  }

 private:
  struct Checkpoint {
    Pos x;  // state "after row x"
    std::vector<Score> row;
    std::vector<LeanSliceScratch::Retained> stack;
  };

  void reset_scratch(const Checkpoint* ck) {
    scratch_.cur.assign(height_, 0);
    while (!scratch_.stack.empty()) scratch_.pop_retained();
    if (ck != nullptr) {
      scratch_.prev = ck->row;
      for (const auto& r : ck->stack) scratch_.push_retained(r.row, r.values);
    } else {
      scratch_.prev.assign(height_, 0);
    }
  }

  void load_window_ending_at(Pos q) {
    // The walk may still read the row just above the new window (the
    // "get(x, y-1) after get(x-1, y)" pattern at a block boundary): keep it.
    if (q + 1 >= win_lo_ && q + 1 <= win_hi_) {
      const Score* kept = window_.row_data(static_cast<std::size_t>(q + 1 - win_lo_));
      row_above_.assign(kept, kept + height_);
      row_above_x_ = q + 1;
    } else {
      row_above_x_ = b_.lo1 - 2;  // nothing kept
    }

    win_hi_ = q;
    win_lo_ = std::max(b_.lo1, q - block_rows_ + 1);
    window_.resize(static_cast<std::size_t>(win_hi_ - win_lo_ + 1), height_, 0);

    const Checkpoint* ck = nullptr;
    for (const Checkpoint& c : checkpoints_) {
      if (c.x <= win_lo_ - 1 && (ck == nullptr || c.x > ck->x)) ck = &c;
    }
    reset_scratch(ck);
    const Pos start = ck != nullptr ? ck->x + 1 : b_.lo1;
    detail::stream_slice_rows(
        s1_, col_events_, b_, start, win_hi_, scratch_, d2_, nullptr,
        [&](Pos x, const Score* row, const LeanSliceScratch&) {
          if (x >= win_lo_)
            std::copy(row, row + height_,
                      window_.row_data(static_cast<std::size_t>(x - win_lo_)));
        });
  }

  const SecondaryStructure& s1_;
  const ColumnEvents& col_events_;
  SliceBounds b_;
  D2 d2_;
  Pos block_rows_ = 1;
  std::size_t height_ = 0;
  std::vector<Checkpoint> checkpoints_;
  Matrix<Score> window_;
  Pos win_lo_ = 0, win_hi_ = -1;
  std::vector<Score> row_above_;
  Pos row_above_x_ = -2;
  LeanSliceScratch scratch_;
};

class LeanTracebackWalker {
 public:
  LeanTracebackWalker(const SecondaryStructure& s1, const SecondaryStructure& s2,
                      LeanRunner& runner)
      : s1_(s1), s2_(s2), runner_(runner) {}

  void walk(SliceBounds bounds, std::vector<ArcMatch>& out) {
    if (bounds.empty()) return;
    std::vector<SliceBounds> pending;
    {
      StreamedSliceView view(s1_, runner_.col_events(), bounds, runner_.d2_fn(0));
      detail::walk_slice_path(
          s1_, s2_, bounds,
          [&](Pos x, Pos y) -> Score {
            if (x < bounds.lo1 || y < bounds.lo2) return 0;
            return view.get(x, y);
          },
          [&](Pos k1, Pos k2) {
            return runner_.resolve(k1, s1_.arc_right_of(k1), k2, s2_.arc_right_of(k2), 0);
          },
          out, pending);
    }  // view (window + checkpoints) released before descending
    for (const SliceBounds& child : pending) walk(child, out);
  }

 private:
  const SecondaryStructure& s1_;
  const SecondaryStructure& s2_;
  LeanRunner& runner_;
};

}  // namespace

CommonSubstructure mcos_traceback_lean(const SecondaryStructure& s1,
                                       const SecondaryStructure& s2,
                                       const LeanOptions& options) {
  return mcos_traceback_lean(s1, s2, options, Workspace::local());
}

CommonSubstructure mcos_traceback_lean(const SecondaryStructure& s1,
                                       const SecondaryStructure& s2,
                                       const LeanOptions& options, Workspace& workspace) {
  CommonSubstructure result;
  WindowedMemoStore& store = workspace.lean_store();
  result.value = detail::run_srna_lean(s1, s2, options, result.stats, store, workspace);

  if (s1.length() > 0 && s2.length() > 0) {
    LeanRunner runner(s1, s2, options, result.stats, store, workspace);
    LeanTracebackWalker walker(s1, s2, runner);
    walker.walk(SliceBounds{0, s1.length() - 1, 0, s2.length() - 1}, result.matches);
  }

  SRNA_CHECK(static_cast<Score>(result.matches.size()) == result.value,
             "lean traceback recovered a different number of matches than the optimum");
  std::sort(result.matches.begin(), result.matches.end(),
            [](const ArcMatch& a, const ArcMatch& b) { return a.a1.right < b.a1.right; });
  bridge_lean_store_metrics(store);
  return result;
}

}  // namespace srna
