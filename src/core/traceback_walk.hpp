// The slice-walk decision kernel shared by the dense and lean tracebacks.
//
// Given any way to read slice cells (`get(x, y)`, absolute coordinates,
// returning 0 outside the slice) and the d2 oracle, one walk recovers the
// optimal decision path of a slice: shrink-j1 / shrink-j2 / match-the-arcs.
// The dense traceback instantiates it over a fully re-tabulated grid, the
// lean traceback over a checkpoint-replay view that materializes row blocks
// on demand — the decision order is the same template, so the two produce
// identical witness sets whenever the underlying scores agree.
#pragma once

#include <vector>

#include "core/tabulate_slice.hpp"
#include "core/traceback.hpp"
#include "rna/secondary_structure.hpp"
#include "util/assert.hpp"

namespace srna::detail {

// Walks one slice, appending matches to `out` and the child slices the path
// matched into (to be walked after the caller releases this slice's grid)
// to `pending`. `d2_of(k1, k2)` must return M(k1+1, k2+1).
template <typename GridGet, typename D2>
void walk_slice_path(const SecondaryStructure& s1, const SecondaryStructure& s2,
                     SliceBounds bounds, GridGet&& get, D2&& d2_of,
                     std::vector<ArcMatch>& out, std::vector<SliceBounds>& pending) {
  Pos x = bounds.hi1;
  Pos y = bounds.hi2;
  while (x >= bounds.lo1 && y >= bounds.lo2) {
    const Score v = get(x, y);
    if (v == 0) break;  // nothing matched in the remaining prefix
    if (get(x - 1, y) == v) {  // s1: j1 shrinks
      --x;
      continue;
    }
    if (get(x, y - 1) == v) {  // s2: j2 shrinks
      --y;
      continue;
    }
    // Dynamic case must have produced v: match the arcs ending here.
    const Pos k1 = s1.arc_left_of(x);
    const Pos k2 = s2.arc_left_of(y);
    SRNA_CHECK(k1 >= bounds.lo1 && k2 >= bounds.lo2,
               "traceback: no decision reproduces the cell value");
    const Score d1 = get(k1 - 1, k2 - 1);
    const Score d2 = d2_of(k1, k2);
    SRNA_CHECK(v == 1 + d1 + d2, "traceback: dynamic case value mismatch");
    out.push_back(ArcMatch{Arc{k1, x}, Arc{k2, y}});
    if (d2 > 0) pending.push_back(SliceBounds::under(k1, x, k2, y));
    x = k1 - 1;
    y = k2 - 1;
  }
}

}  // namespace srna::detail
