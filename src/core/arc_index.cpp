#include "core/arc_index.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace srna {

ArcIndex::ArcIndex(const SecondaryStructure& s) {
  SRNA_REQUIRE(s.is_nonpseudoknot(),
               "ArcIndex requires a non-pseudoknot structure (crossing arcs present)");
  arcs_ = s.arcs_by_right();
  interior_begin_.resize(arcs_.size());
  by_right_.assign(static_cast<std::size_t>(s.length()), kNoArc);

  for (std::size_t t = 0; t < arcs_.size(); ++t) {
    const Arc& a = arcs_[t];
    by_right_[static_cast<std::size_t>(a.right)] = t;
    // Descendants of `a` are exactly the arcs with right endpoint in
    // (a.left, a.right): non-crossing + unique endpoints force any such arc
    // fully inside `a`. They form the contiguous range [first, t).
    const auto first = std::partition_point(
        arcs_.begin(), arcs_.begin() + static_cast<std::ptrdiff_t>(t),
        [&](const Arc& b) { return b.right < a.left; });
    interior_begin_[t] = static_cast<std::size_t>(first - arcs_.begin());
  }
}

}  // namespace srna
