// MemoStore — the cross-slice memoization interface (paper Figure 5) with
// two backends.
//
// M(i1, i2) holds the final value of slice_{i1,i2}, the slice spawned by
// matching the arcs whose left endpoints are i1-1 and i2-1. The solvers only
// ever need associative semantics from it: "is this slice's value resident,
// and if so what is it" plus "remember this value". MemoStore captures
// exactly that, so the Θ(nm) dense table (MemoTable, the paper-faithful
// backend) and the space-lean windowed store below are interchangeable
// behind one probe:
//
//   * MemoTable          — dense n × m array, O(1) probe, Θ(nm) bytes. The
//                          backend of SRNA1 (kArray), SRNA2 and PRNA.
//   * WindowedMemoStore  — one row per S1 arc over one column per S2 arc
//                          (the only cells ever written — each position
//                          starts at most one arc), with least-recently-used
//                          rows evicted under a byte budget. A failed probe
//                          means "recompute the child slice" (SRNA1-style
//                          spawn), which terminates because children are
//                          strictly nested. Resident state is
//                          O(n + m + live window).
//
// The windowed store is what makes genome-scale pairs (n ≈ 10⁴–10⁵) fit: the
// dense table is the hard Θ(nm) memory ceiling, while the windowed store's
// footprint is capped by SolverConfig.memory_budget_bytes (see
// core/srna_lean.hpp for the solver that drives it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/result.hpp"
#include "rna/secondary_structure.hpp"

namespace srna {

// Sentinel for "slice not yet tabulated" (valid values are >= 0). Shared by
// both backends: MemoTable::kUnset aliases it, and the windowed store uses
// it for cells of a resident row that were never written.
inline constexpr Score kMemoUnset = -1;

class MemoStore {
 public:
  virtual ~MemoStore() = default;

 protected:
  // Concrete stores keep their value semantics (MemoTable is copied/moved by
  // Workspace); the interface itself is stateless.
  MemoStore() = default;
  MemoStore(const MemoStore&) = default;
  MemoStore& operator=(const MemoStore&) = default;
  MemoStore(MemoStore&&) = default;
  MemoStore& operator=(MemoStore&&) = default;

 public:

  // Backend name for diagnostics/reports ("dense", "windowed").
  [[nodiscard]] virtual const char* store_kind() const noexcept = 0;

  // Associative probe: true and the value when M(i1, i2) is resident. False
  // means the caller must (re)compute the child slice — for the dense table
  // that only happens before first tabulation (the SRNA1 sentinel probe);
  // for the windowed store also after an eviction.
  virtual bool try_load(Pos i1, Pos i2, Score& out) noexcept = 0;

  // Remembers M(i1, i2) = value (the slice's final cell).
  virtual void store(Pos i1, Pos i2, Score value) = 0;

  // Bytes of score state currently resident / the high-water mark. Feeds the
  // workspace footprint accounting and the memory ledger.
  [[nodiscard]] virtual std::size_t resident_bytes() const noexcept = 0;
  [[nodiscard]] virtual std::size_t peak_resident_bytes() const noexcept = 0;
};

// The space-lean backend: rows keyed by S1 arc, columns by S2 arc, an LRU
// window of resident rows under a byte budget. Not thread-safe (pool per
// workspace, like every other solve buffer).
class WindowedMemoStore final : public MemoStore {
 public:
  WindowedMemoStore() = default;

  // Shapes the store for a structure pair and sets the budget (bytes of
  // resident row state; 0 = unlimited). Index maps are rebuilt, all rows
  // start evicted, counters reset. The budget may be smaller than one row
  // plus the maps — the store always keeps at least the most recently
  // touched row resident (minimum_bytes() is the honest floor; the solver
  // validates against it up front).
  void configure(const SecondaryStructure& s1, const SecondaryStructure& s2,
                 std::size_t budget_bytes);

  [[nodiscard]] const char* store_kind() const noexcept override { return "windowed"; }
  bool try_load(Pos i1, Pos i2, Score& out) noexcept override;
  void store(Pos i1, Pos i2, Score value) override;
  [[nodiscard]] std::size_t resident_bytes() const noexcept override;
  [[nodiscard]] std::size_t peak_resident_bytes() const noexcept override { return peak_bytes_; }

  [[nodiscard]] std::size_t budget_bytes() const noexcept { return budget_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  [[nodiscard]] std::size_t rows_resident() const noexcept { return rows_resident_; }
  [[nodiscard]] std::size_t rows_total() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols_total() const noexcept { return cols_total_; }

  // Frees every resident row (and the index maps' backing storage when
  // `release_maps`). The next configure() rebuilds; used by Workspace::trim.
  void release(bool release_maps = true);

  // Checkpoint support: rows are addressed by their ordinal in the
  // S1 arcs-by-right order. row_key() is the i1 the ordinal stands for.
  [[nodiscard]] bool row_is_resident(std::size_t ordinal) const noexcept {
    return rows_[ordinal].resident;
  }
  [[nodiscard]] std::span<const Score> row_values(std::size_t ordinal) const noexcept {
    return rows_[ordinal].values;
  }
  [[nodiscard]] Pos row_key(std::size_t ordinal) const noexcept { return rows_[ordinal].key; }
  // Reinstates a serialized row (resume path); evicts others if over budget.
  void restore_row(std::size_t ordinal, std::span<const Score> values);

  // The irreducible resident floor for this pair: the index maps plus a
  // single row. A budget below this cannot make progress.
  static std::size_t minimum_bytes(const SecondaryStructure& s1,
                                   const SecondaryStructure& s2) noexcept;

 private:
  struct Row {
    std::vector<Score> values;  // one Score per S2 arc; empty when evicted
    std::uint64_t last_used = 0;
    Pos key = 0;  // the i1 this row memoizes (arc.left + 1)
    bool resident = false;
  };

  void materialize(std::size_t ordinal);
  void evict_over_budget(std::size_t keep_ordinal);
  [[nodiscard]] std::size_t row_bytes() const noexcept {
    return cols_total_ * sizeof(Score);
  }
  [[nodiscard]] std::size_t fixed_bytes() const noexcept;

  std::vector<std::int32_t> row_of_;  // i1 -> row ordinal, -1 if i1-1 starts no S1 arc
  std::vector<std::int32_t> col_of_;  // i2 -> column ordinal, -1 likewise
  std::vector<Row> rows_;
  std::size_t cols_total_ = 0;
  std::size_t budget_ = 0;
  std::size_t rows_resident_ = 0;
  std::size_t row_value_bytes_ = 0;  // resident row payloads (capacity-true)
  std::size_t peak_bytes_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace srna
