// Internal entry points shared between SRNA2, the traceback, and PRNA's
// sequential fallbacks. Not part of the public API surface.
#pragma once

#include "core/memo_table.hpp"
#include "core/options.hpp"
#include "core/result.hpp"
#include "core/workspace.hpp"
#include "rna/secondary_structure.hpp"

namespace srna::detail {

// Runs SRNA2 and leaves the fully populated memo table in `memo` (which must
// be sized n × m). The traceback re-derives matched arcs from it without
// re-running stage one per nesting level. Returns F(0, n-1, 0, m-1).
// Slice scratch comes from `scratch` (dense_grid(0) / events(0)); the
// single-argument-less overload uses the calling thread's pooled workspace.
Score run_srna2(const SecondaryStructure& s1, const SecondaryStructure& s2,
                const McosOptions& options, McosStats& stats, MemoTable& memo,
                Workspace& scratch);
Score run_srna2(const SecondaryStructure& s1, const SecondaryStructure& s2,
                const McosOptions& options, McosStats& stats, MemoTable& memo);

}  // namespace srna::detail
