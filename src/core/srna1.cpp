// SRNA1 (paper Algorithm 1): bottom-up slice tabulation with lazy recursive
// child-slice spawning and memoize-on-miss.
//
// The slice for the full problem is tabulated bottom-up; whenever the
// dynamic case matches a pair of arcs whose child slice has not been
// memoized yet, that child is spawned — allocated, tabulated recursively in
// the same manner, memoized, and discarded. The computation order (events by
// increasing right endpoints) guarantees the spawn depth never exceeds one:
// by the time a child runs, all of *its* dynamic dependencies were already
// memoized by earlier events of the spawning slice (tested in
// tests/core/srna1_test.cpp).

#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "core/arc_index.hpp"
#include "core/mcos.hpp"
#include "core/memo_table.hpp"
#include "core/tabulate_slice.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace srna {

namespace {

class Srna1Runner {
 public:
  Srna1Runner(const SecondaryStructure& s1, const SecondaryStructure& s2,
              const McosOptions& options, McosStats& stats, Workspace& workspace)
      : s1_(s1),
        s2_(s2),
        options_(options),
        stats_(stats),
        workspace_(workspace),
        memo_(workspace.memo(s1.length(), s2.length(), MemoTable::kUnset)) {
    if (options_.layout == SliceLayout::kCompressed) {
      idx1_.emplace(s1);
      idx2_.emplace(s2);
    } else {
      // One S2 column-event table per solve; every recursion level's dense
      // fill sweeps against it.
      col_events_ = &workspace.column_events().build(s2);
    }
  }

  Score run() {
    if (options_.layout == SliceLayout::kDense)
      return solve_dense(SliceBounds{0, s1_.length() - 1, 0, s2_.length() - 1}, 0);
    return solve_compressed(idx1_->all(), idx2_->all(), 0);
  }

 private:
  // d2 for either layout: memoize-on-miss spawn of the child slice under the
  // matched arcs (k1, x) and (k2, y).
  Score child_value(Pos k1, Pos x, Pos k2, Pos y, std::uint64_t depth) {
    ++stats_.memo_lookups;
    if (options_.memoize) {
      if (options_.memo_kind == MemoKind::kHashMap) {
        const std::uint64_t key = (static_cast<std::uint64_t>(k1 + 1) << 32) |
                                  static_cast<std::uint32_t>(k2 + 1);
        if (const auto it = hash_memo_.find(key); it != hash_memo_.end()) return it->second;
        ++stats_.memo_misses;
        const Score v = spawn(k1, x, k2, y, depth + 1);
        hash_memo_.emplace(key, v);
        return v;
      }
      Score& cell = memo_.ref(k1 + 1, k2 + 1);
      if (cell != MemoTable::kUnset) return cell;
      ++stats_.memo_misses;
      cell = spawn(k1, x, k2, y, depth + 1);
      return cell;
    }
    // Memoization ablation: "spawn child slices again and again" — the paper
    // notes this "is not dynamic programming at all".
    ++stats_.memo_misses;
    return spawn(k1, x, k2, y, depth + 1);
  }

  Score spawn(Pos k1, Pos x, Pos k2, Pos y, std::uint64_t depth) {
    if (options_.layout == SliceLayout::kDense)
      return solve_dense(SliceBounds::under(k1, x, k2, y), depth);
    const std::size_t a1 = idx1_->index_of_right(x);
    const std::size_t a2 = idx2_->index_of_right(y);
    SRNA_CHECK(a1 != ArcIndex::kNoArc && a2 != ArcIndex::kNoArc,
               "dynamic case fired without matching arcs");
    return solve_compressed(idx1_->interior(a1), idx2_->interior(a2), depth);
  }

  void note_spawn(std::uint64_t depth) {
    // Slice boundary: one cancel poll per spawned slice (never per row/cell).
    if (options_.cancelled()) throw SolveCancelled();
    if (options_.slice_hook) options_.slice_hook(spawned_);
    stats_.max_spawn_depth = std::max(stats_.max_spawn_depth, depth);
    ++spawned_;
    if (options_.spawn_limit != 0 && spawned_ > options_.spawn_limit)
      throw std::runtime_error("SRNA1 spawn limit exceeded (" +
                               std::to_string(options_.spawn_limit) +
                               " slices); expected with memoize=false on dense inputs");
  }

  Score solve_dense(SliceBounds b, std::uint64_t depth) {
    note_spawn(depth);
    // Algorithm 1 allocates and deallocates each slice; the workspace keys
    // grids by recursion depth instead, so the parent's live grid survives a
    // child spawn and the allocations are reused across slices and solves.
    return tabulate_slice_dense(
        s1_, s2_, *col_events_, b, workspace_.dense_grid(depth),
        workspace_.slice_kernel(options_.kernel, depth),
        [&](Pos k1, Pos x, Pos k2, Pos y) { return child_value(k1, x, k2, y, depth); },
        &stats_);
  }

  Score solve_compressed(std::span<const Arc> rows, std::span<const Arc> cols,
                         std::uint64_t depth) {
    note_spawn(depth);
    return tabulate_slice_compressed(
        rows, cols, workspace_.events(depth),
        [&](Pos k1, Pos x, Pos k2, Pos y) { return child_value(k1, x, k2, y, depth); },
        &stats_);
  }

  const SecondaryStructure& s1_;
  const SecondaryStructure& s2_;
  const McosOptions& options_;
  McosStats& stats_;
  Workspace& workspace_;
  MemoTable& memo_;
  std::unordered_map<std::uint64_t, Score> hash_memo_;
  std::optional<ArcIndex> idx1_;
  std::optional<ArcIndex> idx2_;
  const ColumnEvents* col_events_ = nullptr;  // dense layout only
  std::uint64_t spawned_ = 0;
};

}  // namespace

McosResult srna1(const SecondaryStructure& s1, const SecondaryStructure& s2,
                 const McosOptions& options) {
  return srna1(s1, s2, options, Workspace::local());
}

McosResult srna1(const SecondaryStructure& s1, const SecondaryStructure& s2,
                 const McosOptions& options, Workspace& workspace) {
  SRNA_REQUIRE(s1.is_nonpseudoknot() && s2.is_nonpseudoknot(),
               "MCOS model requires non-pseudoknot structures");
  McosResult result;
  WallTimer timer;
  {
    obs::TraceScope span("srna1", "solve");
    Srna1Runner runner(s1, s2, options, result.stats, workspace);
    result.value = runner.run();
  }
  // SRNA1 has no stage structure; report everything as stage one.
  result.stats.stage1_seconds = timer.seconds();
  bridge_stats_to_metrics("srna1", result.stats);
  return result;
}

}  // namespace srna
