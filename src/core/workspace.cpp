#include "core/workspace.hpp"

#include "obs/metrics.hpp"

namespace srna {

Workspace& Workspace::local() {
  // The once-per-thread counter bump sizes the pool: how many thread-local
  // workspaces exist process-wide (each holds its peak footprint until the
  // thread exits). Run reports and the admin endpoint surface it next to
  // engine.workspace_peak_bytes.
  thread_local Workspace workspace;
  thread_local const bool counted = [] {
    obs::Registry::instance().counter("engine.workspace_pool_threads").add();
    return true;
  }();
  (void)counted;
  return workspace;
}

}  // namespace srna
