#include "core/workspace.hpp"

#include "obs/metrics.hpp"

namespace srna {

std::size_t Workspace::trim(std::size_t max_bytes) {
  const std::size_t before = footprint_bytes();
  while (footprint_bytes() > max_bytes && !dense_grids_.empty()) dense_grids_.pop_back();
  while (footprint_bytes() > max_bytes && !events_.empty()) events_.pop_back();
  while (footprint_bytes() > max_bytes && !lean_scratch_.empty()) lean_scratch_.pop_back();
  while (footprint_bytes() > max_bytes && !kernel_scratch_.empty()) kernel_scratch_.pop_back();
  if (footprint_bytes() > max_bytes) four_russians_ = FourRussiansTable{};
  if (footprint_bytes() > max_bytes) lean_store_.release();
  if (footprint_bytes() > max_bytes) column_events_ = ColumnEvents{};
  if (footprint_bytes() > max_bytes) memo_ = MemoTable{};
  const std::size_t after = footprint_bytes();
  if (after < before) obs::Registry::instance().counter("engine.workspace_trims").add();
  return after;
}

Workspace& Workspace::local() {
  // The once-per-thread counter bump sizes the pool: how many thread-local
  // workspaces exist process-wide (each holds its peak footprint until the
  // thread exits). Run reports and the admin endpoint surface it next to
  // engine.workspace_peak_bytes.
  thread_local Workspace workspace;
  thread_local const bool counted = [] {
    obs::Registry::instance().counter("engine.workspace_pool_threads").add();
    return true;
  }();
  (void)counted;
  return workspace;
}

}  // namespace srna
