#include "core/workspace.hpp"

namespace srna {

Workspace& Workspace::local() {
  thread_local Workspace workspace;
  return workspace;
}

}  // namespace srna
