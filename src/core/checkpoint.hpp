// Checkpoint/restart for long SRNA2 runs.
//
// The paper-scale worst cases are long-running (length 3200 is hours of
// single-core stage one), and the algorithm's structure makes interruption
// tolerance nearly free: between outer-loop iterations the *entire* live
// state is the Θ(nm) memo table plus the count of completed S1 arcs — the
// same property PRNA's per-row synchronization exploits. This module
// serializes exactly that state, fingerprinted against both inputs, and
// resumes stage one from the first incomplete row.
//
//   CheckpointedRun run;
//   do {
//     run = srna2_checkpointed(s1, s2, {}, policy);   // picks up where it left off
//   } while (!run.complete);                          // e.g. across process restarts
//
// Checkpoint files are written atomically (temp file + rename) every
// `every_rows` completed rows and removed on successful completion.
#pragma once

#include <cstdint>
#include <string>

#include "core/options.hpp"
#include "core/result.hpp"
#include "rna/secondary_structure.hpp"

namespace srna {

struct CheckpointPolicy {
  // Where the checkpoint lives. Must be non-empty.
  std::string path;
  // Persist after this many completed stage-one rows (S1 arcs).
  std::uint64_t every_rows = 64;
  // Stop (with complete = false, checkpoint written) after this many rows
  // in *this* invocation; 0 = run to completion. Gives tests and batch
  // schedulers a deterministic interruption point.
  std::uint64_t max_rows_this_run = 0;
};

struct CheckpointedRun {
  bool complete = false;
  bool resumed = false;              // a valid checkpoint was loaded
  std::uint64_t rows_done = 0;       // completed S1 arcs overall
  std::uint64_t rows_total = 0;
  McosResult result;                 // valid only when complete
};

// SRNA2 with checkpointing (dense layout). Throws std::invalid_argument on
// a checkpoint that does not match the inputs (wrong sizes or arc sets) —
// resuming against different structures would silently corrupt the answer.
CheckpointedRun srna2_checkpointed(const SecondaryStructure& s1, const SecondaryStructure& s2,
                                   const McosOptions& options, const CheckpointPolicy& policy);

// Fingerprint used to bind a checkpoint to its inputs (FNV-1a over lengths
// and arc endpoints). Exposed for tests.
std::uint64_t structure_fingerprint(const SecondaryStructure& s) noexcept;

}  // namespace srna
