// Streaming slice tabulation for the space-lean solve path.
//
// fill_slice_dense (core/tabulate_slice.hpp) materializes the whole
// width × height grid because the recurrence reads two earlier rows:
//   up  = slice[x-1][·]     — always the previous row, and
//   d1  = slice[k1-1][·]    — the row just above the S1 arc (k1, x)'s left
//                             endpoint, read only on the row where that arc
//                             ends.
// The d1 rows obey a stack discipline: row x must be retained iff position
// x+1 starts an arc closing inside the slice, and because arcs do not cross,
// the arc that closes next is always the one opened last — so the retained
// rows form a LIFO stack, the top of which is exactly the d1 row each arc
// row needs. Streaming therefore needs cur + prev + (one retained row per
// currently-open arc): O((2 + nesting depth) × height) score state instead
// of O(width × height).
//
// The same sweep drives the lean traceback: a RowVisitor observes every
// finished row together with the retained-row stack, which is what the
// checkpoint-replay grid view in srna_lean.cpp snapshots (every C rows) and
// replays to materialize any block of rows on demand.
//
// Values are computed by the identical recurrence and event-run order as
// fill_slice_dense, so scores — and the tracebacks derived from them — are
// bit-identical to the dense backend.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/result.hpp"
#include "core/tabulate_slice.hpp"
#include "rna/secondary_structure.hpp"
#include "util/assert.hpp"

namespace srna {

// Reusable buffers for one streaming sweep. One per recursion level (the
// lean solver's recompute-on-miss path can stream a child slice while the
// parent sweep is live); pooled in Workspace so capacity survives solves.
struct LeanSliceScratch {
  struct Retained {
    Pos row = 0;  // absolute row index this buffer holds
    std::vector<Score> values;
  };

  std::vector<Score> cur, prev;
  std::vector<Retained> stack;       // live retained rows (LIFO, see above)
  std::vector<Retained> free_pool;   // returned buffers, kept for reuse

  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    std::size_t total = (cur.capacity() + prev.capacity()) * sizeof(Score);
    for (const Retained& r : stack) total += r.values.capacity() * sizeof(Score);
    for (const Retained& r : free_pool) total += r.values.capacity() * sizeof(Score);
    return total;
  }

  // Bytes the retained stack currently pins (the live part of the window).
  [[nodiscard]] std::size_t stack_bytes() const noexcept {
    std::size_t total = 0;
    for (const Retained& r : stack) total += r.values.capacity() * sizeof(Score);
    return total;
  }

  void push_retained(Pos row, const std::vector<Score>& values) {
    Retained r;
    if (!free_pool.empty()) {
      r = std::move(free_pool.back());
      free_pool.pop_back();
    }
    r.row = row;
    r.values.assign(values.begin(), values.end());
    stack.push_back(std::move(r));
  }

  void pop_retained() {
    free_pool.push_back(std::move(stack.back()));
    stack.pop_back();
  }

  void release() {
    std::vector<Score>().swap(cur);
    std::vector<Score>().swap(prev);
    std::vector<Retained>().swap(stack);
    std::vector<Retained>().swap(free_pool);
  }
};

namespace detail {

// Streams rows [x_begin, x_end] of the slice `b`. On entry ws.prev must hold
// row x_begin - 1 (zeros when x_begin == b.lo1) and ws.stack the retained
// rows as of after x_begin - 1 — which is exactly what a checkpoint snapshot
// restores. After each finished row the visitor sees
//   visit(x, row_values, ws.stack)
// and on return ws.prev holds row x_end. `stats` may be null (traceback
// replays do not double-count work).
template <typename D2, typename RowVisitor>
void stream_slice_rows(const SecondaryStructure& s1, const ColumnEvents& col_events,
                       SliceBounds b, Pos x_begin, Pos x_end, LeanSliceScratch& ws,
                       D2&& d2_of, McosStats* stats, RowVisitor&& visit) {
  const auto cols = static_cast<std::size_t>(b.height());
  const std::span<const ColumnEvents::Event> events = col_events.in_range(b.lo2, b.hi2);
  const Pos lo2 = b.lo2;

  for (Pos x = x_begin; x <= x_end; ++x) {
    Score* row = ws.cur.data();
    const Score* up = ws.prev.data();

    const Pos k1 = s1.arc_left_of(x);
    if (k1 < b.lo1) {
      // Arc-free row: verbatim copy of the row above (zeros on the first
      // row, where prev was zero-initialized) — same as the dense kernel.
      std::copy(up, up + cols, row);
    } else {
      const Score* d1_row = nullptr;
      if (k1 - 1 >= b.lo1) {
        // Non-crossing arcs make the retained rows LIFO: the arc ending at x
        // is the most recently opened one, so its d1 row is the stack top.
        SRNA_CHECK(!ws.stack.empty() && ws.stack.back().row == k1 - 1,
                   "lean stream: retained-row stack does not hold the d1 row");
        d1_row = ws.stack.back().values.data();
      }

      // Event-run row body, identical decisions to fill_slice_dense.
      Score left = 0;
      std::size_t c = 0;
      std::uint64_t row_arc_events = 0;
      for (const ColumnEvents::Event& e : events) {
        const auto ce = static_cast<std::size_t>(e.y - lo2);
        if (ce > c) {
          if (c == 0) left = up[0];
          std::fill(row + c, row + ce, left);
        }
        Score v = std::max(up[ce], left);
        if (e.k >= lo2) {
          const Score d1 = (d1_row != nullptr && e.k - 1 >= lo2)
                               ? d1_row[static_cast<std::size_t>(e.k - 1 - lo2)]
                               : 0;
          const Score d2 = d2_of(k1, x, e.k, e.y);
          v = std::max(v, static_cast<Score>(1 + d1 + d2));
          ++row_arc_events;
        }
        row[ce] = v;
        left = v;
        c = ce + 1;
      }
      if (c < cols) {
        if (c == 0) left = up[0];
        std::fill(row + c, row + cols, left);
      }
      if (stats != nullptr) stats->arc_match_events += row_arc_events;

      // The d1 row was consumed by its one consumer (unique endpoints):
      // release it.
      if (d1_row != nullptr) ws.pop_retained();
    }

    // Retain this row iff position x+1 opens an arc that closes inside the
    // slice — the future d1 row of that arc's ending row.
    if (x + 1 <= b.hi1) {
      const Pos close = s1.arc_right_of(x + 1);
      if (close >= 0 && close <= b.hi1) ws.push_retained(x, ws.cur);
    }

    visit(x, static_cast<const Score*>(row), ws);
    std::swap(ws.cur, ws.prev);
  }
}

}  // namespace detail

struct LeanStreamNoVisit {
  void operator()(Pos, const Score*, const LeanSliceScratch&) const noexcept {}
};

// Streams the whole slice and returns its final value F(lo1, hi1, lo2, hi2),
// with O((2 + open arcs) × height) resident state. Accounting matches
// tabulate_slice_dense: every cell is conceptually written, the dynamic case
// fires for the same (row, column) pairs.
template <typename D2, typename RowVisitor = LeanStreamNoVisit>
Score stream_slice_dense(const SecondaryStructure& s1, const ColumnEvents& col_events,
                         SliceBounds b, LeanSliceScratch& ws, D2&& d2_of,
                         McosStats* stats = nullptr, RowVisitor&& visit = RowVisitor{}) {
  if (b.empty()) {
    if (stats != nullptr) ++stats->slices_tabulated;
    return 0;
  }
  const auto cols = static_cast<std::size_t>(b.height());
  if (stats != nullptr) {
    ++stats->slices_tabulated;
    stats->cells_tabulated += static_cast<std::uint64_t>(b.width()) * cols;
  }
  ws.cur.assign(cols, 0);
  ws.prev.assign(cols, 0);
  while (!ws.stack.empty()) ws.pop_retained();
  detail::stream_slice_rows(s1, col_events, b, b.lo1, b.hi1, ws,
                            static_cast<D2&&>(d2_of), stats,
                            static_cast<RowVisitor&&>(visit));
  return ws.prev[cols - 1];  // after the final swap, prev holds row hi1
}

}  // namespace srna
