#include "parallel/cluster_sim.hpp"

#include <algorithm>
#include <cmath>

#include "core/arc_index.hpp"
#include "core/memo_table.hpp"
#include "core/mcos.hpp"
#include "rna/generators.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace srna {

double calibrate_cell_seconds(int sample_length) {
  SRNA_REQUIRE(sample_length >= 16, "calibration sample too small");
  const SecondaryStructure s = worst_case_structure(static_cast<Pos>(sample_length));
  // One warm-up plus one timed run of the real dense SRNA2.
  (void)mcos(s, s, McosAlgorithm::kSrna2);
  WallTimer timer;
  const McosResult r = mcos(s, s, McosAlgorithm::kSrna2);
  const double seconds = timer.seconds();
  SRNA_CHECK(r.stats.cells_tabulated > 0, "calibration run tabulated nothing");
  return seconds / static_cast<double>(r.stats.cells_tabulated);
}

namespace {

// Recursive-doubling collective: ceil(log2 p) stages, each α + bytes·β.
double allreduce_seconds(const MachineModel& model, std::size_t p, std::size_t bytes) {
  if (p <= 1) return 0.0;
  const double stages = std::ceil(std::log2(static_cast<double>(p)));
  return model.sync_overhead_seconds +
         stages * (model.alpha_seconds +
                   static_cast<double>(bytes) * model.beta_seconds_per_byte);
}

}  // namespace

SimBreakdown simulate_prna(const SecondaryStructure& s1, const SecondaryStructure& s2,
                           const MachineModel& model, const SimOptions& options) {
  SRNA_REQUIRE(options.processors >= 1, "need at least one processor");
  SRNA_REQUIRE(s1.is_nonpseudoknot() && s2.is_nonpseudoknot(),
               "MCOS model requires non-pseudoknot structures");

  const ArcIndex idx1(s1);
  const ArcIndex idx2(s2);
  const std::size_t p = options.processors;

  // Column ownership exactly as PRNA computes it.
  std::vector<std::uint64_t> col_weights(idx2.size());
  for (std::size_t b = 0; b < idx2.size(); ++b)
    col_weights[b] =
        static_cast<std::uint64_t>(std::max<Pos>(idx2.arc(b).interior_width(), 0));
  const Assignment assignment = balance_load(col_weights, p, options.balance);

  // Per-processor column-weight totals: thanks to the product form
  // cells(a1, a2) = w1(a1)·w2(a2), each row's per-processor cell count is
  // w1 · owned_weight[proc].
  std::vector<std::uint64_t> owned_weight(p, 0);
  for (std::size_t b = 0; b < idx2.size(); ++b)
    owned_weight[assignment.owner[b]] += col_weights[b];
  const std::uint64_t max_owned = *std::max_element(owned_weight.begin(), owned_weight.end());
  const std::uint64_t sum_owned = assignment.total();

  SimBreakdown sim;
  sim.rows = idx1.size();

  // Per-row message size for the synchronization model.
  const auto m_bytes = static_cast<std::size_t>(s2.length()) * sizeof(Score);
  const auto table_bytes =
      static_cast<std::size_t>(s1.length()) * static_cast<std::size_t>(s2.length()) * sizeof(Score);

  // Scratch for the dynamic-schedule model: greedy list scheduling of the
  // row's slice tasks (in column order) onto the least-loaded processor,
  // each task paying a dispatch overhead.
  std::vector<double> proc_load(p, 0.0);
  auto dynamic_row_makespan = [&](std::uint64_t w1) {
    std::fill(proc_load.begin(), proc_load.end(), 0.0);
    for (const std::uint64_t w2 : col_weights) {
      auto least = std::min_element(proc_load.begin(), proc_load.end());
      *least += static_cast<double>(w1 * w2) * model.cell_seconds +
                model.dispatch_overhead_seconds;
    }
    return *std::max_element(proc_load.begin(), proc_load.end());
  };

  double busiest_cells_time = 0.0;
  for (std::size_t a = 0; a < idx1.size(); ++a) {
    const auto w1 = static_cast<std::uint64_t>(std::max<Pos>(idx1.arc(a).interior_width(), 0));
    sim.total_cells += w1 * sum_owned;
    if (options.schedule == ScheduleModel::kDynamicPerSlice)
      busiest_cells_time += dynamic_row_makespan(w1);
    else
      busiest_cells_time += static_cast<double>(w1 * max_owned) * model.cell_seconds;
    switch (options.sync) {
      case SyncModel::kRowAllreduce:
        sim.stage1_comm_seconds += allreduce_seconds(model, p, m_bytes);
        break;
      case SyncModel::kTableAllreduce:
        sim.stage1_comm_seconds += allreduce_seconds(model, p, table_bytes);
        break;
      case SyncModel::kNoComm: break;
    }
  }
  sim.stage1_compute_seconds = busiest_cells_time;

  const double ideal =
      static_cast<double>(sim.total_cells) / static_cast<double>(p) * model.cell_seconds;
  sim.schedule_efficiency =
      sim.stage1_compute_seconds > 0.0 ? ideal / sim.stage1_compute_seconds : 1.0;

  // Stage two: the sequential parent slice (n × m dense cells).
  sim.stage2_seconds = static_cast<double>(s1.length()) * static_cast<double>(s2.length()) *
                       model.cell_seconds;

  // Preprocessing: sorting/indexing the arcs and the load balance — linear
  // and log-linear terms with small constants; negligible, as in Table III.
  sim.preprocess_seconds =
      1e-6 + 2e-8 * static_cast<double>(idx1.size() + idx2.size()) +
      1e-8 * static_cast<double>(s1.length() + s2.length());

  return sim;
}

std::vector<SpeedupPoint> simulate_speedup_curve(const SecondaryStructure& s1,
                                                 const SecondaryStructure& s2,
                                                 const MachineModel& model,
                                                 const std::vector<std::size_t>& processor_counts,
                                                 const SimOptions& base_options) {
  SimOptions sequential = base_options;
  sequential.processors = 1;
  const double t1 = simulate_prna(s1, s2, model, sequential).total_seconds();

  std::vector<SpeedupPoint> curve;
  curve.reserve(processor_counts.size());
  for (std::size_t p : processor_counts) {
    SimOptions opt = base_options;
    opt.processors = p;
    const double tp = simulate_prna(s1, s2, model, opt).total_seconds();
    SpeedupPoint point;
    point.processors = p;
    point.seconds = tp;
    point.speedup = tp > 0.0 ? t1 / tp : 1.0;
    point.efficiency = point.speedup / static_cast<double>(p);
    curve.push_back(point);
  }
  return curve;
}

const char* to_string(SyncModel sync) noexcept {
  switch (sync) {
    case SyncModel::kRowAllreduce: return "row-allreduce";
    case SyncModel::kTableAllreduce: return "table-allreduce";
    case SyncModel::kNoComm: return "no-comm";
  }
  return "?";
}

}  // namespace srna
