// PRNA over the mini-MPI substrate — a faithful transcription of the
// paper's Algorithm 4 for a (simulated) distributed-memory machine.
//
// Unlike the OpenMP implementation (one shared memo table, a barrier per
// row), this version gives every rank its own *replicated* memo table M and
// synchronizes exactly as the paper prescribes: after all ranks finish a
// row's owned child slices, MPI_Allreduce(MAX) over that row publishes the
// values — each rank contributes the columns it computed (others hold the
// initial 0) and receives the merged row. Stage two runs redundantly on
// every rank (each holds the full table), and rank 0's value is returned.
//
// The per-rank communication counters feed EXPERIMENTS.md's comparison with
// the cluster simulator's alpha-beta communication model.
#pragma once

#include "core/options.hpp"
#include "core/result.hpp"
#include "parallel/load_balance.hpp"
#include "parallel/mini_mpi.hpp"
#include "rna/secondary_structure.hpp"

namespace srna {

struct PrnaMpiOptions {
  int ranks = 2;
  BalanceStrategy balance = BalanceStrategy::kGreedyLpt;
  SliceLayout layout = SliceLayout::kDense;
};

struct PrnaMpiResult {
  Score value = 0;
  McosStats stats;                       // aggregated over ranks
  int ranks = 0;
  Assignment assignment;                 // stage-one column ownership
  std::vector<std::uint64_t> cells_per_rank;
  std::vector<mmpi::CommStats> comm;     // per-rank communication counters

  // Total payload bytes moved through row reductions (one rank's
  // contribution × ranks, summed over rows).
  [[nodiscard]] std::uint64_t allreduce_bytes() const noexcept;
};

PrnaMpiResult prna_mpi(const SecondaryStructure& s1, const SecondaryStructure& s2,
                       const PrnaMpiOptions& options = {});

}  // namespace srna
