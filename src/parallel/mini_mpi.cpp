#include "parallel/mini_mpi.hpp"

#include <cstring>
#include <exception>
#include <thread>

#include "util/assert.hpp"

namespace srna::mmpi {

Runtime::Runtime(int size) : size_(size) {
  SRNA_REQUIRE(size >= 1, "world size must be at least 1");
  slots_.assign(static_cast<std::size_t>(size), nullptr);
  mailboxes_.resize(static_cast<std::size_t>(size));
}

void Runtime::barrier() {
  std::unique_lock lock(barrier_mutex_);
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_arrived_ == size_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] { return barrier_generation_ != generation; });
}

void Runtime::exchange(int rank, const void* contribution,
                       const std::function<void()>& consume_phase) {
  slots_[static_cast<std::size_t>(rank)] = contribution;
  barrier();  // publish: all slots visible
  consume_phase();
  barrier();  // drain: nobody reads slots after this, safe to reuse
}

void Runtime::send(int from, int to, int tag, const void* data, std::size_t bytes) {
  Message msg;
  msg.from = from;
  msg.tag = tag;
  msg.payload.resize(bytes);
  if (bytes > 0) std::memcpy(msg.payload.data(), data, bytes);
  {
    std::lock_guard lock(mailbox_mutex_);
    mailboxes_[static_cast<std::size_t>(to)].push(std::move(msg));
  }
  mailbox_cv_.notify_all();
}

void Runtime::recv(int from, int to, int tag, void* data, std::size_t bytes) {
  std::unique_lock lock(mailbox_mutex_);
  auto& box = mailboxes_[static_cast<std::size_t>(to)];
  // Simple in-order matching: waits for the next message and checks the
  // envelope. (Sufficient for the deterministic protocols in this library;
  // a full MPI would match out of order.)
  mailbox_cv_.wait(lock, [&] { return !box.empty(); });
  Message msg = std::move(box.front());
  box.pop();
  SRNA_CHECK(msg.tag == tag, "mini-MPI recv: tag mismatch");
  SRNA_CHECK(msg.from == from, "mini-MPI recv: source mismatch");
  SRNA_CHECK(msg.payload.size() == bytes, "mini-MPI recv: size mismatch");
  if (bytes > 0) std::memcpy(data, msg.payload.data(), bytes);
}

void Rank::barrier() {
  obs::TraceScope span("mmpi", "barrier");
  if (span.active()) span.set_args(obs::trace_args({{"rank", rank_}}));
  ++stats_.barriers;
  runtime_.barrier();
}

void Rank::send(int to, int tag, const void* data, std::size_t bytes) {
  SRNA_REQUIRE(to >= 0 && to < size_, "send: bad destination rank");
  obs::TraceScope span("mmpi", "send");
  if (span.active())
    span.set_args(obs::trace_args(
        {{"rank", rank_}, {"to", to}, {"bytes", static_cast<std::int64_t>(bytes)}}));
  ++stats_.point_to_point;
  stats_.bytes_sent += bytes;
  runtime_.send(rank_, to, tag, data, bytes);
}

void Rank::recv(int from, int tag, void* data, std::size_t bytes) {
  SRNA_REQUIRE(from >= 0 && from < size_, "recv: bad source rank");
  obs::TraceScope span("mmpi", "recv");
  if (span.active())
    span.set_args(obs::trace_args(
        {{"rank", rank_}, {"from", from}, {"bytes", static_cast<std::int64_t>(bytes)}}));
  ++stats_.point_to_point;
  runtime_.recv(from, rank_, tag, data, bytes);
}

std::vector<CommStats> run(int ranks, const std::function<void(Rank&)>& fn) {
  SRNA_REQUIRE(ranks >= 1, "need at least one rank");
  Runtime runtime(ranks);

  std::vector<Rank> handles;
  handles.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) handles.push_back(Rank(runtime, r, ranks));

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(handles[static_cast<std::size_t>(r)]);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // A failed rank must not leave peers stuck in a collective; with
        // deterministic protocols an exception on one rank accompanies the
        // same exception on all (e.g. a failed SRNA_CHECK), so simply
        // returning is adequate for this library's use.
      }
    });
  }
  for (auto& t : threads) t.join();

  for (const auto& error : errors)
    if (error) std::rethrow_exception(error);

  std::vector<CommStats> stats;
  stats.reserve(handles.size());
  for (const Rank& h : handles) stats.push_back(h.stats());
  return stats;
}

}  // namespace srna::mmpi
