#include "parallel/prna.hpp"

#include <omp.h>

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/arc_index.hpp"
#include "core/memo_table.hpp"
#include "core/tabulate_slice.hpp"
#include "parallel/work_stealing.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/perf/perf_counters.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace srna {

namespace {

// Column weight of an S2 arc: the column factor of the product-form work of
// every child slice in that column (cells = interior(a1) × interior(a2)).
std::vector<std::uint64_t> column_weights(const ArcIndex& idx2) {
  std::vector<std::uint64_t> weights(idx2.size());
  for (std::size_t b = 0; b < idx2.size(); ++b)
    weights[b] = static_cast<std::uint64_t>(std::max<Pos>(idx2.arc(b).interior_width(), 0));
  return weights;
}

// Stage two as a parallel wavefront: cells of one anti-diagonal of the
// parent slice are independent (all dependencies — s1, s2, d1 — point at
// strictly earlier diagonals, and d2 reads the completed memo table).
Score tabulate_parent_wavefront(const SecondaryStructure& s1, const SecondaryStructure& s2,
                                const MemoTable& memo, int threads, McosStats& stats,
                                Matrix<Score>& grid) {
  const Pos n = s1.length();
  const Pos m = s2.length();
  if (n == 0 || m == 0) {
    ++stats.slices_tabulated;
    return 0;
  }
  grid.resize(static_cast<std::size_t>(n), static_cast<std::size_t>(m), 0);
  ++stats.slices_tabulated;
  stats.cells_tabulated += static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(m);

#pragma omp parallel num_threads(threads)
  for (Pos d = 0; d <= n + m - 2; ++d) {
    const Pos x_lo = std::max<Pos>(0, d - (m - 1));
    const Pos x_hi = std::min<Pos>(n - 1, d);
#pragma omp for schedule(static)
    for (Pos x = x_lo; x <= x_hi; ++x) {
      const Pos y = d - x;
      const auto ux = static_cast<std::size_t>(x);
      const auto uy = static_cast<std::size_t>(y);
      Score v = std::max(x > 0 ? grid(ux - 1, uy) : Score{0},
                         y > 0 ? grid(ux, uy - 1) : Score{0});
      const Pos k1 = s1.arc_left_of(x);
      if (k1 >= 0) {
        const Pos k2 = s2.arc_left_of(y);
        if (k2 >= 0) {
          const Score d1 = (k1 > 0 && k2 > 0)
                               ? grid(static_cast<std::size_t>(k1 - 1),
                                      static_cast<std::size_t>(k2 - 1))
                               : 0;
          v = std::max(v, static_cast<Score>(1 + d1 + memo.get(k1 + 1, k2 + 1)));
        }
      }
      grid(ux, uy) = v;
    }  // implicit barrier: the diagonal is published
  }
  return grid(static_cast<std::size_t>(n) - 1, static_cast<std::size_t>(m) - 1);
}

}  // namespace

obs::Json PrnaResult::to_json() const {
  obs::Json doc = obs::Json::object();
  doc.set("value", obs::Json(static_cast<std::int64_t>(value)));
  doc.set("threads_used", obs::Json(static_cast<std::int64_t>(threads_used)));
  doc.set("stats", stats.to_json());
  obs::Json cells = obs::Json::array();
  for (const std::uint64_t c : cells_per_thread) cells.push(obs::Json(c));
  doc.set("cells_per_thread", std::move(cells));
  obs::Json lanes = obs::Json::array();
  for (std::size_t tid = 0; tid < timeline.size(); ++tid) {
    const PrnaThreadTimeline& lane = timeline[tid];
    obs::Json entry = obs::Json::object();
    entry.set("thread", obs::Json(static_cast<std::int64_t>(tid)));
    entry.set("cells", obs::Json(lane.cells));
    entry.set("slices", obs::Json(lane.slices));
    entry.set("busy_seconds", obs::Json(lane.busy_seconds));
    entry.set("barrier_wait_seconds", obs::Json(lane.barrier_wait_seconds));
    entry.set("steals", obs::Json(lane.steals));
    entry.set("ready_pushes", obs::Json(lane.ready_pushes));
    entry.set("steal_idle_seconds", obs::Json(lane.steal_idle_seconds));
    entry.set("wall_seconds", obs::Json(lane.wall_seconds));
    entry.set("barrier_wait_fraction", obs::Json(lane.barrier_wait_fraction()));
    entry.set("steal_idle_fraction", obs::Json(lane.steal_idle_fraction()));
    lanes.push(std::move(entry));
  }
  doc.set("timeline", std::move(lanes));
  return doc;
}

PrnaResult prna(const SecondaryStructure& s1, const SecondaryStructure& s2,
                const PrnaOptions& options) {
  return prna(s1, s2, options, Workspace::local());
}

PrnaResult prna(const SecondaryStructure& s1, const SecondaryStructure& s2,
                const PrnaOptions& options, Workspace& workspace) {
  SRNA_REQUIRE(s1.is_nonpseudoknot() && s2.is_nonpseudoknot(),
               "MCOS model requires non-pseudoknot structures");

  PrnaResult result;
  const bool dense = options.layout == SliceLayout::kDense;
  const bool validate = options.validate_memo;
  const bool stealing = options.schedule == PrnaSchedule::kStealing;
  SRNA_REQUIRE(!options.use_std_threads || stealing,
               "use_std_threads applies to the kStealing schedule only");
  SRNA_REQUIRE(!(options.use_std_threads && options.parallel_stage2),
               "use_std_threads is incompatible with parallel_stage2 (an OpenMP wavefront)");

  // --- Preprocessing: arc index, column ownership, memo table. ---
  WallTimer phase;
  obs::TraceScope preprocess_span("prna", "preprocess");
  obs::CounterScope preprocess_counters("prna.preprocess");
  const ArcIndex idx1(s1);
  const ArcIndex idx2(s2);
  MemoTable& memo =
      workspace.memo(s1.length(), s2.length(), validate ? MemoTable::kUnset : Score{0});

  int threads = options.num_threads > 0 ? options.num_threads : omp_get_max_threads();
  threads = std::max(threads, 1);
  result.threads_used = threads;

  std::vector<std::vector<std::size_t>> owned(static_cast<std::size_t>(threads));
  if (!stealing) {
    result.assignment = balance_load(column_weights(idx2),
                                     static_cast<std::size_t>(threads), options.balance);
    // Owned-column lists, so each worker iterates only its own S2 arcs (in
    // increasing right-endpoint order, preserved from idx2). kStealing has no
    // static ownership: slices flow to whichever worker frees up.
    for (std::size_t b = 0; b < idx2.size(); ++b)
      owned[result.assignment.owner[b]].push_back(b);
  }
  // The event-run dense kernel's per-solve S2 column-event table, shared
  // read-only by all stage-one workers and stage two.
  const ColumnEvents& col_events = workspace.column_events().build(s2);
  if (const obs::CounterSample delta = preprocess_counters.close();
      delta.available && preprocess_span.active())
    preprocess_span.set_args(obs::counter_trace_args(delta));
  preprocess_span.close();
  result.stats.preprocess_seconds = phase.seconds();

  // --- Stage one: child slices in parallel — one barrier per M row
  // (static/dynamic) or barrier-free dependency-driven stealing. ---
  phase.reset();
  obs::TraceScope stage1_span("prna", "stage1");
  // The caller's request-scoped trace context does not follow work onto
  // pool threads (thread_local); capture it here and re-establish it on
  // each stage-one worker so their spans stay correlated with the request.
  const std::uint64_t trace_id = obs::trace_context::current();
  const char* schedule_name = stealing ? "stealing"
                              : options.schedule == PrnaSchedule::kDynamic ? "dynamic"
                                                                           : "static";
  if (obs::Logger::instance().enabled(obs::LogLevel::kDebug))
    obs::log_debug(
        "prna.stage1_start",
        obs::log_fields({{"schedule", obs::Json(schedule_name)},
                         {"threads", obs::Json(static_cast<std::int64_t>(threads))},
                         {"slices", obs::Json(static_cast<std::uint64_t>(idx1.size()) *
                                              static_cast<std::uint64_t>(idx2.size()))},
                         {"trace_id", obs::Json(trace_id)}}));
  std::vector<McosStats> thread_stats(static_cast<std::size_t>(threads));
  result.cells_per_thread.assign(static_cast<std::size_t>(threads), 0);
  result.timeline.assign(static_cast<std::size_t>(threads), PrnaThreadTimeline{});

  // Row-granularity instrument handles, resolved once (registry lookups
  // lock; the parallel region must not).
  auto& metrics = obs::Registry::instance();
  obs::Histogram& row_busy_hist = metrics.histogram("prna.row_busy_seconds");
  obs::Histogram& barrier_wait_hist = metrics.histogram("prna.barrier_wait_seconds");
  obs::Counter& rows_counter = metrics.counter("prna.rows");
  // Stealing-schedule instruments: the barrier-wait story replaced by
  // steals, ready-queue pushes, and per-worker idle (no-runnable-slice) time.
  obs::Counter& steals_counter = metrics.counter("prna.steals");
  obs::Counter& ready_counter = metrics.counter("prna.steal_ready_pushes");
  obs::Histogram& steal_idle_hist = metrics.histogram("prna.steal_idle_seconds");
  obs::Histogram& steal_idle_frac_hist = metrics.histogram("prna.steal_idle_fraction");

  auto d2_lookup = [&](Pos k1, Pos /*x*/, Pos k2, Pos /*y*/) -> Score {
    const Score v = memo.get(k1 + 1, k2 + 1);
    if (validate)
      SRNA_CHECK(v != MemoTable::kUnset,
                 "PRNA ordering violated: d2 lookup read an unpublished row");
    return v;
  };

  // First-failure capture: the winning thread stores its exception_ptr; the
  // others only flip the flag and drain the remaining barriers. Rethrown
  // after the region so the caller sees the real error, not a generic check.
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto capture_error = [&]() noexcept {
    {
      std::lock_guard lock(error_mutex);
      if (first_error == nullptr) first_error = std::current_exception();
    }
    failed.store(true, std::memory_order_relaxed);
    // Best-effort: the rethrow after the region is the authoritative report;
    // the log line ties the panic to its schedule and request in the stream.
    try {
      std::string what = "unknown";
      try {
        std::rethrow_exception(std::current_exception());
      } catch (const std::exception& e) {
        what = e.what();
      } catch (...) {
      }
      obs::log_error("prna.worker_panic",
                     obs::log_fields({{"schedule", obs::Json(schedule_name)},
                                      {"what", obs::Json(what)}}));
    } catch (...) {
    }
  };

  if (stealing) {
    // --- Barrier-free stage one: dependency counting + work stealing. ---
    //
    // Slice (a, b) d2-reads only slices under arcs strictly interior to a
    // and b (the same ordering fact the per-row barrier over-enforces), so
    // it may start as soon as its direct children along each coordinate are
    // done: deps(a, b) = child_count1[a] + child_count2[b]. A finished slice
    // decrements exactly its two single-coordinate parents, (parent1[a], b)
    // and (a, parent2[b]); any interior pair is reachable from (a, b) by
    // descending one coordinate at a time, so the acq_rel decrement chain
    // orders every memo read after the write it needs. Leaf pairs seed the
    // deques round-robin; workers drain their own deque LIFO and steal FIFO.
    const std::size_t n1 = idx1.size();
    const std::size_t n2 = idx2.size();
    const std::size_t n_slices = n1 * n2;
    SRNA_CHECK(n2 == 0 || n_slices / n2 == n1, "slice id space overflow");
    SRNA_CHECK(n_slices <= static_cast<std::size_t>(UINT32_MAX),
               "slice ids must fit the deque's 32-bit items");
    const ArcForest forest1 = build_arc_forest(idx1.all());
    const ArcForest forest2 = build_arc_forest(idx2.all());
    std::vector<std::atomic<std::uint32_t>> deps(n_slices);
    std::vector<WorkStealingDeque> queues(static_cast<std::size_t>(threads));
    for (WorkStealingDeque& q : queues) q.reset(n_slices);
    std::atomic<std::uint64_t> remaining{n_slices};
    std::size_t seed_rr = 0;
    for (std::size_t a = 0; a < n1; ++a)
      for (std::size_t b = 0; b < n2; ++b) {
        const std::uint32_t d = forest1.child_count[a] + forest2.child_count[b];
        deps[a * n2 + b].store(d, std::memory_order_relaxed);
        if (d == 0)
          queues[seed_rr++ % queues.size()].push(static_cast<std::uint32_t>(a * n2 + b));
      }

    auto worker = [&](std::size_t tid) {
      const obs::TraceContextScope request_ctx(trace_id);
      // Per-lane wall clock and hardware counters: each worker opens its own
      // thread's counter group, so perf.prna.stage1.* sums real per-thread
      // cycles rather than one lane's view.
      WallTimer lane_wall;
      obs::CounterScope lane_counters("prna.stage1");
      McosStats& local = thread_stats[tid];
      PrnaThreadTimeline& timeline = result.timeline[tid];
      Workspace& pool = Workspace::local();
      Matrix<Score>& dense_scratch = pool.dense_grid(0);
      EventScratch& compressed_scratch = pool.events(0);
      const SliceKernel slice_kernel = pool.slice_kernel(options.kernel, 0);
      WorkStealingDeque& mine = queues[tid];

      auto run_slice = [&](std::uint32_t id) {
        const std::size_t a = id / n2;
        const std::size_t b = id % n2;
        WallTimer busy;
        try {
          if (options.stage1_hook) options.stage1_hook(a, b);
          const Arc arc1 = idx1.arc(a);
          const Arc arc2 = idx2.arc(b);
          Score value;
          if (dense) {
            value = tabulate_slice_dense(
                s1, s2, col_events,
                SliceBounds::under(arc1.left, arc1.right, arc2.left, arc2.right),
                dense_scratch, slice_kernel, d2_lookup, &local);
          } else {
            value = tabulate_slice_compressed(idx1.interior(a), idx2.interior(b),
                                              compressed_scratch, d2_lookup, &local);
          }
          memo.set(arc1.left + 1, arc2.left + 1, value);
          // The release half of the decrement publishes the memo write; the
          // acquire half makes the worker that takes the parent ready see
          // every child's writes (transitively, along the decrement chain).
          auto notify = [&](std::size_t parent_id) {
            if (deps[parent_id].fetch_sub(1, std::memory_order_acq_rel) == 1) {
              mine.push(static_cast<std::uint32_t>(parent_id));
              ++timeline.ready_pushes;
            }
          };
          if (forest1.parent[a] != ArcForest::kNoParent)
            notify(forest1.parent[a] * n2 + b);
          if (forest2.parent[b] != ArcForest::kNoParent)
            notify(a * n2 + forest2.parent[b]);
        } catch (...) {
          capture_error();
        }
        remaining.fetch_sub(1, std::memory_order_acq_rel);
        timeline.busy_seconds += busy.seconds();
      };

      std::uint32_t id = 0;
      while (!failed.load(std::memory_order_relaxed)) {
        if (mine.pop(id)) {
          run_slice(id);
          continue;
        }
        bool stolen = false;
        for (std::size_t off = 1; off < queues.size() && !stolen; ++off)
          stolen = queues[(tid + off) % queues.size()].steal(id);
        if (stolen) {
          ++timeline.steals;
          run_slice(id);
          continue;
        }
        if (remaining.load(std::memory_order_acquire) == 0) break;
        // Nothing runnable anywhere right now: somebody is finishing the
        // slices ours depend on. Spin politely and account the gap.
        WallTimer idle;
        std::this_thread::yield();
        timeline.steal_idle_seconds += idle.seconds();
      }

      result.cells_per_thread[tid] = local.cells_tabulated;
      timeline.cells = local.cells_tabulated;
      timeline.slices = local.slices_tabulated;
      timeline.wall_seconds = lane_wall.seconds();
      lane_counters.close();
      steals_counter.add(timeline.steals);
      ready_counter.add(timeline.ready_pushes);
      steal_idle_hist.observe(timeline.steal_idle_seconds);
      steal_idle_frac_hist.observe(timeline.steal_idle_fraction());
    };

    if (options.use_std_threads) {
      // TSan shim: plain std::thread workers (see PrnaOptions::use_std_threads).
      std::vector<std::thread> shim;
      shim.reserve(static_cast<std::size_t>(threads) - 1);
      for (int t = 1; t < threads; ++t) shim.emplace_back(worker, static_cast<std::size_t>(t));
      worker(0);
      for (std::thread& t : shim) t.join();
    } else {
#pragma omp parallel num_threads(threads)
      worker(static_cast<std::size_t>(omp_get_thread_num()));
    }
    rows_counter.add(idx1.size());
  } else {
#pragma omp parallel num_threads(threads)
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    const obs::TraceContextScope request_ctx(trace_id);
    WallTimer lane_wall;
    obs::CounterScope lane_counters("prna.stage1");
    McosStats& local = thread_stats[tid];
    PrnaThreadTimeline& timeline = result.timeline[tid];
    // Worker slice scratch comes from the worker's own pooled workspace (a
    // distinct buffer from the caller's memo, even when the master's pool IS
    // the caller workspace); OpenMP threads persist across regions, so these
    // buffers amortize across successive prna() calls too.
    Workspace& pool = Workspace::local();
    Matrix<Score>& dense_scratch = pool.dense_grid(0);
    EventScratch& compressed_scratch = pool.events(0);
    const SliceKernel slice_kernel = pool.slice_kernel(options.kernel, 0);

    auto tabulate_pair = [&](std::size_t a, std::size_t b) {
      if (options.stage1_hook) options.stage1_hook(a, b);
      const Arc arc1 = idx1.arc(a);
      const Arc arc2 = idx2.arc(b);
      Score value;
      if (dense) {
        value = tabulate_slice_dense(
            s1, s2, col_events,
            SliceBounds::under(arc1.left, arc1.right, arc2.left, arc2.right),
            dense_scratch, slice_kernel, d2_lookup, &local);
      } else {
        value = tabulate_slice_compressed(idx1.interior(a), idx2.interior(b),
                                          compressed_scratch, d2_lookup, &local);
      }
      memo.set(arc1.left + 1, arc2.left + 1, value);
    };

    for (std::size_t a = 0; a < idx1.size(); ++a) {
      // Busy phase: this worker's owned-column batch of the row (static) or
      // its share of the dynamic pulls. One span per row per thread.
      WallTimer busy;
      {
        obs::TraceScope row_span("prna", "row");
        if (row_span.active())
          row_span.set_args(obs::trace_args(
              {{"row", static_cast<std::int64_t>(a)},
               {"owned", static_cast<std::int64_t>(
                             options.schedule == PrnaSchedule::kDynamic
                                 ? idx2.size()
                                 : owned[tid].size())}}));
        if (options.schedule == PrnaSchedule::kDynamic) {
          // Dynamic alternative: idle workers pull individual slices. nowait
          // + the explicit barrier below publishes the row (and makes the
          // barrier wait measurable, like the static path).
#pragma omp for schedule(dynamic, 1) nowait
          for (std::size_t b = 0; b < idx2.size(); ++b) {
            if (failed.load(std::memory_order_relaxed)) continue;
            try {
              tabulate_pair(a, b);
            } catch (...) {
              capture_error();
            }
          }
        } else if (!failed.load(std::memory_order_relaxed)) {
          try {
            for (const std::size_t b : owned[tid]) tabulate_pair(a, b);
          } catch (...) {
            capture_error();
          }
        }
      }
      const double busy_s = busy.seconds();
      timeline.busy_seconds += busy_s;
      row_busy_hist.observe(busy_s);

      // Publish row arc1.left + 1 of M: the shared-memory stand-in for the
      // paper's per-row MPI_Allreduce(MAX) over the replicated table. The
      // time spent here is the load imbalance made visible.
      WallTimer wait;
      {
        obs::TraceScope barrier_span("prna", "barrier_wait");
#pragma omp barrier
      }
      const double wait_s = wait.seconds();
      timeline.barrier_wait_seconds += wait_s;
      barrier_wait_hist.observe(wait_s);
    }

    result.cells_per_thread[tid] = local.cells_tabulated;
    timeline.cells = local.cells_tabulated;
    timeline.slices = local.slices_tabulated;
    timeline.wall_seconds = lane_wall.seconds();
    lane_counters.close();
  }
  rows_counter.add(idx1.size());
  }

  if (first_error != nullptr) {
    obs::Registry::instance().counter("prna.stage1_errors").add();
    std::rethrow_exception(first_error);
  }
  for (const McosStats& local : thread_stats) {
    result.stats.cells_tabulated += local.cells_tabulated;
    result.stats.slices_tabulated += local.slices_tabulated;
    result.stats.arc_match_events += local.arc_match_events;
  }
  stage1_span.close();
  result.stats.stage1_seconds = phase.seconds();
  if (obs::Logger::instance().enabled(obs::LogLevel::kDebug))
    obs::log_debug(
        "prna.stage1_stop",
        obs::log_fields({{"schedule", obs::Json(schedule_name)},
                         {"stage1_seconds", obs::Json(result.stats.stage1_seconds)},
                         {"cells", obs::Json(result.stats.cells_tabulated)},
                         {"trace_id", obs::Json(trace_id)}}));
  if (result.stats.stage1_seconds > 0.0)
    obs::Registry::instance().gauge("prna.stage1_cells_per_second")
        .set(static_cast<double>(result.stats.cells_tabulated) /
             result.stats.stage1_seconds);

  // --- Stage two: the parent slice (paper: not worth parallelizing;
  // Table III shows it below 0.2% of the runtime — parallel_stage2 exists
  // to measure exactly that). ---
  phase.reset();
  obs::TraceScope stage2_span("prna", "stage2");
  obs::CounterScope stage2_counters("prna.stage2");
  if (options.parallel_stage2) {
    SRNA_REQUIRE(dense, "parallel stage two supports the dense layout only");
    result.value = tabulate_parent_wavefront(s1, s2, memo, threads, result.stats,
                                             workspace.dense_grid(0));
  } else if (dense) {
    result.value = tabulate_slice_dense(s1, s2, col_events,
                                        SliceBounds{0, s1.length() - 1, 0, s2.length() - 1},
                                        workspace.dense_grid(0),
                                        workspace.slice_kernel(options.kernel, 0), d2_lookup,
                                        &result.stats);
  } else {
    result.value = tabulate_slice_compressed(idx1.all(), idx2.all(), workspace.events(0),
                                             d2_lookup, &result.stats);
  }
  if (const obs::CounterSample delta = stage2_counters.close();
      delta.available && stage2_span.active())
    stage2_span.set_args(obs::counter_trace_args(delta));
  stage2_span.close();
  result.stats.stage2_seconds = phase.seconds();
  bridge_stats_to_metrics("prna", result.stats);
  return result;
}

}  // namespace srna
