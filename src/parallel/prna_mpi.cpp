#include "parallel/prna_mpi.hpp"

#include <vector>

#include "core/arc_index.hpp"
#include "core/memo_table.hpp"
#include "core/tabulate_slice.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace srna {

std::uint64_t PrnaMpiResult::allreduce_bytes() const noexcept {
  std::uint64_t bytes = 0;
  for (const mmpi::CommStats& c : comm) bytes += c.bytes_sent;
  return bytes;
}

PrnaMpiResult prna_mpi(const SecondaryStructure& s1, const SecondaryStructure& s2,
                       const PrnaMpiOptions& options) {
  SRNA_REQUIRE(options.ranks >= 1, "need at least one rank");
  SRNA_REQUIRE(s1.is_nonpseudoknot() && s2.is_nonpseudoknot(),
               "MCOS model requires non-pseudoknot structures");

  const auto ranks = static_cast<std::size_t>(options.ranks);
  const bool dense = options.layout == SliceLayout::kDense;

  PrnaMpiResult result;
  result.ranks = options.ranks;
  result.cells_per_rank.assign(ranks, 0);
  std::vector<Score> rank_values(ranks, 0);
  std::vector<McosStats> rank_stats(ranks);

  result.comm = mmpi::run(options.ranks, [&](mmpi::Rank& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    McosStats& stats = rank_stats[rank];

    // --- Preprocessing (replicated, deterministic on every rank). ---
    WallTimer phase;
    obs::TraceScope preprocess_span("prna_mpi", "preprocess");
    if (preprocess_span.active())
      preprocess_span.set_args(obs::trace_args({{"rank", comm.rank()}}));
    const ArcIndex idx1(s1);
    const ArcIndex idx2(s2);

    std::vector<std::uint64_t> col_weights(idx2.size());
    for (std::size_t b = 0; b < idx2.size(); ++b)
      col_weights[b] =
          static_cast<std::uint64_t>(std::max<Pos>(idx2.arc(b).interior_width(), 0));
    const Assignment assignment = balance_load(col_weights, ranks, options.balance);
    if (rank == 0) result.assignment = assignment;

    std::vector<std::size_t> owned;
    for (std::size_t b = 0; b < idx2.size(); ++b)
      if (assignment.owner[b] == rank) owned.push_back(b);

    // The replicated memo table: this rank's private copy.
    MemoTable memo(s1.length(), s2.length(), 0);
    preprocess_span.close();
    stats.preprocess_seconds = phase.seconds();

    auto d2_lookup = [&](Pos k1, Pos /*x*/, Pos k2, Pos /*y*/) -> Score {
      return memo.get(k1 + 1, k2 + 1);
    };

    // --- Stage one: owned child slices, then Allreduce(MAX) per row. ---
    phase.reset();
    obs::TraceScope stage1_span("prna_mpi", "stage1");
    if (stage1_span.active())
      stage1_span.set_args(obs::trace_args({{"rank", comm.rank()}}));
    Matrix<Score> dense_scratch;
    EventScratch compressed_scratch;
    ColumnEvents col_events;
    col_events.build(s2);  // per rank: replicated like the memo table
    for (std::size_t a = 0; a < idx1.size(); ++a) {
      const Arc arc1 = idx1.arc(a);
      for (const std::size_t b : owned) {
        const Arc arc2 = idx2.arc(b);
        Score value;
        if (dense) {
          value = tabulate_slice_dense(
              s1, s2, col_events,
              SliceBounds::under(arc1.left, arc1.right, arc2.left, arc2.right),
              dense_scratch, d2_lookup, &stats);
        } else {
          value = tabulate_slice_compressed(idx1.interior(a), idx2.interior(b),
                                            compressed_scratch, d2_lookup, &stats);
        }
        memo.set(arc1.left + 1, arc2.left + 1, value);
      }
      // "Synchronize row i1 in M across all processors" — the paper's
      // MPI_Allreduce with MPI_MAX over the beginning address of the row.
      comm.allreduce_max(memo.row(arc1.left + 1), static_cast<std::size_t>(memo.cols()));
    }
    stage1_span.close();
    stats.stage1_seconds = phase.seconds();
    result.cells_per_rank[rank] = stats.cells_tabulated;

    // --- Stage two: every rank holds the full table; tabulate redundantly
    // (cheap — Table III) so no final broadcast is needed. ---
    phase.reset();
    obs::TraceScope stage2_span("prna_mpi", "stage2");
    if (stage2_span.active())
      stage2_span.set_args(obs::trace_args({{"rank", comm.rank()}}));
    if (dense) {
      rank_values[rank] =
          tabulate_slice_dense(s1, s2, col_events,
                               SliceBounds{0, s1.length() - 1, 0, s2.length() - 1},
                               dense_scratch, d2_lookup, rank == 0 ? &stats : nullptr);
    } else {
      rank_values[rank] = tabulate_slice_compressed(idx1.all(), idx2.all(), compressed_scratch,
                                                    d2_lookup, rank == 0 ? &stats : nullptr);
    }
    stats.stage2_seconds = phase.seconds();
  });

  // Every rank must agree on the answer (they hold identical tables).
  for (std::size_t r = 1; r < ranks; ++r)
    SRNA_CHECK(rank_values[r] == rank_values[0], "ranks disagree on the MCOS value");
  result.value = rank_values[0];

  for (const McosStats& s : rank_stats) {
    result.stats.cells_tabulated += s.cells_tabulated;
    result.stats.slices_tabulated += s.slices_tabulated;
    result.stats.arc_match_events += s.arc_match_events;
  }
  result.stats.preprocess_seconds = rank_stats[0].preprocess_seconds;
  // Stage one wall time = the slowest rank (they synchronize every row).
  for (const McosStats& s : rank_stats)
    result.stats.stage1_seconds = std::max(result.stats.stage1_seconds, s.stage1_seconds);
  result.stats.stage2_seconds = rank_stats[0].stage2_seconds;

  bridge_stats_to_metrics("prna_mpi", result.stats);
  // Communication volume, summed over ranks (the per-rank split is in the
  // returned CommStats; the registry records the aggregate).
  auto& metrics = obs::Registry::instance();
  mmpi::CommStats total;
  for (const mmpi::CommStats& c : result.comm) {
    total.barriers += c.barriers;
    total.allreduces += c.allreduces;
    total.broadcasts += c.broadcasts;
    total.gathers += c.gathers;
    total.point_to_point += c.point_to_point;
    total.bytes_sent += c.bytes_sent;
  }
  metrics.counter("prna_mpi.comm.barriers").add(total.barriers);
  metrics.counter("prna_mpi.comm.allreduces").add(total.allreduces);
  metrics.counter("prna_mpi.comm.broadcasts").add(total.broadcasts);
  metrics.counter("prna_mpi.comm.gathers").add(total.gathers);
  metrics.counter("prna_mpi.comm.point_to_point").add(total.point_to_point);
  metrics.counter("prna_mpi.comm.bytes_sent").add(total.bytes_sent);
  return result;
}

}  // namespace srna
