// mini-MPI: an in-process message-passing substrate.
//
// The paper implements PRNA with MPI on a distributed-memory cluster. This
// machine has no MPI installation, so — per the reproduction's substitution
// rule — the library ships the substrate itself: a miniature rank-based
// runtime with the collective PRNA needs (per-row Allreduce(MAX)), plus a
// barrier, broadcast, gather and point-to-point send/recv for completeness.
// Ranks are OS threads, but the *programming model* is distributed memory:
// each rank owns private buffers and data moves only through the explicit
// operations below, so prna_mpi() is a faithful transcription of the
// paper's Algorithm 4 (replicated memo table, reduction per completed row)
// rather than the shared-table shortcut of the OpenMP implementation.
//
// Communication volume is tracked per rank; the harness reports it next to
// the simulator's alpha-beta model.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <vector>

#include "obs/trace.hpp"

namespace srna::mmpi {

struct CommStats {
  std::uint64_t barriers = 0;
  std::uint64_t allreduces = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t gathers = 0;
  std::uint64_t point_to_point = 0;
  std::uint64_t bytes_sent = 0;  // this rank's contribution to collectives + sends
};

class Runtime;

// Per-rank handle passed to the rank function. All methods are collective
// or point-to-point operations in the MPI sense; every rank of the world
// must call matching collectives in the same order.
class Rank {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return size_; }

  // Collective: blocks until every rank arrives.
  void barrier();

  // Collective in-place element-wise reduction over `count` values of T;
  // every rank ends with the combined result. Op is a binary functor.
  template <typename T, typename Op>
  void allreduce(T* data, std::size_t count, Op op);

  // Convenience: element-wise max (the PRNA row synchronization).
  template <typename T>
  void allreduce_max(T* data, std::size_t count) {
    allreduce(data, count, [](T a, T b) { return a < b ? b : a; });
  }
  template <typename T>
  void allreduce_sum(T* data, std::size_t count) {
    allreduce(data, count, [](T a, T b) { return a + b; });
  }

  // Collective: copies `count` values of T from `root`'s buffer into every
  // rank's buffer.
  template <typename T>
  void broadcast(T* data, std::size_t count, int root);

  // Collective: `root` receives all ranks' `count`-element contributions
  // concatenated in rank order into `out` (size count * size()); other
  // ranks pass out == nullptr.
  template <typename T>
  void gather(const T* contribution, std::size_t count, T* out, int root);

  // Point-to-point: blocking send/recv of a byte buffer with a tag.
  void send(int to, int tag, const void* data, std::size_t bytes);
  void recv(int from, int tag, void* data, std::size_t bytes);

  [[nodiscard]] const CommStats& stats() const noexcept { return stats_; }

 private:
  friend class Runtime;
  friend std::vector<CommStats> run(int, const std::function<void(Rank&)>&);
  Rank(Runtime& runtime, int rank, int size) : runtime_(runtime), rank_(rank), size_(size) {}

  void collective_exchange(const void* contribution, std::size_t bytes,
                           const std::function<void(int src, const void* data)>& consume);

  Runtime& runtime_;
  int rank_;
  int size_;
  CommStats stats_;
};

// Runs `fn` on `ranks` ranks and blocks until all complete. Exceptions
// thrown by any rank are rethrown (the first one) after all ranks join.
// Returns the per-rank communication statistics.
std::vector<CommStats> run(int ranks, const std::function<void(Rank&)>& fn);

// ---------------------------------------------------------------- internals

class Runtime {
 public:
  explicit Runtime(int size);

  void barrier();

  // Generic collective: each rank publishes a pointer, waits until all are
  // published, then reads everyone's. Two internal barriers make the slot
  // array safe to reuse.
  void exchange(int rank, const void* contribution,
                const std::function<void()>& consume_phase);

  void send(int from, int to, int tag, const void* data, std::size_t bytes);
  void recv(int from, int to, int tag, void* data, std::size_t bytes);

  [[nodiscard]] const void* slot(int rank) const noexcept {
    return slots_[static_cast<std::size_t>(rank)];
  }

 private:
  struct Message {
    int from;
    int tag;
    std::vector<std::byte> payload;
  };

  int size_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;

  std::vector<const void*> slots_;

  std::mutex mailbox_mutex_;
  std::condition_variable mailbox_cv_;
  std::vector<std::queue<Message>> mailboxes_;  // indexed by receiver
};

template <typename T, typename Op>
void Rank::allreduce(T* data, std::size_t count, Op op) {
  obs::TraceScope span("mmpi", "allreduce");
  if (span.active())
    span.set_args(obs::trace_args(
        {{"rank", rank_}, {"bytes", static_cast<std::int64_t>(count * sizeof(T))}}));
  ++stats_.allreduces;
  stats_.bytes_sent += count * sizeof(T);
  // Publish a frozen copy: peers read the published contribution while this
  // rank accumulates into its live buffer, so the two must be distinct (an
  // in-place publish races for non-idempotent operators like sum).
  std::vector<T> contribution(data, data + count);
  runtime_.exchange(rank_, contribution.data(), [&] {
    // Combine every other rank's contribution into the local buffer. Each
    // rank reads all peers — semantically MPI_Allreduce; cost modelling for
    // a real network lives in cluster_sim, not here.
    for (int src = 0; src < size_; ++src) {
      if (src == rank_) continue;
      const T* theirs = static_cast<const T*>(runtime_.slot(src));
      for (std::size_t i = 0; i < count; ++i) data[i] = op(data[i], theirs[i]);
    }
  });
}

template <typename T>
void Rank::broadcast(T* data, std::size_t count, int root) {
  obs::TraceScope span("mmpi", "broadcast");
  if (span.active())
    span.set_args(obs::trace_args(
        {{"rank", rank_}, {"root", root},
         {"bytes", static_cast<std::int64_t>(count * sizeof(T))}}));
  ++stats_.broadcasts;
  if (rank_ == root) stats_.bytes_sent += count * sizeof(T);
  runtime_.exchange(rank_, data, [&] {
    if (rank_ != root) {
      const T* theirs = static_cast<const T*>(runtime_.slot(root));
      for (std::size_t i = 0; i < count; ++i) data[i] = theirs[i];
    }
  });
}

template <typename T>
void Rank::gather(const T* contribution, std::size_t count, T* out, int root) {
  obs::TraceScope span("mmpi", "gather");
  if (span.active())
    span.set_args(obs::trace_args(
        {{"rank", rank_}, {"root", root},
         {"bytes", static_cast<std::int64_t>(count * sizeof(T))}}));
  ++stats_.gathers;
  stats_.bytes_sent += count * sizeof(T);
  runtime_.exchange(rank_, contribution, [&] {
    if (rank_ == root && out != nullptr) {
      for (int src = 0; src < size_; ++src) {
        const T* theirs = static_cast<const T*>(runtime_.slot(src));
        for (std::size_t i = 0; i < count; ++i)
          out[static_cast<std::size_t>(src) * count + i] = theirs[i];
      }
    }
  });
}

}  // namespace srna::mmpi
