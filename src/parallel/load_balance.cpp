#include "parallel/load_balance.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/assert.hpp"

namespace srna {

std::uint64_t Assignment::makespan() const noexcept {
  std::uint64_t max = 0;
  for (std::uint64_t l : load) max = std::max(max, l);
  return max;
}

std::uint64_t Assignment::total() const noexcept {
  std::uint64_t sum = 0;
  for (std::uint64_t l : load) sum += l;
  return sum;
}

double Assignment::imbalance() const noexcept {
  const std::uint64_t sum = total();
  if (sum == 0 || load.empty()) return 1.0;
  const double ideal = static_cast<double>(sum) / static_cast<double>(load.size());
  return static_cast<double>(makespan()) / ideal;
}

namespace {

Assignment balance_lpt(const std::vector<std::uint64_t>& weights, std::size_t p) {
  Assignment a;
  a.owner.resize(weights.size());
  a.load.assign(p, 0);

  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return weights[x] > weights[y]; });

  // Min-heap of (load, processor); ties broken toward the lower processor id
  // for determinism.
  using Entry = std::pair<std::uint64_t, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t proc = 0; proc < p; ++proc) heap.emplace(0, proc);

  for (std::size_t task : order) {
    auto [l, proc] = heap.top();
    heap.pop();
    a.owner[task] = proc;
    a.load[proc] = l + weights[task];
    heap.emplace(a.load[proc], proc);
  }
  return a;
}

Assignment balance_block(const std::vector<std::uint64_t>& weights, std::size_t p) {
  Assignment a;
  a.owner.resize(weights.size());
  a.load.assign(p, 0);
  const std::size_t n = weights.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t proc = std::min(p - 1, i * p / std::max<std::size_t>(n, 1));
    a.owner[i] = proc;
    a.load[proc] += weights[i];
  }
  return a;
}

Assignment balance_cyclic(const std::vector<std::uint64_t>& weights, std::size_t p) {
  Assignment a;
  a.owner.resize(weights.size());
  a.load.assign(p, 0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const std::size_t proc = i % p;
    a.owner[i] = proc;
    a.load[proc] += weights[i];
  }
  return a;
}

}  // namespace

Assignment balance_load(const std::vector<std::uint64_t>& weights, std::size_t processors,
                        BalanceStrategy strategy) {
  SRNA_REQUIRE(processors >= 1, "need at least one processor");
  switch (strategy) {
    case BalanceStrategy::kGreedyLpt: return balance_lpt(weights, processors);
    case BalanceStrategy::kBlock: return balance_block(weights, processors);
    case BalanceStrategy::kCyclic: return balance_cyclic(weights, processors);
  }
  SRNA_CHECK(false, "unknown balance strategy");
  return {};
}

ArcForest build_arc_forest(std::span<const Arc> arcs_by_right) {
  ArcForest forest;
  const std::size_t n = arcs_by_right.size();
  forest.parent.assign(n, ArcForest::kNoParent);
  forest.child_count.assign(n, 0);
  // Sorted-by-right order is a post-order of the nesting forest: when arc i
  // arrives, every arc still on the stack with a greater left endpoint lies
  // strictly inside it (non-crossing + smaller right endpoint) and has no
  // smaller enclosing arc — i is its direct parent.
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < n; ++i) {
    while (!stack.empty() && arcs_by_right[stack.back()].left > arcs_by_right[i].left) {
      forest.parent[stack.back()] = i;
      ++forest.child_count[i];
      stack.pop_back();
    }
    stack.push_back(i);
  }
  return forest;
}

const char* to_string(BalanceStrategy strategy) noexcept {
  switch (strategy) {
    case BalanceStrategy::kGreedyLpt: return "lpt";
    case BalanceStrategy::kBlock: return "block";
    case BalanceStrategy::kCyclic: return "cyclic";
  }
  return "?";
}

}  // namespace srna
