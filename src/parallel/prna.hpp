// PRNA — the parallel algorithm (paper Algorithm 4), for shared memory.
//
// Structure mirrors SRNA2: preprocessing (arc index + static column
// ownership via load balancing), parallel stage one, sequential stage two.
// In each outer iteration (one S1 arc, i.e. one row of the memo table M)
// every worker tabulates the child slices of the S2 arcs it owns, writing
// disjoint columns of that row; a barrier then publishes the row — the
// shared-memory analogue of the paper's per-row MPI_Allreduce(MAX) over the
// replicated table. Correctness rests on the same ordering fact as SRNA2:
// d2 dependencies always point at rows completed in earlier iterations.
//
// The paper's 64-processor cluster runs are reproduced by the schedule
// simulator in cluster_sim.hpp; this implementation provides real (and
// tested) parallel execution on whatever cores exist.
#pragma once

#include <functional>

#include "core/options.hpp"
#include "core/result.hpp"
#include "core/workspace.hpp"
#include "parallel/load_balance.hpp"
#include "rna/secondary_structure.hpp"

namespace srna {

// How stage-one slices are assigned to workers.
//
// kStaticColumns is the paper's design: one load-balanced column ownership
// computed in preprocessing and reused for every row (valid because the
// per-row work factors as w1(row)·w2(column)). kDynamic hands individual
// slices to idle workers as they finish — the conventional alternative the
// static design is measured against (ablation_dynamic_schedule). Both
// publish each memo row with a barrier.
//
// kStealing drops the barriers entirely: each slice carries an atomic count
// of its unfinished direct-child slices (ArcForest), a finished slice
// decrements its two single-coordinate parents, and slices whose count hits
// zero go onto the finishing worker's Chase-Lev deque — idle workers steal.
// Threads flow across row boundaries instead of waiting on the row's
// straggler; barrier_wait_seconds is structurally zero and the cost of
// scheduling shows up as steal/idle metrics instead.
enum class PrnaSchedule : std::uint8_t { kStaticColumns, kDynamic, kStealing };

struct PrnaOptions {
  // Worker threads; 0 = OpenMP default (typically the core count).
  int num_threads = 0;
  BalanceStrategy balance = BalanceStrategy::kGreedyLpt;
  SliceLayout layout = SliceLayout::kDense;
  PrnaSchedule schedule = PrnaSchedule::kStaticColumns;
  // Tabulate the parent slice (stage two) as a parallel wavefront over
  // anti-diagonals instead of sequentially. The paper deems this not worth
  // the effort (stage two is < 0.01% of the runtime, Table III); this
  // implementation exists to measure that claim (ablation_stage2_parallel).
  // Dense layout only.
  bool parallel_stage2 = false;
  // Verify the ordering guarantee (memo initialized to the unset sentinel,
  // every d2 lookup checked). Test-suite use.
  bool validate_memo = false;
  // Dense-slice kernel variant; each worker binds its own KernelScratch from
  // the workspace pool (one per thread, like the slice grids).
  KernelVariant kernel = KernelVariant::kAuto;
  // kStealing only: run stage one on plain std::thread workers instead of an
  // OpenMP parallel region. ThreadSanitizer cannot see libgomp's internal
  // synchronization (every OpenMP region is a false positive), so
  // scripts/check_tsan.sh exercises the work-stealing scheduler through this
  // shim. Incompatible with parallel_stage2 (an OpenMP wavefront).
  bool use_std_threads = false;
  // Test-only fault injection: called before each stage-one slice with its
  // (row, column) arc indices; a throw from here exercises the parallel
  // error path (first exception captured, rethrown after the region).
  std::function<void(std::size_t a, std::size_t b)> stage1_hook;
};

// What one worker did during stage one: realized work plus where its wall
// time went — tabulating (busy) versus waiting at the per-row barrier
// (static/dynamic) or spinning for stealable work (kStealing). The imbalance
// between the two is the paper's load-balance story (Figure 8); the run
// report serializes this, and `--trace` shows the same data as per-row
// spans.
struct PrnaThreadTimeline {
  std::uint64_t cells = 0;
  std::uint64_t slices = 0;
  double busy_seconds = 0.0;
  double barrier_wait_seconds = 0.0;
  // kStealing only (zero otherwise): slices this worker stole from another
  // deque, ready slices it pushed, and wall time spent with no runnable
  // slice anywhere — the stealing analogue of barrier_wait_seconds.
  std::uint64_t steals = 0;
  std::uint64_t ready_pushes = 0;
  double steal_idle_seconds = 0.0;
  // Wall time this lane spent inside stage one, busy or not — the
  // denominator that turns the wait numbers into fractions. An absolute
  // idle of 50 ms is noise on a 10 s lane and a disaster on a 60 ms one;
  // to_json() reports both forms (…_seconds and …_fraction).
  double wall_seconds = 0.0;

  // barrier_wait_seconds / wall_seconds (0 when the lane has no wall time).
  [[nodiscard]] double barrier_wait_fraction() const noexcept {
    return wall_seconds > 0.0 ? barrier_wait_seconds / wall_seconds : 0.0;
  }
  // steal_idle_seconds / wall_seconds (0 when the lane has no wall time).
  [[nodiscard]] double steal_idle_fraction() const noexcept {
    return wall_seconds > 0.0 ? steal_idle_seconds / wall_seconds : 0.0;
  }
};

struct PrnaResult {
  Score value = 0;
  McosStats stats;             // aggregated over threads
  int threads_used = 0;
  Assignment assignment;       // the stage-one column ownership
  // Cells tabulated by each thread during stage one (work distribution
  // actually realized, for comparing against the load balancer's plan).
  std::vector<std::uint64_t> cells_per_thread;
  // Per-thread stage-one timeline (cells, busy vs. barrier-wait seconds).
  std::vector<PrnaThreadTimeline> timeline;

  // JSON rendering for run reports: value, threads, stats, timeline.
  [[nodiscard]] obs::Json to_json() const;
};

// The Workspace overload takes the memo table M and stage-two slice scratch
// from `workspace`; each stage-one worker additionally pulls its private
// slice scratch from its own pooled Workspace::local() (OpenMP threads
// persist across regions, so worker buffers amortize across calls too). The
// plain overload uses the calling thread's pooled workspace.
PrnaResult prna(const SecondaryStructure& s1, const SecondaryStructure& s2,
                const PrnaOptions& options = {});
PrnaResult prna(const SecondaryStructure& s1, const SecondaryStructure& s2,
                const PrnaOptions& options, Workspace& workspace);

}  // namespace srna
