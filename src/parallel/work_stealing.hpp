// A Chase-Lev work-stealing deque (Chase & Lev, SPAA'05), in the C11
// memory-model formulation of Lê, Pop, Cohen & Zappa Nardelli (PPoPP'13).
//
// PRNA's dependency-driven stage one (PrnaSchedule::kStealing) gives each
// worker one of these: the owner pushes newly-ready slices and pops LIFO
// (hot end, cache-warm children first); idle workers steal FIFO from the
// cold end, so a steal grabs the slice that has waited longest — typically
// the root of the largest untouched dependency subtree.
//
// The buffer is sized once per solve and never grows: every slice id is
// pushed exactly once globally (by the worker that observed its dependency
// counter hit zero), so no single deque can ever hold more than the total
// slice count — reset() rounds that up to a power of two and overflow is
// structurally impossible (asserted in debug builds).
//
// Elements are std::atomic so the racy buffer accesses the algorithm relies
// on are data-race-free under the C++ memory model — which is also what
// makes the scheduler TSan-clean (scripts/check_tsan.sh runs it under the
// std::thread shim; see PrnaOptions::use_std_threads).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/assert.hpp"

namespace srna {

class WorkStealingDeque {
 public:
  WorkStealingDeque() = default;
  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  // Re-shape for a run that will push at most `max_items` in total. Not
  // thread-safe; call before the workers start.
  void reset(std::size_t max_items) {
    std::size_t cap = 1;
    while (cap < max_items) cap <<= 1;
    if (cap > capacity_) {
      buffer_ = std::make_unique<std::atomic<std::uint32_t>[]>(cap);
      capacity_ = cap;
    }
    mask_ = static_cast<std::int64_t>(capacity_) - 1;
    top_.store(0, std::memory_order_relaxed);
    bottom_.store(0, std::memory_order_relaxed);
  }

  // Owner only: push at the hot end.
  void push(std::uint32_t item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    // Overflow would mean reset() was undersized — see the class comment.
    SRNA_DASSERT(b - top_.load(std::memory_order_acquire) <
                 static_cast<std::int64_t>(capacity_));
    buffer_[static_cast<std::size_t>(b & mask_)].store(item, std::memory_order_relaxed);
    // Publish the element before the new bottom becomes visible to thieves.
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  // Owner only: pop from the hot end. False when empty.
  bool pop(std::uint32_t& item) noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    // The seq_cst fence orders the bottom decrement against the thief's top
    // read — the crux of Chase-Lev's owner/thief race on the last element.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t <= b) {
      item = buffer_[static_cast<std::size_t>(b & mask_)].load(std::memory_order_relaxed);
      if (t == b) {
        // Single element left: race the thieves for it via top.
        const bool won = top_.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_relaxed);
        return won;
      }
      return true;
    }
    bottom_.store(b + 1, std::memory_order_relaxed);  // was empty; undo
    return false;
  }

  // Any thread: steal from the cold end. False when empty or a race lost
  // (callers treat both as "try elsewhere").
  bool steal(std::uint32_t& item) noexcept {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t < b) {
      item = buffer_[static_cast<std::size_t>(t & mask_)].load(std::memory_order_relaxed);
      return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed);
    }
    return false;
  }

 private:
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::unique_ptr<std::atomic<std::uint32_t>[]> buffer_;
  std::size_t capacity_ = 0;
  std::int64_t mask_ = 0;
};

}  // namespace srna
