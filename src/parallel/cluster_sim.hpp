// Distributed-memory execution simulator for PRNA (Figure 8 substitute).
//
// The paper evaluates PRNA with MPI on up to 64 physical processors of the
// "Fundy" cluster — hardware this reproduction does not have. What *is*
// fully determined by the algorithm, the input, and a small machine model is
// the schedule PRNA executes:
//
//   per S1 arc (one row of M):
//     each processor tabulates its owned child slices
//         — compute:  cells(owned) × cell_seconds, row time = the maximum,
//           where cells(a1, a2) = interior(a1) × interior(a2) exactly as the
//           real dense kernel counts them;
//     the row is synchronized with MPI_Allreduce(MAX) over m values
//         — communication: the classical recursive-doubling α–β model,
//           ceil(log2 p) stages of (α + message_bytes·β).
//   plus the sequential stage two and preprocessing.
//
// cell_seconds is *calibrated from a real measured SRNA2 run on this
// machine*, so the compute side is empirical; only the network is modelled.
// The simulator therefore reproduces the shape of Figure 8 — how speedup
// grows with p, where it saturates, and why the larger problem scales
// further (compute grows ~n² per row while the Allreduce grows ~n) — without
// claiming the testbed's absolute times. The same simulator with p = 1
// reproduces the sequential SRNA2 stage breakdown (Table III cross-check).
#pragma once

#include <vector>

#include "parallel/load_balance.hpp"
#include "rna/secondary_structure.hpp"

namespace srna {

struct MachineModel {
  // Seconds to tabulate one dense slice cell (calibrate_cell_seconds()).
  // The default corresponds to Table I's SRNA2 time at length 1600
  // (~660 s over ~4.1e11 cells on the paper's 2.8 GHz Opteron).
  double cell_seconds = 1.6e-9;
  // Per-stage effective latency of the collective (α). Mid-2000s
  // commodity-cluster MPI_Allreduce latencies at tens of ranks are in the
  // milliseconds once barrier skew and OS noise are folded in; 2 ms
  // reproduces the paper's measured saturation (~22x at 64 procs for the
  // 800-arc problem).
  double alpha_seconds = 2e-3;
  // Per-byte transfer time (β): effective gigabit ethernet with protocol
  // overhead.
  double beta_seconds_per_byte = 2e-8;
  // Fixed per-row software overhead of entering the collective.
  double sync_overhead_seconds = 5e-4;
  // Cost of handing one slice task to a worker under dynamic scheduling
  // (queue contention / task dispatch); irrelevant to the static schedule.
  double dispatch_overhead_seconds = 2e-6;
};

// Measures cell_seconds empirically: times the dense tabulation of a
// moderately sized worst-case instance and divides by cells tabulated.
double calibrate_cell_seconds(int sample_length = 400);

enum class SyncModel {
  kRowAllreduce,    // the paper: reduce one m-value row of M per S1 arc
  kTableAllreduce,  // naive: reduce the whole n×m table per S1 arc
  kNoComm,          // communication-free bound (perfect network)
};

// Stage-one assignment model (mirrors PrnaSchedule).
enum class ScheduleModel {
  kStaticColumns,   // the paper: one global column ownership for every row
  kDynamicPerSlice, // idle processors pull slices; pays dispatch overhead
};

struct SimOptions {
  std::size_t processors = 1;
  BalanceStrategy balance = BalanceStrategy::kGreedyLpt;
  SyncModel sync = SyncModel::kRowAllreduce;
  ScheduleModel schedule = ScheduleModel::kStaticColumns;
};

struct SimBreakdown {
  double preprocess_seconds = 0.0;
  double stage1_compute_seconds = 0.0;  // sum over rows of the busiest processor
  double stage1_comm_seconds = 0.0;     // per-row synchronization
  double stage2_seconds = 0.0;

  std::uint64_t total_cells = 0;        // stage-one cells across all processors
  std::uint64_t rows = 0;               // S1 arcs (synchronization rounds)
  // Compute efficiency of the schedule alone: ideal stage-one compute time
  // (total cells / p) divided by the simulated stage-one compute time.
  double schedule_efficiency = 1.0;

  [[nodiscard]] double total_seconds() const noexcept {
    return preprocess_seconds + stage1_compute_seconds + stage1_comm_seconds + stage2_seconds;
  }
};

// Replays PRNA's stage-one schedule for (s1, s2) under the model.
SimBreakdown simulate_prna(const SecondaryStructure& s1, const SecondaryStructure& s2,
                           const MachineModel& model, const SimOptions& options);

struct SpeedupPoint {
  std::size_t processors = 0;
  double seconds = 0.0;
  double speedup = 1.0;     // T(1) / T(p)
  double efficiency = 1.0;  // speedup / p
};

// Simulated speedup curve: T(1) is the simulated single-processor run (no
// communication), matching the paper's definition of speedup against the
// sequential algorithm.
std::vector<SpeedupPoint> simulate_speedup_curve(const SecondaryStructure& s1,
                                                 const SecondaryStructure& s2,
                                                 const MachineModel& model,
                                                 const std::vector<std::size_t>& processor_counts,
                                                 const SimOptions& base_options = {});

const char* to_string(SyncModel sync) noexcept;

}  // namespace srna
