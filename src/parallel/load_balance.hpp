// Static load balancing of child-slice columns across processors.
//
// PRNA distributes the S2 arcs ("the columns of the parent slice that
// correspond with matched arcs") among processors before stage one begins.
// The key structural fact (paper Figure 7): the work of tabulating the child
// slice for arc pair (a1, a2) is interior(a1) × interior(a2) — a *product*
// of a row factor and a column factor — so one static assignment balanced on
// the column factors is simultaneously balanced for every row, and the
// paper's per-row synchronization loses nothing to static skew.
//
// The paper uses "a greedy approximation algorithm [Graham 1969]" — LPT
// (longest processing time first), with its classical 4/3 − 1/(3p) makespan
// guarantee. Block and cyclic assignments are provided as ablation
// baselines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "rna/secondary_structure.hpp"

namespace srna {

struct Assignment {
  // owner[i] ∈ [0, processors) for each task i.
  std::vector<std::size_t> owner;
  // Total weight assigned to each processor.
  std::vector<std::uint64_t> load;

  [[nodiscard]] std::size_t processors() const noexcept { return load.size(); }
  [[nodiscard]] std::uint64_t makespan() const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept;
  // makespan / (total / p): 1.0 is perfect balance.
  [[nodiscard]] double imbalance() const noexcept;
};

enum class BalanceStrategy : std::uint8_t {
  kGreedyLpt,  // Graham's LPT: sort descending, assign to least-loaded
  kBlock,      // contiguous ranges of ~equal task count
  kCyclic,     // round robin
};

// Distributes `weights.size()` tasks over `processors` (>= 1).
Assignment balance_load(const std::vector<std::uint64_t>& weights, std::size_t processors,
                        BalanceStrategy strategy = BalanceStrategy::kGreedyLpt);

const char* to_string(BalanceStrategy strategy) noexcept;

// The nesting forest of a non-crossing arc set, indexed in sorted-by-right-
// endpoint order (the ArcIndex order). parent[i] is the smallest arc
// enclosing arc i (kNoParent for roots); child_count[i] is the number of
// arcs *directly* nested inside arc i.
//
// This is the dependency structure of PRNA's barrier-free stage one
// (PrnaSchedule::kStealing): slice (a, b) d2-reads only slices under arcs
// strictly inside a and b, so seeding its counter with
// child_count1[a] + child_count2[b] and having every finished slice
// decrement its two single-coordinate parents — (parent1[a], b) and
// (a, parent2[b]) — orders every read after its write (any interior pair is
// reachable from (a, b) by descending one coordinate at a time).
struct ArcForest {
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
  std::vector<std::size_t> parent;
  std::vector<std::uint32_t> child_count;

  [[nodiscard]] std::size_t size() const noexcept { return parent.size(); }
};

// Builds the forest from arcs sorted by right endpoint (ArcIndex::all()).
ArcForest build_arc_forest(std::span<const Arc> arcs_by_right);

}  // namespace srna
