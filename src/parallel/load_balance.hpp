// Static load balancing of child-slice columns across processors.
//
// PRNA distributes the S2 arcs ("the columns of the parent slice that
// correspond with matched arcs") among processors before stage one begins.
// The key structural fact (paper Figure 7): the work of tabulating the child
// slice for arc pair (a1, a2) is interior(a1) × interior(a2) — a *product*
// of a row factor and a column factor — so one static assignment balanced on
// the column factors is simultaneously balanced for every row, and the
// paper's per-row synchronization loses nothing to static skew.
//
// The paper uses "a greedy approximation algorithm [Graham 1969]" — LPT
// (longest processing time first), with its classical 4/3 − 1/(3p) makespan
// guarantee. Block and cyclic assignments are provided as ablation
// baselines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace srna {

struct Assignment {
  // owner[i] ∈ [0, processors) for each task i.
  std::vector<std::size_t> owner;
  // Total weight assigned to each processor.
  std::vector<std::uint64_t> load;

  [[nodiscard]] std::size_t processors() const noexcept { return load.size(); }
  [[nodiscard]] std::uint64_t makespan() const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept;
  // makespan / (total / p): 1.0 is perfect balance.
  [[nodiscard]] double imbalance() const noexcept;
};

enum class BalanceStrategy : std::uint8_t {
  kGreedyLpt,  // Graham's LPT: sort descending, assign to least-loaded
  kBlock,      // contiguous ranges of ~equal task count
  kCyclic,     // round robin
};

// Distributes `weights.size()` tasks over `processors` (>= 1).
Assignment balance_load(const std::vector<std::uint64_t>& weights, std::size_t processors,
                        BalanceStrategy strategy = BalanceStrategy::kGreedyLpt);

const char* to_string(BalanceStrategy strategy) noexcept;

}  // namespace srna
