// Streaming and batch summary statistics for benchmark repetitions.
#pragma once

#include <cstddef>
#include <vector>

namespace srna {

// Welford's online algorithm: numerically stable running mean/variance with
// min/max tracking. Used to summarize repeated benchmark measurements.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  void clear() noexcept { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Median of a copy of `values` (empty → 0).
double median(std::vector<double> values);

// p-th percentile (0..100) by linear interpolation between order statistics.
double percentile(std::vector<double> values, double p);

}  // namespace srna
