#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace srna {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double median(std::vector<double> values) { return percentile(std::move(values), 50.0); }

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace srna
