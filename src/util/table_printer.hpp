// Aligned plain-text tables and CSV output for the benchmark harness.
//
// Every bench binary reproduces one of the paper's tables/figures and prints
// it in the same row/column layout; TablePrinter handles column alignment and
// CSV export so the harness code stays focused on the experiment itself.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace srna {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Appends one row; pads or errors depending on width.
  void add_row(std::vector<std::string> row);

  // Convenience: formats arithmetic cells with operator<<.
  template <typename... Cells>
  void add(const Cells&... cells) {
    std::vector<std::string> row;
    row.reserve(sizeof...(cells));
    (row.push_back(to_cell(cells)), ...);
    add_row(std::move(row));
  }

  // Renders with space-aligned columns and a rule under the header.
  void print(std::ostream& os) const;

  // Renders as RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  template <typename T>
  static std::string to_cell(const T& v) {
    return std::to_string(v);
  }
  static std::string to_cell(double v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` digits after the decimal point.
std::string fixed(double value, int digits = 3);

}  // namespace srna
