#include "util/cli.hpp"

#include <iostream>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace srna {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {
  add_flag("help", "show this help and exit");
}

void CliParser::add_flag(const std::string& name, const std::string& help, bool def) {
  SRNA_REQUIRE(!opts_.count(name), "duplicate option: " + name);
  opts_[name] = Opt{help, def ? "true" : "false", /*is_flag=*/true, def};
  order_.push_back(name);
}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& def) {
  SRNA_REQUIRE(!opts_.count(name), "duplicate option: " + name);
  opts_[name] = Opt{help, def, /*is_flag=*/false, false};
  order_.push_back(name);
}

CliParser::Opt& CliParser::find(const std::string& name) {
  auto it = opts_.find(name);
  SRNA_REQUIRE(it != opts_.end(), "unknown option queried: " + name);
  return it->second;
}

const CliParser::Opt& CliParser::find(const std::string& name) const {
  auto it = opts_.find(name);
  SRNA_REQUIRE(it != opts_.end(), "unknown option queried: " + name);
  return it->second;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }

    bool negated = false;
    auto it = opts_.find(arg);
    if (it == opts_.end() && arg.rfind("no-", 0) == 0) {
      it = opts_.find(arg.substr(3));
      negated = it != opts_.end() && it->second.is_flag;
      if (!negated) it = opts_.end();
    }
    if (it == opts_.end()) throw std::invalid_argument("unknown option: --" + arg);

    Opt& opt = it->second;
    if (opt.is_flag) {
      if (has_value)
        opt.flag_value = (value == "true" || value == "1" || value == "yes");
      else
        opt.flag_value = !negated;
    } else {
      if (!has_value) {
        if (i + 1 >= argc) throw std::invalid_argument("option --" + arg + " needs a value");
        value = argv[++i];
      }
      opt.value = value;
      opt.occurrences.push_back(std::move(value));
    }
  }

  if (flag("help")) {
    print_usage(std::cout);
    return false;
  }
  return true;
}

bool CliParser::flag(const std::string& name) const {
  const Opt& o = find(name);
  SRNA_REQUIRE(o.is_flag, "option is not a flag: " + name);
  return o.flag_value;
}

std::string CliParser::str(const std::string& name) const { return find(name).value; }

std::int64_t CliParser::integer(const std::string& name) const {
  const std::string& v = find(name).value;
  try {
    std::size_t pos = 0;
    const std::int64_t out = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects an integer, got '" + v + "'");
  }
}

double CliParser::real(const std::string& name) const {
  const std::string& v = find(name).value;
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects a number, got '" + v + "'");
  }
}

std::vector<std::int64_t> CliParser::int_list(const std::string& name) const {
  const std::string& v = find(name).value;
  std::vector<std::int64_t> out;
  std::stringstream ss(v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    try {
      out.push_back(std::stoll(item));
    } catch (const std::exception&) {
      throw std::invalid_argument("option --" + name + " expects integers, got '" + item + "'");
    }
  }
  return out;
}

std::vector<std::string> CliParser::str_list(const std::string& name) const {
  const Opt& o = find(name);
  SRNA_REQUIRE(!o.is_flag, "option is not a value option: " + name);
  std::vector<std::string> out;
  const auto split_into = [&out](const std::string& value) {
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) out.push_back(item);
    }
  };
  if (o.occurrences.empty()) {
    split_into(o.value);
  } else {
    for (const std::string& occurrence : o.occurrences) split_into(occurrence);
  }
  return out;
}

void CliParser::print_usage(std::ostream& os) const {
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const std::string& name : order_) {
    const Opt& o = opts_.at(name);
    os << "  --" << name;
    if (!o.is_flag) os << "=<value>";
    os << "\n      " << o.help;
    if (!o.is_flag && !o.value.empty()) os << " (default: " << o.value << ")";
    if (o.is_flag) os << " (default: " << (o.flag_value ? "true" : "false") << ")";
    os << "\n";
  }
}

}  // namespace srna
