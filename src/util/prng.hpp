// Deterministic pseudo-random number generation for workload synthesis.
//
// All structure generators take an explicit seed so every experiment in the
// paper-reproduction harness is bit-reproducible across runs. xoshiro256**
// (Blackman & Vigna) is used instead of std::mt19937 because it is faster,
// has a tiny state, and — unlike the standard distributions — the helper
// methods below are guaranteed to produce identical streams on every
// platform/standard library.
#pragma once

#include <array>
#include <cstdint>

namespace srna {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  std::uint64_t operator()() noexcept;

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire's unbiased
  // multiply-shift rejection method.
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [0, 1).
  double uniform_real() noexcept;

  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  // Jump function: advances the state by 2^128 steps; used to derive
  // independent streams for parallel workload generation.
  void jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

// SplitMix64: used to expand a single user seed into the xoshiro state and to
// hash integers into seeds (e.g. per-instance seeds in parameter sweeps).
std::uint64_t splitmix64(std::uint64_t& state) noexcept;
std::uint64_t hash_u64(std::uint64_t x) noexcept;

}  // namespace srna
