// Lightweight runtime-check macros used throughout the library.
//
// SRNA_REQUIRE  — precondition check, always on; throws std::invalid_argument.
// SRNA_CHECK    — internal invariant, always on; throws std::logic_error.
// SRNA_DASSERT  — debug-only invariant (compiled out in NDEBUG builds); used
//                 on hot paths such as per-cell slice accesses.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace srna::detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace srna::detail

#define SRNA_REQUIRE(expr, msg)                                             \
  do {                                                                      \
    if (!(expr)) ::srna::detail::throw_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define SRNA_CHECK(expr, msg)                                               \
  do {                                                                      \
    if (!(expr)) ::srna::detail::throw_check(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define SRNA_DASSERT(expr) ((void)0)
#else
#define SRNA_DASSERT(expr)                                                  \
  do {                                                                      \
    if (!(expr)) ::srna::detail::throw_check(#expr, __FILE__, __LINE__, "debug assert"); \
  } while (false)
#endif
