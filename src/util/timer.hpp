// Wall-clock timing for the benchmark harness.
//
// The paper reports wall-clock seconds for SRNA1/SRNA2 (Tables I–II), a
// percentage breakdown across SRNA2's phases (Table III), and speedup curves
// (Figure 8). WallTimer is a thin steady_clock wrapper; PhaseTimer
// accumulates named phase durations for the Table III style breakdown.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace srna {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates durations under named phases. Phases are created on first use
// and keep their first-use order for reporting.
class PhaseTimer {
 public:
  struct Phase {
    std::string name;
    double seconds = 0.0;
    std::size_t count = 0;  // number of start/stop intervals accumulated
  };

  // Adds `seconds` to the named phase.
  void add(const std::string& name, double seconds);

  // RAII helper: times a scope into the named phase.
  class Scope {
   public:
    Scope(PhaseTimer& parent, std::string name)
        : parent_(parent), name_(std::move(name)) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { parent_.add(name_, timer_.seconds()); }

   private:
    PhaseTimer& parent_;
    std::string name_;
    WallTimer timer_;
  };

  [[nodiscard]] Scope scope(std::string name) { return Scope(*this, std::move(name)); }

  [[nodiscard]] const std::vector<Phase>& phases() const noexcept { return phases_; }
  [[nodiscard]] double total_seconds() const;
  [[nodiscard]] double seconds(const std::string& name) const;
  // Percentage of the total accounted for by `name` (0 if total is 0).
  [[nodiscard]] double percent(const std::string& name) const;

  void clear() {
    phases_.clear();
    index_.clear();
  }

 private:
  // Reporting order (first use) lives in phases_; index_ maps name -> slot
  // so add() is O(1) amortized instead of a linear scan per call (bench
  // loops add the same few phases thousands of times).
  std::vector<Phase> phases_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace srna
