#include "util/timer.hpp"

#include <algorithm>

namespace srna {

void PhaseTimer::add(const std::string& name, double seconds) {
  auto it = std::find_if(phases_.begin(), phases_.end(),
                         [&](const Phase& p) { return p.name == name; });
  if (it == phases_.end()) {
    phases_.push_back(Phase{name, seconds, 1});
  } else {
    it->seconds += seconds;
    ++it->count;
  }
}

double PhaseTimer::total_seconds() const {
  double total = 0.0;
  for (const Phase& p : phases_) total += p.seconds;
  return total;
}

double PhaseTimer::seconds(const std::string& name) const {
  for (const Phase& p : phases_)
    if (p.name == name) return p.seconds;
  return 0.0;
}

double PhaseTimer::percent(const std::string& name) const {
  const double total = total_seconds();
  if (total <= 0.0) return 0.0;
  return 100.0 * seconds(name) / total;
}

}  // namespace srna
