#include "util/timer.hpp"

namespace srna {

void PhaseTimer::add(const std::string& name, double seconds) {
  const auto [it, inserted] = index_.try_emplace(name, phases_.size());
  if (inserted) {
    phases_.push_back(Phase{name, seconds, 1});
    return;
  }
  Phase& p = phases_[it->second];
  p.seconds += seconds;
  ++p.count;
}

double PhaseTimer::total_seconds() const {
  double total = 0.0;
  for (const Phase& p : phases_) total += p.seconds;
  return total;
}

double PhaseTimer::seconds(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? 0.0 : phases_[it->second].seconds;
}

double PhaseTimer::percent(const std::string& name) const {
  const double total = total_seconds();
  if (total <= 0.0) return 0.0;
  return 100.0 * seconds(name) / total;
}

}  // namespace srna
