// Small string helpers shared by the format parsers and the harness.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace srna {

// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s) noexcept;

// Splits on any run of ASCII whitespace; no empty tokens.
std::vector<std::string_view> split_ws(std::string_view s);

// Splits on a single delimiter character; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char delim);

// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;

// Lower-cases ASCII.
std::string to_lower(std::string_view s);

// Parses a non-negative integer; returns false on any malformed input
// (empty, overflow, trailing garbage).
bool parse_size(std::string_view s, std::size_t& out) noexcept;

}  // namespace srna
