#include "util/table_printer.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace srna {

std::string fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string TablePrinter::to_cell(double v) { return fixed(v, 3); }

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {
  SRNA_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  SRNA_REQUIRE(row.size() == header_.size(), "row width must match header width");
  rows_.push_back(std::move(row));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 == width.size() ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& cell) -> std::string {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << quote(row[c]) << (c + 1 == row.size() ? "\n" : ",");
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace srna
