#include "util/prng.hpp"

namespace srna {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_u64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // An all-zero state is the one invalid state for xoshiro; splitmix64 cannot
  // produce four consecutive zeros, but keep the guard explicit.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::uniform(std::uint64_t bound) noexcept {
  // Lemire 2019: unbiased bounded integers via 128-bit multiply + rejection.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Xoshiro256::uniform_real() noexcept {
  // 53 high bits → double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_real() < p;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_ = {s0, s1, s2, s3};
}

}  // namespace srna
