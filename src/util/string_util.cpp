#include "util/string_util.hpp"

#include <cctype>
#include <limits>

namespace srna {

namespace {
bool is_ws(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_ws(s[b])) ++b;
  while (e > b && is_ws(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_ws(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_ws(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool parse_size(std::string_view s, std::size_t& out) noexcept {
  s = trim(s);
  if (s.empty()) return false;
  std::size_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::size_t>(c - '0');
    if (value > (std::numeric_limits<std::size_t>::max() - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

}  // namespace srna
