// Minimal command-line option parser for the bench/example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--flag` /
// `--no-flag`. Unknown options are an error (catches typos in sweep scripts);
// remaining positional arguments are collected in order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace srna {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  // Registration. `help` is shown by usage(); `def` is the default rendering.
  void add_flag(const std::string& name, const std::string& help, bool def = false);
  void add_option(const std::string& name, const std::string& help, const std::string& def);

  // Parses argv. Returns false (after printing usage) when --help was given.
  // Throws std::invalid_argument on unknown options or malformed values.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] std::string str(const std::string& name) const;
  [[nodiscard]] std::int64_t integer(const std::string& name) const;
  [[nodiscard]] double real(const std::string& name) const;
  // Comma-separated integer list, e.g. --lengths=100,200,400.
  [[nodiscard]] std::vector<std::int64_t> int_list(const std::string& name) const;
  // Every occurrence of a repeatable option, each occurrence further split on
  // commas: `--connect a:1 --connect b:2,c:3` yields {a:1, b:2, c:3}. When the
  // option never appeared, the (comma-split) default is returned; an empty
  // default yields an empty list.
  [[nodiscard]] std::vector<std::string> str_list(const std::string& name) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  void print_usage(std::ostream& os) const;

 private:
  struct Opt {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool flag_value = false;
    // Every parsed occurrence, in order (str() keeps returning the last one;
    // str_list() returns them all).
    std::vector<std::string> occurrences;
  };

  Opt& find(const std::string& name);
  const Opt& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Opt> opts_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace srna
