// Dense row-major 2-D array.
//
// The DP slices and the memoization table M are plain rectangular grids that
// are allocated and discarded constantly (every child slice is one Matrix),
// so this container is deliberately minimal: one contiguous allocation,
// trivially movable, with debug-only bounds checks on the hot accessors.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace srna {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, const T& fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) noexcept {
    SRNA_DASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const noexcept {
    SRNA_DASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  // Checked access for non-hot-path callers (format printing, tests).
  T& at(std::size_t r, std::size_t c) {
    SRNA_REQUIRE(r < rows_ && c < cols_, "Matrix::at out of range");
    return data_[r * cols_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    SRNA_REQUIRE(r < rows_ && c < cols_, "Matrix::at out of range");
    return data_[r * cols_ + c];
  }

  // Raw pointer to the start of row r (rows are contiguous). PRNA's per-row
  // synchronization reduces over exactly such a span.
  T* row_data(std::size_t r) noexcept {
    SRNA_DASSERT(r < rows_);
    return data_.data() + r * cols_;
  }
  const T* row_data(std::size_t r) const noexcept {
    SRNA_DASSERT(r < rows_);
    return data_.data() + r * cols_;
  }

  void fill(const T& value) { std::fill(data_.begin(), data_.end(), value); }

  void resize(std::size_t rows, std::size_t cols, const T& fill = T{}) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  // Re-shapes WITHOUT re-initializing: surviving cells keep their previous
  // (now meaningless) values. For kernels that overwrite every cell anyway —
  // the dense slice fills — where resize()'s zero pass is measurable pure
  // overhead (it rewrites the whole grid once per slice).
  void reshape(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  [[nodiscard]] const std::vector<T>& flat() const noexcept { return data_; }
  [[nodiscard]] std::vector<T>& flat() noexcept { return data_; }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace srna
