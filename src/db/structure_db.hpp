// Structure database: a named collection of secondary structures with
// directory persistence and parallel similarity search.
//
// This is the downstream-facing layer the paper's introduction motivates:
// once pairwise MCOS is fast, the useful operations are corpus-level —
// "rank everything against this query" and "give me the full similarity
// matrix" — and those parallelize trivially over pairs (independent MCOS
// instances), complementing PRNA's intra-instance parallelism.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/result.hpp"
#include "engine/engine.hpp"
#include "rna/secondary_structure.hpp"
#include "rna/sequence.hpp"
#include "util/matrix.hpp"

namespace srna {

struct DbRecord {
  std::string name;
  SecondaryStructure structure;
  std::optional<Sequence> sequence;
};

class StructureDatabase {
 public:
  StructureDatabase() = default;

  // Adds a record; names must be unique (throws std::invalid_argument). The
  // guard distinguishes a re-add of the identical structure from a genuine
  // collision (same name, different arc set) using the canonical
  // hash/equality from rna/structure_hash.hpp — the latter would silently
  // shadow the existing entry in the name index, so both throw, with the
  // collision case called out explicitly.
  void add(DbRecord record);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] const DbRecord& record(std::size_t index) const {
    return records_.at(index);
  }
  // Index of the record with this name, or npos. O(1): a name index is
  // maintained alongside the record vector.
  [[nodiscard]] std::size_t find(const std::string& name) const noexcept;
  // Index of the first record whose structure equals `s` (canonical
  // hash/equality, any name), or npos. O(1) expected: a content-hash index
  // is maintained alongside the name index. This is how corpus loaders spot
  // the same structure filed under two names.
  [[nodiscard]] std::size_t find_equivalent(const SecondaryStructure& s) const noexcept;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  // Loads every *.ct / *.bpseq file in `dir` (record name = file stem,
  // sorted for determinism). Throws on unreadable files.
  static StructureDatabase load_directory(const std::filesystem::path& dir);

  // Writes each record as <name>.ct into `dir` (created if absent).
  // Records without a sequence get a structure-consistent synthetic one.
  void save_directory(const std::filesystem::path& dir) const;

 private:
  std::vector<DbRecord> records_;
  std::unordered_map<std::string, std::size_t> name_index_;
  // Canonical structure hash -> record index; multimap because distinct
  // records may legitimately share content (same structure, two names) and,
  // rarely, distinct structures may share a hash.
  std::unordered_multimap<std::uint64_t, std::size_t> content_index_;
};

// How pairwise similarity is scored.
enum class SimilarityMetric : std::uint8_t {
  kCommonArcs,  // raw MCOS value
  kNormalized,  // 2*MCOS / (arcs_a + arcs_b), in [0, 1]; 1 for two arc-free structures
};

struct SearchOptions {
  SimilarityMetric metric = SimilarityMetric::kNormalized;
  // Worker threads for the pair loop; 0 = OpenMP default.
  int threads = 0;
  // Engine backend computing each pairwise MCOS (any registered name; see
  // McosEngine). With a parallel backend, the inner OpenMP region nests
  // inside the pair loop and serializes by default — pick intra-pair OR
  // inter-pair parallelism, not both.
  std::string algorithm = "srna2";
  // Backend configuration (layout, validation, threads for `prna`, ...),
  // validated against the chosen backend before the pair loop starts.
  SolverConfig config;
};

// Full pairwise similarity matrix (symmetric; diagonal = self-similarity).
// Pairs are computed in parallel with a dynamic schedule (pair costs vary
// wildly with structure shape).
Matrix<double> all_pairs_similarity(const StructureDatabase& db,
                                    const SearchOptions& options = {});

struct QueryHit {
  std::size_t index = 0;  // into the database
  Score common_arcs = 0;
  double score = 0.0;
};

// The k most similar records to `query`, best first (ties broken by lower
// index). k = 0 returns everything ranked.
std::vector<QueryHit> query_top_k(const StructureDatabase& db, const SecondaryStructure& query,
                                  std::size_t k, const SearchOptions& options = {});

}  // namespace srna
