#include "db/clustering.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <sstream>

#include "util/assert.hpp"

namespace srna {

std::vector<std::size_t> Dendrogram::members(int node) const {
  std::vector<std::size_t> out;
  if (node < 0) return out;
  std::vector<int> stack{node};
  while (!stack.empty()) {
    const ClusterNode& n = nodes[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (n.left < 0) {
      out.push_back(static_cast<std::size_t>(n.leaf));
    } else {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<std::size_t>> Dendrogram::cut(std::size_t k) const {
  SRNA_REQUIRE(k >= 1 && k <= std::max<std::size_t>(leaves, 1),
               "cut size must be in [1, leaves]");
  std::vector<std::vector<std::size_t>> clusters;
  if (nodes.empty()) return clusters;

  // The merges were created in increasing node order with (by construction)
  // non-increasing similarity; undoing the last k-1 merges = taking the
  // children frontier after removing the top k-1 internal nodes.
  std::vector<int> frontier{root()};
  while (frontier.size() < k) {
    // Split the frontier node whose merge similarity is weakest.
    std::size_t weakest = 0;
    double weakest_sim = std::numeric_limits<double>::infinity();
    bool found = false;
    for (std::size_t f = 0; f < frontier.size(); ++f) {
      const ClusterNode& n = nodes[static_cast<std::size_t>(frontier[f])];
      if (n.left < 0) continue;  // leaf, cannot split
      if (n.similarity < weakest_sim) {
        weakest_sim = n.similarity;
        weakest = f;
        found = true;
      }
    }
    SRNA_CHECK(found, "cannot cut further: k exceeds leaf count");
    const ClusterNode split = nodes[static_cast<std::size_t>(frontier[weakest])];
    frontier[weakest] = split.left;
    frontier.push_back(split.right);
  }

  for (const int node : frontier) clusters.push_back(members(node));
  std::sort(clusters.begin(), clusters.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return clusters;
}

std::string Dendrogram::to_newick(const std::vector<std::string>& names) const {
  SRNA_REQUIRE(names.size() == leaves, "one name per leaf required");
  if (nodes.empty()) return ";";

  std::ostringstream os;
  const std::function<void(int, double)> emit = [&](int node, double parent_sim) {
    const ClusterNode& n = nodes[static_cast<std::size_t>(node)];
    if (n.left < 0) {
      os << names[static_cast<std::size_t>(n.leaf)];
    } else {
      os << '(';
      emit(n.left, n.similarity);
      os << ',';
      emit(n.right, n.similarity);
      os << ')';
    }
    os << ':' << (1.0 - parent_sim);
  };
  // Root branch length measured from similarity 1.0 of a hypothetical
  // super-root; conventional enough for viewers.
  const ClusterNode& r = nodes[static_cast<std::size_t>(root())];
  if (r.left < 0) {
    os << names[static_cast<std::size_t>(r.leaf)];
  } else {
    os << '(';
    emit(r.left, r.similarity);
    os << ',';
    emit(r.right, r.similarity);
    os << ')';
  }
  os << ';';
  return os.str();
}

Dendrogram cluster_average_linkage(const Matrix<double>& similarity) {
  SRNA_REQUIRE(similarity.rows() == similarity.cols(), "similarity matrix must be square");
  const std::size_t n = similarity.rows();
  Dendrogram out;
  out.leaves = n;
  if (n == 0) return out;

  for (std::size_t i = 0; i < n; ++i)
    out.nodes.push_back(ClusterNode{-1, -1, static_cast<int>(i), 1.0});

  // Active clusters: node id + member list (for average linkage).
  struct Active {
    int node;
    std::vector<std::size_t> members;
  };
  std::vector<Active> active;
  for (std::size_t i = 0; i < n; ++i) active.push_back({static_cast<int>(i), {i}});

  auto linkage = [&](const Active& a, const Active& b) {
    double sum = 0.0;
    for (const std::size_t x : a.members)
      for (const std::size_t y : b.members) sum += similarity(x, y);
    return sum / (static_cast<double>(a.members.size()) * static_cast<double>(b.members.size()));
  };

  while (active.size() > 1) {
    std::size_t best_a = 0, best_b = 1;
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < active.size(); ++a) {
      for (std::size_t b = a + 1; b < active.size(); ++b) {
        const double s = linkage(active[a], active[b]);
        if (s > best) {
          best = s;
          best_a = a;
          best_b = b;
        }
      }
    }
    ClusterNode merged;
    merged.left = active[best_a].node;
    merged.right = active[best_b].node;
    merged.similarity = best;
    out.nodes.push_back(merged);

    Active joined;
    joined.node = static_cast<int>(out.nodes.size()) - 1;
    joined.members = active[best_a].members;
    joined.members.insert(joined.members.end(), active[best_b].members.begin(),
                          active[best_b].members.end());
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(best_b));
    active[best_a] = std::move(joined);
  }
  return out;
}

}  // namespace srna
