#include "db/structure_db.hpp"

#include <omp.h>

#include <algorithm>
#include <stdexcept>

#include "core/workspace.hpp"
#include "engine/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rna/formats.hpp"
#include "rna/generators.hpp"
#include "rna/structure_hash.hpp"
#include "util/assert.hpp"

namespace srna {

void StructureDatabase::add(DbRecord record) {
  SRNA_REQUIRE(!record.name.empty(), "record needs a name");
  if (const std::size_t existing = find(record.name); existing != npos) {
    // Same name twice. Distinguish the harmless case (identical structure,
    // e.g. the same file loaded twice) from the dangerous one: a different
    // structure under an existing name would shadow the original in the
    // name index while both stayed searchable by index.
    const bool identical =
        StructureEq::same_structure(records_[existing].structure, record.structure);
    throw std::invalid_argument(
        identical ? "duplicate record name: " + record.name + " (identical structure)"
                  : "duplicate record name: " + record.name +
                        " names a different structure (would shadow the existing record)");
  }
  SRNA_REQUIRE(record.structure.is_nonpseudoknot(),
               "database holds non-pseudoknot structures only: " + record.name);
  name_index_.emplace(record.name, records_.size());
  content_index_.emplace(hash_structure(record.structure), records_.size());
  records_.push_back(std::move(record));
}

std::size_t StructureDatabase::find(const std::string& name) const noexcept {
  const auto it = name_index_.find(name);
  return it != name_index_.end() ? it->second : npos;
}

std::size_t StructureDatabase::find_equivalent(const SecondaryStructure& s) const noexcept {
  std::size_t best = npos;
  const auto [lo, hi] = content_index_.equal_range(hash_structure(s));
  for (auto it = lo; it != hi; ++it) {
    // Hash match is a candidate, not a proof; confirm with exact equality
    // and keep the lowest index for determinism.
    if (StructureEq::same_structure(records_[it->second].structure, s))
      best = std::min(best, it->second);
  }
  return best;
}

StructureDatabase StructureDatabase::load_directory(const std::filesystem::path& dir) {
  SRNA_REQUIRE(std::filesystem::is_directory(dir),
               "not a directory: " + dir.string());
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension().string();
    if (ext == ".ct" || ext == ".bpseq") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  StructureDatabase db;
  for (const auto& path : files) {
    AnnotatedStructure rec = read_structure_file(path.string());
    db.add(DbRecord{path.stem().string(), std::move(rec.structure), std::move(rec.sequence)});
  }
  return db;
}

void StructureDatabase::save_directory(const std::filesystem::path& dir) const {
  std::filesystem::create_directories(dir);
  for (const DbRecord& rec : records_) {
    AnnotatedStructure out;
    out.title = rec.name;
    out.structure = rec.structure;
    out.sequence = rec.sequence ? *rec.sequence : sequence_for_structure(rec.structure, 1);
    write_structure_file((dir / (rec.name + ".ct")).string(), out);
  }
}

namespace {

double score_pair(Score common, const SecondaryStructure& a, const SecondaryStructure& b,
                  SimilarityMetric metric) {
  switch (metric) {
    case SimilarityMetric::kCommonArcs: return static_cast<double>(common);
    case SimilarityMetric::kNormalized: {
      const double denom = static_cast<double>(a.arc_count() + b.arc_count());
      return denom > 0 ? 2.0 * static_cast<double>(common) / denom : 1.0;
    }
  }
  return 0.0;
}

}  // namespace

Matrix<double> all_pairs_similarity(const StructureDatabase& db, const SearchOptions& options) {
  const std::size_t n = db.size();
  Matrix<double> out(n, n, 0.0);

  // Diagonal: self-similarity (1.0 normalized, arc count raw).
  for (std::size_t i = 0; i < n; ++i) {
    const auto& s = db.record(i).structure;
    out(i, i) = options.metric == SimilarityMetric::kNormalized
                    ? 1.0
                    : static_cast<double>(s.arc_count());
  }

  // Strict upper triangle, flattened so OpenMP can dynamically schedule the
  // wildly uneven pair costs.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);

  obs::Counter& pairs_counter = obs::Registry::instance().counter("db.pairs_compared");
  // Resolve the backend once; registry lookups lock and the loop must not.
  const SolverBackend& backend = McosEngine::instance().at(options.algorithm);
  backend.validate(options.config);
  const int threads = options.threads > 0 ? options.threads : omp_get_max_threads();
#pragma omp parallel for schedule(dynamic) num_threads(threads)
  for (std::size_t t = 0; t < pairs.size(); ++t) {
    const auto [i, j] = pairs[t];
    obs::TraceScope span("db", "pair");
    if (span.active())
      span.set_args(obs::trace_args({{"i", static_cast<std::int64_t>(i)},
                                     {"j", static_cast<std::int64_t>(j)}}));
    const auto& a = db.record(i).structure;
    const auto& b = db.record(j).structure;
    // Each worker solves out of its own pooled workspace: after the first
    // pair, a steady-state solve allocates nothing.
    const Score common = solve_with(backend, a, b, options.config, Workspace::local()).value;
    const double score = score_pair(common, a, b, options.metric);
    out(i, j) = score;
    out(j, i) = score;
    pairs_counter.add();
  }
  return out;
}

std::vector<QueryHit> query_top_k(const StructureDatabase& db, const SecondaryStructure& query,
                                  std::size_t k, const SearchOptions& options) {
  SRNA_REQUIRE(query.is_nonpseudoknot(), "query must be non-pseudoknot");
  std::vector<QueryHit> hits(db.size());

  obs::Registry::instance().counter("db.queries").add();
  obs::Counter& candidates_counter =
      obs::Registry::instance().counter("db.query_candidates");
  const SolverBackend& backend = McosEngine::instance().at(options.algorithm);
  backend.validate(options.config);
  const int threads = options.threads > 0 ? options.threads : omp_get_max_threads();
#pragma omp parallel for schedule(dynamic) num_threads(threads)
  for (std::size_t i = 0; i < db.size(); ++i) {
    obs::TraceScope span("db", "query_candidate");
    if (span.active())
      span.set_args(obs::trace_args({{"candidate", static_cast<std::int64_t>(i)}}));
    const auto& candidate = db.record(i).structure;
    const Score common =
        solve_with(backend, query, candidate, options.config, Workspace::local()).value;
    hits[i] = QueryHit{i, common, score_pair(common, query, candidate, options.metric)};
    candidates_counter.add();
  }

  // Deterministic ranking: score descending, index ascending on ties. Only
  // the leading k need full ordering, so rank with partial_sort when k cuts
  // the list (Θ(n log k) instead of Θ(n log n) — the common top-k query
  // barely touches the tail).
  const auto better = [](const QueryHit& a, const QueryHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.index < b.index;
  };
  if (k > 0 && hits.size() > k) {
    std::partial_sort(hits.begin(), hits.begin() + static_cast<std::ptrdiff_t>(k),
                      hits.end(), better);
    hits.resize(k);
  } else {
    std::sort(hits.begin(), hits.end(), better);
  }
  return hits;
}

}  // namespace srna
