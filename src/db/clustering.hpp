// Agglomerative clustering over a similarity matrix.
//
// The downstream workflow the database layer feeds: all_pairs_similarity →
// average-linkage dendrogram → flat clusters or a Newick tree for external
// viewers. Kept deliberately simple (O(n³) naive agglomeration) — the
// matrices here are small compared to the MCOS work that produced them.
#pragma once

#include <string>
#include <vector>

#include "util/matrix.hpp"

namespace srna {

struct ClusterNode {
  // Children indices into the node vector, or -1/-1 for a leaf.
  int left = -1;
  int right = -1;
  int leaf = -1;          // leaf item index (valid iff left < 0)
  double similarity = 1;  // linkage similarity at which the merge happened
};

struct Dendrogram {
  // Nodes in creation order: the first n are leaves, the last is the root
  // (for n >= 1). Empty for n == 0.
  std::vector<ClusterNode> nodes;
  std::size_t leaves = 0;

  [[nodiscard]] int root() const noexcept {
    return nodes.empty() ? -1 : static_cast<int>(nodes.size()) - 1;
  }

  // Leaf indices under `node`.
  [[nodiscard]] std::vector<std::size_t> members(int node) const;

  // Cuts the tree into exactly `k` flat clusters (1 <= k <= leaves) by
  // undoing the weakest merges; each cluster is a list of leaf indices
  // sorted ascending, clusters ordered by their smallest member.
  [[nodiscard]] std::vector<std::vector<std::size_t>> cut(std::size_t k) const;

  // Newick serialization with the given leaf names; branch lengths encode
  // (1 - merge similarity).
  [[nodiscard]] std::string to_newick(const std::vector<std::string>& names) const;
};

// Average-linkage agglomeration over a symmetric similarity matrix (higher
// = more similar). Throws on non-square input.
Dendrogram cluster_average_linkage(const Matrix<double>& similarity);

}  // namespace srna
