// Memory-footprint accounting: process RSS sampling plus the repo's exact
// byte gauges rolled into one "memory ledger".
//
// The Four-Russians and linear-space directions in ROADMAP are both bets on
// memory behavior; deciding them needs to know what a solve actually costs
// in bytes today. Two complementary sources:
//
//   * the OS view — current and peak resident set size of the process
//     (/proc/self/statm and getrusage(RUSAGE_SELF).ru_maxrss), published as
//     `mem.current_rss_bytes` / `mem.peak_rss_bytes` gauges on every
//     update_memory_gauges() call;
//   * the exact view — byte gauges the subsystems maintain themselves:
//     `engine.memo_table_bytes`, `engine.slice_scratch_bytes`, and
//     `engine.event_table_bytes` (set by solve_with() from Workspace
//     accounting, high-watermark), `engine.workspace_peak_bytes`
//     (whole-workspace watermark), `engine.workspace_trims` (budget-driven
//     pool releases), `lean.store_peak_bytes` (windowed memo store
//     high-water), `serve.cache_bytes` (live result-cache footprint), and
//     the serve admission trio `serve.memory_budget_bytes` /
//     `serve.memory_reserved_bytes` / `serve.memory_reserved_peak_bytes`.
//
// memory_ledger_json() snapshots both views into the block run reports and
// /statz embed. Both RSS readers return 0 (never throw) on hosts without
// procfs/getrusage.
#pragma once

#include <cstddef>

#include "obs/json.hpp"

namespace srna::obs {

// Resident set size right now, in bytes; 0 when unavailable.
[[nodiscard]] std::size_t current_rss_bytes() noexcept;

// Peak resident set size of the process, in bytes; 0 when unavailable.
[[nodiscard]] std::size_t peak_rss_bytes() noexcept;

// Samples RSS into the `mem.current_rss_bytes` (set) and
// `mem.peak_rss_bytes` (set_max) gauges. Call before scraping /metrics or
// snapshotting a report; costs one procfs read + one getrusage call.
void update_memory_gauges();

// The memory ledger: RSS plus the exact byte gauges listed in the header
// comment. Calls update_memory_gauges() first, so the block is fresh.
[[nodiscard]] Json memory_ledger_json();

}  // namespace srna::obs
