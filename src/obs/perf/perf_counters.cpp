#include "obs/perf/perf_counters.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/metrics.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace srna::obs {

namespace {

#if defined(__linux__)
// The five-event group, leader first. Order is the read-buffer order.
constexpr std::uint64_t kEventConfigs[CounterSet::kEvents] = {
    PERF_COUNT_HW_CPU_CYCLES,       PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

long sys_perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                         unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}
#endif

std::uint64_t saturating_sub(std::uint64_t a, std::uint64_t b) noexcept {
  return a > b ? a - b : 0;
}

}  // namespace

CounterSample CounterSample::delta_since(const CounterSample& earlier) const noexcept {
  CounterSample d;
  d.available = available && earlier.available;
  if (!d.available) return d;
  d.cycles = saturating_sub(cycles, earlier.cycles);
  d.instructions = saturating_sub(instructions, earlier.instructions);
  d.cache_references = saturating_sub(cache_references, earlier.cache_references);
  d.cache_misses = saturating_sub(cache_misses, earlier.cache_misses);
  d.branch_misses = saturating_sub(branch_misses, earlier.branch_misses);
  return d;
}

Json CounterSample::to_json() const {
  Json doc = Json::object();
  doc.set("available", Json(available));
  doc.set("cycles", Json(cycles));
  doc.set("instructions", Json(instructions));
  doc.set("cache_references", Json(cache_references));
  doc.set("cache_misses", Json(cache_misses));
  doc.set("branch_misses", Json(branch_misses));
  doc.set("ipc", Json(ipc()));
  doc.set("cache_miss_rate", Json(cache_miss_rate()));
  return doc;
}

bool CounterSet::disabled_by_env() noexcept {
  const char* knob = std::getenv("SRNA_DISABLE_PERF_COUNTERS");
  return knob != nullptr && knob[0] == '1' && knob[1] == '\0';
}

CounterSet::CounterSet() {
  fds_.fill(-1);
  if (disabled_by_env()) return;
#if defined(__linux__)
  // The leader starts disabled; members attach to it. Kernel/hypervisor
  // cycles are excluded so unprivileged opens work at
  // perf_event_paranoid <= 2 (the common container setting when the
  // syscall is allowed at all).
  for (std::size_t i = 0; i < kEvents; ++i) {
    perf_event_attr attr{};
    attr.size = sizeof(attr);
    attr.type = PERF_TYPE_HARDWARE;
    attr.config = kEventConfigs[i];
    attr.disabled = (i == 0) ? 1 : 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    const int group = fds_[0];
    const long fd = sys_perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1, group, 0);
    if (fd < 0) {
      if (i == 0) {
        // No leader, no group: stub. (ENOSYS/EACCES/EPERM — seccomp,
        // paranoid, or a kernel without the PMU; all equally fine.)
        return;
      }
      // A missing member (exotic PMU) just reads as zero; the group stays
      // useful for the events that did open.
      continue;
    }
    fds_[i] = static_cast<int>(fd);
  }
  if (ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
      ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
    for (int& fd : fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    return;
  }
  available_ = true;
#endif
}

CounterSet::~CounterSet() {
#if defined(__linux__)
  for (const int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
#endif
}

CounterSample CounterSet::read() const noexcept {
  CounterSample sample;
  if (!available_) return sample;
#if defined(__linux__)
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr] —
  // values appear in open order for the fds that opened successfully.
  std::uint64_t buf[3 + kEvents] = {};
  const ssize_t n = ::read(fds_[0], buf, sizeof(buf));
  if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return sample;
  const std::uint64_t enabled = buf[1];
  const std::uint64_t running = buf[2];
  // Multiplex scaling: when the kernel time-shared the PMU, extrapolate the
  // counted window to the enabled window.
  const double scale =
      (running > 0 && enabled > running)
          ? static_cast<double>(enabled) / static_cast<double>(running)
          : 1.0;
  std::uint64_t* out[kEvents] = {&sample.cycles, &sample.instructions,
                                 &sample.cache_references, &sample.cache_misses,
                                 &sample.branch_misses};
  std::size_t slot = 0;
  for (std::size_t i = 0; i < kEvents; ++i) {
    if (fds_[i] < 0) continue;  // event never opened; stays 0
    const std::uint64_t raw = buf[3 + slot];
    ++slot;
    *out[i] = scale == 1.0
                  ? raw
                  : static_cast<std::uint64_t>(static_cast<double>(raw) * scale);
  }
  sample.available = true;
#endif
  return sample;
}

CounterSet& CounterSet::local() {
  thread_local CounterSet set;
  return set;
}

CounterScope::CounterScope(const char* phase) noexcept : phase_(phase) {
  // The env knob is re-checked per scope (not only at pool construction) so
  // forcing the stub path works even after this thread's pooled set opened.
  if (CounterSet::disabled_by_env()) return;
  start_ = CounterSet::local().read();
  active_ = start_.available;
}

CounterSample CounterScope::close() noexcept {
  if (!active_) return CounterSample{};
  active_ = false;
  CounterSample delta;
  try {
    delta = CounterSet::local().read().delta_since(start_);
    if (!delta.available) return delta;
    auto& registry = Registry::instance();
    const std::string prefix = std::string("perf.") + phase_;
    registry.counter(prefix + ".cycles").add(delta.cycles);
    registry.counter(prefix + ".instructions").add(delta.instructions);
    registry.counter(prefix + ".cache_references").add(delta.cache_references);
    registry.counter(prefix + ".cache_misses").add(delta.cache_misses);
    registry.counter(prefix + ".branch_misses").add(delta.branch_misses);
  } catch (...) {
    // Registry allocation failure must not take down a solve; the sample is
    // simply lost.
    delta.available = false;
  }
  return delta;
}

std::string counter_trace_args(const CounterSample& delta) {
  Json doc = delta.to_json();
  return doc.dump();
}

void publish_counter_availability() {
  const bool up = !CounterSet::disabled_by_env() && CounterSet::local().available();
  Registry::instance().gauge("perf.available").set(up ? 1.0 : 0.0);
}

}  // namespace srna::obs
