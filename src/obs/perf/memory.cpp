#include "obs/perf/memory.hpp"

#include <cstdio>

#include "obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace srna::obs {

std::size_t current_rss_bytes() noexcept {
#if defined(__linux__)
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long size = 0, resident = 0;
  const int matched = std::fscanf(f, "%lu %lu", &size, &resident);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

std::size_t peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

void update_memory_gauges() {
  auto& registry = Registry::instance();
  registry.gauge("mem.current_rss_bytes").set(static_cast<double>(current_rss_bytes()));
  // set_max: Registry::reset() zeroes it, and a sampled peak must never move
  // backwards between samples.
  registry.gauge("mem.peak_rss_bytes").set_max(static_cast<double>(peak_rss_bytes()));
}

Json memory_ledger_json() {
  update_memory_gauges();
  auto& registry = Registry::instance();
  Json doc = Json::object();
  doc.set("current_rss_bytes",
          Json(static_cast<std::uint64_t>(registry.gauge("mem.current_rss_bytes").value())));
  doc.set("peak_rss_bytes",
          Json(static_cast<std::uint64_t>(registry.gauge("mem.peak_rss_bytes").value())));
  doc.set("memo_table_bytes",
          Json(static_cast<std::uint64_t>(registry.gauge("engine.memo_table_bytes").value())));
  doc.set("slice_scratch_bytes",
          Json(static_cast<std::uint64_t>(
              registry.gauge("engine.slice_scratch_bytes").value())));
  doc.set("event_table_bytes",
          Json(static_cast<std::uint64_t>(
              registry.gauge("engine.event_table_bytes").value())));
  doc.set("workspace_peak_bytes",
          Json(static_cast<std::uint64_t>(
              registry.gauge("engine.workspace_peak_bytes").value())));
  doc.set("workspace_trims",
          Json(registry.counter("engine.workspace_trims").value()));
  doc.set("lean_store_peak_bytes",
          Json(static_cast<std::uint64_t>(registry.gauge("lean.store_peak_bytes").value())));
  doc.set("result_cache_bytes",
          Json(static_cast<std::uint64_t>(registry.gauge("serve.cache_bytes").value())));
  // The serve layer's memory admission: the configured budget, the live sum
  // of in-flight solve reservations, and its high-water mark. All zero when
  // no budgeted service is running in this process.
  doc.set("serve_memory_budget_bytes",
          Json(static_cast<std::uint64_t>(
              registry.gauge("serve.memory_budget_bytes").value())));
  doc.set("serve_memory_reserved_bytes",
          Json(static_cast<std::uint64_t>(
              registry.gauge("serve.memory_reserved_bytes").value())));
  doc.set("serve_memory_reserved_peak_bytes",
          Json(static_cast<std::uint64_t>(
              registry.gauge("serve.memory_reserved_peak_bytes").value())));
  return doc;
}

}  // namespace srna::obs
