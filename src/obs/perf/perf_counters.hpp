// Hardware performance counters via perf_event_open(2).
//
// The paper's scaling question (Figure 8: why do the speedups bend?) needs
// more than wall-clock spans: the same stage-one schedule can be slow
// because it executes more instructions, because it stalls on cache misses,
// or because workers sit idle — three different fixes. A CounterSet opens
// one per-thread event group (cycles, instructions, cache references/
// misses, branch misses) and a CounterScope reads the group around a phase,
// publishing the deltas as `perf.<phase>.<event>` registry counters so they
// ride every existing surface: metrics snapshots, run reports,
// render_prometheus(), and (as span args) the Chrome trace.
//
// Degradation contract: perf events are frequently unavailable — containers
// seccomp the syscall, `kernel.perf_event_paranoid` may forbid it, and
// non-Linux hosts never had it. Every entry point here degrades to a stub
// that records `available == false` and costs a few branches; nothing in
// this header ever throws or logs an error for an unavailable counter. The
// env knob `SRNA_DISABLE_PERF_COUNTERS=1` forces the stub path (tests pin
// it down; ops can silence a flaky PMU the same way).
//
// Threading: a CounterSet counts the thread that constructed it, and only
// that thread may read() it. Use CounterSet::local() for a pooled
// per-thread instance (the pattern Workspace::local() set); CounterScope
// does so by default, so parallel workers each account their own cycles and
// the sharded registry counters sum them.
#pragma once

#include <array>
#include <cstdint>

#include "obs/json.hpp"

namespace srna::obs {

// One reading (or delta) of the five-event group. `available == false`
// means the numbers are all zero and must not be interpreted.
struct CounterSample {
  bool available = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;

  // Instructions per cycle; 0 when cycles is 0 or unavailable.
  [[nodiscard]] double ipc() const noexcept {
    return cycles > 0 ? static_cast<double>(instructions) / static_cast<double>(cycles) : 0.0;
  }
  // cache_misses / cache_references; 0 when no references were counted.
  [[nodiscard]] double cache_miss_rate() const noexcept {
    return cache_references > 0
               ? static_cast<double>(cache_misses) / static_cast<double>(cache_references)
               : 0.0;
  }

  // Saturating per-event difference (self - earlier). available only when
  // both sides were.
  [[nodiscard]] CounterSample delta_since(const CounterSample& earlier) const noexcept;

  // {"available": ..., "cycles": ..., ..., "ipc": ..., "cache_miss_rate": ...}
  [[nodiscard]] Json to_json() const;
};

// A per-thread perf event group. Construction attempts to open the group
// for the calling thread; on any failure the set is a stub (available() ==
// false) and read() returns unavailable samples.
class CounterSet {
 public:
  static constexpr std::size_t kEvents = 5;

  CounterSet();
  ~CounterSet();

  CounterSet(const CounterSet&) = delete;
  CounterSet& operator=(const CounterSet&) = delete;

  [[nodiscard]] bool available() const noexcept { return available_; }

  // Running totals since construction, multiplex-scaled (time_enabled /
  // time_running) when the kernel rotated the group off the PMU. Call only
  // from the constructing thread.
  [[nodiscard]] CounterSample read() const noexcept;

  // The calling thread's pooled instance (opened on first use, reused for
  // every scope on that thread afterwards).
  static CounterSet& local();

  // True when SRNA_DISABLE_PERF_COUNTERS=1 is set. Checked at construction
  // AND at every CounterScope start, so tests (and operators) can force the
  // stub path without racing thread-local pool initialization.
  [[nodiscard]] static bool disabled_by_env() noexcept;

 private:
  std::array<int, kEvents> fds_{};  // -1 when the event failed to open
  bool available_ = false;
};

// RAII phase measurement: reads the calling thread's pooled CounterSet at
// construction and again at close()/destruction, then adds the deltas to
// the registry counters `perf.<phase>.cycles`, `.instructions`,
// `.cache_references`, `.cache_misses`, `.branch_misses` (created on first
// use; rendered by snapshots and render_prometheus()). `phase` must outlive
// the scope (string literals in practice).
//
// When counters are unavailable the scope is inert: close() returns an
// unavailable sample and touches no registry state, so dashboards
// distinguish "zero misses" from "not measured".
class CounterScope {
 public:
  explicit CounterScope(const char* phase) noexcept;
  CounterScope(const CounterScope&) = delete;
  CounterScope& operator=(const CounterScope&) = delete;
  ~CounterScope() { close(); }

  [[nodiscard]] bool active() const noexcept { return active_; }

  // Ends the measurement now (idempotent; later calls return an unavailable
  // sample). Returns the delta so callers can attach it to trace-span args
  // or report blocks.
  CounterSample close() noexcept;

 private:
  const char* phase_;
  CounterSample start_{};
  bool active_ = false;
};

// Renders a delta as pre-rendered trace-span args JSON (the shape
// TraceScope::set_args takes): counters plus derived ipc / miss rate.
[[nodiscard]] std::string counter_trace_args(const CounterSample& delta);

// Publishes the process-wide availability gauge `perf.available` (1 or 0)
// from the calling thread's pooled set. Cheap; callers that want the gauge
// fresh before a scrape may call it any time.
void publish_counter_availability();

}  // namespace srna::obs
