#include "obs/log.hpp"

#include <chrono>
#include <cstdio>

namespace srna::obs {

namespace {

std::uint64_t steady_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::int64_t wall_ms() noexcept {
  return static_cast<std::int64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "info";
}

std::optional<LogLevel> parse_log_level(std::string_view name) noexcept {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

Logger& Logger::instance() noexcept {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::set_rate_limit(std::uint64_t limit, double window_seconds) {
  std::lock_guard lock(mutex_);
  limit_ = limit;
  window_us_ = window_seconds > 0
                   ? static_cast<std::uint64_t>(window_seconds * 1e6)
                   : 0;
  events_.clear();
}

void Logger::reset_counters() {
  std::lock_guard lock(mutex_);
  events_.clear();
  emitted_.store(0, std::memory_order_relaxed);
  suppressed_.store(0, std::memory_order_relaxed);
}

void Logger::log(LogLevel level, std::string_view event, Json fields) {
  if (!enabled(level)) return;

  std::uint64_t carry_suppressed = 0;
  std::lock_guard lock(mutex_);
  if (limit_ > 0 && window_us_ > 0) {
    EventState& state = events_[std::string(event)];
    const std::uint64_t now = steady_us();
    if (now - state.window_start_us >= window_us_) {
      state.window_start_us = now;
      state.in_window = 0;
    }
    if (state.in_window >= limit_) {
      ++state.suppressed;
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ++state.in_window;
    carry_suppressed = state.suppressed;
    state.suppressed = 0;
  }

  // Header first, fields after, suppression count last — stable order so
  // humans and `grep` both read the lines comfortably.
  std::string line = "{\"ts_ms\":";
  line += std::to_string(wall_ms());
  line += ",\"level\":\"";
  line += to_string(level);
  line += "\",\"event\":\"";
  line += Json::escape(event);
  line += '"';
  if (fields.is_object()) {
    for (const auto& [key, value] : fields.members()) {
      line += ",\"";
      line += Json::escape(key);
      line += "\":";
      line += value.dump();
    }
  }
  if (carry_suppressed > 0) {
    line += ",\"suppressed\":";
    line += std::to_string(carry_suppressed);
  }
  line += '}';

  emitted_.fetch_add(1, std::memory_order_relaxed);
  if (sink_) {
    sink_(line);
  } else {
    // One fwrite so concurrent processes (not just threads) interleave at
    // line granularity.
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

Json log_fields(std::initializer_list<std::pair<const char*, Json>> kv) {
  Json fields = Json::object();
  for (auto& [key, value] : kv) fields.set(key, value);
  return fields;
}

}  // namespace srna::obs
