#include "obs/exposition.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>

#include "obs/trace.hpp"

namespace srna::obs {

namespace {

// Shortest round-trip double formatting ("%.17g" is exact but noisy; %.10g
// is plenty for metrics and keeps scrape bodies compact).
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string fmt(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

void type_line(std::string& out, const std::string& name, const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "srna_";
  out.reserve(out.size() + name.size());
  for (const char c : name)
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') ? c : '_';
  return out;
}

std::string render_prometheus(const Registry& registry) {
  std::string out;
  out.reserve(4096);

  registry.visit(
      [&](const std::string& name, const Counter& c) {
        const std::string metric = prometheus_name(name);
        type_line(out, metric, "counter");
        out += metric;
        out += ' ';
        out += fmt(c.value());
        out += '\n';
      },
      [&](const std::string& name, const Gauge& g) {
        const std::string metric = prometheus_name(name);
        type_line(out, metric, "gauge");
        out += metric;
        out += ' ';
        out += fmt(g.value());
        out += '\n';
      },
      [&](const std::string& name, const Histogram& h) {
        const std::string metric = prometheus_name(name);
        type_line(out, metric, "histogram");
        const auto counts = h.bucket_counts();
        // Last occupied bucket bounds the emitted series; everything after
        // it adds no information beyond the +Inf line.
        std::size_t last = 0;
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
          if (counts[i] > 0) last = i;
          total += counts[i];
        }
        std::uint64_t cumulative = 0;
        if (total > 0) {
          for (std::size_t i = 0; i <= last; ++i) {
            cumulative += counts[i];
            out += metric;
            out += "_bucket{le=\"";
            out += fmt(Histogram::bucket_upper_bound(i));
            out += "\"} ";
            out += fmt(cumulative);
            out += '\n';
          }
        }
        out += metric;
        out += "_bucket{le=\"+Inf\"} ";
        out += fmt(total);
        out += '\n';
        const Histogram::Snapshot s = h.snapshot();
        out += metric;
        out += "_sum ";
        out += fmt(s.sum);
        out += '\n';
        out += metric;
        out += "_count ";
        out += fmt(total);
        out += '\n';
      },
      [&](const std::string& name, const WindowHistogram& w) {
        const std::string metric = prometheus_name(name);
        type_line(out, metric, "summary");
        const WindowHistogram::Snapshot s = w.snapshot();
        const std::pair<const char*, double> quantiles[] = {
            {"0.5", s.p50}, {"0.9", s.p90}, {"0.95", s.p95}, {"0.99", s.p99}};
        for (const auto& [q, v] : quantiles) {
          out += metric;
          out += "{quantile=\"";
          out += q;
          out += "\"} ";
          out += fmt(v);
          out += '\n';
        }
        out += metric;
        out += "_count ";
        out += fmt(s.count);
        out += '\n';
      });

  // Tracer health: a saturated span buffer drops events silently on the hot
  // path; the scrape is where that becomes an alert.
  const Tracer& tracer = Tracer::instance();
  type_line(out, "srna_trace_events_recorded", "gauge");
  out += "srna_trace_events_recorded ";
  out += fmt(tracer.events_recorded());
  out += '\n';
  type_line(out, "srna_trace_events_dropped", "gauge");
  out += "srna_trace_events_dropped ";
  out += fmt(tracer.events_dropped());
  out += '\n';
  return out;
}

}  // namespace srna::obs
