// Critical-path analysis of PRNA's stage-one slice dependency DAG.
//
// Wall-clock spans say *that* a schedule is slower; this analyzer says *how
// fast any schedule could be*. The stage-one slices form a DAG — slice
// (a, b) depends on (c, b) for every direct child c of arc a in S1's
// nesting forest, and on (a, c') for every direct child c' of arc b in S2's
// (the exact dependency structure PrnaSchedule::kStealing executes). With a
// cost per slice, three classical quantities fall out:
//
//   T1    total work          — sum of slice costs
//   T∞    critical path       — heaviest dependency chain
//   T(p)  achievable makespan — Brent's bound: max(T1/p, T∞) <= T(p) and
//         any greedy (list) schedule achieves T(p) <= T1/p + T∞
//
// plus the serial phases (preprocessing, stage two) that no schedule
// parallelizes. The resulting ceiling speedup per thread count is what
// `figure8_speedup` rows and `srna-profile` print next to the measured
// numbers: a measured curve hugging the ceiling means the hardware is the
// limit; a gap means the schedule is.
//
// What-if mode: simulate_makespan() replays a greedy dependency-driven
// schedule (the stealing scheduler's idealization — zero steal cost,
// critical-path-first priority) with k virtual workers over the recorded
// per-slice costs, predicting the makespan of thread counts never run.
//
// Costs come from measurement: a slice's cells are the product of the two
// arcs' interior widths (paper Figure 7), and the stage-one timeline gives
// measured seconds per cell — analyze_parallel() combines the two. The
// analyzer itself is cost-agnostic (analyze_slice_dag takes any vector),
// which is what the unit tests pin against by-hand Brent bounds.
#pragma once

#include <cstddef>
#include <vector>

#include "obs/json.hpp"
#include "parallel/load_balance.hpp"
#include "rna/secondary_structure.hpp"

namespace srna::obs {

// One thread count's ceiling-vs-simulation row.
struct CpathThreadRow {
  int threads = 1;
  double brent_lower_seconds = 0.0;  // max(T1/p, T∞) + serial: no schedule beats this
  double greedy_upper_seconds = 0.0;  // T1/p + T∞ + serial: any greedy schedule beats this
  double ceiling_speedup = 0.0;       // (T1 + serial) / brent_lower_seconds
  double simulated_seconds = 0.0;     // greedy what-if replay with p virtual workers
  double simulated_speedup = 0.0;     // (T1 + serial) / simulated_seconds
};

struct ParallelAnalysis {
  std::size_t slices = 0;
  double total_work_seconds = 0.0;     // T1 (stage one only)
  double critical_path_seconds = 0.0;  // T∞
  std::size_t critical_path_slices = 0;  // chain length realizing T∞
  double serial_seconds = 0.0;         // preprocess + stage two
  // T1 / T∞: the max useful worker count before the chain dominates.
  double parallelism = 0.0;

  std::vector<CpathThreadRow> rows;

  // {"slices": ..., "total_work_seconds": ..., ..., "thread_rows": [...]}
  // thread_rows carry the identity field "threads" so bench comparisons key
  // on configuration, not array position.
  [[nodiscard]] Json to_json() const;
};

// Greedy dependency-driven what-if: replays the DAG on `workers` virtual
// workers, dispatching ready slices heaviest-remaining-chain first, and
// returns the stage-one makespan (no serial term). Exposed for tests.
[[nodiscard]] double simulate_makespan(const ArcForest& forest1, const ArcForest& forest2,
                                       const std::vector<double>& costs, int workers);

// The core analyzer. `costs` has forest1.size() * forest2.size() entries,
// slice (a, b) at a * forest2.size() + b, in seconds.
[[nodiscard]] ParallelAnalysis analyze_slice_dag(const ArcForest& forest1,
                                                 const ArcForest& forest2,
                                                 const std::vector<double>& costs,
                                                 double serial_seconds,
                                                 const std::vector<int>& thread_counts);

// Convenience entry: derives forests (build_arc_forest over ArcIndex order)
// and per-slice costs (interior-width products x seconds_per_cell) from the
// structure pair, then runs analyze_slice_dag.
[[nodiscard]] ParallelAnalysis analyze_parallel(const SecondaryStructure& s1,
                                                const SecondaryStructure& s2,
                                                double seconds_per_cell,
                                                double serial_seconds,
                                                const std::vector<int>& thread_counts);

}  // namespace srna::obs
