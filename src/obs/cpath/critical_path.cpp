#include "obs/cpath/critical_path.hpp"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <utility>

#include "core/arc_index.hpp"

namespace srna::obs {

namespace {

double safe_ratio(double num, double den) noexcept { return den > 0.0 ? num / den : 0.0; }

}  // namespace

Json ParallelAnalysis::to_json() const {
  Json doc = Json::object();
  doc.set("slices", Json(static_cast<std::uint64_t>(slices)));
  doc.set("total_work_seconds", Json(total_work_seconds));
  doc.set("critical_path_seconds", Json(critical_path_seconds));
  doc.set("critical_path_slices", Json(static_cast<std::uint64_t>(critical_path_slices)));
  doc.set("serial_seconds", Json(serial_seconds));
  doc.set("parallelism", Json(parallelism));
  Json thread_rows = Json::array();
  for (const CpathThreadRow& row : rows) {
    Json r = Json::object();
    r.set("threads", Json(static_cast<std::int64_t>(row.threads)));
    r.set("brent_lower_seconds", Json(row.brent_lower_seconds));
    r.set("greedy_upper_seconds", Json(row.greedy_upper_seconds));
    r.set("ceiling_speedup", Json(row.ceiling_speedup));
    r.set("simulated_seconds", Json(row.simulated_seconds));
    r.set("simulated_speedup", Json(row.simulated_speedup));
    thread_rows.push(std::move(r));
  }
  doc.set("thread_rows", std::move(thread_rows));
  return doc;
}

double simulate_makespan(const ArcForest& forest1, const ArcForest& forest2,
                         const std::vector<double>& costs, int workers) {
  const std::size_t n1 = forest1.size();
  const std::size_t n2 = forest2.size();
  const std::size_t total = n1 * n2;
  if (total == 0 || workers < 1) return 0.0;

  // Priority = heaviest remaining chain through this slice (distance to
  // sink, own cost included). Both successors — (parent1[a], b) and
  // (a, parent2[b]) — sit later in post-order, so one descending sweep
  // suffices.
  std::vector<double> to_sink(total, 0.0);
  for (std::size_t idx = total; idx-- > 0;) {
    const std::size_t a = idx / n2;
    const std::size_t b = idx % n2;
    double best = 0.0;
    if (forest1.parent[a] != ArcForest::kNoParent) {
      best = std::max(best, to_sink[forest1.parent[a] * n2 + b]);
    }
    if (forest2.parent[b] != ArcForest::kNoParent) {
      best = std::max(best, to_sink[a * n2 + forest2.parent[b]]);
    }
    to_sink[idx] = costs[idx] + best;
  }

  // Outstanding dependency counts, seeded exactly as the stealing schedule
  // seeds them: direct children along each coordinate.
  std::vector<std::uint32_t> deps(total);
  using Ready = std::pair<double, std::size_t>;  // (to_sink, slice)
  std::priority_queue<Ready> ready;
  for (std::size_t a = 0; a < n1; ++a) {
    for (std::size_t b = 0; b < n2; ++b) {
      const std::size_t idx = a * n2 + b;
      deps[idx] = forest1.child_count[a] + forest2.child_count[b];
      if (deps[idx] == 0) ready.emplace(to_sink[idx], idx);
    }
  }

  using Running = std::pair<double, std::size_t>;  // (finish time, slice)
  std::priority_queue<Running, std::vector<Running>, std::greater<>> running;
  double now = 0.0;
  std::size_t done = 0;
  while (done < total) {
    // Fill free workers from the ready queue, heaviest chain first.
    while (!ready.empty() && running.size() < static_cast<std::size_t>(workers)) {
      const std::size_t idx = ready.top().second;
      ready.pop();
      running.emplace(now + costs[idx], idx);
    }
    // Advance to the next completion and release its successors.
    const auto [finish, idx] = running.top();
    running.pop();
    now = finish;
    ++done;
    const std::size_t a = idx / n2;
    const std::size_t b = idx % n2;
    if (forest1.parent[a] != ArcForest::kNoParent) {
      const std::size_t up = forest1.parent[a] * n2 + b;
      if (--deps[up] == 0) ready.emplace(to_sink[up], up);
    }
    if (forest2.parent[b] != ArcForest::kNoParent) {
      const std::size_t up = a * n2 + forest2.parent[b];
      if (--deps[up] == 0) ready.emplace(to_sink[up], up);
    }
  }
  return now;
}

ParallelAnalysis analyze_slice_dag(const ArcForest& forest1, const ArcForest& forest2,
                                   const std::vector<double>& costs, double serial_seconds,
                                   const std::vector<int>& thread_counts) {
  const std::size_t n1 = forest1.size();
  const std::size_t n2 = forest2.size();
  const std::size_t total = n1 * n2;

  ParallelAnalysis analysis;
  analysis.slices = total;
  analysis.serial_seconds = serial_seconds;

  // Longest weighted chain ending at each slice. Dependencies (direct
  // children along either coordinate) have smaller post-order indices, so
  // one ascending sweep sees every dependency before its dependent.
  std::vector<double> dp(total, 0.0);
  std::vector<std::uint32_t> dp_len(total, 0);
  for (std::size_t a = 0; a < n1; ++a) {
    for (std::size_t b = 0; b < n2; ++b) {
      const std::size_t idx = a * n2 + b;
      double best = 0.0;
      std::uint32_t best_len = 0;
      auto consider = [&](std::size_t dep) {
        if (dp[dep] > best || (dp[dep] == best && dp_len[dep] > best_len)) {
          best = dp[dep];
          best_len = dp_len[dep];
        }
      };
      for (std::size_t c = 0; c < n1; ++c) {
        if (forest1.parent[c] == a) consider(c * n2 + b);
      }
      for (std::size_t c = 0; c < n2; ++c) {
        if (forest2.parent[c] == b) consider(a * n2 + c);
      }
      dp[idx] = costs[idx] + best;
      dp_len[idx] = best_len + 1;
      analysis.total_work_seconds += costs[idx];
      if (dp[idx] > analysis.critical_path_seconds) {
        analysis.critical_path_seconds = dp[idx];
        analysis.critical_path_slices = dp_len[idx];
      }
    }
  }
  analysis.parallelism =
      safe_ratio(analysis.total_work_seconds, analysis.critical_path_seconds);

  const double t1 = analysis.total_work_seconds;
  const double tinf = analysis.critical_path_seconds;
  const double full = t1 + serial_seconds;  // the 1-thread baseline
  for (const int p : thread_counts) {
    if (p < 1) continue;
    CpathThreadRow row;
    row.threads = p;
    row.brent_lower_seconds = std::max(t1 / p, tinf) + serial_seconds;
    row.greedy_upper_seconds = t1 / p + tinf + serial_seconds;
    row.ceiling_speedup = safe_ratio(full, row.brent_lower_seconds);
    row.simulated_seconds =
        simulate_makespan(forest1, forest2, costs, p) + serial_seconds;
    row.simulated_speedup = safe_ratio(full, row.simulated_seconds);
    analysis.rows.push_back(row);
  }
  return analysis;
}

ParallelAnalysis analyze_parallel(const SecondaryStructure& s1, const SecondaryStructure& s2,
                                  double seconds_per_cell, double serial_seconds,
                                  const std::vector<int>& thread_counts) {
  const ArcIndex index1(s1);
  const ArcIndex index2(s2);
  const ArcForest forest1 = build_arc_forest(index1.all());
  const ArcForest forest2 = build_arc_forest(index2.all());
  const std::size_t n1 = forest1.size();
  const std::size_t n2 = forest2.size();
  std::vector<double> costs(n1 * n2, 0.0);
  for (std::size_t a = 0; a < n1; ++a) {
    const double rows = static_cast<double>(index1.arc(a).interior_width());
    for (std::size_t b = 0; b < n2; ++b) {
      const double cols = static_cast<double>(index2.arc(b).interior_width());
      costs[a * n2 + b] = rows * cols * seconds_per_cell;
    }
  }
  return analyze_slice_dag(forest1, forest2, costs, serial_seconds, thread_counts);
}

}  // namespace srna::obs
