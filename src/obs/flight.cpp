#include "obs/flight.hpp"

#include <algorithm>
#include <chrono>

#include "obs/log.hpp"

namespace srna::obs {

namespace {

std::uint64_t wall_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Json FlightRecord::to_json() const {
  Json doc = Json::object();
  doc.set("seq", seq);
  doc.set("wall_us", wall_us);
  if (trace_id != 0) doc.set("trace_id", trace_id);
  doc.set("id", request_id);
  if (!digest.empty()) doc.set("digest", digest);
  doc.set("outcome", outcome);
  if (!detail.empty()) doc.set("detail", detail);
  if (!shard.empty()) doc.set("shard", shard);
  doc.set("latency_ms", latency_ms);
  if (queued_ms > 0) doc.set("queued_ms", queued_ms);
  if (solve_ms > 0) doc.set("solve_ms", solve_ms);
  if (attempts > 0) doc.set("attempts", static_cast<std::uint64_t>(attempts));
  if (failovers > 0) doc.set("failovers", static_cast<std::uint64_t>(failovers));
  if (cache_hit) doc.set("cache_hit", true);
  return doc;
}

FlightRecorder::FlightRecorder(FlightConfig config) { configure(std::move(config)); }

void FlightRecorder::configure(FlightConfig config) {
  std::unique_lock lock(config_mutex_);
  config_ = config;
  config_.capacity = std::max<std::size_t>(1, config_.capacity);
  slots_.clear();
  slots_.reserve(config_.capacity);
  for (std::size_t i = 0; i < config_.capacity; ++i)
    slots_.push_back(std::make_unique<Slot>());
  next_seq_.store(0, std::memory_order_relaxed);
  anomalies_.store(0, std::memory_order_relaxed);
  dumps_.store(0, std::memory_order_relaxed);
  last_dump_wall_us_.store(0, std::memory_order_relaxed);
  std::lock_guard exemplar_lock(exemplar_mutex_);
  exemplars_.clear();
  reject_wall_us_.clear();
}

void FlightRecorder::set_dump_hook(DumpHook hook) {
  std::unique_lock lock(config_mutex_);
  dump_hook_ = std::move(hook);
}

const char* FlightRecorder::classify(const FlightRecord& record) {
  // Order matters only for the label; every rule below is "worth a dump".
  if (record.outcome == "timeout" || record.outcome == "error")
    return record.outcome == "timeout" ? "timeout" : "error";
  if (record.failovers > 0) return "failover";
  if (config_.slow_ms > 0 && record.latency_ms >= config_.slow_ms) return "slow";
  if (record.outcome == "rejected" && config_.reject_burst > 0) {
    const std::uint64_t window_us =
        static_cast<std::uint64_t>(config_.reject_burst_window_ms * 1e3);
    std::lock_guard lock(exemplar_mutex_);
    reject_wall_us_.push_back(record.wall_us);
    while (!reject_wall_us_.empty() &&
           reject_wall_us_.front() + window_us < record.wall_us)
      reject_wall_us_.pop_front();
    if (reject_wall_us_.size() >= config_.reject_burst) return "reject_burst";
  }
  return nullptr;
}

void FlightRecorder::note_anomaly(const char* trigger, const FlightRecord& record) {
  anomalies_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(exemplar_mutex_);
    exemplars_.push_back(record);
    while (exemplars_.size() > std::max<std::size_t>(1, config_.exemplars))
      exemplars_.pop_front();
  }

  // Rate-limited dump: one winner per interval via CAS on the last-dump
  // stamp; losers still counted the anomaly and kept the exemplar above.
  const std::uint64_t interval_us =
      static_cast<std::uint64_t>(config_.dump_min_interval_ms * 1e3);
  std::uint64_t last = last_dump_wall_us_.load(std::memory_order_relaxed);
  if (last != 0 && record.wall_us < last + interval_us) return;
  if (!last_dump_wall_us_.compare_exchange_strong(last, record.wall_us,
                                                  std::memory_order_relaxed))
    return;
  dumps_.fetch_add(1, std::memory_order_relaxed);

  Json dump = Json::object();
  dump.set("trigger", trigger);
  dump.set("record", record.to_json());
  // The seconds before the anomaly, newest-last, bounded so a dump is a log
  // line and not a log flood.
  constexpr std::size_t kDumpRecent = 16;
  std::vector<FlightRecord> recent;
  recent.reserve(slots_.size());
  for (const auto& slot : slots_) {
    std::lock_guard slot_lock(slot->mutex);
    if (slot->record.seq != 0) recent.push_back(slot->record);
  }
  std::sort(recent.begin(), recent.end(),
            [](const FlightRecord& a, const FlightRecord& b) { return a.seq < b.seq; });
  if (recent.size() > kDumpRecent)
    recent.erase(recent.begin(),
                 recent.end() - static_cast<std::ptrdiff_t>(kDumpRecent));
  Json recent_json = Json::array();
  for (const FlightRecord& r : recent) recent_json.push(r.to_json());
  dump.set("recent", std::move(recent_json));

  if (dump_hook_) {
    dump_hook_(dump);
  } else {
    log_warn("flight.anomaly_dump",
             log_fields({{"trigger", Json(trigger)},
                         {"trace_id", Json(record.trace_id)},
                         {"outcome", Json(record.outcome)},
                         {"latency_ms", Json(record.latency_ms)},
                         {"dump", dump}}));
  }
}

std::uint64_t FlightRecorder::record(FlightRecord record) {
  std::shared_lock lock(config_mutex_);
  if (record.wall_us == 0) record.wall_us = wall_now_us();
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  record.seq = seq;
  {
    Slot& slot = *slots_[(seq - 1) % slots_.size()];
    std::lock_guard slot_lock(slot.mutex);
    slot.record = record;
  }
  if (const char* trigger = classify(record)) note_anomaly(trigger, record);
  return seq;
}

Json FlightRecorder::to_json() const {
  std::shared_lock lock(config_mutex_);
  Json doc = Json::object();
  doc.set("capacity", static_cast<std::uint64_t>(config_.capacity));
  doc.set("recorded", next_seq_.load(std::memory_order_relaxed));
  doc.set("anomalies", anomalies_.load(std::memory_order_relaxed));
  doc.set("anomaly_dumps", dumps_.load(std::memory_order_relaxed));
  doc.set("slow_ms", config_.slow_ms);

  std::vector<FlightRecord> records;
  records.reserve(slots_.size());
  for (const auto& slot : slots_) {
    std::lock_guard slot_lock(slot->mutex);
    if (slot->record.seq != 0) records.push_back(slot->record);
  }
  std::sort(records.begin(), records.end(),
            [](const FlightRecord& a, const FlightRecord& b) { return a.seq < b.seq; });
  Json records_json = Json::array();
  for (const FlightRecord& r : records) records_json.push(r.to_json());
  doc.set("records", std::move(records_json));

  Json exemplars_json = Json::array();
  {
    std::lock_guard exemplar_lock(exemplar_mutex_);
    for (const FlightRecord& r : exemplars_) exemplars_json.push(r.to_json());
  }
  doc.set("exemplars", std::move(exemplars_json));
  return doc;
}

}  // namespace srna::obs
