// Always-on flight recorder: a fixed ring of the most recent request
// records, kept cheap enough to run in production and dumped as structured
// JSON the moment something looks wrong.
//
// Sliding-window quantiles (obs/window.hpp) answer "how slow are we";
// structured logs answer "what did we decide per request" — but only at a
// log level nobody runs hot paths at. The flight recorder fills the gap
// between them: every completed request leaves one compact record (trace
// id, digest, outcome, per-phase timings, attempt/failover history), the
// ring holds the last `capacity` of them, and an anomaly — latency over the
// configured threshold, a non-ok outcome worth flagging, a failover, or a
// rejection burst — snapshots the recent history through the dump hook
// while retaining the triggering record as an exemplar for `GET /flightz`.
// When a shard dies, the records explaining the seconds before it are
// already in memory on the router and the surviving replicas.
//
// Concurrency: record() claims a slot with one atomic fetch_add and writes
// it under that slot's own mutex — writers contend only when the ring laps
// itself onto a slot a reader is copying. configure() swaps the ring out
// under the writer side of a shared_mutex; record()/to_json() hold the
// reader side. No allocation on the record path beyond the strings the
// caller already built.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace srna::obs {

// One completed request, as the recorder remembers it. Router records fill
// the attempt/failover/shard fields; shard records fill the solve-side ones.
struct FlightRecord {
  std::uint64_t seq = 0;      // global record number, assigned by record()
  std::uint64_t wall_us = 0;  // CLOCK_REALTIME at completion (0 = fill in)
  std::uint64_t trace_id = 0;
  std::int64_t request_id = 0;   // the client's id
  std::string digest;            // canonical pair digest hex ("" = unresolved)
  std::string outcome;           // "ok" | "timeout" | "rejected" | ...
  std::string detail;            // error text / rejection reason
  std::string shard;             // router: the shard that answered
  double latency_ms = 0.0;
  double queued_ms = 0.0;        // shard: admission->pickup; router: ->1st send
  double solve_ms = 0.0;
  std::uint32_t attempts = 0;    // router: dispatch attempts used (>=1)
  std::uint32_t failovers = 0;   // router: failed attempts before the answer
  bool cache_hit = false;

  [[nodiscard]] Json to_json() const;
};

struct FlightConfig {
  std::size_t capacity = 256;  // ring slots (clamped to >= 1)
  // Latency anomaly threshold in ms (0 = off). A record at or over it is a
  // "slow" anomaly and is retained as an exemplar.
  double slow_ms = 0;
  std::size_t exemplars = 16;  // anomaly records retained for /flightz
  // Rejection burst: this many "rejected" records inside the window is an
  // anomaly (0 = off). A lone rejection is backpressure doing its job; a
  // burst is the fleet failing.
  std::size_t reject_burst = 8;
  double reject_burst_window_ms = 1000;
  // Anomaly dumps are rate-limited: at most one per this interval (further
  // anomalies still count and retain exemplars, they just skip the dump).
  double dump_min_interval_ms = 1000;
};

class FlightRecorder {
 public:
  // Receives the dump document on anomaly: {"trigger", "record", "recent"}.
  // The default hook emits it through the structured logger
  // (`flight.anomaly_dump`, warn). Called on the recording thread.
  using DumpHook = std::function<void(const Json& dump)>;

  explicit FlightRecorder(FlightConfig config = {});

  // Replaces the configuration and resets the ring. Not for use while
  // requests are in flight (construction-time wiring).
  void configure(FlightConfig config);
  void set_dump_hook(DumpHook hook);

  // Appends one record (assigning seq; wall_us filled when 0), classifies it
  // against the anomaly rules, and fires the dump hook when one trips.
  // Returns the assigned seq.
  std::uint64_t record(FlightRecord record);

  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return next_seq_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t anomalies() const noexcept {
    return anomalies_.load(std::memory_order_relaxed);
  }

  // The whole view behind GET /flightz: config, counters, the ring's records
  // oldest-first, and the retained anomaly exemplars.
  [[nodiscard]] Json to_json() const;

 private:
  struct Slot {
    std::mutex mutex;
    FlightRecord record;  // valid iff record.seq != 0
  };

  // nullptr = no anomaly; otherwise the trigger label ("slow", "failover",
  // "reject_burst", or the non-ok outcome itself).
  [[nodiscard]] const char* classify(const FlightRecord& record);
  void note_anomaly(const char* trigger, const FlightRecord& record);

  mutable std::shared_mutex config_mutex_;  // exclusive: configure()
  FlightConfig config_;
  std::vector<std::unique_ptr<Slot>> slots_;

  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> anomalies_{0};
  std::atomic<std::uint64_t> dumps_{0};
  std::atomic<std::uint64_t> last_dump_wall_us_{0};

  mutable std::mutex exemplar_mutex_;
  std::deque<FlightRecord> exemplars_;     // most recent last
  std::deque<std::uint64_t> reject_wall_us_;  // recent rejection timestamps

  DumpHook dump_hook_;  // guarded by config_mutex_ (set at wiring time)
};

}  // namespace srna::obs
