#include "obs/report.hpp"

#include <ctime>
#include <fstream>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace srna::obs {

Json environment_json() {
  Json env = Json::object();
#if defined(__VERSION__)
  env.set("compiler", __VERSION__);
#else
  env.set("compiler", "unknown");
#endif
#if defined(NDEBUG)
  env.set("build", "release");
#else
  env.set("build", "debug");
#endif
  env.set("hardware_threads",
          static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  env.set("pointer_bits", static_cast<std::uint64_t>(sizeof(void*) * 8));
  return env;
}

RunReport::RunReport(std::string tool) {
  root_ = Json::object();
  root_.set("schema", "srna-run-report");
  root_.set("schema_version", 1);
  root_.set("tool", std::move(tool));
  root_.set("timestamp_unix", static_cast<std::int64_t>(std::time(nullptr)));
  root_.set("environment", environment_json());
  root_.set("status", "ok");
}

RunReport& RunReport::set(std::string key, Json value) {
  root_.set(std::move(key), std::move(value));
  return *this;
}

void RunReport::set_command_line(int argc, const char* const* argv) {
  Json args = Json::array();
  for (int i = 0; i < argc; ++i) args.push(argv[i]);
  root_.set("command_line", std::move(args));
}

void RunReport::add_metrics_snapshot() {
  root_.set("metrics", Registry::instance().snapshot());
}

void RunReport::add_trace_summary() {
  const Tracer& tracer = Tracer::instance();
  Json t = Json::object();
  t.set("events_recorded", tracer.events_recorded());
  t.set("events_dropped", tracer.events_dropped());
  root_.set("trace", std::move(t));
}

void RunReport::set_error(const std::string& what) {
  root_.set("status", "error");
  root_.set("error", what);
}

bool RunReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_string() << '\n';
  return static_cast<bool>(out);
}

}  // namespace srna::obs
