// Bench-trajectory comparison: the regression math behind srna-bench-report.
//
// The repo records its benchmark trajectory as `BENCH_<name>.json` run
// reports (obs::RunReport documents). This module flattens the measurement
// surface of two such reports — the flat `results` object the serving bench
// writes, and the `rows` / `schedule_rows` arrays the table/figure benches
// write — into comparable (key, value) pairs, classifies each metric's
// direction from its name, and flags deltas beyond a threshold as
// regressions:
//
//   lower-is-better   *_seconds, *_ms, *_us, *_ns (and ns_per_*), latency,
//                     idle, wait — a fresh value > baseline * (1 + t) regresses
//   higher-is-better  throughput, *_rps, *_per_second, speedup, efficiency,
//                     hit_rate — a fresh value < baseline * (1 - t) regresses
//   informational     everything else (counts, values, parameters): reported
//                     in the delta table, never a regression
//
// Rows are keyed by their identity fields (length, arcs, processors,
// threads, schedule, instance, ...), so reordering or extending a series
// shows up as added/missing keys rather than false deltas.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace srna::obs {

// +1 higher-is-better, -1 lower-is-better, 0 informational.
[[nodiscard]] int metric_direction(std::string_view key) noexcept;

struct BenchValue {
  std::string key;
  double value = 0.0;
};

// The numeric measurement surface of one run report (see header comment).
[[nodiscard]] std::vector<BenchValue> flatten_report_metrics(const Json& report);

struct BenchDelta {
  std::string key;
  double baseline = 0.0;
  double fresh = 0.0;
  double delta_fraction = 0.0;  // (fresh - baseline) / |baseline|; 0 when baseline == 0
  int direction = 0;            // metric_direction(key)
  bool regression = false;
};

struct BenchComparison {
  std::string tool;                              // from the baseline report
  std::vector<BenchDelta> deltas;                // keys present in both
  std::vector<std::string> only_in_baseline;     // dropped metrics
  std::vector<std::string> only_in_fresh;        // new metrics
  bool has_regression = false;

  [[nodiscard]] Json to_json() const;
};

// Compares two run reports; `threshold` is the allowed relative slack
// (0.25 = 25%, the micro-kernel smoke gate's value). Baselines at exactly 0
// are informational (no meaningful relative delta).
//
// `noise_floor_ms` (0 = off) exempts millisecond-scale timing metrics from
// the relative gate while BOTH sides sit below the floor: a queueing p50 of
// 19 µs is pure scheduler jitter, and 25% of it is not a signal. The delta
// is still reported. A real regression that pushes the fresh value above
// the floor is gated as usual, so the exemption cannot hide a blowup.
[[nodiscard]] BenchComparison compare_reports(const Json& baseline, const Json& fresh,
                                              double threshold,
                                              double noise_floor_ms = 0.0);

}  // namespace srna::obs
