// Minimal JSON document model for the observability subsystem.
//
// Everything obs/ emits — Chrome trace events, metrics snapshots, run
// reports — is JSON, and the test suite wants to parse what it wrote back
// in, so this header provides both directions: an insertion-ordered value
// tree with a writer (`dump`) and a small recursive-descent parser
// (`parse`). No third-party dependency; the grammar is plain RFC 8259 minus
// \u surrogate pairs (escapes outside the BMP round-trip as-is).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace srna::obs {

class Json {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  Json() noexcept : kind_(Kind::kNull) {}
  Json(std::nullptr_t) noexcept : kind_(Kind::kNull) {}  // NOLINT(google-explicit-constructor)
  Json(bool v) noexcept : kind_(Kind::kBool), bool_(v) {}  // NOLINT
  Json(std::int64_t v) noexcept : kind_(Kind::kInt), int_(v) {}  // NOLINT
  Json(int v) noexcept : Json(static_cast<std::int64_t>(v)) {}   // NOLINT
  Json(std::uint64_t v) noexcept : kind_(Kind::kUint), uint_(v) {}  // NOLINT
  Json(double v) noexcept : kind_(Kind::kDouble), double_(v) {}  // NOLINT
  Json(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}  // NOLINT
  Json(const char* v) : Json(std::string(v)) {}  // NOLINT

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kInt || kind_ == Kind::kUint || kind_ == Kind::kDouble;
  }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }

  // Accessors (loose: numbers convert between representations; a non-match
  // returns the zero value rather than throwing — reports are diagnostics,
  // not control flow).
  [[nodiscard]] bool as_bool() const noexcept { return kind_ == Kind::kBool && bool_; }
  [[nodiscard]] double as_double() const noexcept;
  [[nodiscard]] std::int64_t as_int() const noexcept;
  [[nodiscard]] std::uint64_t as_uint() const noexcept;
  [[nodiscard]] const std::string& as_string() const noexcept { return string_; }

  // Object interface. `set` replaces an existing key; insertion order is
  // preserved in the output (reports read top-down).
  Json& set(std::string key, Json value);
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  [[nodiscard]] bool contains(std::string_view key) const noexcept { return find(key) != nullptr; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const noexcept {
    return members_;
  }

  // Array interface.
  Json& push(Json value);
  [[nodiscard]] const std::vector<Json>& items() const noexcept { return items_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return kind_ == Kind::kObject ? members_.size() : items_.size();
  }

  // Serialization. indent == 0 emits one line; indent > 0 pretty-prints.
  [[nodiscard]] std::string dump(int indent = 0) const;

  // Parsing; std::nullopt on any syntax error or trailing garbage.
  static std::optional<Json> parse(std::string_view text);

  // Escapes `s` for embedding in a JSON string literal (quotes excluded).
  static std::string escape(std::string_view s);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace srna::obs
