// ObsSession: the three `--trace=FILE` / `--metrics=FILE` / `--report=FILE`
// flags as one RAII object, shared by the CLI commands and the bench
// binaries.
//
// Construction enables the tracer when a trace file was requested (and
// resets it, so one process can emit several independent traces); `finish()`
// — or destruction — disables tracing, completes the report (metrics
// snapshot + trace summary) and writes whichever files were requested.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/perf/perf_counters.hpp"
#include "obs/report.hpp"

namespace srna {
class CliParser;  // util/cli.hpp
}

namespace srna::obs {

struct ObsPaths {
  std::string trace;    // Chrome trace-event JSON
  std::string metrics;  // metrics Registry snapshot JSON
  std::string report;   // run-report JSON
  // --perf-counters: measure the whole session under the hardware counter
  // group and attach the delta (or availability=false) to the report.
  bool perf_counters = false;
  [[nodiscard]] bool any() const noexcept {
    return !trace.empty() || !metrics.empty() || !report.empty();
  }
};

class ObsSession {
 public:
  // Registers --trace / --metrics / --report on a CliParser (all default
  // empty = off), and reads them back after parsing.
  static void add_cli_options(CliParser& cli);
  static ObsPaths paths_from_cli(const CliParser& cli);

  ObsSession(ObsPaths paths, std::string tool);
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;
  ~ObsSession();

  [[nodiscard]] bool tracing() const noexcept { return !paths_.trace.empty(); }
  [[nodiscard]] bool reporting() const noexcept { return !paths_.report.empty(); }

  // The run report under construction (written only when --report was given,
  // but always available to fill).
  [[nodiscard]] RunReport& report() noexcept { return report_; }

  // Stops tracing, completes the report, writes the requested files.
  // Idempotent. Returns the paths written (for the CLI's "wrote ..." lines).
  std::vector<std::string> finish();

 private:
  ObsPaths paths_;
  RunReport report_;
  // Session-wide counter scope, open between construction and finish() when
  // --perf-counters was given (the per-phase prna scopes run regardless).
  std::optional<CounterScope> session_counters_;
  bool finished_ = false;
};

}  // namespace srna::obs
