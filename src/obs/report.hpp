// Run reporter: one machine-readable JSON document per solver / bench
// invocation.
//
// The document always carries a schema version, the tool name, a wall-clock
// timestamp and an environment block (compiler, build type, hardware
// threads); callers attach whatever else describes the run — options,
// inputs, `McosStats` (via `to_json` helpers in the owning layer), PRNA
// per-thread timelines, a metrics snapshot, bench result rows. The bench
// harness writes these as `BENCH_<name>.json`, the repo's benchmark
// trajectory format.
#pragma once

#include <string>

#include "obs/json.hpp"

namespace srna::obs {

class RunReport {
 public:
  explicit RunReport(std::string tool);

  // Top-level field (replaces an existing key).
  RunReport& set(std::string key, Json value);
  [[nodiscard]] const Json& root() const noexcept { return root_; }
  [[nodiscard]] Json& root() noexcept { return root_; }

  // Records the argv the run was started with.
  void set_command_line(int argc, const char* const* argv);

  // Attaches the current metrics Registry snapshot under "metrics" and the
  // tracer's recorded/dropped totals under "trace".
  void add_metrics_snapshot();
  void add_trace_summary();

  // Marks the run failed; the report survives as a crash record.
  void set_error(const std::string& what);

  [[nodiscard]] std::string to_string(int indent = 2) const { return root_.dump(indent); }
  // Writes the document to `path`; false on I/O failure.
  bool write(const std::string& path) const;

 private:
  Json root_;
};

// The environment block RunReport embeds; exposed for tests and for bench
// binaries that roll their own documents.
Json environment_json();

}  // namespace srna::obs
