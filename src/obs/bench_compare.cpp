#include "obs/bench_compare.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace srna::obs {

namespace {

bool contains_token(std::string_view key, std::string_view token) {
  return key.find(token) != std::string_view::npos;
}

bool ends_with(std::string_view key, std::string_view suffix) {
  return key.size() >= suffix.size() &&
         key.compare(key.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Fields that identify a row rather than measure it; they become part of the
// flattened key so baseline and fresh rows pair up by configuration, not by
// array position.
constexpr std::string_view kIdentityFields[] = {
    "instance", "schedule", "layout",     "algorithm", "backend", "length",
    "arcs",     "pairs",    "processors", "threads",   "workers", "seed",
    "n",        "window",   "shards",
};

bool is_identity_field(std::string_view name) {
  return std::find(std::begin(kIdentityFields), std::end(kIdentityFields), name) !=
         std::end(kIdentityFields);
}

std::string row_identity(const Json& row) {
  std::string id;
  for (const auto& [name, value] : row.members()) {
    if (!is_identity_field(name)) continue;
    if (!id.empty()) id += ',';
    id += name;
    id += '=';
    if (value.is_string())
      id += value.as_string();
    else if (value.is_number())
      id += std::to_string(value.as_int());
  }
  return id;
}

void flatten_rows(const Json& rows, std::string_view prefix, std::vector<BenchValue>& out) {
  for (const Json& row : rows.items()) {
    if (!row.is_object()) continue;
    const std::string identity = row_identity(row);
    for (const auto& [name, value] : row.members()) {
      if (is_identity_field(name) || !value.is_number()) continue;
      std::string key{prefix};
      key += '[';
      key += identity;
      key += "].";
      key += name;
      out.push_back(BenchValue{std::move(key), value.as_double()});
    }
  }
}

// True for metrics measured in milliseconds ("..._ms" or "..._ms_p99"),
// the unit the noise floor is expressed in.
bool is_millisecond_metric(std::string_view key) {
  const std::size_t dot = key.rfind('.');
  const std::string_view leaf = dot == std::string_view::npos ? key : key.substr(dot + 1);
  return ends_with(leaf, "_ms") || contains_token(leaf, "_ms_");
}

}  // namespace

int metric_direction(std::string_view key) noexcept {
  // Take the leaf metric name; row identity brackets may contain anything.
  const std::size_t dot = key.rfind('.');
  const std::string_view leaf = dot == std::string_view::npos ? key : key.substr(dot + 1);
  // miss_rate / error_rate must beat the generic "_rate is good" rule below:
  // a *dropping* cache-miss rate is an improvement, not a regression.
  if (contains_token(leaf, "miss_rate") || contains_token(leaf, "error_rate")) return -1;
  // Anchored "_per_second": a bare substring match would swallow
  // "greedy_upper_seconds" ("up[per_second]s") and invert its direction.
  if (contains_token(leaf, "throughput") || contains_token(leaf, "speedup") ||
      contains_token(leaf, "efficiency") || contains_token(leaf, "hit_rate") ||
      ends_with(leaf, "_per_second") || ends_with(leaf, "_rps") ||
      ends_with(leaf, "_rate"))
    return 1;
  if (ends_with(leaf, "_seconds") || ends_with(leaf, "_ms") || ends_with(leaf, "_us") ||
      ends_with(leaf, "_ns") || contains_token(leaf, "ns_per") ||
      contains_token(leaf, "latency") || contains_token(leaf, "idle") ||
      contains_token(leaf, "wait") || contains_token(leaf, "_p50") ||
      contains_token(leaf, "_p95") || contains_token(leaf, "_p99"))
    return -1;
  // Byte footprints: smaller is better — except configured caps
  // (budget_bytes), which are inputs to the run, not outcomes of it.
  if (contains_token(leaf, "budget")) return 0;
  if (ends_with(leaf, "_bytes")) return -1;
  return 0;
}

std::vector<BenchValue> flatten_report_metrics(const Json& report) {
  std::vector<BenchValue> out;
  if (!report.is_object()) return out;
  if (const Json* results = report.find("results"); results != nullptr && results->is_object()) {
    for (const auto& [name, value] : results->members()) {
      if (value.is_number()) {
        out.push_back(BenchValue{"results." + name, value.as_double()});
      } else if (value.is_array()) {
        // Row tables nested under results (e.g. the distributed serving
        // bench's per-instance sweep) pair up by identity like top-level
        // `rows` do.
        flatten_rows(value, "results." + name, out);
      }
    }
  }
  if (const Json* rows = report.find("rows"); rows != nullptr && rows->is_array())
    flatten_rows(*rows, "rows", out);
  if (const Json* srows = report.find("schedule_rows"); srows != nullptr && srows->is_array())
    flatten_rows(*srows, "schedule_rows", out);
  // The srna-profile analyzer block: DAG scalars (work, critical path,
  // parallelism) plus the per-thread-count ceiling rows.
  if (const Json* analysis = report.find("parallel_analysis");
      analysis != nullptr && analysis->is_object()) {
    for (const auto& [name, value] : analysis->members()) {
      if (!value.is_number()) continue;
      out.push_back(BenchValue{"parallel_analysis." + name, value.as_double()});
    }
    if (const Json* trows = analysis->find("thread_rows");
        trows != nullptr && trows->is_array())
      flatten_rows(*trows, "parallel_analysis.thread_rows", out);
  }
  return out;
}

BenchComparison compare_reports(const Json& baseline, const Json& fresh, double threshold,
                                double noise_floor_ms) {
  BenchComparison cmp;
  if (const Json* tool = baseline.find("tool"); tool != nullptr) cmp.tool = tool->as_string();

  const std::vector<BenchValue> base_values = flatten_report_metrics(baseline);
  const std::vector<BenchValue> fresh_values = flatten_report_metrics(fresh);
  std::map<std::string, double> fresh_by_key;
  for (const BenchValue& v : fresh_values) fresh_by_key.emplace(v.key, v.value);

  for (const BenchValue& base : base_values) {
    const auto it = fresh_by_key.find(base.key);
    if (it == fresh_by_key.end()) {
      cmp.only_in_baseline.push_back(base.key);
      continue;
    }
    BenchDelta d;
    d.key = base.key;
    d.baseline = base.value;
    d.fresh = it->second;
    d.direction = metric_direction(base.key);
    if (base.value != 0.0 && std::isfinite(base.value) && std::isfinite(it->second)) {
      d.delta_fraction = (d.fresh - d.baseline) / std::fabs(d.baseline);
      if (d.direction < 0)
        d.regression = d.delta_fraction > threshold;
      else if (d.direction > 0)
        d.regression = d.delta_fraction < -threshold;
      // Sub-floor millisecond timings are scheduler jitter, not trajectory
      // (see header). Only the gate is suppressed; the delta still prints.
      if (d.regression && noise_floor_ms > 0.0 && is_millisecond_metric(base.key) &&
          d.baseline < noise_floor_ms && d.fresh < noise_floor_ms) {
        d.regression = false;
      }
    }
    cmp.has_regression = cmp.has_regression || d.regression;
    cmp.deltas.push_back(std::move(d));
    fresh_by_key.erase(it);
  }
  // What survives in the map only exists in the fresh run. Keep report order.
  for (const BenchValue& v : fresh_values)
    if (fresh_by_key.count(v.key) != 0) cmp.only_in_fresh.push_back(v.key);
  return cmp;
}

Json BenchComparison::to_json() const {
  Json doc = Json::object();
  doc.set("schema", "srna-bench-comparison");
  doc.set("tool", tool);
  doc.set("has_regression", has_regression);
  Json rows = Json::array();
  for (const BenchDelta& d : deltas) {
    Json row = Json::object();
    row.set("key", d.key);
    row.set("baseline", d.baseline);
    row.set("fresh", d.fresh);
    row.set("delta_fraction", d.delta_fraction);
    row.set("direction",
            d.direction > 0 ? "higher_better" : (d.direction < 0 ? "lower_better" : "info"));
    row.set("regression", d.regression);
    rows.push(std::move(row));
  }
  doc.set("deltas", std::move(rows));
  Json only_base = Json::array();
  for (const std::string& k : only_in_baseline) only_base.push(k);
  doc.set("only_in_baseline", std::move(only_base));
  Json only_fresh = Json::array();
  for (const std::string& k : only_in_fresh) only_fresh.push(k);
  doc.set("only_in_fresh", std::move(only_fresh));
  return doc;
}

}  // namespace srna::obs
