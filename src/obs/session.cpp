#include "obs/session.hpp"

#include <fstream>
#include <iostream>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/perf/memory.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"

namespace srna::obs {

namespace {

// One-glance run health for the report: did the trace lose events, how much
// workspace did the engine's thread-local pool hold, did the logger throttle.
// Reads only named registry instruments (zero if the layer never ran), so
// obs stays independent of core/engine.
Json run_summary_json() {
  Registry& reg = Registry::instance();
  const Tracer& tracer = Tracer::instance();
  const Logger& logger = Logger::instance();
  Json s = Json::object();
  s.set("trace_events_recorded", tracer.events_recorded());
  s.set("trace_events_dropped", tracer.events_dropped());
  s.set("workspace_pool_threads", reg.counter("engine.workspace_pool_threads").value());
  s.set("workspace_peak_bytes", reg.gauge("engine.workspace_peak_bytes").value());
  s.set("workspace_reuse", reg.counter("engine.workspace_reuse").value());
  s.set("workspace_alloc_bytes", reg.counter("engine.workspace_alloc_bytes").value());
  s.set("log_lines_emitted", logger.lines_emitted());
  s.set("log_lines_suppressed", logger.lines_suppressed());
  return s;
}

}  // namespace

void ObsSession::add_cli_options(CliParser& cli) {
  cli.add_option("trace", "write a Chrome trace-event JSON (open in Perfetto)", "");
  cli.add_option("metrics", "write a metrics registry snapshot JSON", "");
  cli.add_option("report", "write a machine-readable run report JSON", "");
  cli.add_flag("perf-counters",
               "measure the run under hardware counters (cycles, instructions, "
               "cache, branches); degrades to availability=false without perf_event");
}

ObsPaths ObsSession::paths_from_cli(const CliParser& cli) {
  ObsPaths paths{cli.str("trace"), cli.str("metrics"), cli.str("report")};
  paths.perf_counters = cli.flag("perf-counters");
  return paths;
}

ObsSession::ObsSession(ObsPaths paths, std::string tool)
    : paths_(std::move(paths)), report_(std::move(tool)) {
  if (tracing()) {
    Tracer& tracer = Tracer::instance();
    tracer.disable();
    tracer.clear();
    tracer.enable();
  }
  if (paths_.perf_counters) {
    publish_counter_availability();
    session_counters_.emplace("session");
  }
}

ObsSession::~ObsSession() { finish(); }

std::vector<std::string> ObsSession::finish() {
  if (finished_) return {};
  finished_ = true;
  std::vector<std::string> written;
  const auto record = [&written](bool ok, const std::string& path) {
    if (ok)
      written.push_back(path);
    else
      std::cerr << "warning: cannot write " << path << '\n';
  };
  if (tracing()) {
    Tracer& tracer = Tracer::instance();
    tracer.disable();
    record(tracer.write(paths_.trace), paths_.trace);
  }
  if (!paths_.metrics.empty()) {
    std::ofstream out(paths_.metrics);
    if (out) out << Registry::instance().snapshot().dump(2) << '\n';
    record(static_cast<bool>(out), paths_.metrics);
  }
  // Close the session-wide counter scope whether or not a report is written
  // (it feeds the perf.session.* registry counters either way).
  Json perf_block;
  if (session_counters_.has_value()) {
    perf_block = session_counters_->close().to_json();
    session_counters_.reset();
  }
  if (reporting()) {
    report_.add_metrics_snapshot();
    report_.add_trace_summary();
    report_.set("summary", run_summary_json());
    if (paths_.perf_counters) report_.set("perf_counters", std::move(perf_block));
    // Every report carries the memory ledger: peak/current RSS plus the
    // exact byte gauges (memo table, slice scratch, result cache).
    report_.set("memory", memory_ledger_json());
    record(report_.write(paths_.report), paths_.report);
  }
  return written;
}

}  // namespace srna::obs
