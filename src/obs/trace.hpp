// Span tracer: per-thread append-only event buffers flushed to Chrome
// trace-event JSON (chrome://tracing / Perfetto "traceEvents" format).
//
// Design constraints, in order:
//   1. Disabled cost ~0 — `TraceScope` on a hot path must reduce to one
//      relaxed atomic load when tracing is off (the default). PRNA's <2%
//      overhead budget is enforced by a bench acceptance check.
//   2. Recording takes no locks — each thread appends to its own
//      pre-reserved buffer; the only synchronization is a release store of
//      the per-thread commit count (buffers register once under a mutex).
//   3. Bounded memory — a buffer that reaches capacity drops further events
//      and counts the drops; it never reallocates (flush may run while
//      writers are live and relies on stable storage).
//
// Flushing (`to_json` / `write`) reads each buffer up to its committed
// count, so it is safe at any time; events still being written simply land
// in the next flush. Timestamps are microseconds since `enable()`.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace srna::obs {

// Request-scoped trace context: a thread-local "current trace id" that the
// tracer stamps into the args of every event recorded while it is set
// (`"trace_id": N`), so all spans of one serve request — admission queue,
// cache lookup, engine solve, and the solver's own internal spans — group
// into one correlated lane set in the Chrome trace. Serve assigns the ids;
// code that moves a request's work onto other threads (PRNA's stage-one
// workers) captures current() before the handoff and re-establishes it with
// a TraceContextScope on each worker. Id 0 means "no context".
namespace trace_context {
[[nodiscard]] std::uint64_t current() noexcept;
void set(std::uint64_t id) noexcept;
}  // namespace trace_context

// RAII: installs `id` as the calling thread's trace context, restores the
// previous context on destruction (nesting-safe).
class TraceContextScope {
 public:
  explicit TraceContextScope(std::uint64_t id) noexcept
      : previous_(trace_context::current()) {
    trace_context::set(id);
  }
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;
  ~TraceContextScope() { trace_context::set(previous_); }

 private:
  std::uint64_t previous_;
};

class Tracer {
 public:
  static Tracer& instance() noexcept;

  // Starts a trace: resets the epoch and accepts events. Safe to call when
  // already enabled (restarts the epoch for an empty buffer set).
  void enable();

  // CLOCK_REALTIME at the instant of the last enable(), in microseconds since
  // the Unix epoch — the wall-clock twin of the steady epoch behind now_us().
  // Emitted in to_json() as `srna_clock_anchor`, which is what lets a
  // collector (dist/trace_collect.hpp) align per-process timelines: every
  // event's ts is steady-relative, but anchor_A - anchor_B is the offset
  // between two processes' timelines. 0 until the first enable().
  [[nodiscard]] std::uint64_t wall_anchor_us() const noexcept {
    return wall_anchor_us_.load(std::memory_order_relaxed);
  }

  // Names this process's lane group in merged multi-process traces
  // ("srna-router", "srna-serve"); emitted as process_name metadata by
  // to_json(). Empty (the default) emits no metadata.
  void set_process_name(std::string name);
  void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Microseconds since enable(). Monotonic (steady_clock).
  [[nodiscard]] std::uint64_t now_us() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  // Records one complete ("ph":"X") event on the calling thread. No-op when
  // disabled. `category` and `name` must be string literals (or otherwise
  // outlive the trace); `args_json` is a pre-rendered JSON object or empty.
  void record(const char* category, const char* name, std::uint64_t start_us,
              std::uint64_t dur_us, std::string args_json = {});

  // Counts an instant event (rendered as "ph":"i", thread scope).
  void instant(const char* category, const char* name, std::string args_json = {});

  [[nodiscard]] std::uint64_t events_recorded() const;
  [[nodiscard]] std::uint64_t events_dropped() const;

  // Flush: the whole trace as a Chrome trace-event document.
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] std::string to_json_string() const { return to_json().dump(); }
  // Writes the document to `path`; false on I/O failure.
  bool write(const std::string& path) const;

  // Discards all buffered events and thread registrations. Callers must
  // ensure no thread is concurrently recording (disable first, join
  // workers); the registration generation protects later re-registration.
  void clear();

  // Per-thread event capacity for buffers registered after the call
  // (existing buffers keep theirs). Default 1 << 16.
  void set_thread_capacity(std::size_t events);

 private:
  struct Event {
    const char* category;
    const char* name;
    std::string args_json;
    std::uint64_t start_us;
    std::uint64_t dur_us;
    bool instant;
  };

  struct ThreadBuffer {
    explicit ThreadBuffer(std::uint32_t id, std::size_t capacity) : tid(id) {
      events.reserve(capacity);
    }
    std::uint32_t tid;
    std::vector<Event> events;  // append-only, never reallocates (reserved)
    std::atomic<std::size_t> committed{0};
    std::atomic<std::uint64_t> dropped{0};
  };

  Tracer() = default;
  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_{};
  std::atomic<std::uint64_t> wall_anchor_us_{0};

  mutable std::mutex registry_mutex_;
  std::string process_name_;  // guarded by registry_mutex_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<std::uint64_t> generation_{1};
  std::size_t thread_capacity_ = 1 << 16;
};

// RAII span. Captures the start time at construction when tracing is on
// (and `condition` holds), records a complete event at destruction.
class TraceScope {
 public:
  TraceScope(const char* category, const char* name, bool condition = true) noexcept
      : active_(condition && Tracer::instance().enabled()),
        category_(category),
        name_(name) {
    if (active_) start_us_ = Tracer::instance().now_us();
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() { close(); }

  // Ends the span now (instead of at scope exit). Idempotent — useful when
  // the traced phase ends mid-scope (e.g. values created in the phase must
  // outlive it).
  void close() {
    if (!active_) return;
    active_ = false;
    Tracer& t = Tracer::instance();
    t.record(category_, name_, start_us_, t.now_us() - start_us_, std::move(args_json_));
  }

  // Whether this scope will record (build args only when it will).
  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] std::uint64_t start_us() const noexcept { return start_us_; }

  // Attaches a pre-rendered JSON object as the event's "args".
  void set_args(std::string args_json) { args_json_ = std::move(args_json); }

 private:
  bool active_;
  const char* category_;
  const char* name_;
  std::uint64_t start_us_ = 0;
  std::string args_json_;
};

// Renders `{"k1":v1,...}` for TraceScope::set_args / Tracer::record.
std::string trace_args(
    std::initializer_list<std::pair<const char*, std::int64_t>> kv);

}  // namespace srna::obs
