// Sliding-window percentile estimator: a ring buffer of the most recent
// observations, with exact percentiles computed over the window at read
// time.
//
// The log-linear `Histogram` answers "where did the time go since the
// process started" with ~±41% bucket error — fine for post-mortem reports,
// useless for a live p99 gauge that must reflect the last few seconds of
// traffic and read accurately on a dashboard. A WindowHistogram keeps the
// raw values of the last `capacity` observations (one double each, a few KB
// per instrument), so a scrape gets exact order statistics over a window
// that slides by observation count.
//
// Concurrency: observe() is a mutex-guarded O(1) slot write — the serve
// completion path takes it once per request, which is noise next to a
// solve. snapshot() copies the window under the lock and sorts outside it,
// so scrapes never stall writers for more than the copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/json.hpp"

namespace srna::obs {

class WindowHistogram {
 public:
  static constexpr std::size_t kDefaultCapacity = 2048;

  explicit WindowHistogram(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.reserve(capacity_);
    exemplars_.reserve(capacity_);
  }

  // Records one observation; `exemplar_id` (a trace id, 0 = none) rides in a
  // parallel ring so a quantile readout can name a concrete request behind
  // the tail — "p99 is 80ms" becomes "p99 is 80ms, e.g. trace 4711".
  void observe(double v, std::uint64_t exemplar_id = 0) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;   // observations ever
    std::uint64_t window = 0;  // observations currently in the window
    double min = 0.0;          // over the window
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    // Exemplar id recorded with the window's max observation (0 = none):
    // the trace to pull when asking "what was that slowest request".
    std::uint64_t max_exemplar = 0;
  };
  [[nodiscard]] Snapshot snapshot() const;

  // One exact order statistic over the current window (0 when empty). Uses
  // the same rank rule as the load generator: sorted[floor(q * (n - 1))].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] Json to_json() const;

  void reset();

 private:
  [[nodiscard]] std::vector<double> copy_window() const;

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<double> ring_;  // grows to capacity_, then wraps
  std::vector<std::uint64_t> exemplars_;  // parallel to ring_ (trace ids)
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace srna::obs
