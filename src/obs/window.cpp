#include "obs/window.hpp"

#include <algorithm>
#include <cmath>

namespace srna::obs {

void WindowHistogram::observe(double v, std::uint64_t exemplar_id) noexcept {
  if (std::isnan(v)) return;
  std::lock_guard lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(v);
    exemplars_.push_back(exemplar_id);
  } else {
    ring_[next_] = v;
    exemplars_[next_] = exemplar_id;
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<double> WindowHistogram::copy_window() const {
  std::lock_guard lock(mutex_);
  return ring_;
}

double WindowHistogram::quantile(double q) const {
  std::vector<double> values = copy_window();
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank =
      static_cast<std::size_t>(q * static_cast<double>(values.size() - 1));
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(rank), values.end());
  return values[rank];
}

WindowHistogram::Snapshot WindowHistogram::snapshot() const {
  Snapshot s;
  std::vector<double> values;
  std::vector<std::uint64_t> ids;
  {
    std::lock_guard lock(mutex_);
    s.count = total_;
    values = ring_;
    ids = exemplars_;
  }
  s.window = values.size();
  if (values.empty()) return s;
  // The max exemplar is resolved before sorting scrambles the pairing.
  std::size_t max_at = 0;
  for (std::size_t i = 1; i < values.size(); ++i)
    if (values[i] > values[max_at]) max_at = i;
  s.max_exemplar = ids[max_at];
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  const auto at = [&](double q) {
    return values[static_cast<std::size_t>(q * static_cast<double>(values.size() - 1))];
  };
  s.p50 = at(0.50);
  s.p90 = at(0.90);
  s.p95 = at(0.95);
  s.p99 = at(0.99);
  return s;
}

Json WindowHistogram::to_json() const {
  const Snapshot s = snapshot();
  Json out = Json::object();
  out.set("count", s.count).set("window", s.window);
  out.set("min", s.min).set("max", s.max);
  out.set("p50", s.p50).set("p90", s.p90).set("p95", s.p95).set("p99", s.p99);
  // Sparse: only observations that carried a trace id can name their max.
  if (s.max_exemplar != 0) out.set("max_exemplar_trace_id", s.max_exemplar);
  return out;
}

void WindowHistogram::reset() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  exemplars_.clear();
  next_ = 0;
  total_ = 0;
}

}  // namespace srna::obs
