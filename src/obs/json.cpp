#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace srna::obs {

double Json::as_double() const noexcept {
  switch (kind_) {
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kUint: return static_cast<double>(uint_);
    case Kind::kDouble: return double_;
    default: return 0.0;
  }
}

std::int64_t Json::as_int() const noexcept {
  switch (kind_) {
    case Kind::kInt: return int_;
    case Kind::kUint: return static_cast<std::int64_t>(uint_);
    case Kind::kDouble: return static_cast<std::int64_t>(double_);
    default: return 0;
  }
}

std::uint64_t Json::as_uint() const noexcept {
  switch (kind_) {
    case Kind::kInt: return int_ < 0 ? 0 : static_cast<std::uint64_t>(int_);
    case Kind::kUint: return uint_;
    case Kind::kDouble: return double_ < 0 ? 0 : static_cast<std::uint64_t>(double_);
    default: return 0;
  }
}

Json& Json::set(std::string key, Json value) {
  kind_ = Kind::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

Json& Json::push(Json value) {
  kind_ = Kind::kArray;
  items_.push_back(std::move(value));
  return *this;
}

std::string Json::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; emit null like most writers
    out += "null";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  out.append(buf, ptr);
}

void append_newline_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kUint: out += std::to_string(uint_); break;
    case Kind::kDouble: append_double(out, double_); break;
    case Kind::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent > 0) append_newline_indent(out, indent, depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (indent > 0 && !items_.empty()) append_newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent > 0) append_newline_indent(out, indent, depth + 1);
        out += '"';
        out += escape(members_[i].first);
        out += indent > 0 ? "\": " : "\":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (indent > 0 && !members_.empty()) append_newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ------------------------------------------------------------------ parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Json> value() {  // NOLINT(misc-no-recursion)
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': {
        auto s = string();
        if (!s) return std::nullopt;
        return Json(std::move(*s));
      }
      case 't': return literal("true") ? std::optional<Json>(Json(true)) : std::nullopt;
      case 'f': return literal("false") ? std::optional<Json>(Json(false)) : std::nullopt;
      case 'n': return literal("null") ? std::optional<Json>(Json()) : std::nullopt;
      default: return number();
    }
  }

  std::optional<Json> object() {  // NOLINT(misc-no-recursion)
    ++pos_;  // '{'
    Json out = Json::object();
    skip_ws();
    if (eat('}')) return out;
    while (true) {
      skip_ws();
      auto key = string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!eat(':')) return std::nullopt;
      auto v = value();
      if (!v) return std::nullopt;
      out.set(std::move(*key), std::move(*v));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return out;
      return std::nullopt;
    }
  }

  std::optional<Json> array() {  // NOLINT(misc-no-recursion)
    ++pos_;  // '['
    Json out = Json::array();
    skip_ws();
    if (eat(']')) return out;
    while (true) {
      auto v = value();
      if (!v) return std::nullopt;
      out.push(std::move(*v));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return out;
      return std::nullopt;
    }
  }

  std::optional<std::string> string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // UTF-8 encode the code point (BMP only; surrogate pairs are out
          // of scope for the diagnostics this library writes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_integer = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_integer = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") return std::nullopt;
    if (is_integer) {
      if (tok[0] != '-') {
        std::uint64_t u = 0;
        const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), u);
        if (ec == std::errc{} && p == tok.data() + tok.size()) return Json(u);
      }
      std::int64_t i = 0;
      const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (ec == std::errc{} && p == tok.data() + tok.size()) return Json(i);
      // fall through to double on overflow
    }
    double d = 0.0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc{} || p != tok.data() + tok.size()) return std::nullopt;
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace srna::obs
