// Structured logger: leveled, rate-limited JSON lines.
//
// One event per line, machine-parseable, written to stderr by default:
//
//   {"ts_ms":1754500000123,"level":"warn","event":"serve.reject",
//    "id":17,"reason":"queue full","retry_after_ms":12.5}
//
// This replaces ad-hoc stderr prints in the long-running subsystems (serve,
// PRNA's scheduler, the engine's validation path). Design rules:
//
//   * Leveled — debug/info/warn/error, filtered by a single relaxed atomic
//     load, so a disabled `log_debug` on a hot path costs one branch.
//   * Rate-limited per event key — a burst of identical errors (every
//     request timing out, a client hammering a closed queue) emits at most
//     `limit` lines per sliding window; further lines are counted, and the
//     suppressed count is attached to the next emitted line for that event
//     (`"suppressed": N`), so bursts stay visible without flooding.
//   * Structured — fields are a Json object, rendered inline after the
//     ts/level/event header. Renderers never throw; logging must not take
//     down the server.
//
// The sink is swappable (tests capture lines; a daemon could ship them); the
// default writes one line to stderr under the logger mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "obs/json.hpp"

namespace srna::obs {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

[[nodiscard]] const char* to_string(LogLevel level) noexcept;
// "debug" | "info" | "warn" | "error" | "off"; nullopt otherwise.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name) noexcept;

class Logger {
 public:
  static Logger& instance() noexcept;

  void set_min_level(LogLevel level) noexcept {
    min_level_.store(static_cast<std::uint8_t>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel min_level() const noexcept {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }
  // The cheap guard: build fields only when the line can be emitted.
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return level >= min_level() && level != LogLevel::kOff;
  }

  // Replaces the output sink (nullptr restores the stderr default). The sink
  // runs under the logger mutex — keep it fast and non-reentrant.
  using Sink = std::function<void(const std::string& line)>;
  void set_sink(Sink sink);

  // Per-event-key rate limit: at most `limit` lines per `window_seconds`
  // sliding window (limit 0 disables limiting). Resets the per-event state.
  void set_rate_limit(std::uint64_t limit, double window_seconds);

  // Emits one line. `event` is the rate-limit key and should be a stable
  // dotted identifier ("serve.reject"); `fields` an object (or null).
  void log(LogLevel level, std::string_view event, Json fields = Json());

  [[nodiscard]] std::uint64_t lines_emitted() const noexcept {
    return emitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t lines_suppressed() const noexcept {
    return suppressed_.load(std::memory_order_relaxed);
  }

  // Test support: clears rate-limiter state and the emitted/suppressed
  // totals (instruments and sink survive).
  void reset_counters();

 private:
  Logger() = default;

  struct EventState {
    std::uint64_t window_start_us = 0;  // steady-clock micros
    std::uint64_t in_window = 0;
    std::uint64_t suppressed = 0;  // since the last emitted line
  };

  std::atomic<std::uint8_t> min_level_{static_cast<std::uint8_t>(LogLevel::kInfo)};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> suppressed_{0};

  std::mutex mutex_;  // guards sink_, events_, limit config
  Sink sink_;
  std::uint64_t limit_ = 10;
  std::uint64_t window_us_ = 1'000'000;
  std::unordered_map<std::string, EventState> events_;
};

// Builds the fields object: log_fields({{"id", Json(7)}, {"reason", Json("x")}}).
[[nodiscard]] Json log_fields(
    std::initializer_list<std::pair<const char*, Json>> kv);

inline void log_debug(std::string_view event, Json fields = Json()) {
  Logger::instance().log(LogLevel::kDebug, event, std::move(fields));
}
inline void log_info(std::string_view event, Json fields = Json()) {
  Logger::instance().log(LogLevel::kInfo, event, std::move(fields));
}
inline void log_warn(std::string_view event, Json fields = Json()) {
  Logger::instance().log(LogLevel::kWarn, event, std::move(fields));
}
inline void log_error(std::string_view event, Json fields = Json()) {
  Logger::instance().log(LogLevel::kError, event, std::move(fields));
}

}  // namespace srna::obs
