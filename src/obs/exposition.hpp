// Prometheus text exposition (format version 0.0.4) of the metrics
// Registry, for the serve admin endpoint and anything else that wants to be
// scraped.
//
// Mapping:
//   Counter          -> `srna_<name>` counter
//   Gauge            -> `srna_<name>` gauge
//   Histogram        -> `srna_<name>` histogram: cumulative `_bucket{le=..}`
//                       series (log-linear upper bounds, empty tail elided,
//                       `+Inf` always present), `_sum`, `_count`
//   WindowHistogram  -> `srna_<name>` summary: exact `{quantile=..}` gauges
//                       (0.5 / 0.9 / 0.95 / 0.99) over the sliding window,
//                       plus `_count` (observations ever)
//
// Instrument names are sanitized to the Prometheus charset (every character
// outside [a-zA-Z0-9_] becomes `_`, so `serve.queue_depth` scrapes as
// `srna_serve_queue_depth`). The tracer's own health — events recorded and
// dropped since enable() — is appended as `srna_trace_events_recorded` /
// `srna_trace_events_dropped`, making silent trace truncation visible on a
// dashboard instead of only in a post-mortem report.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace srna::obs {

// `serve.queue_depth` -> `srna_serve_queue_depth`.
[[nodiscard]] std::string prometheus_name(std::string_view name);

// The whole registry (plus the tracer totals) as one scrape body.
[[nodiscard]] std::string render_prometheus(const Registry& registry = Registry::instance());

}  // namespace srna::obs
