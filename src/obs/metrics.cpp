#include "obs/metrics.hpp"

#include <cmath>
#include <limits>
#include <thread>

namespace srna::obs {

std::size_t Counter::shard_index() noexcept {
  // One stable shard per thread; hashing the thread id spreads OpenMP /
  // std::thread pools across the 16 shards well enough to kill contention.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard = next.fetch_add(1, std::memory_order_relaxed) % 16;
  return shard;
}

namespace {

constexpr double kHistMin = 1e-9;

// Atomic min/max via CAS (atomic<double> has no fetch_min).
void atomic_min(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t Histogram::bucket_index(double v) noexcept {
  if (!(v > kHistMin)) return 0;
  // Two buckets per octave: index = floor(2 * log2(v / min)).
  const double octaves = std::log2(v / kHistMin);
  const auto idx = static_cast<std::size_t>(octaves * 2.0);
  return idx >= kBuckets ? kBuckets - 1 : idx;
}

double Histogram::bucket_upper_bound(std::size_t index) noexcept {
  return kHistMin * std::exp2(static_cast<double>(index + 1) / 2.0);
}

void Histogram::observe(double v) noexcept {
  if (std::isnan(v)) return;
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add(double) requires C++20 atomic<double>; emulate with CAS to
  // stay portable across standard libraries.
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + v, std::memory_order_relaxed)) {
  }
  atomic_min(min_, v);
  atomic_max(max_, v);
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot s;
  std::array<std::uint64_t, kBuckets> counts{};
  for (std::size_t i = 0; i < kBuckets; ++i)
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  for (const std::uint64_t c : counts) s.count += c;
  if (s.count == 0) return s;
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);

  const auto percentile = [&](double q) {
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(s.count - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen >= target) return bucket_upper_bound(i);
    }
    return bucket_upper_bound(kBuckets - 1);
  };
  s.p50 = percentile(0.50);
  s.p90 = percentile(0.90);
  s.p99 = percentile(0.99);
  return s;
}

Json Histogram::to_json() const {
  const Snapshot s = snapshot();
  Json out = Json::object();
  out.set("count", s.count).set("sum", s.sum).set("min", s.min).set("max", s.max);
  out.set("p50", s.p50).set("p90", s.p90).set("p99", s.p99);
  return out;
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::bucket_counts() const noexcept {
  std::array<std::uint64_t, kBuckets> counts{};
  for (std::size_t i = 0; i < kBuckets; ++i)
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  return counts;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::instance() noexcept {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  return *it->second;
}

WindowHistogram& Registry::window(std::string_view name, std::size_t capacity) {
  std::lock_guard lock(mutex_);
  auto it = windows_.find(name);
  if (it == windows_.end())
    it = windows_.emplace(std::string(name), std::make_unique<WindowHistogram>(capacity))
             .first;
  return *it->second;
}

Json Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  Json counters = Json::object();
  for (const auto& [name, c] : counters_) counters.set(name, c->value());
  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, g->value());
  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) histograms.set(name, h->to_json());
  Json windows = Json::object();
  for (const auto& [name, w] : windows_) windows.set(name, w->to_json());
  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  out.set("windows", std::move(windows));
  return out;
}

void Registry::visit(
    const std::function<void(const std::string&, const Counter&)>& on_counter,
    const std::function<void(const std::string&, const Gauge&)>& on_gauge,
    const std::function<void(const std::string&, const Histogram&)>& on_histogram,
    const std::function<void(const std::string&, const WindowHistogram&)>& on_window)
    const {
  std::lock_guard lock(mutex_);
  if (on_counter)
    for (const auto& [name, c] : counters_) on_counter(name, *c);
  if (on_gauge)
    for (const auto& [name, g] : gauges_) on_gauge(name, *g);
  if (on_histogram)
    for (const auto& [name, h] : histograms_) on_histogram(name, *h);
  if (on_window)
    for (const auto& [name, w] : windows_) on_window(name, *w);
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
  for (const auto& [name, w] : windows_) w->reset();
}

}  // namespace srna::obs
