// Metrics registry: thread-sharded counters, gauges, and log-linear
// histograms, snapshotable to JSON.
//
// Hot-path rules:
//   * Counter::add is a relaxed fetch_add on one of 16 cache-line-padded
//     shards picked by thread id — no contention on parallel stage one.
//   * Look instruments up once and cache the reference
//     (`static auto& c = Registry::instance().counter("...")`). Instruments
//     are never destroyed before process exit, so cached references stay
//     valid across Registry::reset() (reset zeroes values in place).
//   * Histogram::observe is a handful of relaxed atomic ops; use it at slice
//     / row / collective granularity, never per cell.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <limits>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "obs/window.hpp"

namespace srna::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    shards_[shard_index()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  static std::size_t shard_index() noexcept;
  std::array<Shard, 16> shards_{};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  // High-watermark update: keeps the larger of the stored and new value
  // (CAS loop; atomic<double> has no fetch_max).
  void set_max(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Log-linear histogram for positive values (latencies in seconds, sizes,
// rates). Buckets span [1e-9, ~5e9) in half-octave steps (two buckets per
// power of two); values outside clamp to the end buckets. Percentiles are
// estimated from bucket upper bounds — good to ~±41% relative error, plenty
// for "where did the time go".
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 124;

  void observe(double v) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const noexcept;
  [[nodiscard]] Json to_json() const;

  void reset() noexcept;

  // Per-bucket counts (relaxed loads) — the exposition renderer emits these
  // as cumulative Prometheus buckets.
  [[nodiscard]] std::array<std::uint64_t, kBuckets> bucket_counts() const noexcept;

  // Exposed for tests.
  static std::size_t bucket_index(double v) noexcept;
  static double bucket_upper_bound(std::size_t index) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // min starts at +inf so the CAS-min from any thread wins the first
  // observation without an initialization race.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{0.0};
};

// Process-wide named instruments. Creation locks a mutex; cache references
// on hot paths (see the header comment).
class Registry {
 public:
  static Registry& instance() noexcept;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  // Sliding-window percentile instrument (exact over the last `capacity`
  // observations; capacity applies on first creation only).
  WindowHistogram& window(std::string_view name,
                          std::size_t capacity = WindowHistogram::kDefaultCapacity);

  // {"counters": {...}, "gauges": {...}, "histograms": {...},
  //  "windows": {...}} — instrument names sorted (std::map), values read
  // with relaxed loads.
  [[nodiscard]] Json snapshot() const;

  // Visits every registered instrument under the registry lock, in name
  // order per kind. The exposition renderer uses this to reach per-bucket
  // histogram counts that the JSON snapshot flattens away. Callbacks must
  // not re-enter the registry.
  void visit(
      const std::function<void(const std::string&, const Counter&)>& on_counter,
      const std::function<void(const std::string&, const Gauge&)>& on_gauge,
      const std::function<void(const std::string&, const Histogram&)>& on_histogram,
      const std::function<void(const std::string&, const WindowHistogram&)>& on_window)
      const;

  // Zeroes every instrument in place; registrations (and cached references)
  // survive.
  void reset();

 private:
  Registry() = default;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<WindowHistogram>, std::less<>> windows_;
};

}  // namespace srna::obs
