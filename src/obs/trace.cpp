#include "obs/trace.hpp"

#include <unistd.h>

#include <fstream>

namespace srna::obs {

namespace trace_context {

namespace {
thread_local std::uint64_t t_current_trace_id = 0;
}  // namespace

std::uint64_t current() noexcept { return t_current_trace_id; }
void set(std::uint64_t id) noexcept { t_current_trace_id = id; }

}  // namespace trace_context

namespace {

// Stamps the thread's current trace id into a pre-rendered args object
// (no-op when no context is set). The events of one request then share
// `"args":{"trace_id":N,...}` across every category and thread.
void stamp_trace_context(std::string& args_json) {
  const std::uint64_t id = trace_context::current();
  if (id == 0) return;
  std::string stamped = "{\"trace_id\":" + std::to_string(id);
  if (args_json.size() > 2 && args_json.front() == '{') {
    stamped += ',';
    stamped.append(args_json, 1, args_json.size() - 1);
  } else {
    stamped += '}';
  }
  args_json = std::move(stamped);
}

}  // namespace

Tracer& Tracer::instance() noexcept {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable() {
  // Capture both clocks back to back: the pair is the process's clock
  // anchor, and the closer together they are read, the tighter the
  // cross-process alignment a collector can compute from them.
  epoch_ = std::chrono::steady_clock::now();
  wall_anchor_us_.store(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count()),
      std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::set_process_name(std::string name) {
  std::lock_guard lock(registry_mutex_);
  process_name_ = std::move(name);
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // One registration per (thread, clear-generation). The cached pointer is
  // invalidated by clear(), which bumps the generation under the registry
  // mutex after destroying the buffers.
  thread_local ThreadBuffer* cached = nullptr;
  thread_local std::uint64_t cached_generation = 0;
  const std::uint64_t generation = generation_.load(std::memory_order_acquire);
  if (cached == nullptr || cached_generation != generation) {
    std::lock_guard lock(registry_mutex_);
    const auto tid = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(std::make_unique<ThreadBuffer>(tid, thread_capacity_));
    cached = buffers_.back().get();
    cached_generation = generation_.load(std::memory_order_relaxed);
  }
  return *cached;
}

void Tracer::record(const char* category, const char* name, std::uint64_t start_us,
                    std::uint64_t dur_us, std::string args_json) {
  if (!enabled()) return;
  stamp_trace_context(args_json);
  ThreadBuffer& buf = local_buffer();
  const std::size_t i = buf.committed.load(std::memory_order_relaxed);
  if (i >= buf.events.capacity()) {
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back(Event{category, name, std::move(args_json), start_us, dur_us, false});
  buf.committed.store(i + 1, std::memory_order_release);
}

void Tracer::instant(const char* category, const char* name, std::string args_json) {
  if (!enabled()) return;
  stamp_trace_context(args_json);
  ThreadBuffer& buf = local_buffer();
  const std::size_t i = buf.committed.load(std::memory_order_relaxed);
  if (i >= buf.events.capacity()) {
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back(Event{category, name, std::move(args_json), now_us(), 0, true});
  buf.committed.store(i + 1, std::memory_order_release);
}

std::uint64_t Tracer::events_recorded() const {
  std::lock_guard lock(registry_mutex_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) total += buf->committed.load(std::memory_order_acquire);
  return total;
}

std::uint64_t Tracer::events_dropped() const {
  std::lock_guard lock(registry_mutex_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) total += buf->dropped.load(std::memory_order_relaxed);
  return total;
}

Json Tracer::to_json() const {
  Json events = Json::array();
  std::uint64_t dropped = 0;
  {
    std::lock_guard lock(registry_mutex_);
    if (!process_name_.empty()) {
      // Process-lane metadata so a merged multi-process trace labels each
      // pid row ("srna-router", "srna-serve") instead of showing bare ids.
      Json meta = Json::object();
      meta.set("ph", "M").set("name", "process_name").set("pid", 1);
      Json meta_args = Json::object();
      meta_args.set("name", process_name_);
      meta.set("args", std::move(meta_args));
      events.push(std::move(meta));
    }
    for (const auto& buf : buffers_) {
      // Thread-lane metadata so Perfetto labels the rows.
      Json meta = Json::object();
      meta.set("ph", "M").set("name", "thread_name").set("pid", 1)
          .set("tid", static_cast<std::int64_t>(buf->tid));
      Json meta_args = Json::object();
      meta_args.set("name", "srna-thread-" + std::to_string(buf->tid));
      meta.set("args", std::move(meta_args));
      events.push(std::move(meta));

      const std::size_t committed = buf->committed.load(std::memory_order_acquire);
      const Event* data = buf->events.data();
      for (std::size_t i = 0; i < committed; ++i) {
        const Event& e = data[i];
        Json ev = Json::object();
        ev.set("name", e.name).set("cat", e.category).set("ph", e.instant ? "i" : "X");
        ev.set("ts", e.start_us);
        if (!e.instant) ev.set("dur", e.dur_us);
        if (e.instant) ev.set("s", "t");
        ev.set("pid", 1).set("tid", static_cast<std::int64_t>(buf->tid));
        if (!e.args_json.empty()) {
          if (auto parsed = Json::parse(e.args_json)) ev.set("args", std::move(*parsed));
        }
        events.push(std::move(ev));
      }
      dropped += buf->dropped.load(std::memory_order_relaxed);
    }
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  doc.set("srna_dropped_events", dropped);
  // The steady-epoch <-> CLOCK_REALTIME pair: every ts above is microseconds
  // after this wall instant. dist/trace_collect.hpp subtracts the earliest
  // anchor across processes to put all timelines on one axis.
  Json anchor = Json::object();
  anchor.set("realtime_unix_us", wall_anchor_us());
  anchor.set("pid", static_cast<std::int64_t>(::getpid()));
  doc.set("srna_clock_anchor", std::move(anchor));
  return doc;
}

bool Tracer::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json().dump() << '\n';
  return static_cast<bool>(out);
}

void Tracer::clear() {
  std::lock_guard lock(registry_mutex_);
  buffers_.clear();
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

void Tracer::set_thread_capacity(std::size_t events) {
  std::lock_guard lock(registry_mutex_);
  thread_capacity_ = events == 0 ? 1 : events;
}

std::string trace_args(
    std::initializer_list<std::pair<const char*, std::int64_t>> kv) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : kv) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += Json::escape(k);
    out += "\":";
    out += std::to_string(v);
  }
  out += '}';
  return out;
}

}  // namespace srna::obs
