// Descriptive statistics of a secondary structure.
//
// Used by the harness to verify that synthetic workloads match the paper's
// reported instances (e.g. Table II's "4216 bases / 721 arcs" 23S rRNA), and
// by the work model: the cost of the SRNA algorithms is governed entirely by
// the arc count, nesting profile and interior widths.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rna/secondary_structure.hpp"

namespace srna {

// A stem (helix) is a maximal run of directly stacked arcs:
// (i, j), (i+1, j-1), ..., (i+len-1, j-len+1).
struct Stem {
  Arc outer;        // outermost arc of the stack
  Pos length = 0;   // number of stacked arcs
};

struct StructureStats {
  Pos length = 0;
  std::size_t arcs = 0;
  Pos max_nesting_depth = 0;
  double mean_arc_span = 0.0;     // mean (right - left)
  std::size_t stems = 0;
  double mean_stem_length = 0.0;
  std::size_t hairpins = 0;       // arcs with no arc strictly inside
  std::size_t paired_bases = 0;
  double paired_fraction = 0.0;

  // Total dense-slice work if every arc pair of a self-comparison were
  // tabulated: sum over arcs of interior_width — the quantity Figure 7
  // visualizes (per pair it is the product of the two interior widths).
  std::size_t total_interior_width = 0;

  [[nodiscard]] std::string to_string() const;
};

StructureStats compute_stats(const SecondaryStructure& s);

// All maximal stems, in left-endpoint order.
std::vector<Stem> find_stems(const SecondaryStructure& s);

}  // namespace srna
