#include "rna/sequence.hpp"

#include <array>
#include <stdexcept>

namespace srna {

char to_char(Base b) noexcept {
  switch (b) {
    case Base::A: return 'A';
    case Base::C: return 'C';
    case Base::G: return 'G';
    case Base::U: return 'U';
  }
  return '?';
}

bool base_from_char(char c, Base& out) noexcept {
  switch (c) {
    case 'A': case 'a': out = Base::A; return true;
    case 'C': case 'c': out = Base::C; return true;
    case 'G': case 'g': out = Base::G; return true;
    case 'U': case 'u':
    case 'T': case 't': out = Base::U; return true;
    default: return false;
  }
}

bool can_pair(Base a, Base b) noexcept {
  auto pair_is = [&](Base x, Base y) { return (a == x && b == y) || (a == y && b == x); };
  // Watson–Crick (AU, CG) plus the GU wobble pair.
  return pair_is(Base::A, Base::U) || pair_is(Base::C, Base::G) || pair_is(Base::G, Base::U);
}

Sequence Sequence::from_string(std::string_view text) {
  std::vector<Base> bases;
  bases.reserve(text.size());
  for (char c : text) {
    Base b;
    if (!base_from_char(c, b))
      throw std::invalid_argument(std::string("invalid RNA base character: '") + c + "'");
    bases.push_back(b);
  }
  return Sequence(std::move(bases));
}

std::string Sequence::to_string() const {
  std::string out;
  out.reserve(bases_.size());
  for (Base b : bases_) out.push_back(to_char(b));
  return out;
}

std::array<std::size_t, 4> Sequence::composition() const noexcept {
  std::array<std::size_t, 4> counts{};
  for (Base b : bases_) ++counts[static_cast<std::size_t>(b)];
  return counts;
}

}  // namespace srna
