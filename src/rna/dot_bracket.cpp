#include "rna/dot_bracket.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <vector>

namespace srna {

namespace {

constexpr std::array<char, 4> kOpen = {'(', '[', '{', '<'};
constexpr std::array<char, 4> kClose = {')', ']', '}', '>'};

int open_level(char c) {
  for (std::size_t i = 0; i < kOpen.size(); ++i)
    if (kOpen[i] == c) return static_cast<int>(i);
  return -1;
}

int close_level(char c) {
  for (std::size_t i = 0; i < kClose.size(); ++i)
    if (kClose[i] == c) return static_cast<int>(i);
  return -1;
}

}  // namespace

SecondaryStructure parse_dot_bracket(std::string_view text) {
  std::vector<Arc> arcs;
  std::array<std::vector<Pos>, 4> stacks;

  Pos i = 0;
  for (char c : text) {
    if (c == '.' || c == '-' || c == ':') {
      ++i;
      continue;
    }
    if (int level = open_level(c); level >= 0) {
      stacks[static_cast<std::size_t>(level)].push_back(i++);
      continue;
    }
    if (int level = close_level(c); level >= 0) {
      auto& stack = stacks[static_cast<std::size_t>(level)];
      if (stack.empty())
        throw std::invalid_argument("unbalanced dot-bracket: unmatched '" + std::string(1, c) +
                                    "' at position " + std::to_string(i));
      arcs.push_back(Arc{stack.back(), i++});
      stack.pop_back();
      continue;
    }
    throw std::invalid_argument("unexpected character '" + std::string(1, c) +
                                "' in dot-bracket string");
  }
  for (const auto& stack : stacks)
    if (!stack.empty())
      throw std::invalid_argument("unbalanced dot-bracket: " + std::to_string(stack.size()) +
                                  " unclosed bracket(s)");
  return SecondaryStructure::from_arcs(i, std::move(arcs));
}

std::string to_dot_bracket(const SecondaryStructure& s) {
  std::string out(static_cast<std::size_t>(s.length()), '.');

  // Greedy layering: assign each arc (in left-endpoint order) the lowest
  // bracket level whose previously assigned arcs it does not cross. For a
  // non-pseudoknot structure everything lands on level 0.
  std::vector<Arc> arcs = s.arcs_by_right();
  std::sort(arcs.begin(), arcs.end());
  std::array<std::vector<Arc>, 4> levels;
  for (const Arc& a : arcs) {
    bool placed = false;
    for (std::size_t level = 0; level < levels.size() && !placed; ++level) {
      bool crosses = false;
      for (const Arc& other : levels[level]) {
        if (a.crosses(other)) {
          crosses = true;
          break;
        }
      }
      if (!crosses) {
        levels[level].push_back(a);
        out[static_cast<std::size_t>(a.left)] = kOpen[level];
        out[static_cast<std::size_t>(a.right)] = kClose[level];
        placed = true;
      }
    }
    if (!placed)
      throw std::invalid_argument("structure needs more than four crossing levels");
  }
  return out;
}

}  // namespace srna
