// ASCII arc diagrams — the paper's Figure 1 view of a secondary structure:
// the sequence on a baseline with bonds drawn as arcs above it.
//
//     /--------\
//     | /--\   |
//     | |  |   |
//     GGCAUCGUAC
//     0        9
//
// Used by the quickstart example and the CLI's `show` command; handy when
// debugging generators and tracebacks.
#pragma once

#include <optional>
#include <string>

#include "rna/secondary_structure.hpp"
#include "rna/sequence.hpp"

namespace srna {

struct ArcDiagramOptions {
  // Print a 0-based position ruler under the baseline.
  bool ruler = true;
  // Highlight these positions (e.g. a traceback's matched arcs) with '*'
  // on the baseline when no sequence is given.
  std::vector<Pos> highlight;
};

// Renders the structure (non-pseudoknot only — crossing arcs cannot be
// drawn as nested levels; throws std::invalid_argument). If `seq` is given
// its bases form the baseline, otherwise '.' for unpaired and 'o' for
// paired positions.
std::string render_arc_diagram(const SecondaryStructure& s, const Sequence* seq = nullptr,
                               const ArcDiagramOptions& options = {});

}  // namespace srna
