#include "rna/nussinov.hpp"

#include <vector>

#include "util/assert.hpp"
#include "util/matrix.hpp"

namespace srna {

NussinovResult nussinov_fold(const Sequence& seq, const NussinovOptions& options) {
  SRNA_REQUIRE(options.min_loop >= 0, "min_loop must be non-negative");
  const Pos n = seq.length();
  if (n == 0) return NussinovResult{SecondaryStructure(0), 0};

  const auto un = static_cast<std::size_t>(n);
  Matrix<Pos> table(un, un, 0);

  // Bottom-up by increasing span.
  for (Pos span = options.min_loop + 1; span < n; ++span) {
    for (Pos i = 0; i + span < n; ++i) {
      const Pos j = i + span;
      const auto ui = static_cast<std::size_t>(i);
      const auto uj = static_cast<std::size_t>(j);
      Pos best = table(ui + 1, uj);  // i unpaired
      for (Pos k = i + options.min_loop + 1; k <= j; ++k) {
        if (!can_pair(seq[i], seq[k])) continue;
        const Pos inner =
            (k - i > 1) ? table(ui + 1, static_cast<std::size_t>(k - 1)) : Pos{0};
        const Pos rest = (k < j) ? table(static_cast<std::size_t>(k + 1), uj) : Pos{0};
        best = std::max(best, static_cast<Pos>(1 + inner + rest));
      }
      table(ui, uj) = best;
    }
  }

  // Traceback: iterative stack of intervals; prefer pairing i with the
  // smallest admissible k that achieves the optimum.
  std::vector<Arc> arcs;
  std::vector<std::pair<Pos, Pos>> stack{{0, n - 1}};
  while (!stack.empty()) {
    auto [i, j] = stack.back();
    stack.pop_back();
    if (j - i <= options.min_loop) continue;
    const auto ui = static_cast<std::size_t>(i);
    const auto uj = static_cast<std::size_t>(j);
    if (table(ui, uj) == table(ui + 1, uj)) {
      stack.emplace_back(i + 1, j);
      continue;
    }
    bool traced = false;
    for (Pos k = i + options.min_loop + 1; k <= j; ++k) {
      if (!can_pair(seq[i], seq[k])) continue;
      const Pos inner = (k - i > 1) ? table(ui + 1, static_cast<std::size_t>(k - 1)) : Pos{0};
      const Pos rest = (k < j) ? table(static_cast<std::size_t>(k + 1), uj) : Pos{0};
      if (table(ui, uj) == 1 + inner + rest) {
        arcs.push_back(Arc{i, k});
        if (k - i > 1) stack.emplace_back(i + 1, k - 1);
        if (k < j) stack.emplace_back(k + 1, j);
        traced = true;
        break;
      }
    }
    SRNA_CHECK(traced, "Nussinov traceback found no witness for the optimum");
  }

  const Pos optimum = table(0, un - 1);
  SecondaryStructure structure = SecondaryStructure::from_arcs(n, std::move(arcs));
  SRNA_CHECK(static_cast<Pos>(structure.arc_count()) == optimum,
             "traceback arc count does not match DP optimum");
  return NussinovResult{std::move(structure), optimum};
}

}  // namespace srna
