#include "rna/generators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/prng.hpp"

namespace srna {

SecondaryStructure worst_case_structure(Pos length) {
  SRNA_REQUIRE(length >= 0, "length must be non-negative");
  std::vector<Arc> arcs;
  arcs.reserve(static_cast<std::size_t>(length / 2));
  for (Pos i = 0; i < length / 2; ++i) arcs.push_back(Arc{i, length - 1 - i});
  return SecondaryStructure::from_arcs(length, std::move(arcs));
}

SecondaryStructure sequential_arcs_structure(Pos length, Pos count) {
  SRNA_REQUIRE(count >= 0 && 2 * count <= length, "too many sequential arcs for length");
  std::vector<Arc> arcs;
  arcs.reserve(static_cast<std::size_t>(count));
  for (Pos i = 0; i < count; ++i) arcs.push_back(Arc{2 * i, 2 * i + 1});
  return SecondaryStructure::from_arcs(length, std::move(arcs));
}

SecondaryStructure nested_groups_structure(Pos groups, Pos per_group) {
  SRNA_REQUIRE(groups >= 0 && per_group >= 0, "group sizes must be non-negative");
  const Pos group_width = 2 * per_group;
  const Pos length = groups * group_width;
  std::vector<Arc> arcs;
  arcs.reserve(static_cast<std::size_t>(groups * per_group));
  for (Pos g = 0; g < groups; ++g) {
    const Pos base = g * group_width;
    for (Pos i = 0; i < per_group; ++i)
      arcs.push_back(Arc{base + i, base + group_width - 1 - i});
  }
  return SecondaryStructure::from_arcs(length, std::move(arcs));
}

namespace {

// Left-to-right recursive sampler: at each eligible position, with
// probability `density` open an arc whose partner is uniform in the rest of
// the interval, recurse under it, and continue after it. Produces exactly
// the non-crossing structures.
void random_fill(Xoshiro256& rng, double density, Pos lo, Pos hi, std::vector<Arc>& arcs) {
  Pos i = lo;
  while (i < hi) {  // need at least two positions for an arc
    if (rng.bernoulli(density)) {
      const Pos j = static_cast<Pos>(rng.uniform_int(i + 1, hi));
      arcs.push_back(Arc{i, j});
      random_fill(rng, density, i + 1, j - 1, arcs);
      i = j + 1;
    } else {
      ++i;
    }
  }
}

}  // namespace

SecondaryStructure random_structure(Pos length, double density, std::uint64_t seed) {
  SRNA_REQUIRE(length >= 0, "length must be non-negative");
  SRNA_REQUIRE(density >= 0.0 && density <= 1.0, "density must be in [0, 1]");
  Xoshiro256 rng(seed);
  std::vector<Arc> arcs;
  random_fill(rng, density, 0, length - 1, arcs);
  return SecondaryStructure::from_arcs(length, std::move(arcs));
}

namespace {

struct StemLoopState {
  Xoshiro256 rng;
  const StemLoopParams* params;
  double gap_scale = 1.0;  // tuning knob: larger → more unpaired bases
  std::vector<Arc> arcs;
};

// Fills [lo, hi] with a sequence of stem-loop domains separated by gaps.
// Returns the number of arcs placed.
void fill_domains(StemLoopState& st, Pos lo, Pos hi) {
  const StemLoopParams& p = *st.params;
  const Pos min_domain = 2 * p.min_stem + p.min_loop;
  Pos i = lo;
  while (hi - i + 1 >= min_domain) {
    // Leave a gap before the next domain.
    const auto max_gap = static_cast<Pos>(std::lround(st.gap_scale * static_cast<double>(p.max_gap)));
    if (max_gap > 0) i += static_cast<Pos>(st.rng.uniform_int(0, max_gap));
    if (hi - i + 1 < min_domain) break;

    // Choose the stem, then decide whether this domain is a plain stem-loop
    // (hairpin-sized interior) or a branching domain (wide interior that is
    // recursively filled with child domains — bulges, internal loops and
    // multiloops arise from the children and gaps placed inside).
    const Pos space = hi - i + 1;
    const Pos stem_cap = std::min<Pos>(p.max_stem, (space - p.min_loop) / 2);
    const Pos stem = static_cast<Pos>(st.rng.uniform_int(p.min_stem, stem_cap));

    const Pos hairpin_min = 2 * stem + p.min_loop;
    const Pos branch_min = 2 * stem + 2 * min_domain;  // room for >= 2 children
    const bool branching = space >= branch_min && st.rng.bernoulli(p.branch_prob);

    Pos width;
    if (branching) {
      width = static_cast<Pos>(st.rng.uniform_int(branch_min, space));
    } else {
      const Pos width_cap = std::min<Pos>(space, 2 * stem + p.max_loop);
      width = static_cast<Pos>(st.rng.uniform_int(hairpin_min, std::max(hairpin_min, width_cap)));
    }

    for (Pos k = 0; k < stem; ++k) st.arcs.push_back(Arc{i + k, i + width - 1 - k});

    if (branching) fill_domains(st, i + stem, i + width - 1 - stem);

    i += width;
  }
}

}  // namespace

SecondaryStructure rrna_like_structure(Pos length, std::size_t target_arcs, std::uint64_t seed,
                                       const StemLoopParams& params) {
  SRNA_REQUIRE(length >= 0, "length must be non-negative");
  SRNA_REQUIRE(target_arcs <= static_cast<std::size_t>(length / 2),
               "target arc count exceeds length/2");
  SRNA_REQUIRE(params.min_stem >= 1 && params.max_stem >= params.min_stem,
               "bad stem bounds");
  SRNA_REQUIRE(params.min_loop >= 0 && params.max_loop >= params.min_loop,
               "bad loop bounds");

  if (target_arcs == 0) return SecondaryStructure(length);

  // Converge the gap budget: more gap → fewer arcs. Binary-search-ish
  // multiplicative update; accept within 3% (or best effort after 40 tries).
  double gap_scale = 1.0;
  std::vector<Arc> best;
  double best_err = std::numeric_limits<double>::infinity();
  for (int attempt = 0; attempt < 40; ++attempt) {
    StemLoopState st{
        Xoshiro256(seed + static_cast<std::uint64_t>(attempt) * std::uint64_t{0x9E37}), &params,
        gap_scale, {}};
    fill_domains(st, 0, length - 1);
    const double got = static_cast<double>(st.arcs.size());
    const double want = static_cast<double>(target_arcs);
    const double err = std::abs(got - want) / want;
    if (err < best_err) {
      best_err = err;
      best = std::move(st.arcs);
    }
    if (best_err <= 0.03) break;
    // Update the knob: too many arcs → widen gaps proportionally.
    const double ratio = got / want;
    gap_scale = std::clamp(gap_scale * std::pow(ratio, 1.2), 0.0, 256.0);
    if (got > want && gap_scale < 1e-6) gap_scale = 1.0;  // restart from neutral
  }
  return SecondaryStructure::from_arcs(length, std::move(best));
}

SecondaryStructure pseudoknot_structure(Pos length, std::uint64_t seed) {
  SRNA_REQUIRE(length >= 4, "pseudoknot needs at least 4 positions");
  Xoshiro256 rng(seed);

  // Base layer: a sparse random structure, regenerated until it leaves at
  // least four unpaired positions for the crossing pair.
  SecondaryStructure base(length);
  std::vector<Pos> free_pos;
  for (int attempt = 0;; ++attempt) {
    base = random_structure(length, 0.15, seed ^ hash_u64(static_cast<std::uint64_t>(attempt)));
    free_pos.clear();
    for (Pos i = 0; i < length; ++i)
      if (!base.paired(i)) free_pos.push_back(i);
    if (free_pos.size() >= 4) break;
    SRNA_CHECK(attempt < 64, "could not find free positions for pseudoknot");
  }

  // Pick four free positions a < b < c < d and add crossing arcs (a, c) and
  // (b, d).
  const std::size_t count = free_pos.size();
  std::size_t picks[4];
  picks[0] = rng.uniform(count - 3);
  picks[1] = picks[0] + 1 + rng.uniform(count - picks[0] - 3);
  picks[2] = picks[1] + 1 + rng.uniform(count - picks[1] - 2);
  picks[3] = picks[2] + 1 + rng.uniform(count - picks[2] - 1);

  std::vector<Arc> arcs = base.arcs_by_right();
  arcs.push_back(Arc{free_pos[picks[0]], free_pos[picks[2]]});
  arcs.push_back(Arc{free_pos[picks[1]], free_pos[picks[3]]});
  SecondaryStructure knotted = SecondaryStructure::from_arcs(length, std::move(arcs));
  SRNA_CHECK(!knotted.is_nonpseudoknot(), "generator failed to create a crossing");
  return knotted;
}

Sequence random_sequence(Pos length, std::uint64_t seed) {
  SRNA_REQUIRE(length >= 0, "length must be non-negative");
  Xoshiro256 rng(seed);
  std::vector<Base> bases;
  bases.reserve(static_cast<std::size_t>(length));
  for (Pos i = 0; i < length; ++i) bases.push_back(static_cast<Base>(rng.uniform(4)));
  return Sequence(std::move(bases));
}

Sequence sequence_for_structure(const SecondaryStructure& s, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Base> bases(static_cast<std::size_t>(s.length()), Base::A);
  static constexpr std::pair<Base, Base> kPairs[] = {
      {Base::A, Base::U}, {Base::U, Base::A}, {Base::C, Base::G},
      {Base::G, Base::C}, {Base::G, Base::U}, {Base::U, Base::G}};
  for (Pos i = 0; i < s.length(); ++i) {
    const Pos p = s.partner(i);
    if (p < 0) {
      bases[static_cast<std::size_t>(i)] = static_cast<Base>(rng.uniform(4));
    } else if (p > i) {
      const auto& [x, y] = kPairs[rng.uniform(6)];
      bases[static_cast<std::size_t>(i)] = x;
      bases[static_cast<std::size_t>(p)] = y;
    }
  }
  return Sequence(std::move(bases));
}

}  // namespace srna
