#include "rna/arc_diagram.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/assert.hpp"

namespace srna {

std::string render_arc_diagram(const SecondaryStructure& s, const Sequence* seq,
                               const ArcDiagramOptions& options) {
  SRNA_REQUIRE(s.is_nonpseudoknot(), "cannot draw crossing arcs as nested levels");
  SRNA_REQUIRE(seq == nullptr || seq->length() == s.length(),
               "sequence length must match the structure");

  const auto width = static_cast<std::size_t>(s.length());
  const Pos depth = s.max_nesting_depth();
  // Row 0 is the topmost (outermost) arc row; row depth is the baseline.
  std::vector<std::string> rows(static_cast<std::size_t>(depth), std::string(width, ' '));

  // Depth of each arc = number of arcs strictly containing it; outermost
  // arcs (depth 0) go on the top row.
  for (const Arc& a : s.arcs_by_right()) {
    Pos nesting = 0;
    for (const Arc& other : s.arcs_by_right())
      if (other.nests(a)) ++nesting;
    const auto row = static_cast<std::size_t>(nesting);
    auto& line = rows[row];
    line[static_cast<std::size_t>(a.left)] = '/';
    line[static_cast<std::size_t>(a.right)] = '\\';
    for (Pos c = a.left + 1; c < a.right; ++c)
      if (line[static_cast<std::size_t>(c)] == ' ') line[static_cast<std::size_t>(c)] = '-';
    // Verticals from under the corners down to the baseline.
    for (std::size_t below = row + 1; below < rows.size(); ++below) {
      for (const Pos c : {a.left, a.right}) {
        char& cell = rows[below][static_cast<std::size_t>(c)];
        if (cell == ' ' || cell == '-') cell = '|';
      }
    }
  }

  // Baseline.
  std::string baseline(width, '.');
  if (seq != nullptr) {
    baseline = seq->to_string();
  } else {
    for (Pos i = 0; i < s.length(); ++i)
      if (s.paired(i)) baseline[static_cast<std::size_t>(i)] = 'o';
  }
  for (const Pos p : options.highlight)
    if (p >= 0 && p < s.length()) baseline[static_cast<std::size_t>(p)] = '*';

  std::string out;
  for (const auto& line : rows) {
    out += line;
    out += '\n';
  }
  out += baseline;
  out += '\n';

  if (options.ruler && width > 0) {
    std::string ruler(width, ' ');
    for (std::size_t i = 0; i < width; i += 10) {
      const std::string label = std::to_string(i);
      if (i + label.size() <= width) ruler.replace(i, label.size(), label);
    }
    out += ruler;
    out += '\n';
  }
  return out;
}

}  // namespace srna
