#include "rna/formats.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace srna {

namespace {

[[noreturn]] void fail(const char* format, std::size_t line, const std::string& what) {
  throw std::invalid_argument(std::string(format) + " parse error at line " +
                              std::to_string(line) + ": " + what);
}

// Builds the structure from 1-based partner assignments collected by either
// parser. `partners[i]` is the 1-based partner of 1-based position i+1, or 0;
// `lines[i]` is the source line that declared base i+1, so every consistency
// error can name the offending line.
SecondaryStructure structure_from_partners(const char* format,
                                           const std::vector<std::size_t>& partners,
                                           const std::vector<std::size_t>& lines,
                                           const ParseOptions& options) {
  const Pos n = static_cast<Pos>(partners.size());
  std::vector<Arc> arcs;
  std::vector<std::size_t> arc_lines;  // line declaring each arc's left endpoint
  for (std::size_t i = 0; i < partners.size(); ++i) {
    const std::size_t p = partners[i];
    if (p == 0) continue;
    if (p > partners.size())
      fail(format, lines[i],
           "partner index " + std::to_string(p) + " out of range (n = " +
               std::to_string(partners.size()) + ")");
    // Symmetry check: the partner must point back.
    if (partners[p - 1] != i + 1)
      fail(format, lines[i],
           "asymmetric bond " + std::to_string(i + 1) + " -> " + std::to_string(p) +
               " (base " + std::to_string(p) + " pairs with " +
               std::to_string(partners[p - 1]) + ")");
    if (p == i + 1)
      fail(format, lines[i], "base " + std::to_string(i + 1) + " paired with itself");
    if (i + 1 < p) {
      arcs.push_back(Arc{static_cast<Pos>(i), static_cast<Pos>(p - 1)});
      arc_lines.push_back(lines[i]);
    }
  }

  if (!options.allow_pseudoknots) {
    // Arcs are sorted by left endpoint already (built in increasing-i
    // order, endpoints unique), so a stack scan finds the first crossing.
    std::vector<std::size_t> open;  // indices into arcs, by nesting
    for (std::size_t a = 0; a < arcs.size(); ++a) {
      while (!open.empty() && arcs[open.back()].right < arcs[a].left) open.pop_back();
      if (!open.empty() && arcs[open.back()].crosses(arcs[a])) {
        const Arc& other = arcs[open.back()];
        fail(format, arc_lines[a],
             "crossing arcs (pseudoknot): bond " + std::to_string(arcs[a].left + 1) +
                 "-" + std::to_string(arcs[a].right + 1) + " crosses bond " +
                 std::to_string(other.left + 1) + "-" + std::to_string(other.right + 1) +
                 " from line " + std::to_string(arc_lines[open.back()]));
      }
      open.push_back(a);
    }
  }

  return SecondaryStructure::from_arcs(n, std::move(arcs));
}

}  // namespace

AnnotatedStructure read_ct(std::istream& in, const ParseOptions& options) {
  std::string line;
  std::size_t lineno = 0;

  // Header: "<n> [title...]" — skip blank/comment lines before it.
  std::size_t n = 0;
  std::string title;
  while (std::getline(in, line)) {
    ++lineno;
    const auto t = trim(line);
    if (t.empty() || t.front() == '#') continue;
    const auto fields = split_ws(t);
    if (!parse_size(fields[0], n)) fail("CT", lineno, "expected base count in header");
    const auto title_pos = t.find_first_of(" \t");
    if (title_pos != std::string_view::npos) title = std::string(trim(t.substr(title_pos)));
    break;
  }
  if (n == 0 && title.empty() && in.eof())
    throw std::invalid_argument("CT parse error: empty input");

  std::vector<Base> bases(n);
  std::vector<std::size_t> partners(n, 0);
  std::vector<std::size_t> base_lines(n, 0);
  std::size_t seen = 0;
  while (seen < n && std::getline(in, line)) {
    ++lineno;
    const auto t = trim(line);
    if (t.empty() || t.front() == '#') continue;
    const auto fields = split_ws(t);
    if (fields.size() < 6) fail("CT", lineno, "expected 6 columns");
    std::size_t index = 0, partner = 0;
    if (!parse_size(fields[0], index) || index != seen + 1)
      fail("CT", lineno, "bad or out-of-order base index");
    if (fields[1].size() != 1 || !base_from_char(fields[1][0], bases[seen]))
      fail("CT", lineno, "bad base symbol '" + std::string(fields[1]) + "'");
    if (!parse_size(fields[4], partner)) fail("CT", lineno, "bad partner index");
    partners[seen] = partner;
    base_lines[seen] = lineno;
    ++seen;
  }
  if (seen != n)
    fail("CT", lineno,
         "truncated file: header declared " + std::to_string(n) + " bases, got " +
             std::to_string(seen));

  return AnnotatedStructure{std::move(title), Sequence(std::move(bases)),
                            structure_from_partners("CT", partners, base_lines, options)};
}

AnnotatedStructure read_bpseq(std::istream& in, const ParseOptions& options) {
  std::string line;
  std::size_t lineno = 0;
  std::string title;
  std::vector<Base> bases;
  std::vector<std::size_t> partners;
  std::vector<std::size_t> base_lines;

  while (std::getline(in, line)) {
    ++lineno;
    const auto t = trim(line);
    if (t.empty()) continue;
    if (t.front() == '#') {
      if (title.empty() && t.size() > 1) title = std::string(trim(t.substr(1)));
      continue;
    }
    const auto fields = split_ws(t);
    if (fields.size() != 3) fail("BPSEQ", lineno, "expected 3 columns");
    std::size_t index = 0, partner = 0;
    if (!parse_size(fields[0], index) || index != bases.size() + 1)
      fail("BPSEQ", lineno, "bad or out-of-order base index");
    Base b;
    if (fields[1].size() != 1 || !base_from_char(fields[1][0], b))
      fail("BPSEQ", lineno, "bad base symbol '" + std::string(fields[1]) + "'");
    if (!parse_size(fields[2], partner)) fail("BPSEQ", lineno, "bad partner index");
    bases.push_back(b);
    partners.push_back(partner);
    base_lines.push_back(lineno);
  }

  return AnnotatedStructure{std::move(title), Sequence(std::move(bases)),
                            structure_from_partners("BPSEQ", partners, base_lines, options)};
}

void write_ct(std::ostream& out, const AnnotatedStructure& record) {
  const Pos n = record.sequence.length();
  out << n << ' ' << (record.title.empty() ? "structure" : record.title) << '\n';
  for (Pos i = 0; i < n; ++i) {
    const Pos partner = i < record.structure.length() ? record.structure.partner(i) : Pos{-1};
    out << (i + 1) << ' ' << to_char(record.sequence[i]) << ' ' << i << ' ' << (i + 2) << ' '
        << (partner >= 0 ? partner + 1 : 0) << ' ' << (i + 1) << '\n';
  }
}

void write_bpseq(std::ostream& out, const AnnotatedStructure& record) {
  if (!record.title.empty()) out << "# " << record.title << '\n';
  const Pos n = record.sequence.length();
  for (Pos i = 0; i < n; ++i) {
    const Pos partner = i < record.structure.length() ? record.structure.partner(i) : Pos{-1};
    out << (i + 1) << ' ' << to_char(record.sequence[i]) << ' '
        << (partner >= 0 ? partner + 1 : 0) << '\n';
  }
}

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

AnnotatedStructure read_structure_file(const std::string& path, const ParseOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open structure file: " + path);
  const std::string lower = to_lower(path);
  if (ends_with(lower, ".ct")) return read_ct(in, options);
  if (ends_with(lower, ".bpseq")) return read_bpseq(in, options);
  throw std::invalid_argument("unknown structure file extension (want .ct or .bpseq): " + path);
}

void write_structure_file(const std::string& path, const AnnotatedStructure& record) {
  std::ofstream out(path);
  if (!out) throw std::invalid_argument("cannot open structure file for writing: " + path);
  const std::string lower = to_lower(path);
  if (ends_with(lower, ".ct")) {
    write_ct(out, record);
  } else if (ends_with(lower, ".bpseq")) {
    write_bpseq(out, record);
  } else {
    throw std::invalid_argument("unknown structure file extension (want .ct or .bpseq): " + path);
  }
}

}  // namespace srna
