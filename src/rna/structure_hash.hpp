// Canonical hashing and equality for secondary structures and structure
// pairs.
//
// Several layers need to ask "have I seen this structure (pair) before?":
// the serve subsystem's result cache keys solved requests by
// (structure A, structure B, solver config), and the structure database
// guards against duplicate records. Both must agree on what "the same
// structure" means, so the canonical form lives here, next to
// SecondaryStructure itself: a structure is its length plus its arc set
// (sorted by right endpoint — the representation is already canonical), and
// the hash digests exactly those fields. Sequences, titles and file origins
// are deliberately excluded: MCOS is a function of the arc sets alone.
//
// The hash is FNV-1a over the canonical words. It is a fingerprint, not a
// proof of equality — collision-sensitive callers (the serve cache) must
// pair it with StructureEq on the stored canonical form.
#pragma once

#include <cstdint>
#include <string>

#include "rna/secondary_structure.hpp"

namespace srna {

// FNV-1a primitives, exposed so callers can extend a structure digest with
// their own context (the serve cache folds the solver-config fingerprint
// into the pair hash this way).
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

[[nodiscard]] constexpr std::uint64_t fnv1a_mix(std::uint64_t hash,
                                                std::uint64_t word) noexcept {
  // Mix one 64-bit word byte-by-byte (FNV-1a is defined over octets).
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (word >> shift) & 0xffULL;
    hash *= kFnvPrime;
  }
  return hash;
}

// Digest of one structure: length, arc count, then every arc (left, right)
// in canonical (by right endpoint) order.
[[nodiscard]] std::uint64_t hash_structure(const SecondaryStructure& s) noexcept;

// Extends `seed` with the digest of `s` (same canonical words as
// hash_structure). hash_structure(s) == hash_structure_into(kFnvOffsetBasis, s).
[[nodiscard]] std::uint64_t hash_structure_into(std::uint64_t seed,
                                                const SecondaryStructure& s) noexcept;

// Ordered pair digest: MCOS(a, b) and MCOS(b, a) are equal by symmetry, but
// the serve cache stores directed requests, so (a, b) and (b, a) hash
// differently; callers wanting symmetric keys can order the pair first.
// `seed` folds caller context (e.g. a config fingerprint) into the digest.
[[nodiscard]] std::uint64_t hash_structure_pair(const SecondaryStructure& a,
                                                const SecondaryStructure& b,
                                                std::uint64_t seed = 0) noexcept;

// Stable wire rendering of a digest: exactly 16 lowercase hex digits,
// zero-padded, no prefix. This is the form serve responses echo as "digest"
// and the distributed router keys its hash ring on — keep it byte-stable
// across versions, it is part of the wire protocol.
[[nodiscard]] std::string digest_hex(std::uint64_t digest);

// The canonical structure-pair digest in wire form: hash_structure_pair(a, b)
// with no caller seed. Routing and response auditing use this (the result
// cache additionally folds the solver-config fingerprint into its key, so a
// cache key is strictly finer than this digest).
[[nodiscard]] std::string pair_digest_hex(const SecondaryStructure& a,
                                          const SecondaryStructure& b);

// Functors for unordered containers keyed by structures.
struct StructureHash {
  [[nodiscard]] std::size_t operator()(const SecondaryStructure& s) const noexcept {
    return static_cast<std::size_t>(hash_structure(s));
  }
};

struct StructureEq {
  [[nodiscard]] bool operator()(const SecondaryStructure& a,
                                const SecondaryStructure& b) const noexcept {
    return same_structure(a, b);
  }

  // Exact equality on the canonical form (length + arc set). Equivalent to
  // operator== but spelled out here so hash and equality visibly digest the
  // same fields.
  [[nodiscard]] static bool same_structure(const SecondaryStructure& a,
                                           const SecondaryStructure& b) noexcept;
};

}  // namespace srna
