#include "rna/svg_diagram.hpp"

#include <algorithm>
#include <sstream>

#include "rna/structure_stats.hpp"
#include "util/assert.hpp"

namespace srna {

namespace {

// Color-blind-safe categorical palette (Okabe–Ito).
constexpr const char* kPalette[] = {"#0072B2", "#E69F00", "#009E73", "#CC79A7",
                                    "#56B4E9", "#D55E00", "#F0E442", "#999999"};
constexpr const char* kHighlight = "#D40000";
constexpr const char* kPlain = "#4477AA";

}  // namespace

std::string render_svg_diagram(const SecondaryStructure& s, const Sequence* seq,
                               const SvgDiagramOptions& options) {
  SRNA_REQUIRE(s.is_nonpseudoknot(), "SVG renderer draws non-pseudoknot structures only");
  SRNA_REQUIRE(seq == nullptr || seq->length() == s.length(),
               "sequence length must match the structure");
  SRNA_REQUIRE(options.spacing > 0.0, "spacing must be positive");

  const double dx = options.spacing;
  const double margin = options.margin;
  const auto n = static_cast<double>(std::max<Pos>(s.length(), 1));

  // Tallest arc determines the headroom: a semicircle of radius span*dx/2.
  double max_radius = 0.0;
  for (const Arc& a : s.arcs_by_right())
    max_radius = std::max(max_radius, static_cast<double>(a.right - a.left) * dx / 2.0);

  const double baseline = margin + max_radius + (options.title.empty() ? 0.0 : 18.0);
  const double width = 2 * margin + (n - 1) * dx;
  const double height = baseline + (seq != nullptr ? 26.0 : 14.0);
  auto x_of = [&](Pos i) { return margin + static_cast<double>(i) * dx; };

  // Stem index per arc for consistent coloring.
  std::vector<std::pair<Arc, std::size_t>> arc_color;
  const auto stems = find_stems(s);
  for (std::size_t stem_idx = 0; stem_idx < stems.size(); ++stem_idx) {
    Arc a = stems[stem_idx].outer;
    for (Pos k = 0; k < stems[stem_idx].length; ++k) {
      arc_color.emplace_back(a, stem_idx);
      a = Arc{a.left + 1, a.right - 1};
    }
  }

  auto is_highlighted = [&](const Arc& a) {
    return std::find(options.highlight.begin(), options.highlight.end(), a) !=
           options.highlight.end();
  };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width << "\" height=\""
      << height << "\" viewBox=\"0 0 " << width << ' ' << height << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  if (!options.title.empty())
    svg << "<text x=\"" << margin << "\" y=\"16\" font-family=\"sans-serif\" font-size=\"13\">"
        << options.title << "</text>\n";

  // Baseline.
  svg << "<line x1=\"" << x_of(0) << "\" y1=\"" << baseline << "\" x2=\""
      << x_of(std::max<Pos>(s.length() - 1, 0)) << "\" y2=\"" << baseline
      << "\" stroke=\"#333\" stroke-width=\"1\"/>\n";

  // Arcs: semicircles via SVG elliptical-arc paths.
  for (const auto& [a, stem_idx] : arc_color) {
    const double x1 = x_of(a.left);
    const double x2 = x_of(a.right);
    const double r = (x2 - x1) / 2.0;
    const bool hot = is_highlighted(a);
    const char* color =
        hot ? kHighlight
            : (options.color_stems ? kPalette[stem_idx % std::size(kPalette)] : kPlain);
    svg << "<path d=\"M " << x1 << ' ' << baseline << " A " << r << ' ' << r << " 0 0 1 " << x2
        << ' ' << baseline << "\" fill=\"none\" stroke=\"" << color << "\" stroke-width=\""
        << (hot ? 2.5 : 1.5) << "\"/>\n";
  }

  // Position ticks and bases.
  for (Pos i = 0; i < s.length(); ++i) {
    const double x = x_of(i);
    svg << "<line x1=\"" << x << "\" y1=\"" << baseline << "\" x2=\"" << x << "\" y2=\""
        << baseline + 4 << "\" stroke=\"#333\" stroke-width=\"0.75\"/>\n";
    if (seq != nullptr)
      svg << "<text x=\"" << x << "\" y=\"" << baseline + 18
          << "\" font-family=\"monospace\" font-size=\"10\" text-anchor=\"middle\">"
          << to_char((*seq)[i]) << "</text>\n";
    if (i % 10 == 0)
      svg << "<text x=\"" << x << "\" y=\"" << baseline + (seq != nullptr ? 26.0 : 14.0)
          << "\" font-family=\"sans-serif\" font-size=\"8\" text-anchor=\"middle\" fill=\"#777\">"
          << i << "</text>\n";
  }

  svg << "</svg>\n";
  return svg.str();
}

}  // namespace srna
